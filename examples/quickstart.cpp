// Quickstart: build a bitmap filter, feed it a handful of packets, and
// watch the positive-listing decisions -- the 60-second tour of the API.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "filter/bitmap_filter.h"
#include "filter/drop_policy.h"
#include "filter/filter_registry.h"
#include "sim/edge_router.h"

using namespace upbound;

namespace {

PacketRecord packet(Protocol proto, const char* src, std::uint16_t sport,
                    const char* dst, std::uint16_t dport, double t_sec,
                    std::uint32_t bytes) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = FiveTuple{proto, *Ipv4Addr::parse(src), sport,
                        *Ipv4Addr::parse(dst), dport};
  pkt.payload_size = bytes;
  return pkt;
}

const char* describe(RouterDecision decision) {
  switch (decision) {
    case RouterDecision::kPassedOutbound: return "PASS (outbound)";
    case RouterDecision::kPassedInbound: return "PASS (inbound, solicited)";
    case RouterDecision::kDroppedByPolicy: return "DROP (unsolicited)";
    case RouterDecision::kDroppedBlocked: return "DROP (blocked connection)";
    case RouterDecision::kIgnored: return "ignore (not at the edge)";
  }
  return "?";
}

}  // namespace

int main() {
  // The client network guarded by the filter: one /24 of client hosts.
  EdgeRouterConfig config;
  config.network = ClientNetwork{{*Cidr::parse("192.0.2.0/24")}};

  // The paper's default bitmap: {4 x 2^20} bits (512 KB), rotated every
  // 5 s => a 20 s implicit state timer, 3 hash functions.
  BitmapFilterConfig bitmap;
  std::printf("bitmap filter: N=2^%u bits, k=%u, dt=%s, Te=%s, m=%u, %zu KB\n\n",
              bitmap.log2_bits, bitmap.vector_count,
              bitmap.rotate_interval.to_string().c_str(),
              bitmap.expiry_timer().to_string().c_str(), bitmap.hash_count,
              bitmap.memory_bytes() / 1024);

  // Drop every stateless inbound packet (P_d = 1) to make decisions vivid;
  // production deployments use RedDropPolicy{L, H} instead.
  EdgeRouter router{config, make_state_filter(bitmap_filter_spec(bitmap)),
                    std::make_unique<ConstantDropPolicy>(1.0)};

  struct Step {
    const char* what;
    PacketRecord pkt;
  };
  const Step steps[] = {
      {"client 192.0.2.10 opens a connection to a web server",
       packet(Protocol::kTcp, "192.0.2.10", 40000, "93.184.216.34", 80, 0.0,
              0)},
      {"the web server's response comes back",
       packet(Protocol::kTcp, "93.184.216.34", 80, "192.0.2.10", 40000, 0.1,
              1448)},
      {"an unknown peer cold-calls the client's P2P port",
       packet(Protocol::kTcp, "198.51.100.7", 51515, "192.0.2.10", 31337,
              0.2, 0)},
      {"the same peer retries",
       packet(Protocol::kTcp, "198.51.100.7", 51515, "192.0.2.10", 31337,
              1.2, 0)},
      {"the web server answers again 30 s later (state expired: Te = 20 s)",
       packet(Protocol::kTcp, "93.184.216.34", 80, "192.0.2.10", 40000, 30.0,
              1448)},
  };

  for (const Step& step : steps) {
    const RouterDecision decision = router.process(step.pkt);
    std::printf("t=%-6s %-62s -> %s\n",
                step.pkt.timestamp.to_string().c_str(), step.what,
                describe(decision));
  }

  const EdgeRouterStats& stats = router.stats();
  std::printf(
      "\nsummary: %llu outbound passed, %llu inbound passed, %llu dropped "
      "(%llu via blocklist)\n",
      static_cast<unsigned long long>(stats.outbound_packets),
      static_cast<unsigned long long>(stats.inbound_passed_packets),
      static_cast<unsigned long long>(stats.inbound_dropped_packets),
      static_cast<unsigned long long>(stats.blocked_drops));
  std::printf("filter state: %zu KB, constant regardless of load\n",
              router.filter().storage_bytes() / 1024);
  return 0;
}
