// The Fig. 6 usage model: an ISP guarding several client networks with a
// FilterBank -- one bitmap filter per edge, each with RED thresholds sized
// to its site, plus an aggregate core vantage point. Total state is
// O(sites), regardless of flow count.
//
//   $ ./isp_deployment
#include <cstdio>
#include <memory>
#include <vector>

#include "filter/bitmap_filter.h"
#include "sim/filter_bank.h"
#include "sim/report.h"
#include "trace/campus.h"

using namespace upbound;

namespace {

struct Site {
  const char* name;
  const char* prefix;
  double bandwidth_bps;
  std::uint64_t seed;
};

}  // namespace

int main() {
  // Three client networks with different sizes and loads.
  const Site sites[] = {
      {"dsl-pool-a", "100.64.0.0/24", 6e6, 21},
      {"campus-b", "100.64.1.0/24", 10e6, 22},
      {"office-c", "100.64.2.0/24", 3e6, 23},
  };

  // One bank: a bitmap filter per site, thresholds scaled per site.
  FilterBank bank;
  std::vector<GeneratedTrace> traces;
  for (const Site& site : sites) {
    bank.add_bitmap_site(site.name,
                         ClientNetwork{{*Cidr::parse(site.prefix)}},
                         BitmapFilterConfig{}, site.bandwidth_bps * 0.3,
                         site.bandwidth_bps * 0.5);

    CampusTraceConfig config;
    config.duration = Duration::sec(25.0);
    config.connections_per_sec = 40.0;
    config.bandwidth_bps = site.bandwidth_bps;
    config.seed = site.seed;
    config.network.client_prefix = *Cidr::parse(site.prefix);
    traces.push_back(generate_campus_trace(config));
  }

  // Merge the three sites' traffic into one core-link stream.
  Trace core_link;
  for (const GeneratedTrace& trace : traces) {
    core_link.insert(core_link.end(), trace.packets.begin(),
                     trace.packets.end());
  }
  std::sort(core_link.begin(), core_link.end(),
            [](const PacketRecord& a, const PacketRecord& b) {
              return a.timestamp < b.timestamp;
            });
  std::printf("core link carries %zu packets from %zu guarded sites\n\n",
              core_link.size(), bank.site_count());

  for (const PacketRecord& pkt : core_link) bank.process(pkt);

  std::vector<std::vector<std::string>> rows{
      {"site", "outbound pkts", "inbound pass", "inbound drop", "drop rate",
       "state"}};
  for (std::size_t i = 0; i < bank.site_count(); ++i) {
    const EdgeRouterStats& stats = bank.site_router(i).stats();
    rows.push_back(
        {bank.site_name(i), std::to_string(stats.outbound_packets),
         std::to_string(stats.inbound_passed_packets),
         std::to_string(stats.inbound_dropped_packets),
         report::percent(stats.inbound_drop_rate()),
         std::to_string(bank.site_router(i).filter().storage_bytes() / 1024) +
             " KB"});
  }
  std::printf("== per-edge bitmap filters (paper Fig. 6, black nodes) ==\n");
  std::printf("%s\n", report::table(rows).c_str());

  std::printf("total connection-tracking state: %zu KB for the whole ISP\n",
              bank.total_filter_state_bytes() / 1024);
  std::printf("unguarded (transit) packets passed untouched: %llu\n",
              static_cast<unsigned long long>(bank.unguarded_packets()));
  std::printf("\n(an SPI deployment would hold per-flow state for the union\n"
              " of all sites' connections -- this bank stays at %zu KB no\n"
              " matter how many flows cross it)\n",
              bank.total_filter_state_bytes() / 1024);
  return 0;
}
