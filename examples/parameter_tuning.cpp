// Deployment sizing with the Section 4.3 / 5.1 math: given expected load,
// pick N, k, dt, m and see the predicted penetration probability -- then
// verify the prediction against a Monte-Carlo of the real filter.
//
//   $ ./parameter_tuning [expected_connections]
#include <cstdio>
#include <cstdlib>

#include "filter/bitmap_filter.h"
#include "filter/params.h"
#include "sim/report.h"
#include "util/rng.h"

using namespace upbound;

namespace {

// Empirical penetration probability: mark `connections` random socket
// pairs, probe with fresh random pairs.
double measure_penetration(const BitmapFilterConfig& config,
                           std::size_t connections, Rng& rng) {
  BitmapFilter filter{config};
  PacketRecord pkt;
  for (std::size_t i = 0; i < connections; ++i) {
    pkt.tuple = FiveTuple{Protocol::kTcp,
                          Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                          static_cast<std::uint16_t>(rng.next_u64()),
                          Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                          static_cast<std::uint16_t>(rng.next_u64())};
    filter.record_outbound(pkt);
  }
  const int probes = 200'000;
  int hits = 0;
  for (int i = 0; i < probes; ++i) {
    pkt.tuple = FiveTuple{Protocol::kUdp,
                          Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                          static_cast<std::uint16_t>(rng.next_u64()),
                          Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                          static_cast<std::uint16_t>(rng.next_u64())};
    if (filter.admits_inbound(pkt)) ++hits;
  }
  return static_cast<double>(hits) / probes;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t connections =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 15'000;

  std::printf("sizing a bitmap filter for ~%zu concurrent connections "
              "per expiry window\n\n", connections);

  // The paper's worked example: how many connections can a 2^20-bit
  // vector tolerate at target penetration probabilities? (Eq. 6)
  std::printf("== capacity bounds for N = 2^20 (paper Section 5.1) ==\n");
  std::printf("%s\n",
      report::table({{"target p", "max connections (Eq. 6)"},
                     {"10%", std::to_string(max_connections_for(0.10, 1u << 20))},
                     {"5%", std::to_string(max_connections_for(0.05, 1u << 20))},
                     {"1%", std::to_string(max_connections_for(0.01, 1u << 20))}})
          .c_str());

  std::printf("== recommendations across memory budgets ==\n");
  std::vector<std::vector<std::string>> rows{
      {"N", "k", "dt", "m*", "memory", "predicted p", "measured p"}};
  Rng rng{2026};
  for (const unsigned log2_bits : {16u, 18u, 20u, 22u}) {
    const std::size_t bits = std::size_t{1} << log2_bits;
    const BitmapAdvice advice =
        advise(bits, 4, Duration::sec(5.0), connections);

    BitmapFilterConfig config;
    config.log2_bits = log2_bits;
    config.vector_count = 4;
    // Cap m at a practical bound; the optimum can be large at low load.
    config.hash_count = std::min(advice.hash_count, 8u);
    const double measured = measure_penetration(config, connections, rng);
    const double predicted =
        penetration_probability(connections, config.hash_count, bits);

    rows.push_back({"2^" + std::to_string(log2_bits), "4", "5s",
                    std::to_string(config.hash_count) +
                        (config.hash_count != advice.hash_count
                             ? " (capped from " +
                                   std::to_string(advice.hash_count) + ")"
                             : ""),
                    std::to_string(advice.memory_bytes / 1024) + " KB",
                    report::num(predicted * 100.0, 4) + "%",
                    report::num(measured * 100.0, 4) + "%"});
  }
  std::printf("%s\n", report::table(rows).c_str());
  std::printf("(predicted = Eq. 3 with the deployed m; measured = "
              "Monte-Carlo over 200k random probes)\n");
  return 0;
}
