// pcap interop: write a synthetic trace to a real pcap file, read it back
// (as if captured by tcpdump), and push it through analyzer + filter --
// the full "libpcap fit" pipeline on disk instead of in memory.
//
//   $ ./pcap_pipeline [/tmp/campus.pcap]
#include <cstdio>
#include <memory>

#include "analyzer/analyzer.h"
#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "net/pcap.h"
#include "sim/replay.h"
#include "trace/campus.h"

using namespace upbound;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/upbound_campus.pcap";

  CampusTraceConfig config;
  config.duration = Duration::sec(10.0);
  config.connections_per_sec = 50.0;
  config.bandwidth_bps = 5e6;
  config.seed = 11;
  const GeneratedTrace generated = generate_campus_trace(config);

  {
    PcapWriter writer{path};
    writer.write_all(generated.packets);
    std::printf("wrote %llu packets to %s\n",
                static_cast<unsigned long long>(writer.packets_written()),
                path.c_str());
  }

  PcapReader reader{path};
  const Trace replayed = reader.read_all();
  std::printf("read back %llu packets (%llu undecodable frames skipped)\n",
              static_cast<unsigned long long>(reader.packets_read()),
              static_cast<unsigned long long>(reader.frames_skipped()));
  if (replayed.size() != generated.packets.size()) {
    std::printf("ERROR: packet count mismatch\n");
    return 1;
  }

  // Classify the on-disk trace.
  AnalyzerConfig analyzer_config;
  analyzer_config.network = generated.network;
  TrafficAnalyzer analyzer{analyzer_config};
  for (const PacketRecord& pkt : replayed) analyzer.process(pkt);
  const AnalyzerReport report = analyzer.finish();
  std::printf("\nclassified %llu connections from the pcap:\n%s\n",
              static_cast<unsigned long long>(report.total_connections),
              report.protocol_table().c_str());

  // And filter it.
  EdgeRouterConfig router_config;
  router_config.network = generated.network;
  EdgeRouter router{router_config,
                    make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
                    std::make_unique<ConstantDropPolicy>(1.0)};
  const ReplayResult result =
      replay_trace(replayed, router, generated.network);
  std::printf("bitmap filter over the pcap: %.2f%% inbound drop rate\n",
              result.stats.inbound_drop_rate() * 100.0);
  std::remove(path.c_str());
  return 0;
}
