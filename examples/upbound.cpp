// The upbound command-line tool; see `upbound help` for commands.
#include "cli/commands.h"

int main(int argc, char** argv) { return upbound::cli::run(argc, argv); }
