// Reproduces the paper's Section 3 measurement study end-to-end on a
// synthetic campus trace: generate the workload, run the traffic analyzer
// (pattern + port classification), and print the Table 2 protocol
// distribution plus the lifetime and out-in delay characteristics.
//
//   $ ./campus_trace_analysis [duration_sec] [seed]
#include <cstdio>
#include <cstdlib>

#include "analyzer/analyzer.h"
#include "sim/report.h"
#include "trace/campus.h"

using namespace upbound;

int main(int argc, char** argv) {
  CampusTraceConfig config;
  config.duration = Duration::sec(argc > 1 ? std::atof(argv[1]) : 30.0);
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  config.connections_per_sec = 80.0;
  config.bandwidth_bps = 10e6;

  std::printf("generating campus trace: %s, %.0f conns/s, %s target...\n",
              config.duration.to_string().c_str(),
              config.connections_per_sec,
              format_bits_per_sec(config.bandwidth_bps).c_str());
  const GeneratedTrace trace = generate_campus_trace(config);
  std::printf("  %zu packets, %zu connections, %s offered over %s\n\n",
              trace.packets.size(), trace.connection_count,
              format_bits_per_sec(trace.average_bits_per_sec()).c_str(),
              trace.span().to_string().c_str());

  TrafficAnalyzer analyzer{trace.network};
  for (const PacketRecord& pkt : trace.packets) analyzer.process(pkt);
  const AnalyzerReport report = analyzer.finish();

  std::printf("== Protocol distribution (paper Table 2) ==\n%s\n",
              report.protocol_table().c_str());

  std::printf("traffic direction: %s upload / %s download\n",
              report::percent(report.upload_fraction()).c_str(),
              report::percent(1.0 - report.upload_fraction()).c_str());
  std::printf("connections: %llu TCP / %llu UDP; bytes: %s on TCP\n\n",
              static_cast<unsigned long long>(report.tcp_connections),
              static_cast<unsigned long long>(report.udp_connections),
              report::percent(static_cast<double>(report.tcp_bytes) /
                              static_cast<double>(report.tcp_bytes +
                                                  report.udp_bytes))
                  .c_str());

  if (report.lifetimes.count() > 0) {
    std::printf("== TCP connection lifetimes (paper Fig. 4) ==\n");
    std::printf("  samples: %zu, mean %.2f s\n",
                report.lifetimes.count(), report.lifetime_summary.mean());
    std::printf("  under 45 s: %s   under 4 min: %s   over 810 s: %s\n\n",
                report::percent(report.lifetimes.fraction_below(45.0)).c_str(),
                report::percent(report.lifetimes.fraction_below(240.0)).c_str(),
                report::percent(1.0 -
                                report.lifetimes.fraction_below(810.0))
                    .c_str());
  }

  if (report.out_in_delays.count() > 0) {
    std::printf("== Out-in packet delay (paper Fig. 5) ==\n");
    std::printf("  samples: %zu\n", report.out_in_delays.count());
    std::printf("  under 2.8 s: %s (paper: 99%%)\n",
                report::percent(report.out_in_delays.fraction_below(2.8))
                    .c_str());
    std::printf("  P50 %.3f s  P90 %.3f s  P99 %.3f s\n\n",
                report.out_in_delays.percentile(50),
                report.out_in_delays.percentile(90),
                report.out_in_delays.percentile(99));
  }

  std::printf("classifier internals: %llu endpoint-memo hits, "
              "%llu FTP data connections linked\n",
              static_cast<unsigned long long>(
                  analyzer.classifier().memo_hits()),
              static_cast<unsigned long long>(
                  analyzer.classifier().ftp_data_hits()));
  return 0;
}
