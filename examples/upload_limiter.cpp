// The headline use case (paper Section 5.3 / Fig. 9): bound P2P upload
// traffic from a client network with a bitmap filter driven by RED-style
// thresholds -- no payload inspection, constant memory.
//
//   $ ./upload_limiter [low_mbps] [high_mbps]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "sim/replay.h"
#include "sim/report.h"
#include "trace/campus.h"

using namespace upbound;

int main(int argc, char** argv) {
  const double low_mbps = argc > 1 ? std::atof(argv[1]) : 4.0;
  const double high_mbps = argc > 2 ? std::atof(argv[2]) : 6.0;

  CampusTraceConfig trace_config;
  trace_config.duration = Duration::sec(40.0);
  trace_config.connections_per_sec = 60.0;
  trace_config.bandwidth_bps = 12e6;
  trace_config.seed = 3;
  std::printf("generating P2P-heavy campus trace (~%s offered)...\n",
              format_bits_per_sec(trace_config.bandwidth_bps).c_str());
  const GeneratedTrace trace = generate_campus_trace(trace_config);

  EdgeRouterConfig router_config;
  router_config.network = trace.network;
  router_config.track_blocked_connections = true;

  BitmapFilterConfig bitmap;  // the paper's {4 x 2^20}, Te = 20 s, m = 3
  EdgeRouter router{router_config, make_state_filter(bitmap_filter_spec(bitmap)),
                    std::make_unique<RedDropPolicy>(low_mbps * 1e6,
                                                    high_mbps * 1e6)};

  std::printf("limiting uplink with L = %.1f Mbps, H = %.1f Mbps "
              "(bitmap: %zu KB)\n\n",
              low_mbps, high_mbps, bitmap.memory_bytes() / 1024);
  const ReplayResult result =
      replay_trace(trace.packets, router, trace.network);

  const double span = trace.span().to_sec();
  const auto mbps = [span](double bytes) { return bytes * 8.0 / span / 1e6; };

  std::printf("%s\n",
      report::table(
          {{"", "uplink", "downlink"},
           {"offered", report::num(mbps(result.offered_outbound.total())) +
                           " Mbps",
            report::num(mbps(result.offered_inbound.total())) + " Mbps"},
           {"carried", report::num(mbps(result.passed_outbound.total())) +
                           " Mbps",
            report::num(mbps(result.passed_inbound.total())) + " Mbps"}})
          .c_str());

  const EdgeRouterStats& stats = result.stats;
  std::printf("inbound drop rate: %s  (%llu packets, %llu via blocklist)\n",
              report::percent(stats.inbound_drop_rate()).c_str(),
              static_cast<unsigned long long>(stats.inbound_dropped_packets),
              static_cast<unsigned long long>(stats.blocked_drops));
  std::printf("upload suppressed with blocked connections: %s\n",
              format_bits_per_sec(
                  static_cast<double>(stats.suppressed_outbound_bytes) * 8.0 /
                  span)
                  .c_str());
  std::printf("blocked connections: %llu\n\n",
              static_cast<unsigned long long>(
                  router.blocklist().total_blocked()));

  std::printf("== uplink over time: offered vs carried (paper Fig. 9) ==\n");
  std::printf("%s\n",
              report::throughput_series(
                  {{"offered-up", &result.offered_outbound},
                   {"carried-up", &result.passed_outbound}},
                  /*max_rows=*/24)
                  .c_str());
  return 0;
}
