file(REMOVE_RECURSE
  "CMakeFiles/upbound_trace.dir/trace/campus.cpp.o"
  "CMakeFiles/upbound_trace.dir/trace/campus.cpp.o.d"
  "CMakeFiles/upbound_trace.dir/trace/network_model.cpp.o"
  "CMakeFiles/upbound_trace.dir/trace/network_model.cpp.o.d"
  "CMakeFiles/upbound_trace.dir/trace/packetizer.cpp.o"
  "CMakeFiles/upbound_trace.dir/trace/packetizer.cpp.o.d"
  "CMakeFiles/upbound_trace.dir/trace/payloads.cpp.o"
  "CMakeFiles/upbound_trace.dir/trace/payloads.cpp.o.d"
  "CMakeFiles/upbound_trace.dir/trace/sessions.cpp.o"
  "CMakeFiles/upbound_trace.dir/trace/sessions.cpp.o.d"
  "CMakeFiles/upbound_trace.dir/trace/trace_builder.cpp.o"
  "CMakeFiles/upbound_trace.dir/trace/trace_builder.cpp.o.d"
  "libupbound_trace.a"
  "libupbound_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upbound_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
