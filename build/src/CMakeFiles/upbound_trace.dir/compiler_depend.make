# Empty compiler generated dependencies file for upbound_trace.
# This may be replaced when dependencies are built.
