file(REMOVE_RECURSE
  "libupbound_trace.a"
)
