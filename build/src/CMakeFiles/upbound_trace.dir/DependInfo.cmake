
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/campus.cpp" "src/CMakeFiles/upbound_trace.dir/trace/campus.cpp.o" "gcc" "src/CMakeFiles/upbound_trace.dir/trace/campus.cpp.o.d"
  "/root/repo/src/trace/network_model.cpp" "src/CMakeFiles/upbound_trace.dir/trace/network_model.cpp.o" "gcc" "src/CMakeFiles/upbound_trace.dir/trace/network_model.cpp.o.d"
  "/root/repo/src/trace/packetizer.cpp" "src/CMakeFiles/upbound_trace.dir/trace/packetizer.cpp.o" "gcc" "src/CMakeFiles/upbound_trace.dir/trace/packetizer.cpp.o.d"
  "/root/repo/src/trace/payloads.cpp" "src/CMakeFiles/upbound_trace.dir/trace/payloads.cpp.o" "gcc" "src/CMakeFiles/upbound_trace.dir/trace/payloads.cpp.o.d"
  "/root/repo/src/trace/sessions.cpp" "src/CMakeFiles/upbound_trace.dir/trace/sessions.cpp.o" "gcc" "src/CMakeFiles/upbound_trace.dir/trace/sessions.cpp.o.d"
  "/root/repo/src/trace/trace_builder.cpp" "src/CMakeFiles/upbound_trace.dir/trace/trace_builder.cpp.o" "gcc" "src/CMakeFiles/upbound_trace.dir/trace/trace_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/upbound_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
