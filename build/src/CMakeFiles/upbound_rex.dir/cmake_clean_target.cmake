file(REMOVE_RECURSE
  "libupbound_rex.a"
)
