
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rex/compiler.cpp" "src/CMakeFiles/upbound_rex.dir/rex/compiler.cpp.o" "gcc" "src/CMakeFiles/upbound_rex.dir/rex/compiler.cpp.o.d"
  "/root/repo/src/rex/parser.cpp" "src/CMakeFiles/upbound_rex.dir/rex/parser.cpp.o" "gcc" "src/CMakeFiles/upbound_rex.dir/rex/parser.cpp.o.d"
  "/root/repo/src/rex/regex.cpp" "src/CMakeFiles/upbound_rex.dir/rex/regex.cpp.o" "gcc" "src/CMakeFiles/upbound_rex.dir/rex/regex.cpp.o.d"
  "/root/repo/src/rex/vm.cpp" "src/CMakeFiles/upbound_rex.dir/rex/vm.cpp.o" "gcc" "src/CMakeFiles/upbound_rex.dir/rex/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/upbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
