# Empty dependencies file for upbound_rex.
# This may be replaced when dependencies are built.
