file(REMOVE_RECURSE
  "CMakeFiles/upbound_rex.dir/rex/compiler.cpp.o"
  "CMakeFiles/upbound_rex.dir/rex/compiler.cpp.o.d"
  "CMakeFiles/upbound_rex.dir/rex/parser.cpp.o"
  "CMakeFiles/upbound_rex.dir/rex/parser.cpp.o.d"
  "CMakeFiles/upbound_rex.dir/rex/regex.cpp.o"
  "CMakeFiles/upbound_rex.dir/rex/regex.cpp.o.d"
  "CMakeFiles/upbound_rex.dir/rex/vm.cpp.o"
  "CMakeFiles/upbound_rex.dir/rex/vm.cpp.o.d"
  "libupbound_rex.a"
  "libupbound_rex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upbound_rex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
