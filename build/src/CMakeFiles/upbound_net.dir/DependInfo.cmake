
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/app_protocol.cpp" "src/CMakeFiles/upbound_net.dir/net/app_protocol.cpp.o" "gcc" "src/CMakeFiles/upbound_net.dir/net/app_protocol.cpp.o.d"
  "/root/repo/src/net/direction.cpp" "src/CMakeFiles/upbound_net.dir/net/direction.cpp.o" "gcc" "src/CMakeFiles/upbound_net.dir/net/direction.cpp.o.d"
  "/root/repo/src/net/five_tuple.cpp" "src/CMakeFiles/upbound_net.dir/net/five_tuple.cpp.o" "gcc" "src/CMakeFiles/upbound_net.dir/net/five_tuple.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/CMakeFiles/upbound_net.dir/net/headers.cpp.o" "gcc" "src/CMakeFiles/upbound_net.dir/net/headers.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "src/CMakeFiles/upbound_net.dir/net/ip.cpp.o" "gcc" "src/CMakeFiles/upbound_net.dir/net/ip.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/upbound_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/upbound_net.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "src/CMakeFiles/upbound_net.dir/net/pcap.cpp.o" "gcc" "src/CMakeFiles/upbound_net.dir/net/pcap.cpp.o.d"
  "/root/repo/src/net/pcapng.cpp" "src/CMakeFiles/upbound_net.dir/net/pcapng.cpp.o" "gcc" "src/CMakeFiles/upbound_net.dir/net/pcapng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/upbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
