file(REMOVE_RECURSE
  "CMakeFiles/upbound_net.dir/net/app_protocol.cpp.o"
  "CMakeFiles/upbound_net.dir/net/app_protocol.cpp.o.d"
  "CMakeFiles/upbound_net.dir/net/direction.cpp.o"
  "CMakeFiles/upbound_net.dir/net/direction.cpp.o.d"
  "CMakeFiles/upbound_net.dir/net/five_tuple.cpp.o"
  "CMakeFiles/upbound_net.dir/net/five_tuple.cpp.o.d"
  "CMakeFiles/upbound_net.dir/net/headers.cpp.o"
  "CMakeFiles/upbound_net.dir/net/headers.cpp.o.d"
  "CMakeFiles/upbound_net.dir/net/ip.cpp.o"
  "CMakeFiles/upbound_net.dir/net/ip.cpp.o.d"
  "CMakeFiles/upbound_net.dir/net/packet.cpp.o"
  "CMakeFiles/upbound_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/upbound_net.dir/net/pcap.cpp.o"
  "CMakeFiles/upbound_net.dir/net/pcap.cpp.o.d"
  "CMakeFiles/upbound_net.dir/net/pcapng.cpp.o"
  "CMakeFiles/upbound_net.dir/net/pcapng.cpp.o.d"
  "libupbound_net.a"
  "libupbound_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upbound_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
