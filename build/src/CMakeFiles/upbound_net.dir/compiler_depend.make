# Empty compiler generated dependencies file for upbound_net.
# This may be replaced when dependencies are built.
