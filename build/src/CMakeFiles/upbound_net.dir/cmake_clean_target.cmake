file(REMOVE_RECURSE
  "libupbound_net.a"
)
