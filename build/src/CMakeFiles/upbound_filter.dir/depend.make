# Empty dependencies file for upbound_filter.
# This may be replaced when dependencies are built.
