file(REMOVE_RECURSE
  "libupbound_filter.a"
)
