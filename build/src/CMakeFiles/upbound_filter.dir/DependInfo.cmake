
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/aging_bloom.cpp" "src/CMakeFiles/upbound_filter.dir/filter/aging_bloom.cpp.o" "gcc" "src/CMakeFiles/upbound_filter.dir/filter/aging_bloom.cpp.o.d"
  "/root/repo/src/filter/bandwidth_meter.cpp" "src/CMakeFiles/upbound_filter.dir/filter/bandwidth_meter.cpp.o" "gcc" "src/CMakeFiles/upbound_filter.dir/filter/bandwidth_meter.cpp.o.d"
  "/root/repo/src/filter/bitmap_filter.cpp" "src/CMakeFiles/upbound_filter.dir/filter/bitmap_filter.cpp.o" "gcc" "src/CMakeFiles/upbound_filter.dir/filter/bitmap_filter.cpp.o.d"
  "/root/repo/src/filter/bitvector.cpp" "src/CMakeFiles/upbound_filter.dir/filter/bitvector.cpp.o" "gcc" "src/CMakeFiles/upbound_filter.dir/filter/bitvector.cpp.o.d"
  "/root/repo/src/filter/blocklist.cpp" "src/CMakeFiles/upbound_filter.dir/filter/blocklist.cpp.o" "gcc" "src/CMakeFiles/upbound_filter.dir/filter/blocklist.cpp.o.d"
  "/root/repo/src/filter/concurrent_bitmap.cpp" "src/CMakeFiles/upbound_filter.dir/filter/concurrent_bitmap.cpp.o" "gcc" "src/CMakeFiles/upbound_filter.dir/filter/concurrent_bitmap.cpp.o.d"
  "/root/repo/src/filter/drop_policy.cpp" "src/CMakeFiles/upbound_filter.dir/filter/drop_policy.cpp.o" "gcc" "src/CMakeFiles/upbound_filter.dir/filter/drop_policy.cpp.o.d"
  "/root/repo/src/filter/hash_family.cpp" "src/CMakeFiles/upbound_filter.dir/filter/hash_family.cpp.o" "gcc" "src/CMakeFiles/upbound_filter.dir/filter/hash_family.cpp.o.d"
  "/root/repo/src/filter/naive_filter.cpp" "src/CMakeFiles/upbound_filter.dir/filter/naive_filter.cpp.o" "gcc" "src/CMakeFiles/upbound_filter.dir/filter/naive_filter.cpp.o.d"
  "/root/repo/src/filter/params.cpp" "src/CMakeFiles/upbound_filter.dir/filter/params.cpp.o" "gcc" "src/CMakeFiles/upbound_filter.dir/filter/params.cpp.o.d"
  "/root/repo/src/filter/snapshot.cpp" "src/CMakeFiles/upbound_filter.dir/filter/snapshot.cpp.o" "gcc" "src/CMakeFiles/upbound_filter.dir/filter/snapshot.cpp.o.d"
  "/root/repo/src/filter/spi_filter.cpp" "src/CMakeFiles/upbound_filter.dir/filter/spi_filter.cpp.o" "gcc" "src/CMakeFiles/upbound_filter.dir/filter/spi_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/upbound_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
