file(REMOVE_RECURSE
  "CMakeFiles/upbound_filter.dir/filter/aging_bloom.cpp.o"
  "CMakeFiles/upbound_filter.dir/filter/aging_bloom.cpp.o.d"
  "CMakeFiles/upbound_filter.dir/filter/bandwidth_meter.cpp.o"
  "CMakeFiles/upbound_filter.dir/filter/bandwidth_meter.cpp.o.d"
  "CMakeFiles/upbound_filter.dir/filter/bitmap_filter.cpp.o"
  "CMakeFiles/upbound_filter.dir/filter/bitmap_filter.cpp.o.d"
  "CMakeFiles/upbound_filter.dir/filter/bitvector.cpp.o"
  "CMakeFiles/upbound_filter.dir/filter/bitvector.cpp.o.d"
  "CMakeFiles/upbound_filter.dir/filter/blocklist.cpp.o"
  "CMakeFiles/upbound_filter.dir/filter/blocklist.cpp.o.d"
  "CMakeFiles/upbound_filter.dir/filter/concurrent_bitmap.cpp.o"
  "CMakeFiles/upbound_filter.dir/filter/concurrent_bitmap.cpp.o.d"
  "CMakeFiles/upbound_filter.dir/filter/drop_policy.cpp.o"
  "CMakeFiles/upbound_filter.dir/filter/drop_policy.cpp.o.d"
  "CMakeFiles/upbound_filter.dir/filter/hash_family.cpp.o"
  "CMakeFiles/upbound_filter.dir/filter/hash_family.cpp.o.d"
  "CMakeFiles/upbound_filter.dir/filter/naive_filter.cpp.o"
  "CMakeFiles/upbound_filter.dir/filter/naive_filter.cpp.o.d"
  "CMakeFiles/upbound_filter.dir/filter/params.cpp.o"
  "CMakeFiles/upbound_filter.dir/filter/params.cpp.o.d"
  "CMakeFiles/upbound_filter.dir/filter/snapshot.cpp.o"
  "CMakeFiles/upbound_filter.dir/filter/snapshot.cpp.o.d"
  "CMakeFiles/upbound_filter.dir/filter/spi_filter.cpp.o"
  "CMakeFiles/upbound_filter.dir/filter/spi_filter.cpp.o.d"
  "libupbound_filter.a"
  "libupbound_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upbound_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
