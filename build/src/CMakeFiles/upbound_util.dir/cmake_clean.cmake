file(REMOVE_RECURSE
  "CMakeFiles/upbound_util.dir/util/hash.cpp.o"
  "CMakeFiles/upbound_util.dir/util/hash.cpp.o.d"
  "CMakeFiles/upbound_util.dir/util/logging.cpp.o"
  "CMakeFiles/upbound_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/upbound_util.dir/util/rng.cpp.o"
  "CMakeFiles/upbound_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/upbound_util.dir/util/stats.cpp.o"
  "CMakeFiles/upbound_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/upbound_util.dir/util/time.cpp.o"
  "CMakeFiles/upbound_util.dir/util/time.cpp.o.d"
  "libupbound_util.a"
  "libupbound_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upbound_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
