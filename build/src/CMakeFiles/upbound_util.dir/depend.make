# Empty dependencies file for upbound_util.
# This may be replaced when dependencies are built.
