file(REMOVE_RECURSE
  "libupbound_util.a"
)
