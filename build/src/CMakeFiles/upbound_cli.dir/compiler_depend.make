# Empty compiler generated dependencies file for upbound_cli.
# This may be replaced when dependencies are built.
