file(REMOVE_RECURSE
  "libupbound_cli.a"
)
