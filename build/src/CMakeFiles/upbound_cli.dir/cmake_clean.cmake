file(REMOVE_RECURSE
  "CMakeFiles/upbound_cli.dir/cli/args.cpp.o"
  "CMakeFiles/upbound_cli.dir/cli/args.cpp.o.d"
  "CMakeFiles/upbound_cli.dir/cli/commands.cpp.o"
  "CMakeFiles/upbound_cli.dir/cli/commands.cpp.o.d"
  "libupbound_cli.a"
  "libupbound_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upbound_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
