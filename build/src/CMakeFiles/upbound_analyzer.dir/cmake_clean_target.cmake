file(REMOVE_RECURSE
  "libupbound_analyzer.a"
)
