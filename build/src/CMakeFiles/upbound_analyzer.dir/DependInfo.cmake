
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/analyzer.cpp" "src/CMakeFiles/upbound_analyzer.dir/analyzer/analyzer.cpp.o" "gcc" "src/CMakeFiles/upbound_analyzer.dir/analyzer/analyzer.cpp.o.d"
  "/root/repo/src/analyzer/classifier.cpp" "src/CMakeFiles/upbound_analyzer.dir/analyzer/classifier.cpp.o" "gcc" "src/CMakeFiles/upbound_analyzer.dir/analyzer/classifier.cpp.o.d"
  "/root/repo/src/analyzer/conn_table.cpp" "src/CMakeFiles/upbound_analyzer.dir/analyzer/conn_table.cpp.o" "gcc" "src/CMakeFiles/upbound_analyzer.dir/analyzer/conn_table.cpp.o.d"
  "/root/repo/src/analyzer/connection.cpp" "src/CMakeFiles/upbound_analyzer.dir/analyzer/connection.cpp.o" "gcc" "src/CMakeFiles/upbound_analyzer.dir/analyzer/connection.cpp.o.d"
  "/root/repo/src/analyzer/host_stats.cpp" "src/CMakeFiles/upbound_analyzer.dir/analyzer/host_stats.cpp.o" "gcc" "src/CMakeFiles/upbound_analyzer.dir/analyzer/host_stats.cpp.o.d"
  "/root/repo/src/analyzer/netflow.cpp" "src/CMakeFiles/upbound_analyzer.dir/analyzer/netflow.cpp.o" "gcc" "src/CMakeFiles/upbound_analyzer.dir/analyzer/netflow.cpp.o.d"
  "/root/repo/src/analyzer/out_in_delay.cpp" "src/CMakeFiles/upbound_analyzer.dir/analyzer/out_in_delay.cpp.o" "gcc" "src/CMakeFiles/upbound_analyzer.dir/analyzer/out_in_delay.cpp.o.d"
  "/root/repo/src/analyzer/patterns.cpp" "src/CMakeFiles/upbound_analyzer.dir/analyzer/patterns.cpp.o" "gcc" "src/CMakeFiles/upbound_analyzer.dir/analyzer/patterns.cpp.o.d"
  "/root/repo/src/analyzer/stats.cpp" "src/CMakeFiles/upbound_analyzer.dir/analyzer/stats.cpp.o" "gcc" "src/CMakeFiles/upbound_analyzer.dir/analyzer/stats.cpp.o.d"
  "/root/repo/src/analyzer/stream_buf.cpp" "src/CMakeFiles/upbound_analyzer.dir/analyzer/stream_buf.cpp.o" "gcc" "src/CMakeFiles/upbound_analyzer.dir/analyzer/stream_buf.cpp.o.d"
  "/root/repo/src/analyzer/transport_heuristics.cpp" "src/CMakeFiles/upbound_analyzer.dir/analyzer/transport_heuristics.cpp.o" "gcc" "src/CMakeFiles/upbound_analyzer.dir/analyzer/transport_heuristics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/upbound_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_rex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
