file(REMOVE_RECURSE
  "CMakeFiles/upbound_analyzer.dir/analyzer/analyzer.cpp.o"
  "CMakeFiles/upbound_analyzer.dir/analyzer/analyzer.cpp.o.d"
  "CMakeFiles/upbound_analyzer.dir/analyzer/classifier.cpp.o"
  "CMakeFiles/upbound_analyzer.dir/analyzer/classifier.cpp.o.d"
  "CMakeFiles/upbound_analyzer.dir/analyzer/conn_table.cpp.o"
  "CMakeFiles/upbound_analyzer.dir/analyzer/conn_table.cpp.o.d"
  "CMakeFiles/upbound_analyzer.dir/analyzer/connection.cpp.o"
  "CMakeFiles/upbound_analyzer.dir/analyzer/connection.cpp.o.d"
  "CMakeFiles/upbound_analyzer.dir/analyzer/host_stats.cpp.o"
  "CMakeFiles/upbound_analyzer.dir/analyzer/host_stats.cpp.o.d"
  "CMakeFiles/upbound_analyzer.dir/analyzer/netflow.cpp.o"
  "CMakeFiles/upbound_analyzer.dir/analyzer/netflow.cpp.o.d"
  "CMakeFiles/upbound_analyzer.dir/analyzer/out_in_delay.cpp.o"
  "CMakeFiles/upbound_analyzer.dir/analyzer/out_in_delay.cpp.o.d"
  "CMakeFiles/upbound_analyzer.dir/analyzer/patterns.cpp.o"
  "CMakeFiles/upbound_analyzer.dir/analyzer/patterns.cpp.o.d"
  "CMakeFiles/upbound_analyzer.dir/analyzer/stats.cpp.o"
  "CMakeFiles/upbound_analyzer.dir/analyzer/stats.cpp.o.d"
  "CMakeFiles/upbound_analyzer.dir/analyzer/stream_buf.cpp.o"
  "CMakeFiles/upbound_analyzer.dir/analyzer/stream_buf.cpp.o.d"
  "CMakeFiles/upbound_analyzer.dir/analyzer/transport_heuristics.cpp.o"
  "CMakeFiles/upbound_analyzer.dir/analyzer/transport_heuristics.cpp.o.d"
  "libupbound_analyzer.a"
  "libupbound_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upbound_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
