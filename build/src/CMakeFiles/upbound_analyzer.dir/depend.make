# Empty dependencies file for upbound_analyzer.
# This may be replaced when dependencies are built.
