file(REMOVE_RECURSE
  "libupbound_sim.a"
)
