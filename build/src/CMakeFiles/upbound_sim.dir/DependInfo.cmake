
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/closed_loop.cpp" "src/CMakeFiles/upbound_sim.dir/sim/closed_loop.cpp.o" "gcc" "src/CMakeFiles/upbound_sim.dir/sim/closed_loop.cpp.o.d"
  "/root/repo/src/sim/edge_router.cpp" "src/CMakeFiles/upbound_sim.dir/sim/edge_router.cpp.o" "gcc" "src/CMakeFiles/upbound_sim.dir/sim/edge_router.cpp.o.d"
  "/root/repo/src/sim/filter_bank.cpp" "src/CMakeFiles/upbound_sim.dir/sim/filter_bank.cpp.o" "gcc" "src/CMakeFiles/upbound_sim.dir/sim/filter_bank.cpp.o.d"
  "/root/repo/src/sim/replay.cpp" "src/CMakeFiles/upbound_sim.dir/sim/replay.cpp.o" "gcc" "src/CMakeFiles/upbound_sim.dir/sim/replay.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/CMakeFiles/upbound_sim.dir/sim/report.cpp.o" "gcc" "src/CMakeFiles/upbound_sim.dir/sim/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/upbound_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_rex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
