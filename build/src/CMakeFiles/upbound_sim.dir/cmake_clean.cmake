file(REMOVE_RECURSE
  "CMakeFiles/upbound_sim.dir/sim/closed_loop.cpp.o"
  "CMakeFiles/upbound_sim.dir/sim/closed_loop.cpp.o.d"
  "CMakeFiles/upbound_sim.dir/sim/edge_router.cpp.o"
  "CMakeFiles/upbound_sim.dir/sim/edge_router.cpp.o.d"
  "CMakeFiles/upbound_sim.dir/sim/filter_bank.cpp.o"
  "CMakeFiles/upbound_sim.dir/sim/filter_bank.cpp.o.d"
  "CMakeFiles/upbound_sim.dir/sim/replay.cpp.o"
  "CMakeFiles/upbound_sim.dir/sim/replay.cpp.o.d"
  "CMakeFiles/upbound_sim.dir/sim/report.cpp.o"
  "CMakeFiles/upbound_sim.dir/sim/report.cpp.o.d"
  "libupbound_sim.a"
  "libupbound_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upbound_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
