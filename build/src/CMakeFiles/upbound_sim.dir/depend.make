# Empty dependencies file for upbound_sim.
# This may be replaced when dependencies are built.
