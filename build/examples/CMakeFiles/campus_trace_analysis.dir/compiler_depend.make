# Empty compiler generated dependencies file for campus_trace_analysis.
# This may be replaced when dependencies are built.
