file(REMOVE_RECURSE
  "CMakeFiles/campus_trace_analysis.dir/campus_trace_analysis.cpp.o"
  "CMakeFiles/campus_trace_analysis.dir/campus_trace_analysis.cpp.o.d"
  "campus_trace_analysis"
  "campus_trace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
