file(REMOVE_RECURSE
  "CMakeFiles/upbound_tool.dir/upbound.cpp.o"
  "CMakeFiles/upbound_tool.dir/upbound.cpp.o.d"
  "upbound"
  "upbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upbound_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
