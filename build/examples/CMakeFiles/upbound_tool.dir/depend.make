# Empty dependencies file for upbound_tool.
# This may be replaced when dependencies are built.
