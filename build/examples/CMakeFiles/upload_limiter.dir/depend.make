# Empty dependencies file for upload_limiter.
# This may be replaced when dependencies are built.
