file(REMOVE_RECURSE
  "CMakeFiles/upload_limiter.dir/upload_limiter.cpp.o"
  "CMakeFiles/upload_limiter.dir/upload_limiter.cpp.o.d"
  "upload_limiter"
  "upload_limiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upload_limiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
