# Empty compiler generated dependencies file for pcap_pipeline.
# This may be replaced when dependencies are built.
