file(REMOVE_RECURSE
  "CMakeFiles/pcap_pipeline.dir/pcap_pipeline.cpp.o"
  "CMakeFiles/pcap_pipeline.dir/pcap_pipeline.cpp.o.d"
  "pcap_pipeline"
  "pcap_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
