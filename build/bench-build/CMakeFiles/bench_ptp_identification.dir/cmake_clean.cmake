file(REMOVE_RECURSE
  "../bench/bench_ptp_identification"
  "../bench/bench_ptp_identification.pdb"
  "CMakeFiles/bench_ptp_identification.dir/bench_ptp_identification.cpp.o"
  "CMakeFiles/bench_ptp_identification.dir/bench_ptp_identification.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ptp_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
