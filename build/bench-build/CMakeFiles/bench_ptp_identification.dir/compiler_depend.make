# Empty compiler generated dependencies file for bench_ptp_identification.
# This may be replaced when dependencies are built.
