file(REMOVE_RECURSE
  "../bench/bench_table2_protocol_mix"
  "../bench/bench_table2_protocol_mix.pdb"
  "CMakeFiles/bench_table2_protocol_mix.dir/bench_table2_protocol_mix.cpp.o"
  "CMakeFiles/bench_table2_protocol_mix.dir/bench_table2_protocol_mix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_protocol_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
