# Empty dependencies file for bench_table2_protocol_mix.
# This may be replaced when dependencies are built.
