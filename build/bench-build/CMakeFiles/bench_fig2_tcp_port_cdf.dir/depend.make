# Empty dependencies file for bench_fig2_tcp_port_cdf.
# This may be replaced when dependencies are built.
