file(REMOVE_RECURSE
  "../bench/bench_fig5_out_in_delay"
  "../bench/bench_fig5_out_in_delay.pdb"
  "CMakeFiles/bench_fig5_out_in_delay.dir/bench_fig5_out_in_delay.cpp.o"
  "CMakeFiles/bench_fig5_out_in_delay.dir/bench_fig5_out_in_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_out_in_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
