file(REMOVE_RECURSE
  "../bench/bench_fig4_lifetime"
  "../bench/bench_fig4_lifetime.pdb"
  "CMakeFiles/bench_fig4_lifetime.dir/bench_fig4_lifetime.cpp.o"
  "CMakeFiles/bench_fig4_lifetime.dir/bench_fig4_lifetime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
