file(REMOVE_RECURSE
  "../bench/bench_sec52_performance"
  "../bench/bench_sec52_performance.pdb"
  "CMakeFiles/bench_sec52_performance.dir/bench_sec52_performance.cpp.o"
  "CMakeFiles/bench_sec52_performance.dir/bench_sec52_performance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
