file(REMOVE_RECURSE
  "../bench/bench_sec51_false_positive"
  "../bench/bench_sec51_false_positive.pdb"
  "CMakeFiles/bench_sec51_false_positive.dir/bench_sec51_false_positive.cpp.o"
  "CMakeFiles/bench_sec51_false_positive.dir/bench_sec51_false_positive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_false_positive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
