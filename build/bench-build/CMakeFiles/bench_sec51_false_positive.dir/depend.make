# Empty dependencies file for bench_sec51_false_positive.
# This may be replaced when dependencies are built.
