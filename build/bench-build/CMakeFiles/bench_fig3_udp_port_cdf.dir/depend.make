# Empty dependencies file for bench_fig3_udp_port_cdf.
# This may be replaced when dependencies are built.
