# Empty dependencies file for bench_harmlessness.
# This may be replaced when dependencies are built.
