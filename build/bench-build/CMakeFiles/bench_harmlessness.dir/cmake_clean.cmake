file(REMOVE_RECURSE
  "../bench/bench_harmlessness"
  "../bench/bench_harmlessness.pdb"
  "CMakeFiles/bench_harmlessness.dir/bench_harmlessness.cpp.o"
  "CMakeFiles/bench_harmlessness.dir/bench_harmlessness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_harmlessness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
