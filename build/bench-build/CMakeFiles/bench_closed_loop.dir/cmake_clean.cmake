file(REMOVE_RECURSE
  "../bench/bench_closed_loop"
  "../bench/bench_closed_loop.pdb"
  "CMakeFiles/bench_closed_loop.dir/bench_closed_loop.cpp.o"
  "CMakeFiles/bench_closed_loop.dir/bench_closed_loop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_closed_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
