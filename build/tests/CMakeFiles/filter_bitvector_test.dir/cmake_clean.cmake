file(REMOVE_RECURSE
  "CMakeFiles/filter_bitvector_test.dir/filter_bitvector_test.cpp.o"
  "CMakeFiles/filter_bitvector_test.dir/filter_bitvector_test.cpp.o.d"
  "filter_bitvector_test"
  "filter_bitvector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_bitvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
