# Empty compiler generated dependencies file for filter_bitvector_test.
# This may be replaced when dependencies are built.
