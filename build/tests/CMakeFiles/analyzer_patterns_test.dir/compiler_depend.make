# Empty compiler generated dependencies file for analyzer_patterns_test.
# This may be replaced when dependencies are built.
