file(REMOVE_RECURSE
  "CMakeFiles/analyzer_patterns_test.dir/analyzer_patterns_test.cpp.o"
  "CMakeFiles/analyzer_patterns_test.dir/analyzer_patterns_test.cpp.o.d"
  "analyzer_patterns_test"
  "analyzer_patterns_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_patterns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
