file(REMOVE_RECURSE
  "CMakeFiles/integration_pcap_pipeline_test.dir/integration_pcap_pipeline_test.cpp.o"
  "CMakeFiles/integration_pcap_pipeline_test.dir/integration_pcap_pipeline_test.cpp.o.d"
  "integration_pcap_pipeline_test"
  "integration_pcap_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_pcap_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
