file(REMOVE_RECURSE
  "CMakeFiles/trace_payloads_test.dir/trace_payloads_test.cpp.o"
  "CMakeFiles/trace_payloads_test.dir/trace_payloads_test.cpp.o.d"
  "trace_payloads_test"
  "trace_payloads_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_payloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
