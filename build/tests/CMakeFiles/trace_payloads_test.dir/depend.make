# Empty dependencies file for trace_payloads_test.
# This may be replaced when dependencies are built.
