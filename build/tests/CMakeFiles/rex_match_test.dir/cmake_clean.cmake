file(REMOVE_RECURSE
  "CMakeFiles/rex_match_test.dir/rex_match_test.cpp.o"
  "CMakeFiles/rex_match_test.dir/rex_match_test.cpp.o.d"
  "rex_match_test"
  "rex_match_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rex_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
