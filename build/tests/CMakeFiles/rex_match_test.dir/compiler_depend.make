# Empty compiler generated dependencies file for rex_match_test.
# This may be replaced when dependencies are built.
