# Empty compiler generated dependencies file for filter_bitmap_test.
# This may be replaced when dependencies are built.
