# Empty compiler generated dependencies file for filter_concurrent_bitmap_test.
# This may be replaced when dependencies are built.
