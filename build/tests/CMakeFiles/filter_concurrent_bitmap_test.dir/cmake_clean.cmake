file(REMOVE_RECURSE
  "CMakeFiles/filter_concurrent_bitmap_test.dir/filter_concurrent_bitmap_test.cpp.o"
  "CMakeFiles/filter_concurrent_bitmap_test.dir/filter_concurrent_bitmap_test.cpp.o.d"
  "filter_concurrent_bitmap_test"
  "filter_concurrent_bitmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_concurrent_bitmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
