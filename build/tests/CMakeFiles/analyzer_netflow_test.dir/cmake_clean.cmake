file(REMOVE_RECURSE
  "CMakeFiles/analyzer_netflow_test.dir/analyzer_netflow_test.cpp.o"
  "CMakeFiles/analyzer_netflow_test.dir/analyzer_netflow_test.cpp.o.d"
  "analyzer_netflow_test"
  "analyzer_netflow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_netflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
