# Empty dependencies file for net_direction_test.
# This may be replaced when dependencies are built.
