file(REMOVE_RECURSE
  "CMakeFiles/net_direction_test.dir/net_direction_test.cpp.o"
  "CMakeFiles/net_direction_test.dir/net_direction_test.cpp.o.d"
  "net_direction_test"
  "net_direction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_direction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
