file(REMOVE_RECURSE
  "CMakeFiles/net_pcap_test.dir/net_pcap_test.cpp.o"
  "CMakeFiles/net_pcap_test.dir/net_pcap_test.cpp.o.d"
  "net_pcap_test"
  "net_pcap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_pcap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
