file(REMOVE_RECURSE
  "CMakeFiles/filter_params_test.dir/filter_params_test.cpp.o"
  "CMakeFiles/filter_params_test.dir/filter_params_test.cpp.o.d"
  "filter_params_test"
  "filter_params_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
