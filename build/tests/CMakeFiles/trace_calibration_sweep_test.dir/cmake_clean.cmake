file(REMOVE_RECURSE
  "CMakeFiles/trace_calibration_sweep_test.dir/trace_calibration_sweep_test.cpp.o"
  "CMakeFiles/trace_calibration_sweep_test.dir/trace_calibration_sweep_test.cpp.o.d"
  "trace_calibration_sweep_test"
  "trace_calibration_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_calibration_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
