# Empty dependencies file for trace_calibration_sweep_test.
# This may be replaced when dependencies are built.
