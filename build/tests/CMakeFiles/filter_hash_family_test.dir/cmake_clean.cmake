file(REMOVE_RECURSE
  "CMakeFiles/filter_hash_family_test.dir/filter_hash_family_test.cpp.o"
  "CMakeFiles/filter_hash_family_test.dir/filter_hash_family_test.cpp.o.d"
  "filter_hash_family_test"
  "filter_hash_family_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_hash_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
