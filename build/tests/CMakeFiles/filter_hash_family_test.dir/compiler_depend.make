# Empty compiler generated dependencies file for filter_hash_family_test.
# This may be replaced when dependencies are built.
