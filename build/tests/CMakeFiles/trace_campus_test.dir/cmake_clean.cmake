file(REMOVE_RECURSE
  "CMakeFiles/trace_campus_test.dir/trace_campus_test.cpp.o"
  "CMakeFiles/trace_campus_test.dir/trace_campus_test.cpp.o.d"
  "trace_campus_test"
  "trace_campus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_campus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
