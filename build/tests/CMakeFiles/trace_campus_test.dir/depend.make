# Empty dependencies file for trace_campus_test.
# This may be replaced when dependencies are built.
