file(REMOVE_RECURSE
  "CMakeFiles/trace_packetizer_test.dir/trace_packetizer_test.cpp.o"
  "CMakeFiles/trace_packetizer_test.dir/trace_packetizer_test.cpp.o.d"
  "trace_packetizer_test"
  "trace_packetizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_packetizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
