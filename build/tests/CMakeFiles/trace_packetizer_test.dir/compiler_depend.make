# Empty compiler generated dependencies file for trace_packetizer_test.
# This may be replaced when dependencies are built.
