file(REMOVE_RECURSE
  "CMakeFiles/analyzer_classifier_test.dir/analyzer_classifier_test.cpp.o"
  "CMakeFiles/analyzer_classifier_test.dir/analyzer_classifier_test.cpp.o.d"
  "analyzer_classifier_test"
  "analyzer_classifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
