# Empty compiler generated dependencies file for analyzer_classifier_test.
# This may be replaced when dependencies are built.
