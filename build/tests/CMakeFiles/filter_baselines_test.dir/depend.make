# Empty dependencies file for filter_baselines_test.
# This may be replaced when dependencies are built.
