file(REMOVE_RECURSE
  "CMakeFiles/filter_baselines_test.dir/filter_baselines_test.cpp.o"
  "CMakeFiles/filter_baselines_test.dir/filter_baselines_test.cpp.o.d"
  "filter_baselines_test"
  "filter_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
