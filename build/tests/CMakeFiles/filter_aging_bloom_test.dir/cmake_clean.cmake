file(REMOVE_RECURSE
  "CMakeFiles/filter_aging_bloom_test.dir/filter_aging_bloom_test.cpp.o"
  "CMakeFiles/filter_aging_bloom_test.dir/filter_aging_bloom_test.cpp.o.d"
  "filter_aging_bloom_test"
  "filter_aging_bloom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_aging_bloom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
