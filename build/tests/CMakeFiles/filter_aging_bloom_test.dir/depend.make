# Empty dependencies file for filter_aging_bloom_test.
# This may be replaced when dependencies are built.
