file(REMOVE_RECURSE
  "CMakeFiles/sim_edge_router_test.dir/sim_edge_router_test.cpp.o"
  "CMakeFiles/sim_edge_router_test.dir/sim_edge_router_test.cpp.o.d"
  "sim_edge_router_test"
  "sim_edge_router_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_edge_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
