file(REMOVE_RECURSE
  "CMakeFiles/analyzer_conn_table_test.dir/analyzer_conn_table_test.cpp.o"
  "CMakeFiles/analyzer_conn_table_test.dir/analyzer_conn_table_test.cpp.o.d"
  "analyzer_conn_table_test"
  "analyzer_conn_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_conn_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
