# Empty compiler generated dependencies file for analyzer_conn_table_test.
# This may be replaced when dependencies are built.
