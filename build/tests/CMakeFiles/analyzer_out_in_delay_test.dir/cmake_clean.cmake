file(REMOVE_RECURSE
  "CMakeFiles/analyzer_out_in_delay_test.dir/analyzer_out_in_delay_test.cpp.o"
  "CMakeFiles/analyzer_out_in_delay_test.dir/analyzer_out_in_delay_test.cpp.o.d"
  "analyzer_out_in_delay_test"
  "analyzer_out_in_delay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_out_in_delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
