# Empty dependencies file for analyzer_out_in_delay_test.
# This may be replaced when dependencies are built.
