file(REMOVE_RECURSE
  "CMakeFiles/sim_filter_matrix_test.dir/sim_filter_matrix_test.cpp.o"
  "CMakeFiles/sim_filter_matrix_test.dir/sim_filter_matrix_test.cpp.o.d"
  "sim_filter_matrix_test"
  "sim_filter_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_filter_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
