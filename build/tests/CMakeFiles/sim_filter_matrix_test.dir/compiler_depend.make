# Empty compiler generated dependencies file for sim_filter_matrix_test.
# This may be replaced when dependencies are built.
