# Empty compiler generated dependencies file for sim_filter_bank_test.
# This may be replaced when dependencies are built.
