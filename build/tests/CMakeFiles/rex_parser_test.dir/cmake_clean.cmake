file(REMOVE_RECURSE
  "CMakeFiles/rex_parser_test.dir/rex_parser_test.cpp.o"
  "CMakeFiles/rex_parser_test.dir/rex_parser_test.cpp.o.d"
  "rex_parser_test"
  "rex_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rex_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
