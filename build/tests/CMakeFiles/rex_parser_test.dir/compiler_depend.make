# Empty compiler generated dependencies file for rex_parser_test.
# This may be replaced when dependencies are built.
