file(REMOVE_RECURSE
  "CMakeFiles/filter_crossvalidation_test.dir/filter_crossvalidation_test.cpp.o"
  "CMakeFiles/filter_crossvalidation_test.dir/filter_crossvalidation_test.cpp.o.d"
  "filter_crossvalidation_test"
  "filter_crossvalidation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_crossvalidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
