# Empty compiler generated dependencies file for filter_crossvalidation_test.
# This may be replaced when dependencies are built.
