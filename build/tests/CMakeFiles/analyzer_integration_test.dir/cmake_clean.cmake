file(REMOVE_RECURSE
  "CMakeFiles/analyzer_integration_test.dir/analyzer_integration_test.cpp.o"
  "CMakeFiles/analyzer_integration_test.dir/analyzer_integration_test.cpp.o.d"
  "analyzer_integration_test"
  "analyzer_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
