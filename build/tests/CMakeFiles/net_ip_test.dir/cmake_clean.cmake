file(REMOVE_RECURSE
  "CMakeFiles/net_ip_test.dir/net_ip_test.cpp.o"
  "CMakeFiles/net_ip_test.dir/net_ip_test.cpp.o.d"
  "net_ip_test"
  "net_ip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_ip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
