file(REMOVE_RECURSE
  "CMakeFiles/util_byte_io_test.dir/util_byte_io_test.cpp.o"
  "CMakeFiles/util_byte_io_test.dir/util_byte_io_test.cpp.o.d"
  "util_byte_io_test"
  "util_byte_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_byte_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
