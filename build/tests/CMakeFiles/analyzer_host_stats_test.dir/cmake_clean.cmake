file(REMOVE_RECURSE
  "CMakeFiles/analyzer_host_stats_test.dir/analyzer_host_stats_test.cpp.o"
  "CMakeFiles/analyzer_host_stats_test.dir/analyzer_host_stats_test.cpp.o.d"
  "analyzer_host_stats_test"
  "analyzer_host_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_host_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
