# Empty dependencies file for analyzer_host_stats_test.
# This may be replaced when dependencies are built.
