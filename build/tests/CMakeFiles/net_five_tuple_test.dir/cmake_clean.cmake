file(REMOVE_RECURSE
  "CMakeFiles/net_five_tuple_test.dir/net_five_tuple_test.cpp.o"
  "CMakeFiles/net_five_tuple_test.dir/net_five_tuple_test.cpp.o.d"
  "net_five_tuple_test"
  "net_five_tuple_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_five_tuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
