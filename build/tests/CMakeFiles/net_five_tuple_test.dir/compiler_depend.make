# Empty compiler generated dependencies file for net_five_tuple_test.
# This may be replaced when dependencies are built.
