# Empty dependencies file for sim_closed_loop_test.
# This may be replaced when dependencies are built.
