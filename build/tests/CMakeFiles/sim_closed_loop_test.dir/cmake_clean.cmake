file(REMOVE_RECURSE
  "CMakeFiles/sim_closed_loop_test.dir/sim_closed_loop_test.cpp.o"
  "CMakeFiles/sim_closed_loop_test.dir/sim_closed_loop_test.cpp.o.d"
  "sim_closed_loop_test"
  "sim_closed_loop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_closed_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
