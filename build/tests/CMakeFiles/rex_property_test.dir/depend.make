# Empty dependencies file for rex_property_test.
# This may be replaced when dependencies are built.
