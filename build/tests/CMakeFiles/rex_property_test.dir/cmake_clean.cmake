file(REMOVE_RECURSE
  "CMakeFiles/rex_property_test.dir/rex_property_test.cpp.o"
  "CMakeFiles/rex_property_test.dir/rex_property_test.cpp.o.d"
  "rex_property_test"
  "rex_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rex_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
