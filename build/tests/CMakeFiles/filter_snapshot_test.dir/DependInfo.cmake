
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/filter_snapshot_test.cpp" "tests/CMakeFiles/filter_snapshot_test.dir/filter_snapshot_test.cpp.o" "gcc" "tests/CMakeFiles/filter_snapshot_test.dir/filter_snapshot_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/upbound_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_rex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/upbound_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
