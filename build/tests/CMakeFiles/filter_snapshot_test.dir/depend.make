# Empty dependencies file for filter_snapshot_test.
# This may be replaced when dependencies are built.
