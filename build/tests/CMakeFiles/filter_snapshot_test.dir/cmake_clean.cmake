file(REMOVE_RECURSE
  "CMakeFiles/filter_snapshot_test.dir/filter_snapshot_test.cpp.o"
  "CMakeFiles/filter_snapshot_test.dir/filter_snapshot_test.cpp.o.d"
  "filter_snapshot_test"
  "filter_snapshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
