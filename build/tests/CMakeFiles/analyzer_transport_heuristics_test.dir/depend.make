# Empty dependencies file for analyzer_transport_heuristics_test.
# This may be replaced when dependencies are built.
