file(REMOVE_RECURSE
  "CMakeFiles/analyzer_transport_heuristics_test.dir/analyzer_transport_heuristics_test.cpp.o"
  "CMakeFiles/analyzer_transport_heuristics_test.dir/analyzer_transport_heuristics_test.cpp.o.d"
  "analyzer_transport_heuristics_test"
  "analyzer_transport_heuristics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_transport_heuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
