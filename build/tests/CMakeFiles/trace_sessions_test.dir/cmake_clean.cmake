file(REMOVE_RECURSE
  "CMakeFiles/trace_sessions_test.dir/trace_sessions_test.cpp.o"
  "CMakeFiles/trace_sessions_test.dir/trace_sessions_test.cpp.o.d"
  "trace_sessions_test"
  "trace_sessions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_sessions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
