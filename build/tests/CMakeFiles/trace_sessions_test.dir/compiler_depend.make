# Empty compiler generated dependencies file for trace_sessions_test.
# This may be replaced when dependencies are built.
