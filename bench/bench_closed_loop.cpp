// Extension: testing the paper's closing conjecture. Section 5.3 notes
// that trace replay "is unable to block the outbound connections that may
// [be] triggered by previously blocked inbound requests" and that the
// filter "can perform better in a real network environment". This bench
// runs the SAME workload both ways:
//
//   replay       frozen packets; blocked connections' packets are dropped
//                one by one at the filter (per-connection suppression rule)
//   closed loop  connections whose opening attempts are all dropped never
//                generate traffic at all; peers retry with backoff first
//
// and reports how much harder the live deployment bounds the uplink.
#include "bench_common.h"
#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "sim/closed_loop.h"
#include "sim/replay.h"
#include "sim/report.h"

using namespace upbound;

namespace {

std::unique_ptr<EdgeRouter> make_router(const ClientNetwork& network,
                                        double low, double high,
                                        bool paper_replay_semantics) {
  EdgeRouterConfig config;
  config.network = network;
  config.track_blocked_connections = true;
  // The paper's replay cannot remove the upload that blocked requests
  // already triggered -- the frozen trace keeps playing it.
  config.suppress_blocked_outbound = !paper_replay_semantics;
  return std::make_unique<EdgeRouter>(
      config, make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
      std::make_unique<RedDropPolicy>(low, high));
}

}  // namespace

int main() {
  const double kLow = 2e6;
  const double kHigh = 4e6;

  bench::header("Extension -- replay vs closed-loop (live) deployment",
                "Section 5.3: 'the filter can perform better in a real "
                "network environment'");

  const CampusTraceConfig trace_config = bench::eval_trace_config(40.0);
  std::printf("thresholds L = %s, H = %s\n\n",
              format_bits_per_sec(kLow).c_str(),
              format_bits_per_sec(kHigh).c_str());

  // Replay mode, with the paper's semantics (blocked connections' upload
  // keeps flowing because the trace is frozen).
  const GeneratedTrace trace = generate_campus_trace(trace_config);
  auto replay_router =
      make_router(trace.network, kLow, kHigh, /*paper_replay=*/true);
  const ReplayResult replay =
      replay_trace(trace.packets, *replay_router, trace.network);

  // Closed-loop mode on the identical workload.
  const CampusWorkload workload = generate_campus_workload(trace_config);
  auto loop_router =
      make_router(workload.network, kLow, kHigh, /*paper_replay=*/false);
  ClosedLoopConfig loop_config;
  loop_config.packetizer = trace_config.packetizer;
  const ClosedLoopResult loop =
      run_closed_loop(workload, *loop_router, loop_config);

  const double span = trace.span().to_sec();
  const auto mbps = [span](double bytes) { return bytes * 8.0 / span / 1e6; };

  std::printf("%s\n",
      report::table(
          {{"", "offered up", "carried up", "carried down"},
           {"replay",
            report::num(mbps(replay.offered_outbound.total())) + " Mbps",
            report::num(mbps(replay.passed_outbound.total())) + " Mbps",
            report::num(mbps(replay.passed_inbound.total())) + " Mbps"},
           {"closed loop", "(reactive)",
            report::num(mbps(loop.carried_outbound.total())) + " Mbps",
            report::num(mbps(loop.carried_inbound.total())) + " Mbps"}})
          .c_str());

  bench::row("carried uplink, closed loop vs replay", "lower (better)",
             report::num(mbps(loop.carried_outbound.total())) + " vs " +
                 report::num(mbps(replay.passed_outbound.total())) +
                 " Mbps");
  bench::row("connections never established (live)", "-",
             std::to_string(loop.connections_suppressed) + " of " +
                 std::to_string(workload.connections.size()));
  bench::row("upload never generated (live)", "-",
             format_bits_per_sec(
                 static_cast<double>(loop.upload_bytes_never_generated) *
                 8.0 / span));
  bench::row("retry attempts by blocked peers", "-",
             std::to_string(loop.retries_attempted));

  const double replay_up = mbps(replay.passed_outbound.total());
  const double loop_up = mbps(loop.carried_outbound.total());
  bench::row("live improvement over replay",
             "positive (the paper's conjecture)",
             report::percent(replay_up <= 0.0
                                 ? 0.0
                                 : (replay_up - loop_up) / replay_up) +
                 " less uplink carried");
  return 0;
}
