// Extension: collateral-damage analysis. The filter exists to bound P2P
// upload; a deployment question the paper leaves implicit is what it does
// to networks and applications that are NOT misbehaving. Two experiments:
//
//   1. Same RED-bitmap configuration on the P2P-heavy campus mix vs an
//      enterprise mix with almost no P2P: the enterprise network should
//      sail through nearly untouched (its uplink never crosses L).
//
//   2. Per-application drop attribution on the campus mix: the bytes the
//      filter removes should come overwhelmingly from P2P + encrypted
//      classes, not from HTTP/DNS/FTP (which are client-initiated and
//      therefore always have state).
#include <map>

#include "bench_common.h"
#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "sim/replay.h"
#include "sim/report.h"

using namespace upbound;

namespace {

struct AppDamage {
  std::uint64_t offered = 0;
  std::uint64_t dropped = 0;
};

std::map<AppProtocol, AppDamage> replay_with_attribution(
    const GeneratedTrace& trace, double low, double high) {
  EdgeRouterConfig config;
  config.network = trace.network;
  config.track_blocked_connections = true;
  EdgeRouter router{config, make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
                    std::make_unique<RedDropPolicy>(low, high)};
  std::map<AppProtocol, AppDamage> damage;
  for (const PacketRecord& pkt : trace.packets) {
    const AppProtocol app = trace.truth.at(pkt.tuple.canonical());
    AppDamage& entry = damage[app];
    entry.offered += pkt.wire_size();
    const RouterDecision decision = router.process(pkt);
    if (decision == RouterDecision::kDroppedByPolicy ||
        decision == RouterDecision::kDroppedBlocked) {
      entry.dropped += pkt.wire_size();
    }
  }
  return damage;
}

}  // namespace

int main() {
  bench::header("Extension -- collateral damage of the upload limiter",
                "drops should concentrate on P2P classes; a P2P-free "
                "network should be untouched");

  const double kLow = 3e6;
  const double kHigh = 6e6;

  // Experiment 1: enterprise network, same thresholds.
  CampusTraceConfig enterprise_config = bench::eval_trace_config(30.0);
  enterprise_config.mix = enterprise_mix();
  enterprise_config.bandwidth_bps = 5e6;  // comfortably under L on uplink
  const GeneratedTrace enterprise =
      generate_campus_trace(enterprise_config);
  const auto enterprise_damage =
      replay_with_attribution(enterprise, kLow, kHigh);
  std::uint64_t ent_offered = 0, ent_dropped = 0;
  for (const auto& [app, d] : enterprise_damage) {
    ent_offered += d.offered;
    ent_dropped += d.dropped;
  }
  std::printf("-- enterprise mix (almost no P2P), L=%s H=%s --\n",
              format_bits_per_sec(kLow).c_str(),
              format_bits_per_sec(kHigh).c_str());
  bench::row("bytes dropped", "~0 (uplink never crosses L)",
             report::percent(static_cast<double>(ent_dropped) /
                                 static_cast<double>(ent_offered),
                             3));

  // Experiment 2: campus mix, per-application attribution.
  const GeneratedTrace campus =
      generate_campus_trace(bench::eval_trace_config(30.0));
  const auto campus_damage = replay_with_attribution(campus, kLow, kHigh);

  std::printf("\n-- campus mix: who loses the bytes? --\n");
  std::vector<std::vector<std::string>> rows{
      {"class", "offered bytes", "dropped", "share of class"}};
  std::uint64_t p2p_dropped = 0, total_dropped = 0;
  for (const auto& [app, d] : campus_damage) {
    total_dropped += d.dropped;
    if (is_p2p(app) || app == AppProtocol::kUnknown) p2p_dropped += d.dropped;
    rows.push_back({app_protocol_name(app), std::to_string(d.offered),
                    std::to_string(d.dropped),
                    report::percent(d.offered == 0
                                        ? 0.0
                                        : static_cast<double>(d.dropped) /
                                              static_cast<double>(d.offered),
                                    1)});
  }
  std::printf("%s\n", report::table(rows).c_str());
  bench::row("share of dropped bytes that are P2P/encrypted", "~all",
             report::percent(total_dropped == 0
                                 ? 0.0
                                 : static_cast<double>(p2p_dropped) /
                                       static_cast<double>(total_dropped)));
  std::printf(
      "\n(client-initiated services always carry outbound-created state,\n"
      " so the positive-listing design spares them structurally -- the\n"
      " residual damage is P2P download sharing inbound connections)\n");
  return 0;
}
