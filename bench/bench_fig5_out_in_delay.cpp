// Fig. 5 reproduction: the out-in packet delay measured with the paper's
// edge algorithm (expiry timer T_e = 600 s). Fig. 5-b/c: 99% of delays
// under 2.8 s. Fig. 5-a: raw delays show artifact peaks at multiples of
// 60 s caused by ephemeral-port reuse (TIME_WAIT quantization), visible
// only because the expiry timer is so large.
#include "analyzer/analyzer.h"
#include "analyzer/out_in_delay.h"
#include "bench_common.h"
#include "sim/report.h"
#include <algorithm>

#include "util/rng.h"

using namespace upbound;

namespace {

// Reproduces the Fig. 5-a artifact directly: with T_e = 600 s, a NEW
// connection reusing an old five-tuple pairs its first inbound packet
// against the PREVIOUS connection's stale outbound timestamp. Client
// stacks recycle ports in TIME_WAIT multiples of 60 s, hence the peaks.
// (The campus generator allocates ports at a density where exact tuple
// reuse inside 600 s is vanishingly rare, so the effect is synthesized
// at the density a 7.5-hour, 6.7M-connection capture exhibits.)
void port_reuse_peaks() {
  Rng rng{60};
  OutInDelayTracker tracker{Duration::sec(600.0)};
  const Ipv4Addr client{140, 112, 30, 77};

  for (int i = 0; i < 4000; ++i) {
    const FiveTuple t{Protocol::kTcp, client,
                      static_cast<std::uint16_t>(rng.next_range(32768, 61000)),
                      Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                      static_cast<std::uint16_t>(rng.next_range(1, 65535))};
    const double start = rng.next_double() * 100.0;

    PacketRecord out;
    out.tuple = t;
    out.timestamp = SimTime::from_sec(start);
    tracker.on_packet(out, Direction::kOutbound);
    PacketRecord in;
    in.tuple = t.inverse();
    in.timestamp = SimTime::from_sec(start + 0.05);
    tracker.on_packet(in, Direction::kInbound);

    // 15% of sockets are reused after a TIME_WAIT-quantized interval; the
    // reusing connection's first inbound packet hits the stale entry.
    if (rng.next_bool(0.15)) {
      const double reuse_gap =
          60.0 * static_cast<double>(rng.next_range(1, 5));
      PacketRecord stale_hit = in;
      stale_hit.timestamp =
          SimTime::from_sec(start + reuse_gap + rng.next_double() * 2.0);
      tracker.on_packet(stale_hit, Direction::kInbound);
    }
  }

  Histogram hist{0.0, 330.0, 33};
  for (const double d : tracker.delays().sorted()) hist.add(d);
  // Scale bars to the tallest artifact peak (bin 0 is the legitimate
  // sub-second mass and would dwarf everything).
  std::uint64_t peak = 1;
  for (std::size_t b = 1; b < hist.bin_count(); ++b) {
    peak = std::max(peak, hist.bin(b));
  }
  std::printf("  delay bin    samples\n");
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    if (hist.bin(b) == 0) continue;
    std::printf("  %3.0f-%3.0fs  %7llu %s\n", hist.bin_lo(b), hist.bin_hi(b),
                static_cast<unsigned long long>(hist.bin(b)),
                report::bar(static_cast<double>(hist.bin(b)),
                            static_cast<double>(peak), 24)
                    .c_str());
  }
  std::printf("  (peaks at 60 s multiples = port reuse, as in Fig. 5-a;\n"
              "   most TIME_WAIT implementations quantize to 60 s)\n");
}

}  // namespace

int main() {
  bench::header("Fig. 5 -- Out-in packet delay",
                "99% of out-in delays under 2.8 s (Te = 600 s); raw data "
                "shows port-reuse peaks at 60 s multiples");

  const GeneratedTrace trace =
      generate_campus_trace(bench::eval_trace_config());
  AnalyzerConfig analyzer_config;
  analyzer_config.network = trace.network;
  analyzer_config.out_in_expiry = Duration::sec(600.0);
  TrafficAnalyzer analyzer{analyzer_config};
  for (const PacketRecord& pkt : trace.packets) analyzer.process(pkt);
  const AnalyzerReport report = analyzer.finish();

  std::printf("delay samples: %zu\n\n", report.out_in_delays.count());
  bench::row("fraction under 2.8 s", "99%",
             report::percent(report.out_in_delays.fraction_below(2.8)));
  bench::row("median delay", "short (sub-second)",
             report::num(report.out_in_delays.percentile(50), 3) + " s");
  bench::row("P99 delay", "<= 2.8 s",
             report::num(report.out_in_delays.percentile(99), 3) + " s");

  std::printf("\ndelay CDF (paper Fig. 5-b):\n%s",
              report::cdf_curve(report.out_in_delays, "delay(s)", 14)
                  .c_str());

  std::printf("\nport-reuse artifacts (paper Fig. 5-a):\n");
  port_reuse_peaks();

  // The paper's implication for the filter: with T_e well above the P99
  // delay, false negatives (legitimate responses arriving after state
  // expiry) are rare. Quantify for the bitmap default T_e = 20 s.
  std::printf("\nfalse-negative implication for the bitmap filter:\n");
  bench::row("delays beyond Te = 20 s", "~0 (false negatives < 1%)",
             report::percent(1.0 -
                             report.out_in_delays.fraction_below(20.0)));
  bench::row("delays beyond 3.61 s", "1%",
             report::percent(1.0 -
                             report.out_in_delays.fraction_below(3.61)));
  return 0;
}
