// Ablations over the design choices DESIGN.md calls out, all on the same
// calibrated trace with P_d = 1 (drop every stateless inbound packet):
//
//   1. k and dt at fixed Te: granularity of the implicit timer.
//   2. Te itself: too short overkills slow responders (false negatives),
//      paper Section 4.3 recommends 20-30 s.
//   3. N and m: memory vs false positives (admitting packets that should
//      drop weakens the limiter).
//   4. Key mode: hole-punching support admits NAT-traversal connections.
//   5. Mark-all-vectors vs the hypothetical mark-current-only design:
//      marking only the current vector would shrink the effective timer to
//      a single rotation interval (modelled here by k=2 with dt=Te/k).
//   7. Registry-driven backend bakeoff: every registered filter backend on
//      the same trace -- bypass rate, collateral damage, memory, Mpps.
//      Emits machine-readable BAKEOFF lines consumed by
//      scripts/bench_report. `--smoke` runs only the bakeoff on a short
//      trace (the CI ASan job).
#include <algorithm>
#include <chrono>
#include <cstring>

#include "bench_common.h"
#include "filter/aging_bloom.h"
#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "filter/naive_filter.h"
#include "sim/replay.h"
#include "sim/report.h"

using namespace upbound;

namespace {

struct RunResult {
  double drop_rate;
  double inbound_pass_bytes;
  double wall_seconds;
};

RunResult run(const GeneratedTrace& trace,
              std::unique_ptr<StateFilter> filter) {
  EdgeRouterConfig config;
  config.network = trace.network;
  config.track_blocked_connections = false;
  EdgeRouter router{config, std::move(filter),
                    std::make_unique<ConstantDropPolicy>(1.0)};
  const auto start = std::chrono::steady_clock::now();
  const ReplayResult result =
      replay_trace(trace.packets, router, trace.network);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return {result.stats.inbound_drop_rate(),
          static_cast<double>(result.stats.inbound_passed_bytes),
          elapsed.count()};
}

/// Section 7: every registered backend at a common 2^16-slot geometry on
/// the same trace. Bypass = stateless traffic the exact reference drops
/// but the backend admits (false positives / leaks); collateral = traffic
/// the exact reference admits but the backend drops (false negatives /
/// overkill). The BAKEOFF lines feed scripts/bench_report.
void backend_bakeoff(const GeneratedTrace& trace, const RunResult& exact) {
  std::printf("-- registry bakeoff: every backend, %zu packets --\n",
              trace.packets.size());
  std::vector<std::vector<std::string>> rows{
      {"backend", "drop rate", "bypass", "collateral", "memory", "Mpps"}};
  for (const BackendDescriptor& backend :
       FilterRegistry::instance().descriptors()) {
    MapFilterArgs args;
    args.set("bits", "16");
    const FilterSpec spec = backend.parse(args);
    std::unique_ptr<StateFilter> filter = make_state_filter(spec);
    const std::size_t memory = filter->storage_bytes();
    const RunResult r = run(trace, std::move(filter));
    const double bypass = std::max(0.0, exact.drop_rate - r.drop_rate);
    const double collateral = std::max(0.0, r.drop_rate - exact.drop_rate);
    const double mpps = r.wall_seconds > 0.0
                            ? static_cast<double>(trace.packets.size()) /
                                  r.wall_seconds / 1e6
                            : 0.0;
    rows.push_back({backend.name, report::percent(r.drop_rate, 3),
                    report::percent(bypass, 3),
                    report::percent(collateral, 3),
                    std::to_string(memory / 1024) + " KB",
                    report::num(mpps, 2)});
    std::printf(
        "BAKEOFF backend=%s drop_rate=%.6f bypass=%.6f collateral=%.6f "
        "memory_bytes=%zu mpps=%.3f\n",
        backend.name.c_str(), r.drop_rate, bypass, collateral, memory,
        mpps);
  }
  std::printf("%s", report::table(rows).c_str());
  std::printf("(bypass and collateral are vs the exact-timer reference at "
              "%s;\n Mpps is single-thread replay throughput, wall clock)\n",
              report::percent(exact.drop_rate, 3).c_str());
}

BitmapFilterConfig bitmap_with(unsigned log2_bits, unsigned k,
                               double dt_sec, unsigned m,
                               KeyMode mode = KeyMode::kFullTuple) {
  BitmapFilterConfig config;
  config.log2_bits = log2_bits;
  config.vector_count = k;
  config.rotate_interval = Duration::sec(dt_sec);
  config.hash_count = m;
  config.key_mode = mode;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  bench::header("Ablations -- bitmap filter design choices",
                "Section 4.3 parameter discussion, quantified");

  const GeneratedTrace trace = generate_campus_trace(
      bench::eval_trace_config(/*duration_sec=*/smoke ? 10.0 : 40.0));

  // Reference: the exact-timer filter at Te = 20 s is ground truth.
  NaiveFilterConfig naive_config;
  naive_config.state_timeout = Duration::sec(20.0);
  const RunResult exact =
      run(trace, make_state_filter(naive_filter_spec(naive_config)));
  std::printf("reference (naive exact timers, Te = 20 s): %s drop rate\n\n",
              report::percent(exact.drop_rate, 3).c_str());

  if (smoke) {
    // CI ASan job: just the registry sweep on the short trace.
    backend_bakeoff(trace, exact);
    return 0;
  }

  std::printf("-- 1. k and dt at fixed Te = 20 s --\n");
  std::vector<std::vector<std::string>> rows{
      {"k", "dt", "drop rate", "delta vs exact"}};
  for (const auto& [k, dt] : std::vector<std::pair<unsigned, double>>{
           {2, 10.0}, {4, 5.0}, {10, 2.0}, {20, 1.0}}) {
    const RunResult r = run(trace, make_state_filter(bitmap_filter_spec(
                                       bitmap_with(20, k, dt, 3))));
    rows.push_back({std::to_string(k), report::num(dt, 0) + "s",
                    report::percent(r.drop_rate, 3),
                    report::percent(r.drop_rate - exact.drop_rate, 3)});
  }
  std::printf("%s", report::table(rows).c_str());
  std::printf("(finer rotation tracks the exact timer more closely; the\n"
              " paper picks dt = 4-5 s as the granularity/cost balance)\n\n");

  std::printf("-- 2. expiry timer Te (k = 4) --\n");
  rows = {{"Te", "drop rate", "overkill vs Te=20s"}};
  const RunResult te20 = run(trace, make_state_filter(bitmap_filter_spec(
                                        bitmap_with(20, 4, 5.0, 3))));
  for (const double te : {4.0, 8.0, 20.0, 40.0, 120.0}) {
    const RunResult r = run(trace, make_state_filter(bitmap_filter_spec(
                                       bitmap_with(20, 4, te / 4.0, 3))));
    rows.push_back({report::num(te, 0) + "s", report::percent(r.drop_rate, 3),
                    report::percent(r.drop_rate - te20.drop_rate, 3)});
  }
  std::printf("%s", report::table(rows).c_str());
  std::printf("(a too-short Te drops responses of idle-but-alive\n"
              " connections -- the overkill Section 4.3 warns about)\n\n");

  std::printf("-- 3. memory N and hash count m --\n");
  rows = {{"N", "m", "memory", "drop rate", "leak vs exact"}};
  for (const unsigned log2_bits : {10u, 12u, 16u, 20u}) {
    for (const unsigned m : {1u, 3u}) {
      const RunResult r = run(trace, make_state_filter(bitmap_filter_spec(
                                         bitmap_with(log2_bits, 4, 5.0, m))));
      rows.push_back(
          {"2^" + std::to_string(log2_bits), std::to_string(m),
           std::to_string((4u << log2_bits) / 8 / 1024) + " KB",
           report::percent(r.drop_rate, 3),
           report::percent(exact.drop_rate - r.drop_rate, 3)});
    }
  }
  std::printf("%s", report::table(rows).c_str());
  std::printf("(a starved bitmap lets stateless packets penetrate -- the\n"
              " drop rate falls below the exact filter's)\n\n");

  std::printf("-- 4. key mode: full tuple vs hole-punching --\n");
  const RunResult full = run(trace, make_state_filter(bitmap_filter_spec(
                                        bitmap_with(20, 4, 5.0, 3))));
  const RunResult hole = run(
      trace, make_state_filter(bitmap_filter_spec(
                 bitmap_with(20, 4, 5.0, 3, KeyMode::kHolePunching))));
  bench::row("full-tuple drop rate", "-", report::percent(full.drop_rate, 3));
  bench::row("hole-punching drop rate", "lower (admits NAT traversal)",
             report::percent(hole.drop_rate, 3));

  std::printf("\n-- 5. design space: rotating bitmap vs aging-Bloom at "
              "equal memory --\n");
  // A 4-bit epoch stamp with valid_epochs = k and epoch = dt is
  // DECISION-IDENTICAL to the {k x N} bitmap (same hash slots, same
  // (k-1)dt..k*dt freshness window) at the same 4 bits/slot -- verified
  // by the k=4 column matching the bitmap exactly. The aging design's
  // real lever is that the SAME 4 bits/slot support up to 13 epochs, so
  // at fixed memory and fixed Te it can rotate 2.5x finer (epoch = 2 s
  // instead of dt = 5 s) and hug the exact timer more closely.
  rows = {{"memory", "bitmap k=4 dt=5s", "aging k=4 e=5s (identical)",
           "aging k=10 e=2s (finer)"}};
  for (const unsigned log2_bits : {12u, 16u, 20u}) {
    const RunResult bitmap_result = run(
        trace, make_state_filter(bitmap_filter_spec(bitmap_with(log2_bits, 4, 5.0,
                                                          3))));
    AgingBloomConfig same;
    same.cells = std::size_t{1} << log2_bits;
    same.hash_count = 3;
    same.epoch = Duration::sec(5.0);
    same.valid_epochs = 4;
    const RunResult same_result =
        run(trace, make_state_filter(aging_filter_spec(same)));
    AgingBloomConfig finer = same;
    finer.epoch = Duration::sec(2.0);
    finer.valid_epochs = 10;  // Te = 20 s, 2 s granularity
    const RunResult finer_result =
        run(trace, make_state_filter(aging_filter_spec(finer)));
    rows.push_back({std::to_string((4u << log2_bits) / 8 / 1024) + " KB",
                    report::percent(bitmap_result.drop_rate, 3),
                    report::percent(same_result.drop_rate, 3),
                    report::percent(finer_result.drop_rate, 3)});
  }
  std::printf("%s", report::table(rows).c_str());
  std::printf("(the finer column sits between the k=4 bitmap and the exact\n"
              " reference of %s)\n\n",
              report::percent(exact.drop_rate, 3).c_str());

  std::printf("-- 6. effective timer if marks went to one vector only --\n");
  // Marking only the current vector is equivalent to state that survives
  // exactly one rotation: a {2 x N} bitmap with dt = Te/k models the
  // resulting 1/k-scale timer.
  const RunResult single = run(trace, make_state_filter(bitmap_filter_spec(
                                          bitmap_with(20, 2, 5.0, 3))));
  bench::row("mark-all {4 x 2^20}, Te = 20 s", "-",
             report::percent(full.drop_rate, 3));
  bench::row("single-vector-equivalent (Te = 10 s)", "overkills",
             report::percent(single.drop_rate, 3));

  std::printf("\n-- 7. backend bakeoff --\n");
  backend_bakeoff(trace, exact);
  return 0;
}
