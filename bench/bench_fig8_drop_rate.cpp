// Fig. 8 reproduction: packet drop rate of the SPI filter vs the bitmap
// filter, replaying the same trace through both with "drop all inbound
// packets without states" (P_d = 1). The paper reports per-interval drop
// rates hugging a slope-1 line, with averages 1.56% (SPI) vs 1.51%
// (bitmap) -- the SPI filter drops slightly MORE because it sees exact
// connection closes.
//
// Per the paper's Section 5.3, this first simulation does NOT persist
// blocked connections (that rule is introduced for the Fig. 9 experiment):
// a replayed outbound packet re-creates state, so only the leading inbound
// packets of unsolicited connections are dropped -- which is what keeps
// the paper's rates near 1.5%.
#include <cmath>

#include "bench_common.h"
#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "filter/spi_filter.h"
#include "sim/replay.h"
#include "sim/report.h"

using namespace upbound;

namespace {

// Per-interval drop rates (dropped / total packets, 5 s buckets).
std::vector<double> interval_drop_rates(const Trace& trace,
                                        EdgeRouter& router,
                                        Duration bucket) {
  TimeSeries dropped{bucket};
  TimeSeries total{bucket};
  for (const PacketRecord& pkt : trace) {
    const RouterDecision decision = router.process(pkt);
    if (decision == RouterDecision::kIgnored) continue;
    total.add(pkt.timestamp, 1.0);
    if (decision == RouterDecision::kDroppedByPolicy ||
        decision == RouterDecision::kDroppedBlocked) {
      dropped.add(pkt.timestamp, 1.0);
    }
  }
  std::vector<double> rates;
  for (std::size_t i = 0; i < total.bucket_count(); ++i) {
    if (total.bucket_value(i) >= 50.0) {
      rates.push_back(dropped.bucket_value(i) / total.bucket_value(i));
    }
  }
  return rates;
}

}  // namespace

int main() {
  bench::header("Fig. 8 -- SPI vs bitmap filter packet drop rates",
                "per-interval rates on the slope-1 line; averages 1.56% "
                "(SPI) vs 1.51% (bitmap), SPI slightly higher");

  const GeneratedTrace trace =
      generate_campus_trace(bench::eval_trace_config());
  std::printf("trace: %zu packets over %s\n\n", trace.packets.size(),
              trace.span().to_string().c_str());

  EdgeRouterConfig config;
  config.network = trace.network;
  config.track_blocked_connections = false;  // Fig. 8 runs without it

  // SPI filter with the paper's 240 s timeout (Windows' default TIME_WAIT):
  // closed flows linger 240 s rather than vanishing at the FIN.
  SpiFilterConfig spi_config;
  spi_config.idle_timeout = Duration::sec(240.0);
  spi_config.close_linger = Duration::sec(240.0);
  EdgeRouter spi_router{config, make_state_filter(spi_filter_spec(spi_config)),
                        std::make_unique<ConstantDropPolicy>(1.0)};
  // Bitmap filter with the paper's {4 x 2^20}, dt = 5 s, Te = 20 s.
  EdgeRouter bitmap_router{config,
                           make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
                           std::make_unique<ConstantDropPolicy>(1.0)};

  const Duration bucket = Duration::sec(5.0);
  const std::vector<double> spi_rates =
      interval_drop_rates(trace.packets, spi_router, bucket);
  const std::vector<double> bitmap_rates =
      interval_drop_rates(trace.packets, bitmap_router, bucket);

  const std::size_t n = std::min(spi_rates.size(), bitmap_rates.size());
  std::printf("per-5s-interval drop rates (the Fig. 8 scatter):\n");
  std::printf("  interval    SPI     bitmap   |SPI-bitmap|\n");
  SummaryStats spi_stats, bitmap_stats, gap_stats;
  double dot = 0.0, spi_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    spi_stats.add(spi_rates[i]);
    bitmap_stats.add(bitmap_rates[i]);
    gap_stats.add(std::abs(spi_rates[i] - bitmap_rates[i]));
    dot += spi_rates[i] * bitmap_rates[i];
    spi_sq += spi_rates[i] * spi_rates[i];
    if (i % std::max<std::size_t>(1, n / 16) == 0) {
      std::printf("  %8zu  %6.2f%%  %6.2f%%   %6.3f%%\n", i,
                  spi_rates[i] * 100.0, bitmap_rates[i] * 100.0,
                  std::abs(spi_rates[i] - bitmap_rates[i]) * 100.0);
    }
  }
  // Least-squares slope through the origin: bitmap = slope * spi.
  const double slope = spi_sq > 0.0 ? dot / spi_sq : 0.0;

  std::printf("\n");
  bench::row("average drop rate, SPI", "1.56% (their trace)",
             report::percent(spi_stats.mean()));
  bench::row("average drop rate, bitmap", "1.51% (their trace)",
             report::percent(bitmap_stats.mean()));
  // The paper's SPI edged out the bitmap by 0.05 pp (it observes exact
  // closes). On this workload the ordering can flip by a similar hair:
  // the bitmap's 20 s timer also cuts long mid-stream idles that the SPI
  // filter's 240 s TIME_WAIT survives. Either way the gap is tiny.
  bench::row("|avg SPI - avg bitmap|", "0.05 pp",
             report::num(std::abs(spi_stats.mean() - bitmap_stats.mean()) *
                             100.0,
                         3) +
                 " pp");
  bench::row("scatter slope (bitmap vs SPI)", "1.0",
             report::num(slope, 3));
  bench::row("mean |per-interval gap|", "small",
             report::percent(gap_stats.mean(), 3));

  // Where the approximation starts to show: a starved bitmap (2^12 bits,
  // false positives admit packets SPI would drop) and an aggressive expiry
  // (Te = 4 s, false negatives drop packets SPI would admit). At the
  // paper's {4 x 2^20} both effects vanish, which is its point.
  std::printf("\nparameter sensitivity (same trace):\n");
  struct Variant {
    const char* name;
    BitmapFilterConfig bitmap;
  };
  BitmapFilterConfig starved;
  starved.log2_bits = 12;
  starved.hash_count = 2;
  BitmapFilterConfig hasty;
  hasty.vector_count = 4;
  hasty.rotate_interval = Duration::sec(1.0);  // Te = 4 s
  const Variant variants[] = {
      {"bitmap {4 x 2^12}, m=2 (starved)", starved},
      {"bitmap {4 x 2^20}, Te=4s (hasty expiry)", hasty},
  };
  for (const Variant& v : variants) {
    EdgeRouter variant_router{config, make_state_filter(bitmap_filter_spec(v.bitmap)),
                              std::make_unique<ConstantDropPolicy>(1.0)};
    const auto rates = interval_drop_rates(trace.packets, variant_router,
                                           bucket);
    SummaryStats stats;
    for (const double r : rates) stats.add(r);
    bench::row(v.name, "diverges from SPI",
               report::percent(stats.mean()) + " avg drop rate");
  }
  return 0;
}
