// Telemetry overhead proof: replays the same campus trace through the
// batched router datapath with stage timing ON and OFF and reports the
// relative cost of the clock reads + histogram records. The acceptance
// budget is <5% on the batched path (roughly ten clock reads per
// 256-packet batch); exits nonzero when --max-overhead-pct is exceeded so
// CI can gate on it.
//
// Usage:
//   bench_telemetry_overhead [--smoke] [--max-overhead-pct P]
//
// --smoke shrinks the workload for CI; the default threshold is 5 (use a
// looser value on noisy shared runners). When the build has telemetry
// compiled out (UPBOUND_TELEMETRY=OFF) both configurations run the same
// machine code, so the tool prints a note and reports ~0% by construction.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "sim/edge_router.h"
#include "sim/report.h"
#include "trace/campus.h"

namespace upbound {
namespace {

GeneratedTrace make_trace(bool smoke) {
  CampusTraceConfig config;
  config.duration = Duration::sec(smoke ? 6.0 : 20.0);
  config.connections_per_sec = 60.0;
  config.bandwidth_bps = 8e6;
  config.seed = 5;
  return generate_campus_trace(config);
}

EdgeRouter make_router(const ClientNetwork& network, bool stage_timing) {
  EdgeRouterConfig config;
  config.network = network;
  config.seed = 11;
  config.stage_timing = stage_timing;
  BitmapFilterConfig bitmap;
  bitmap.log2_bits = 20;
  return EdgeRouter{config, make_state_filter(bitmap_filter_spec(bitmap)),
                    std::make_unique<RedDropPolicy>(2e6, 6e6)};
}

/// One full-trace replay through the batched datapath; returns seconds.
/// The returned snapshot is the timed router's telemetry (for the report).
double replay_once(const GeneratedTrace& trace, bool stage_timing,
                   MetricsSnapshot* snapshot) {
  EdgeRouter router = make_router(trace.network, stage_timing);
  constexpr std::size_t kBatch = 256;
  std::vector<RouterDecision> decisions(kBatch);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t start = 0; start < trace.packets.size(); start += kBatch) {
    const std::size_t n = std::min(kBatch, trace.packets.size() - start);
    router.process_batch(
        PacketBatch{trace.packets.data() + start, n},
        std::span<RouterDecision>{decisions.data(), n});
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (snapshot != nullptr) *snapshot = router.metrics_snapshot();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-N replay time: the minimum is the least noise-contaminated
/// estimate of the true cost on a time-shared machine.
double best_of(const GeneratedTrace& trace, bool stage_timing, int rounds,
               MetricsSnapshot* snapshot) {
  double best = replay_once(trace, stage_timing, snapshot);
  for (int i = 1; i < rounds; ++i) {
    best = std::min(best, replay_once(trace, stage_timing, nullptr));
  }
  return best;
}

int run(int argc, char** argv) {
  bool smoke = false;
  double max_overhead_pct = 5.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--max-overhead-pct") == 0 &&
               i + 1 < argc) {
      max_overhead_pct = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--max-overhead-pct P]\n", argv[0]);
      return 2;
    }
  }

  const GeneratedTrace trace = make_trace(smoke);
  const int rounds = smoke ? 3 : 5;
  std::printf("telemetry overhead: %zu packets, best of %d replays%s\n",
              trace.packets.size(), rounds,
              kTelemetryCompiled ? "" : " (telemetry compiled OUT)");

  // Warm-up: touch every allocation and fault in the trace.
  replay_once(trace, false, nullptr);

  MetricsSnapshot timed_snapshot;
  const double off_sec = best_of(trace, false, rounds, nullptr);
  const double on_sec = best_of(trace, true, rounds, &timed_snapshot);
  const double overhead_pct = (on_sec / off_sec - 1.0) * 100.0;

  const double packets = static_cast<double>(trace.packets.size());
  std::printf("  stage_timing=off: %.3f ms (%.1f ns/pkt)\n", off_sec * 1e3,
              off_sec * 1e9 / packets);
  std::printf("  stage_timing=on:  %.3f ms (%.1f ns/pkt)\n", on_sec * 1e3,
              on_sec * 1e9 / packets);
  std::printf("  overhead: %.2f%% (budget %.2f%%)\n", overhead_pct,
              max_overhead_pct);

  if (!kTelemetryCompiled) {
    std::printf("note: UPBOUND_TELEMETRY=OFF -- both runs execute identical "
                "code; the comparison is a no-op by construction.\n");
  } else {
    std::printf("\nper-stage latency (timed run):\n%s",
                report::metrics_table(timed_snapshot).c_str());
  }

  if (overhead_pct > max_overhead_pct) {
    std::fprintf(stderr, "FAIL: telemetry overhead %.2f%% > budget %.2f%%\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace
}  // namespace upbound

int main(int argc, char** argv) { return upbound::run(argc, argv); }
