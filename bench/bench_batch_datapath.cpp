// Batched vs scalar datapath throughput (google-benchmark).
//
// The batch API exists to buy memory-level parallelism: hashing a chunk of
// packets first and prefetching every touched bit-vector word lets the
// marks/tests overlap their cache misses instead of serializing them. The
// effect only shows once the bit vectors outgrow the fast cache levels, so
// the sweep includes N = 2^26 (32 MiB of vectors at k=4) alongside the
// in-cache 2^20.
// Compare items_per_second between the *Scalar and *Batch variants at the
// same log2_bits.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "net/packet_batch.h"
#include "sim/edge_router.h"
#include "trace/campus.h"
#include "util/rng.h"

namespace upbound {
namespace {

constexpr std::size_t kPoolSize = 1u << 16;  // power of two for cheap wrap

Trace make_pool(std::uint64_t seed) {
  Rng rng{seed};
  Trace pool;
  pool.reserve(kPoolSize);
  for (std::size_t i = 0; i < kPoolSize; ++i) {
    PacketRecord pkt;
    pkt.timestamp = SimTime::origin();
    pkt.tuple =
        FiveTuple{Protocol::kTcp,
                  Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                  static_cast<std::uint16_t>(rng.next_u64()),
                  Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                  static_cast<std::uint16_t>(rng.next_u64())};
    pool.push_back(pkt);
  }
  return pool;
}

BitmapFilterConfig config_for(unsigned log2_bits) {
  BitmapFilterConfig config;
  config.log2_bits = log2_bits;
  return config;
}

void BM_BitmapRecordScalar(benchmark::State& state) {
  BitmapFilter filter{config_for(static_cast<unsigned>(state.range(0)))};
  StateFilter& iface = filter;  // same virtual dispatch as the router
  const Trace pool = make_pool(7);
  std::size_t i = 0;
  for (auto _ : state) {
    const PacketRecord& pkt = pool[i++ & (kPoolSize - 1)];
    iface.advance_time(pkt.timestamp);
    iface.record_outbound(pkt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapRecordScalar)->Arg(20)->Arg(26);

void BM_BitmapRecordBatch(benchmark::State& state) {
  BitmapFilter filter{config_for(static_cast<unsigned>(state.range(0)))};
  StateFilter& iface = filter;
  const std::size_t batch = static_cast<std::size_t>(state.range(1));
  const Trace pool = make_pool(7);
  std::size_t off = 0;
  for (auto _ : state) {
    iface.record_outbound_batch(PacketBatch{pool.data() + off, batch});
    off = (off + batch) & (kPoolSize - 1);
    if (off + batch > kPoolSize) off = 0;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BitmapRecordBatch)
    ->Args({20, 32})
    ->Args({26, 32})
    ->Args({26, 256});

void BM_BitmapLookupScalar(benchmark::State& state) {
  BitmapFilter filter{config_for(static_cast<unsigned>(state.range(0)))};
  StateFilter& iface = filter;
  const Trace pool = make_pool(7);
  // Half-full filter so lookups mix early-out misses and full-m hits.
  for (std::size_t i = 0; i < kPoolSize; i += 2) {
    iface.record_outbound(pool[i]);
  }
  std::size_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    const PacketRecord& pkt = pool[i++ & (kPoolSize - 1)];
    iface.advance_time(pkt.timestamp);
    sink ^= iface.admits_inbound(pkt);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapLookupScalar)->Arg(20)->Arg(26);

void BM_BitmapLookupBatch(benchmark::State& state) {
  BitmapFilter filter{config_for(static_cast<unsigned>(state.range(0)))};
  StateFilter& iface = filter;
  const std::size_t batch = static_cast<std::size_t>(state.range(1));
  const Trace pool = make_pool(7);
  for (std::size_t i = 0; i < kPoolSize; i += 2) {
    iface.record_outbound(pool[i]);
  }
  auto admits = std::make_unique<bool[]>(batch);
  std::size_t off = 0;
  for (auto _ : state) {
    iface.admits_inbound_batch(PacketBatch{pool.data() + off, batch},
                               std::span<bool>{admits.get(), batch});
    off = (off + batch) & (kPoolSize - 1);
    if (off + batch > kPoolSize) off = 0;
    benchmark::DoNotOptimize(admits[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BitmapLookupBatch)
    ->Args({20, 32})
    ->Args({26, 32})
    ->Args({26, 256});

// Router-level: the full classify -> blocklist -> state -> policy pipeline
// on a generated campus trace, scalar process() vs process_batch().
const GeneratedTrace& campus() {
  static const GeneratedTrace trace = [] {
    CampusTraceConfig config;
    config.duration = Duration::sec(20.0);
    config.connections_per_sec = 60.0;
    config.bandwidth_bps = 8e6;
    config.seed = 5;
    return generate_campus_trace(config);
  }();
  return trace;
}

EdgeRouter make_router() {
  EdgeRouterConfig config;
  config.network = campus().network;
  config.seed = 11;
  return EdgeRouter{config, make_state_filter(bitmap_filter_spec(config_for(20))),
                    std::make_unique<RedDropPolicy>(2e6, 6e6)};
}

void BM_RouterScalar(benchmark::State& state) {
  const Trace& trace = campus().packets;
  for (auto _ : state) {
    state.PauseTiming();
    EdgeRouter router = make_router();  // fresh: timestamps restart at 0
    state.ResumeTiming();
    for (const PacketRecord& pkt : trace) {
      benchmark::DoNotOptimize(router.process(pkt));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_RouterScalar)->Unit(benchmark::kMillisecond);

void BM_RouterBatch(benchmark::State& state) {
  const Trace& trace = campus().packets;
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<RouterDecision> decisions(batch);
  for (auto _ : state) {
    state.PauseTiming();
    EdgeRouter router = make_router();
    state.ResumeTiming();
    for (std::size_t start = 0; start < trace.size(); start += batch) {
      const std::size_t n = std::min(batch, trace.size() - start);
      router.process_batch(
          PacketBatch{trace.data() + start, n},
          std::span<RouterDecision>{decisions.data(), n});
    }
    benchmark::DoNotOptimize(decisions[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_RouterBatch)->Arg(32)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace upbound

BENCHMARK_MAIN();
