// Fig. 2 reproduction: cumulative distribution of TCP service ports by
// class (ALL / P2P / Non-P2P / UNKNOWN). The paper's observations: Non-P2P
// concentrates on a few well-known ports; P2P spreads over 10000-40000
// plus protocol defaults; UNKNOWN's distribution resembles P2P.
#include "analyzer/analyzer.h"
#include "bench_common.h"
#include "sim/report.h"

using namespace upbound;

int main() {
  bench::header("Fig. 2 -- TCP port number CDF by class",
                "Non-P2P on well-known ports; P2P and UNKNOWN spread over "
                "10000-40000");

  const GeneratedTrace trace =
      generate_campus_trace(bench::eval_trace_config());
  TrafficAnalyzer analyzer{trace.network};
  for (const PacketRecord& pkt : trace.packets) analyzer.process(pkt);
  const AnalyzerReport report = analyzer.finish();

  // CDF sampled at the paper's visually salient port breakpoints.
  const double breakpoints[] = {80,    443,   1024,  4662,  6881,
                                10000, 20000, 30000, 40000, 65535};
  std::vector<std::vector<std::string>> rows{{"port <="}};
  for (const PortClass cls : {PortClass::kAll, PortClass::kP2p,
                              PortClass::kNonP2p, PortClass::kUnknown}) {
    rows[0].push_back(port_class_name(cls));
  }
  for (const double bp : breakpoints) {
    std::vector<std::string> row{report::num(bp, 0)};
    for (const PortClass cls : {PortClass::kAll, PortClass::kP2p,
                                PortClass::kNonP2p, PortClass::kUnknown}) {
      const auto it = report.tcp_port_cdf.find(cls);
      row.push_back(it == report.tcp_port_cdf.end() || it->second.count() == 0
                        ? "-"
                        : report::percent(it->second.fraction_below(bp), 1));
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", report::table(rows).c_str());

  const auto& non_p2p = report.tcp_port_cdf.at(PortClass::kNonP2p);
  const auto& p2p = report.tcp_port_cdf.at(PortClass::kP2p);
  const auto& unknown = report.tcp_port_cdf.at(PortClass::kUnknown);
  bench::row("Non-P2P mass on ports < 1024", "most",
             report::percent(non_p2p.fraction_below(1024.0)));
  bench::row("P2P mass in 10000-40000", "large",
             report::percent(p2p.fraction_below(40000.0) -
                             p2p.fraction_below(10000.0)));
  bench::row("UNKNOWN mass in 10000-40000 (resembles P2P)", "large",
             report::percent(unknown.fraction_below(40000.0) -
                             unknown.fraction_below(10000.0)));
  return 0;
}
