// Table 2 reproduction: protocol distribution (connection % and byte %)
// as classified by the traffic analyzer over the calibrated campus trace.
#include "analyzer/analyzer.h"
#include "bench_common.h"
#include "sim/report.h"

using namespace upbound;

int main() {
  bench::header("Table 2 -- Summary of Protocol Distributions",
                "HTTP 2.17%/5%, bittorrent 47.9%/18%, gnutella 7.56%/16%, "
                "edonkey 22%/21%, UNKNOWN 17.55%/35%, Others 2.82%/5%");

  const CampusTraceConfig config = bench::eval_trace_config();
  const GeneratedTrace trace = generate_campus_trace(config);
  std::printf("trace: %zu packets, %zu connections, %s offered over the "
              "%s window\n\n",
              trace.packets.size(), trace.connection_count,
              format_bits_per_sec(
                  static_cast<double>(trace.outbound_bytes +
                                      trace.inbound_bytes) *
                  8.0 / config.duration.to_sec())
                  .c_str(),
              config.duration.to_string().c_str());

  TrafficAnalyzer analyzer{trace.network};
  for (const PacketRecord& pkt : trace.packets) analyzer.process(pkt);
  const AnalyzerReport report = analyzer.finish();

  struct PaperRow {
    AppProtocol app;
    double conns;
    double bytes;
  };
  const PaperRow paper_rows[] = {
      {AppProtocol::kHttp, 2.17, 5.0},
      {AppProtocol::kBitTorrent, 47.90, 18.0},
      {AppProtocol::kGnutella, 7.56, 16.0},
      {AppProtocol::kEdonkey, 22.00, 21.0},
      {AppProtocol::kUnknown, 17.55, 35.0},
  };
  std::vector<std::vector<std::string>> rows{
      {"Protocol", "paper conns", "measured conns", "paper bytes",
       "measured bytes"}};
  double others_conns = 0.0, others_bytes = 0.0;
  for (const auto& share : report.protocol_distribution) {
    bool tracked = false;
    for (const auto& p : paper_rows) {
      if (p.app == share.app) tracked = true;
    }
    if (!tracked) {
      others_conns += share.connection_fraction * 100.0;
      others_bytes += share.byte_fraction * 100.0;
    }
  }
  for (const auto& p : paper_rows) {
    const auto& share = report.share_of(p.app);
    rows.push_back({app_protocol_name(p.app),
                    report::num(p.conns) + "%",
                    report::percent(share.connection_fraction),
                    report::num(p.bytes) + "%",
                    report::percent(share.byte_fraction)});
  }
  rows.push_back({"Others", "2.82%", report::num(others_conns) + "%", "5%",
                  report::num(others_bytes) + "%"});
  std::printf("%s\n", report::table(rows).c_str());

  std::printf("aggregate checks:\n");
  bench::row("UDP connection share", "70.1%",
             report::percent(static_cast<double>(report.udp_connections) /
                             static_cast<double>(report.total_connections)));
  bench::row("TCP byte share", "99.5%",
             report::percent(static_cast<double>(report.tcp_bytes) /
                             static_cast<double>(report.tcp_bytes +
                                                 report.udp_bytes)));
  bench::row("upload byte share", "89.8%",
             report::percent(report.upload_fraction()));
  return 0;
}
