// Fig. 3 reproduction: cumulative distribution of UDP port numbers (both
// source and destination ports counted). Paper: near-uniform spread with
// visible spikes at DNS (53) and the eDonkey ports (4661/4672).
#include "analyzer/analyzer.h"
#include "bench_common.h"
#include "sim/report.h"

using namespace upbound;

int main() {
  bench::header("Fig. 3 -- UDP port number CDF",
                "near-uniform port usage; spikes at DNS 53 and eDonkey "
                "4661/4672");

  const GeneratedTrace trace =
      generate_campus_trace(bench::eval_trace_config());
  TrafficAnalyzer analyzer{trace.network};
  for (const PacketRecord& pkt : trace.packets) analyzer.process(pkt);
  const AnalyzerReport report = analyzer.finish();

  const double breakpoints[] = {53,    54,    4660,  4673,  10000,
                                20000, 30000, 40000, 50000, 65535};
  std::vector<std::vector<std::string>> rows{{"port <="}};
  for (const PortClass cls : {PortClass::kAll, PortClass::kP2p,
                              PortClass::kNonP2p, PortClass::kUnknown}) {
    rows[0].push_back(port_class_name(cls));
  }
  for (const double bp : breakpoints) {
    std::vector<std::string> row{report::num(bp, 0)};
    for (const PortClass cls : {PortClass::kAll, PortClass::kP2p,
                                PortClass::kNonP2p, PortClass::kUnknown}) {
      const auto it = report.udp_port_cdf.find(cls);
      row.push_back(it == report.udp_port_cdf.end() || it->second.count() == 0
                        ? "-"
                        : report::percent(it->second.fraction_below(bp), 1));
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", report::table(rows).c_str());

  const auto& all = report.udp_port_cdf.at(PortClass::kAll);
  bench::row("DNS spike: mass exactly at port 53", "visible",
             report::percent(all.fraction_below(53.5) -
                             all.fraction_below(52.5)));
  bench::row("eDonkey spike: mass in 4661-4672", "visible",
             report::percent(all.fraction_below(4672.5) -
                             all.fraction_below(4660.5)));
  bench::row("spread: mass in 10000-61000", "bulk",
             report::percent(all.fraction_below(61000.0) -
                             all.fraction_below(10000.0)));
  return 0;
}
