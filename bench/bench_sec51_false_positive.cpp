// Section 5.1 reproduction: false-positive (penetration) analysis.
//
//   Eq. 3  p ~= (c*m/N)^m      -- validated against Monte-Carlo
//   Eq. 5  m* = N/(e*c)        -- optimal hash count really is optimal
//   Eq. 6  c <= -N/(e ln p)    -- the paper's 167K/125K/83K capacity table
//
// Also reproduces the worked example: a {4 x 2^20} bitmap (512 KB) with
// m = 3 easily covers the trace's ~15K active connections per Te.
#include "bench_common.h"
#include "filter/bitmap_filter.h"
#include "filter/params.h"
#include "sim/report.h"
#include "util/rng.h"

using namespace upbound;

namespace {

double monte_carlo_penetration(unsigned log2_bits, unsigned hash_count,
                               std::size_t connections, Rng& rng,
                               int probes = 300'000) {
  BitmapFilterConfig config;
  config.log2_bits = log2_bits;
  config.vector_count = 2;
  config.hash_count = hash_count;
  BitmapFilter filter{config};
  PacketRecord pkt;
  for (std::size_t i = 0; i < connections; ++i) {
    pkt.tuple = FiveTuple{Protocol::kTcp,
                          Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                          static_cast<std::uint16_t>(rng.next_u64()),
                          Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                          static_cast<std::uint16_t>(rng.next_u64())};
    filter.record_outbound(pkt);
  }
  int hits = 0;
  for (int i = 0; i < probes; ++i) {
    pkt.tuple = FiveTuple{Protocol::kUdp,
                          Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                          static_cast<std::uint16_t>(rng.next_u64()),
                          Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                          static_cast<std::uint16_t>(rng.next_u64())};
    if (filter.admits_inbound(pkt)) ++hits;
  }
  return static_cast<double>(hits) / probes;
}

}  // namespace

int main() {
  Rng rng{20260706};

  bench::header("Section 5.1 -- False positives and false negatives",
                "Eq. 3/5/6 analysis; N=2^20 supports 167K/125K/83K conns at "
                "p = 10%/5%/1%");

  std::printf("\n-- Eq. 6 capacity bounds for N = 2^20 --\n");
  bench::row("max connections at p = 10%", "167K",
             std::to_string(max_connections_for(0.10, 1u << 20)));
  bench::row("max connections at p = 5%", "125K",
             std::to_string(max_connections_for(0.05, 1u << 20)));
  bench::row("max connections at p = 1%", "83K",
             std::to_string(max_connections_for(0.01, 1u << 20)));

  std::printf("\n-- Eq. 3 vs Monte-Carlo (N = 2^16 so p is measurable) --\n");
  std::vector<std::vector<std::string>> rows{
      {"c", "m", "Eq.3 predicted", "measured"}};
  const unsigned log2_bits = 16;
  for (const std::size_t c : {1000u, 3000u, 6000u, 12000u}) {
    for (const unsigned m : {2u, 3u, 4u}) {
      const double predicted =
          penetration_probability(c, m, 1u << log2_bits);
      const double measured =
          monte_carlo_penetration(log2_bits, m, c, rng);
      rows.push_back({std::to_string(c), std::to_string(m),
                      report::num(predicted * 100.0, 3) + "%",
                      report::num(measured * 100.0, 3) + "%"});
    }
  }
  std::printf("%s", report::table(rows).c_str());

  std::printf("\n-- Eq. 5 optimum vs the measured optimum --\n");
  // Eq. 5 (m* = N/(e*c)) is derived from the no-collision approximation
  // Eq. 3. The exact Bloom analysis (utilization 1 - exp(-c*m/N)) puts the
  // true optimum at m = ln2 * N/c -- about 1.88x the paper's value. Both
  // are printed; the measured argmin should track the Bloom optimum while
  // confirming that Eq. 5's m already reaches within a small factor of
  // the minimum.
  const std::size_t c_opt = 6000;
  const unsigned m_star = optimal_hash_count(1u << log2_bits, c_opt);
  const unsigned m_bloom = static_cast<unsigned>(
      0.6931 * static_cast<double>(1u << log2_bits) /
          static_cast<double>(c_opt) +
      0.5);
  std::vector<std::vector<std::string>> opt_rows{{"m", "measured p", ""}};
  double best = 1.0;
  unsigned best_m = 0;
  for (unsigned m = 1; m <= m_bloom + 4; ++m) {
    const double measured =
        monte_carlo_penetration(log2_bits, m, c_opt, rng, 150'000);
    if (measured < best) {
      best = measured;
      best_m = m;
    }
    std::string note;
    if (m == m_star) note = "<- Eq. 5 optimum (paper)";
    if (m == m_bloom) note += "<- exact Bloom optimum";
    opt_rows.push_back({std::to_string(m),
                        report::num(measured * 100.0, 3) + "%", note});
  }
  std::printf("%s", report::table(opt_rows).c_str());
  bench::row("argmin of measured p",
             "m* = " + std::to_string(m_star) + " (Eq. 5)",
             "m = " + std::to_string(best_m) + " (Bloom-exact " +
                 std::to_string(m_bloom) + ")");

  std::printf("\n-- paper worked example: {4 x 2^20}, dt = 5 s, m = 3 --\n");
  const BitmapAdvice advice = advise(1u << 20, 4, Duration::sec(5.0), 15'000);
  bench::row("memory", "512 KB",
             std::to_string(advice.memory_bytes / 1024) + " KB");
  bench::row("expiry timer Te", "20 s", advice.expiry_timer.to_string());
  const double p_paper_m =
      penetration_probability(15'000, 3, 1u << 20);
  bench::row("penetration at trace load (m = 3)", "negligible",
             report::num(p_paper_m * 100.0, 6) + "%");
  const double measured_paper = monte_carlo_penetration(20, 3, 15'000, rng);
  bench::row("Monte-Carlo at trace load (m = 3)", "negligible",
             report::num(measured_paper * 100.0, 6) + "%");
  return 0;
}
