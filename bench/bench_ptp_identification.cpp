// Extension: the transport-layer P2P identifier (paper related work [4],
// Karagiannis et al.) vs the payload classifier on the same trace --
// quantifying two of the paper's arguments:
//
//   1. The UNKNOWN (encrypted) class really is P2P: payload signatures
//      cannot see it, transport-layer structure can.
//   2. Accurate identification costs O(flows) state -- the scaling the
//      paper's bitmap filter exists to avoid (it never identifies,
//      it bounds).
#include "analyzer/analyzer.h"
#include "analyzer/transport_heuristics.h"
#include "bench_common.h"
#include "filter/bitmap_filter.h"
#include "sim/report.h"

using namespace upbound;

int main() {
  bench::header("Extension -- transport-layer P2P identification (PTP)",
                "related work [4]: payload-free identification works but "
                "needs per-flow state");

  const GeneratedTrace trace =
      generate_campus_trace(bench::eval_trace_config(40.0));

  // Payload classifier (Table 1 signatures + ports).
  TrafficAnalyzer analyzer{trace.network};
  for (const PacketRecord& pkt : trace.packets) analyzer.process(pkt);
  const AnalyzerReport report = analyzer.finish();

  // Transport-layer identifier.
  TransportHeuristics ptp;
  for (const PacketRecord& pkt : trace.packets) ptp.observe(pkt);

  // Score both against ground truth, where "P2P" includes the encrypted
  // class (it is P2P in the generator).
  std::size_t total = 0;
  std::size_t payload_tp = 0, payload_fn = 0, payload_fp = 0;
  std::size_t ptp_tp = 0, ptp_fn = 0, ptp_fp = 0;
  std::size_t unknown_total = 0, unknown_caught_by_ptp = 0;
  analyzer.connections().for_each([&](const ConnectionRecord& rec) {
    const auto it = trace.truth.find(rec.tuple.canonical());
    if (it == trace.truth.end()) return;
    const bool truth_p2p =
        is_p2p(it->second) || it->second == AppProtocol::kUnknown;
    ++total;

    const bool payload_says = is_p2p(rec.app);  // UNKNOWN = not identified
    if (payload_says && truth_p2p) ++payload_tp;
    if (payload_says && !truth_p2p) ++payload_fp;
    if (!payload_says && truth_p2p) ++payload_fn;

    const bool ptp_says = ptp.is_p2p(rec.tuple);
    if (ptp_says && truth_p2p) ++ptp_tp;
    if (ptp_says && !truth_p2p) ++ptp_fp;
    if (!ptp_says && truth_p2p) ++ptp_fn;

    if (it->second == AppProtocol::kUnknown) {
      ++unknown_total;
      if (ptp_says) ++unknown_caught_by_ptp;
    }
  });

  const auto pr = [](std::size_t tp, std::size_t fp) {
    return static_cast<double>(tp) /
           static_cast<double>(std::max<std::size_t>(1, tp + fp));
  };
  const auto rc = [](std::size_t tp, std::size_t fn) {
    return static_cast<double>(tp) /
           static_cast<double>(std::max<std::size_t>(1, tp + fn));
  };

  std::printf("connections scored: %zu (P2P ground truth includes the "
              "encrypted class)\n\n", total);
  std::printf("%s\n",
      report::table(
          {{"identifier", "precision", "recall", "state bytes"},
           {"payload signatures (Table 1)", report::percent(pr(payload_tp,
                                                               payload_fp)),
            report::percent(rc(payload_tp, payload_fn)), "streams only"},
           {"transport heuristics (PTP)", report::percent(pr(ptp_tp,
                                                             ptp_fp)),
            report::percent(rc(ptp_tp, ptp_fn)),
            std::to_string(ptp.storage_bytes())}})
          .c_str());

  bench::row("encrypted-P2P connections flagged by PTP",
             "payload classifiers: 0%",
             report::percent(static_cast<double>(unknown_caught_by_ptp) /
                             std::max<std::size_t>(1, unknown_total)));

  BitmapFilterConfig bitmap;
  bench::row("PTP state on this small trace",
             "grows with flows",
             std::to_string(ptp.storage_bytes() / 1024) + " KB across " +
                 std::to_string(ptp.tracked_endpoints()) + " endpoints");
  bench::row("bitmap filter state at ANY scale", "512 KB",
             std::to_string(bitmap.memory_bytes() / 1024) + " KB");
  std::printf(
      "\n(the payload classifier's recall ceiling is the encrypted share;\n"
      " PTP recovers much of it but pays per-flow state -- the bitmap\n"
      " filter sidesteps identification entirely and just bounds)\n");
  return 0;
}
