// Scaling harness for the sharded parallel replay engine: the same trace
// replayed through (a) the plain single-router sequential path, (b) the
// sequential sharded reference, (c) the parallel engine at 1/2/4/8 worker
// threads, and (d) shared-filter mode. Prints a throughput table and
// re-verifies the determinism contract (parallel merge == sequential
// sharded reference, byte for byte) on the bench-sized trace.
//
// Wall-clock speedup is hardware-dependent -- on a single-core host the
// parallel rows measure the hand-off overhead, not scaling -- so the
// determinism column, not the throughput column, is the correctness
// signal.
#include <chrono>
#include <thread>

#include "bench_common.h"
#include "filter/bitmap_filter.h"
#include "filter/concurrent_bitmap.h"
#include "filter/filter_registry.h"
#include "sim/parallel_replay.h"
#include "sim/report.h"

using namespace upbound;

namespace {

ShardRouterFactory bitmap_factory() {
  return [](const ClientNetwork& network, std::size_t shard) {
    EdgeRouterConfig config;
    config.network = network;
    config.track_blocked_connections = true;
    config.seed = shard_seed(7, shard);
    return std::make_unique<EdgeRouter>(
        config, make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
        std::make_unique<ConstantDropPolicy>(1.0));
  };
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void print_row(const char* name, std::size_t packets, double elapsed,
               double baseline, const char* deterministic) {
  std::printf("  %-26s %8.3f s   %7.2f Mpkt/s   x%4.2f   %s\n", name, elapsed,
              static_cast<double>(packets) / elapsed / 1e6, baseline / elapsed,
              deterministic);
}

}  // namespace

int main() {
  bench::header("Extension -- sharded parallel replay scaling",
                "single-site deployment of the Fig. 6 filter bank across "
                "worker threads; merge must be thread-count invariant");

  const CampusTraceConfig trace_config = bench::eval_trace_config(60.0);
  const GeneratedTrace trace = generate_campus_trace(trace_config);
  const std::size_t packets = trace.packets.size();
  std::printf("%zu packets over %s, %u hardware threads\n\n", packets,
              trace_config.duration.to_string().c_str(),
              std::thread::hardware_concurrency());

  // (a) plain sequential single-router replay.
  auto start = std::chrono::steady_clock::now();
  EdgeRouterConfig seq_config;
  seq_config.network = trace.network;
  seq_config.track_blocked_connections = true;
  seq_config.seed = shard_seed(7, 0);
  EdgeRouter router{seq_config,
                    make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
                    std::make_unique<ConstantDropPolicy>(1.0)};
  const ReplayResult sequential =
      replay_trace(trace.packets, router, trace.network);
  const double seq_elapsed = seconds_since(start);
  (void)sequential;

  std::printf("  %-26s %10s   %14s   %6s  %s\n", "configuration", "time",
              "throughput", "speedup", "merge");
  print_row("sequential (1 router)", packets, seq_elapsed, seq_elapsed,
            "reference");

  // (b) the sequential sharded reference: same S routers, one thread.
  ParallelReplayConfig config;
  config.shards = 8;
  start = std::chrono::steady_clock::now();
  const ParallelReplayResult reference = sharded_replay_reference(
      trace.packets, trace.network, bitmap_factory(), config);
  print_row("sharded reference (S=8)", packets, seconds_since(start),
            seq_elapsed, "reference");

  // (c) the parallel engine across thread counts.
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    config.threads = threads;
    start = std::chrono::steady_clock::now();
    const ParallelReplayResult result = parallel_replay(
        trace.packets, trace.network, bitmap_factory(), config);
    const double elapsed = seconds_since(start);
    const bool identical = result.merged == reference.merged &&
                           result.shard_stats == reference.shard_stats;
    char name[64];
    std::snprintf(name, sizeof(name), "parallel S=8, %zu thread%s", threads,
                  threads == 1 ? "" : "s");
    print_row(name, packets, elapsed, seq_elapsed,
              identical ? "bit-identical" : "MISMATCH");
    if (!identical) {
      std::printf("\nFATAL: merged result diverged at %zu threads\n", threads);
      return 1;
    }
  }

  // (d) shared-filter mode: every shard drives one concurrent bitmap.
  ConcurrentBitmapFilter shared{BitmapFilterConfig{}};
  const ShardRouterFactory shared_factory =
      [&shared](const ClientNetwork& network, std::size_t shard) {
        EdgeRouterConfig router_config;
        router_config.network = network;
        router_config.track_blocked_connections = true;
        router_config.seed = shard_seed(7, shard);
        return std::make_unique<EdgeRouter>(
            router_config, std::make_unique<SharedFilterView>(shared),
            std::make_unique<ConstantDropPolicy>(1.0));
      };
  config.threads = 4;
  start = std::chrono::steady_clock::now();
  const ParallelReplayResult shared_result = parallel_replay(
      trace.packets, trace.network, shared_factory, config);
  print_row("shared filter, 4 threads", packets, seconds_since(start),
            seq_elapsed, "approximate");

  std::printf(
      "\nshared-mode state: %zu bytes total vs %zu bytes x %zu shards;\n"
      "shared-mode drop rate %.4f vs sharded %.4f (decisions are\n"
      "run-dependent within the one-rotation approximation window)\n",
      shared.storage_bytes(),
      reference.shard_filter_bytes.empty()
          ? std::size_t{0}
          : reference.shard_filter_bytes.front(),
      reference.shards, shared_result.merged.stats.inbound_drop_rate(),
      reference.merged.stats.inbound_drop_rate());
  return 0;
}
