// Fig. 4 reproduction: TCP connection lifetime distribution. Paper: mean
// 45.84 s, 90% under 45 s, 95% under 4 minutes, < 1% above 810 s, maximum
// up to six hours. This bench uses a longer generation window with an
// uncapped lifetime tail so the right side of the distribution exists.
#include "analyzer/analyzer.h"
#include "bench_common.h"
#include "sim/report.h"

using namespace upbound;

int main() {
  bench::header("Fig. 4 -- Statistics for connection lifetime",
                "mean 45.84 s; 90% < 45 s; 95% < 4 min; <1% > 810 s");

  CampusTraceConfig config = bench::eval_trace_config(/*duration_sec=*/90.0);
  // Preserve the heavy tail the figure shows (the paper plots out to the
  // 6000th second); connections may outlive the generation window.
  config.lifetime_cap = Duration::hours(6);
  config.bandwidth_bps = 8e6;
  const GeneratedTrace trace = generate_campus_trace(config);

  TrafficAnalyzer analyzer{trace.network};
  for (const PacketRecord& pkt : trace.packets) analyzer.process(pkt);
  const AnalyzerReport report = analyzer.finish();

  std::printf("closed TCP connections sampled: %zu (trace span %s)\n\n",
              report.lifetimes.count(), trace.span().to_string().c_str());

  bench::row("mean lifetime", "45.84 s",
             report::num(report.lifetime_summary.mean()) + " s");
  bench::row("fraction under 45 s", "90%",
             report::percent(report.lifetimes.fraction_below(45.0)));
  bench::row("fraction under 4 min", "95%",
             report::percent(report.lifetimes.fraction_below(240.0)));
  bench::row("fraction over 810 s", "<1%",
             report::percent(1.0 - report.lifetimes.fraction_below(810.0)));
  bench::row("maximum observed", "up to 6 h",
             report::num(report.lifetime_summary.max()) + " s");

  std::printf("\nlifetime CDF:\n%s",
              report::cdf_curve(report.lifetimes, "lifetime(s)", 16).c_str());
  return 0;
}
