// Fault-plane overhead proof: replays the same campus trace through the
// batched router datapath with the health monitor disarmed (the default:
// exactly what a build with UPBOUND_FAULTS=OFF executes) and with it
// armed but healthy, and reports the relative cost. The disarmed path is
// the one the acceptance budget protects: the fault plane must add <1%
// to bench_batch_datapath when off. Exits nonzero when
// --max-overhead-pct is exceeded so CI can gate on it.
//
// Usage:
//   bench_fault_overhead [--smoke] [--max-overhead-pct P]
//
// --smoke shrinks the workload for CI. The default threshold encodes the
// acceptance budget: 1% when the fault plane is compiled out
// (UPBOUND_FAULTS=OFF -- the monitor can never engage, both
// configurations run the same machine code, and the tool reports ~0% by
// construction), and a looser 5% in the default build, where the armed
// monitor's occupancy sampling legitimately costs a few percent.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "fault/fault_injector.h"
#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "sim/edge_router.h"
#include "trace/campus.h"

namespace upbound {
namespace {

GeneratedTrace make_trace(bool smoke) {
  CampusTraceConfig config;
  config.duration = Duration::sec(smoke ? 6.0 : 20.0);
  config.connections_per_sec = 60.0;
  config.bandwidth_bps = 8e6;
  config.seed = 5;
  return generate_campus_trace(config);
}

EdgeRouter make_router(const ClientNetwork& network, bool monitored) {
  EdgeRouterConfig config;
  config.network = network;
  config.seed = 11;
  config.stage_timing = false;  // isolate the fault-plane cost
  if (monitored) {
    config.health.stance = UnhealthyStance::kFailOpen;
    config.health.occupancy_enter = 0.99;  // engaged, never degrades
  }
  BitmapFilterConfig bitmap;
  bitmap.log2_bits = 20;
  return EdgeRouter{config, make_state_filter(bitmap_filter_spec(bitmap)),
                    std::make_unique<RedDropPolicy>(2e6, 6e6)};
}

/// One full-trace replay through the batched datapath; returns seconds.
double replay_once(const GeneratedTrace& trace, bool monitored) {
  EdgeRouter router = make_router(trace.network, monitored);
  constexpr std::size_t kBatch = 256;
  std::vector<RouterDecision> decisions(kBatch);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t start = 0; start < trace.packets.size(); start += kBatch) {
    const std::size_t n = std::min(kBatch, trace.packets.size() - start);
    router.process_batch(
        PacketBatch{trace.packets.data() + start, n},
        std::span<RouterDecision>{decisions.data(), n});
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Interleaved best-of-N: alternating the two configurations within each
/// round exposes both minima to the same noise environment, which makes
/// the *difference* of the minima far more stable on a time-shared
/// machine than timing one phase after the other.
void best_of_pair(const GeneratedTrace& trace, int rounds, double* off_sec,
                  double* on_sec) {
  *off_sec = replay_once(trace, false);
  *on_sec = replay_once(trace, true);
  for (int i = 1; i < rounds; ++i) {
    *off_sec = std::min(*off_sec, replay_once(trace, false));
    *on_sec = std::min(*on_sec, replay_once(trace, true));
  }
}

int run(int argc, char** argv) {
  bool smoke = false;
  double max_overhead_pct = kFaultsCompiled ? 5.0 : 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--max-overhead-pct") == 0 &&
               i + 1 < argc) {
      max_overhead_pct = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--max-overhead-pct P]\n", argv[0]);
      return 2;
    }
  }

  const GeneratedTrace trace = make_trace(smoke);
  const int rounds = smoke ? 5 : 9;
  std::printf("fault-plane overhead: %zu packets, best of %d replays%s\n",
              trace.packets.size(), rounds,
              kFaultsCompiled ? "" : " (fault plane compiled OUT)");

  // Warm-up: touch every allocation and fault in the trace.
  replay_once(trace, false);

  double off_sec = 0.0;
  double on_sec = 0.0;
  best_of_pair(trace, rounds, &off_sec, &on_sec);
  const double overhead_pct = (on_sec / off_sec - 1.0) * 100.0;

  const double packets = static_cast<double>(trace.packets.size());
  std::printf("  health=disarmed:  %.3f ms (%.1f ns/pkt)\n", off_sec * 1e3,
              off_sec * 1e9 / packets);
  std::printf("  health=monitored: %.3f ms (%.1f ns/pkt)\n", on_sec * 1e3,
              on_sec * 1e9 / packets);
  std::printf("  overhead: %.2f%% (budget %.2f%%)\n", overhead_pct,
              max_overhead_pct);

  if (!kFaultsCompiled) {
    std::printf("note: UPBOUND_FAULTS=OFF -- the monitor cannot engage; "
                "both runs execute identical code.\n");
  }

  if (overhead_pct > max_overhead_pct) {
    std::fprintf(stderr,
                 "FAIL: fault-plane overhead %.2f%% > budget %.2f%%\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace
}  // namespace upbound

int main(int argc, char** argv) { return upbound::run(argc, argv); }
