// Section 5.2 reproduction (google-benchmark): per-packet processing cost.
//
// Paper claims: outbound processing O(m*t_h + m*k*t_m); inbound O(m*t_h +
// m*t_c); b.rotate O(N) but a cheap sequential clear; SPI lookups carry
// hash-table overhead and O(n) state. These benchmarks measure each
// operation and the SPI comparison directly.
#include <benchmark/benchmark.h>

#include "filter/aging_bloom.h"
#include "filter/bitmap_filter.h"
#include "filter/concurrent_bitmap.h"
#include "filter/naive_filter.h"
#include "filter/spi_filter.h"
#include "util/rng.h"

namespace upbound {
namespace {

PacketRecord random_packet(Rng& rng, double t_sec = 0.0) {
  PacketRecord pkt;
  pkt.timestamp = SimTime::from_sec(t_sec);
  pkt.tuple = FiveTuple{Protocol::kTcp,
                        Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                        static_cast<std::uint16_t>(rng.next_u64()),
                        Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                        static_cast<std::uint16_t>(rng.next_u64())};
  return pkt;
}

BitmapFilterConfig bitmap_config(unsigned hash_count = 3,
                                 unsigned vector_count = 4) {
  BitmapFilterConfig config;
  config.hash_count = hash_count;
  config.vector_count = vector_count;
  return config;
}

void BM_BitmapOutbound(benchmark::State& state) {
  BitmapFilter filter{bitmap_config(static_cast<unsigned>(state.range(0)))};
  Rng rng{1};
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 4096; ++i) packets.push_back(random_packet(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    filter.record_outbound(packets[i++ & 4095]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapOutbound)->Arg(1)->Arg(3)->Arg(8);

void BM_BitmapInbound(benchmark::State& state) {
  BitmapFilter filter{bitmap_config(static_cast<unsigned>(state.range(0)))};
  Rng rng{2};
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 4096; ++i) {
    PacketRecord pkt = random_packet(rng);
    if (i % 2 == 0) filter.record_outbound(pkt);  // half will hit state
    pkt.tuple = pkt.tuple.inverse();
    packets.push_back(std::move(pkt));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.admits_inbound(packets[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitmapInbound)->Arg(1)->Arg(3)->Arg(8);

void BM_BitmapRotate(benchmark::State& state) {
  BitmapFilterConfig config;
  config.log2_bits = static_cast<unsigned>(state.range(0));
  BitmapFilter filter{config};
  Rng rng{3};
  for (int i = 0; i < 10'000; ++i) filter.record_outbound(random_packet(rng));
  for (auto _ : state) {
    filter.rotate();
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.bits() / 8));
}
BENCHMARK(BM_BitmapRotate)->Arg(16)->Arg(20)->Arg(24);

// SPI cost grows with tracked flow count; bitmap cost must not. The range
// argument is the number of pre-installed flows.
template <typename Filter>
void run_inbound_under_load(benchmark::State& state, Filter& filter) {
  Rng rng{4};
  const std::int64_t flows = state.range(0);
  std::vector<PacketRecord> inbound;
  for (std::int64_t i = 0; i < flows; ++i) {
    PacketRecord pkt = random_packet(rng);
    filter.record_outbound(pkt);
    if (inbound.size() < 4096) {
      PacketRecord in = pkt;
      in.tuple = in.tuple.inverse();
      inbound.push_back(std::move(in));
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        filter.admits_inbound(inbound[i++ % inbound.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SpiInboundUnderLoad(benchmark::State& state) {
  SpiFilter filter{{}};
  run_inbound_under_load(state, filter);
}
BENCHMARK(BM_SpiInboundUnderLoad)->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

void BM_NaiveInboundUnderLoad(benchmark::State& state) {
  NaiveFilter filter{{}};
  run_inbound_under_load(state, filter);
}
BENCHMARK(BM_NaiveInboundUnderLoad)->Arg(1'000)->Arg(100'000);

void BM_BitmapInboundUnderLoad(benchmark::State& state) {
  BitmapFilter filter{bitmap_config()};
  run_inbound_under_load(state, filter);
}
BENCHMARK(BM_BitmapInboundUnderLoad)->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

void BM_AgingBloomInboundUnderLoad(benchmark::State& state) {
  AgingBloomFilter filter{AgingBloomConfig{}};
  run_inbound_under_load(state, filter);
}
BENCHMARK(BM_AgingBloomInboundUnderLoad)->Arg(1'000)->Arg(100'000);

void BM_ConcurrentBitmapInboundUnderLoad(benchmark::State& state) {
  ConcurrentBitmapFilter filter{bitmap_config()};
  run_inbound_under_load(state, filter);
}
BENCHMARK(BM_ConcurrentBitmapInboundUnderLoad)->Arg(1'000)->Arg(100'000);

void BM_ConcurrentBitmapParallelMarking(benchmark::State& state) {
  // Threaded google-benchmark: every thread hammers record_outbound on
  // the shared filter; scaling shows the lock-free marking path.
  static ConcurrentBitmapFilter* filter = nullptr;
  if (state.thread_index() == 0) {
    filter = new ConcurrentBitmapFilter{bitmap_config()};
  }
  Rng rng{static_cast<std::uint64_t>(state.thread_index()) + 1};
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 1024; ++i) packets.push_back(random_packet(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    filter->record_outbound(packets[i++ & 1023]);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete filter;
    filter = nullptr;
  }
}
BENCHMARK(BM_ConcurrentBitmapParallelMarking)->Threads(1)->Threads(4);

void BM_SpiOutbound(benchmark::State& state) {
  SpiFilter filter{{}};
  Rng rng{5};
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 4096; ++i) {
    packets.push_back(random_packet(rng, i * 1e-6));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    filter.record_outbound(packets[i++ & 4095]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpiOutbound);

// Storage comparison printed via a custom counter: bytes per tracked flow.
void BM_StorageFootprint(benchmark::State& state) {
  const std::int64_t flows = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    SpiFilter spi{{}};
    BitmapFilter bitmap{bitmap_config()};
    Rng rng{6};
    state.ResumeTiming();
    for (std::int64_t i = 0; i < flows; ++i) {
      const PacketRecord pkt = random_packet(rng);
      spi.record_outbound(pkt);
      bitmap.record_outbound(pkt);
    }
    state.counters["spi_bytes"] =
        static_cast<double>(spi.storage_bytes());
    state.counters["bitmap_bytes"] =
        static_cast<double>(bitmap.storage_bytes());
  }
}
BENCHMARK(BM_StorageFootprint)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace upbound

BENCHMARK_MAIN();
