// Shared scaffolding for the per-table/figure bench binaries: a common
// trace scale (overridable via UPBOUND_BENCH_SCALE), and the paper-vs-
// measured row formatting EXPERIMENTS.md records.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/campus.h"

namespace upbound::bench {

/// Scale factor from the environment; 1.0 = default laptop-sized run.
inline double scale() {
  const char* env = std::getenv("UPBOUND_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double s = std::atof(env);
  return s > 0.0 ? s : 1.0;
}

/// The standard evaluation trace: Table 2 mixture, ~80 conns/s. Duration
/// scales with UPBOUND_BENCH_SCALE.
inline CampusTraceConfig eval_trace_config(double duration_sec = 60.0,
                                           std::uint64_t seed = 3) {
  CampusTraceConfig config;
  config.duration = Duration::sec(duration_sec * scale());
  config.connections_per_sec = 80.0;
  config.bandwidth_bps = 12e6;
  config.seed = seed;
  return config;
}

inline void header(const char* experiment, const char* paper_claim) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==========================================================\n");
}

inline void row(const std::string& metric, const std::string& paper,
                const std::string& measured) {
  std::printf("  %-44s paper: %-14s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace upbound::bench
