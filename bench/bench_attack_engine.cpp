// Adversarial evaluation harness at evaluation scale: the full scenario
// matrix (four attacks x three filters) against the standard campus
// trace, printing the per-scenario bypass/collateral table plus the
// generator and evaluator throughput. The headline numbers mirror the
// paper's Section 4 security discussion: collision probes ride the
// Bloom false-positive floor, saturation raises it, rotation timing
// stretches state to k*dt, and trigger forgery -- the paper's conceded
// limitation -- sails through every stateful filter.
#include <chrono>

#include "attack/evaluator.h"
#include "attack/scenario.h"
#include "bench_common.h"

using namespace upbound;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  bench::header("Adversarial workload engine (attack scenario matrix)",
                "Section 4: bitmap FP floor, occupancy, rotation schedule, "
                "and the inbound-triggered upload limitation");

  const CampusTraceConfig trace_config = bench::eval_trace_config(60.0, 42);
  const Trace legit = generate_campus_trace(trace_config).packets;
  ClientNetwork network;
  network.add_prefix(trace_config.network.client_prefix);

  AttackEvaluatorConfig config;
  config.attack.bitmap.log2_bits = 16;
  config.attack.bitmap.vector_count = 4;
  config.attack.bitmap.rotate_interval = Duration::sec(5.0);
  config.attack.seed = 42;
  config.seed = 42;

  const auto scenarios = all_attack_scenarios();

  auto start = std::chrono::steady_clock::now();
  std::size_t attack_packets = 0;
  for (const AttackScenarioKind kind : scenarios) {
    attack_packets +=
        generate_attack(kind, legit, network, config.attack).packets.size();
  }
  const double gen_elapsed = seconds_since(start);

  start = std::chrono::steady_clock::now();
  const AttackReport report =
      evaluate_attacks(legit, network, scenarios, config);
  const double eval_elapsed = seconds_since(start);

  std::printf("\n%s\n", report.summary_table().c_str());
  std::printf("generators: %zu attack packets in %.3f s (%.2f Mpkt/s)\n",
              attack_packets, gen_elapsed,
              static_cast<double>(attack_packets) / gen_elapsed / 1e6);
  const std::size_t replayed =
      (legit.size() + attack_packets / scenarios.size()) *
      (scenarios.size() + 1) * config.filters.size();
  std::printf("evaluator:  %zu scenario-filter runs, ~%zu replayed packets "
              "in %.3f s (%.2f Mpkt/s)\n",
              report.outcomes.size(), replayed, eval_elapsed,
              static_cast<double>(replayed) / eval_elapsed / 1e6);
  return 0;
}
