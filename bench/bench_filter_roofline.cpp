// Roofline-style filter-datapath bakeoff: how far each state-stage layout
// gets from the scalar per-packet baseline toward the memory roofline,
// across the bakeoff trace mixes.
//
// Rows (k=4, m=3, dt=5s; N per mix):
//   scalar        BitmapFilter, per-packet mark/test (the paper's loop)
//   chunked       BitmapFilter batch path, SIMD kernel off
//   blocked       BlockedBitmapFilter batch path, SIMD kernel off
//   blocked+simd  BlockedBitmapFilter batch path, SIMD kernel on
//
// Mixes (each a point on the roofline, from compute-bound to
// memory-bound):
//   eval   the calibrated campus trace in natural arrival order at the
//          paper geometry (N=2^20). Runs are short (interactive
//          interleaving), so batching barely engages; this is the
//          low-rate regime where throughput is irrelevant.
//   burst  the same packets in windowed capture order: per 1s window all
//          outbound then all inbound, each in time order -- what
//          coalesced capture hands the datapath under load. The filter
//          stays cache-resident, so this isolates the batch-hash and
//          chunk-bookkeeping gains.
//   flood  a high-churn trace (100x the connection rate) in capture-burst
//          order against a saturation-provisioned filter (N=2^24, m=10
//          for false-positive control at attack occupancy). The touched
//          working set thrashes L1/L2, the scalar loop pays m*k scattered
//          touches per mark, and the one-line-per-vector layout plus the
//          prefetched batch pipeline is the whole point -- the >= 2x
//          throughput claim is gated here.
//
// Correctness is asserted, not assumed: per mix, chunked must produce
// bitwise the verdict stream of scalar, and blocked+simd bitwise that of
// blocked. Emits `ROOFLINE mix=<m> row=<r> mpps=<x> speedup=<s>` lines
// for scripts/bench_report. `--min-speedup S` exits nonzero when
// blocked+simd (or blocked, where no SIMD kernel can run) fails to reach
// S x scalar on the flood mix; `--smoke` shortens the traces for CI and
// skips the gate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "filter/bitmap_filter.h"
#include "filter/blocked_bitmap.h"
#include "net/direction.h"
#include "util/hash.h"

using namespace upbound;

namespace {

struct Run {
  std::size_t start;
  std::size_t len;
  Direction dir;
};

struct Workload {
  const char* mix;
  unsigned log2_bits;
  unsigned hash_count;
  Trace packets;
  std::vector<Run> runs;  // maximal same-direction, time-sorted runs
};

void split_runs(Workload& w, const ClientNetwork& network) {
  std::size_t i = 0;
  while (i < w.packets.size()) {
    const Direction dir = network.classify(w.packets[i]);
    std::size_t j = i + 1;
    while (j < w.packets.size() &&
           network.classify(w.packets[j]) == dir &&
           w.packets[j].timestamp >= w.packets[j - 1].timestamp) {
      ++j;
    }
    w.runs.push_back({i, j - i, dir});
    i = j;
  }
}

Workload eval_mix(const GeneratedTrace& trace) {
  Workload w;
  w.mix = "eval";
  w.log2_bits = 20;
  w.hash_count = 3;
  w.packets = trace.packets;
  split_runs(w, trace.network);
  return w;
}

/// Windowed capture order: within each 1s window, every outbound packet
/// before every inbound one, both in arrival order. Same packets, same
/// marks and lookups, arranged as burst capture delivers them.
Workload burst_mix(const GeneratedTrace& trace, const char* mix,
                   unsigned log2_bits, unsigned hash_count) {
  Workload w;
  w.mix = mix;
  w.log2_bits = log2_bits;
  w.hash_count = hash_count;
  w.packets.reserve(trace.packets.size());
  const Duration window = Duration::sec(1.0);
  std::size_t i = 0;
  while (i < trace.packets.size()) {
    const SimTime end = trace.packets[i].timestamp + window;
    std::size_t j = i;
    while (j < trace.packets.size() && trace.packets[j].timestamp < end) {
      ++j;
    }
    for (std::size_t p = i; p < j; ++p) {
      if (trace.network.classify(trace.packets[p]) ==
          Direction::kOutbound) {
        w.packets.push_back(trace.packets[p]);
      }
    }
    for (std::size_t p = i; p < j; ++p) {
      if (trace.network.classify(trace.packets[p]) !=
          Direction::kOutbound) {
        w.packets.push_back(trace.packets[p]);
      }
    }
    i = j;
  }
  split_runs(w, trace.network);
  return w;
}

/// Drives one pass of the workload through `filter`, appending every
/// inbound verdict to `admits`. `batch` selects the batch entry points.
void drive(const Workload& w, StateFilter& filter, bool batch,
           std::vector<std::uint8_t>& admits) {
  static std::vector<char> flat;  // bool span; vector<bool> has no data()
  for (const Run& run : w.runs) {
    if (run.dir != Direction::kOutbound && run.dir != Direction::kInbound) {
      filter.advance_time(w.packets[run.start + run.len - 1].timestamp);
      continue;
    }
    const PacketBatch span{w.packets.data() + run.start, run.len};
    if (batch) {
      if (run.dir == Direction::kOutbound) {
        filter.record_outbound_batch(span);
      } else {
        if (flat.size() < run.len) flat.resize(run.len);
        filter.admits_inbound_batch(
            span, std::span<bool>{reinterpret_cast<bool*>(flat.data()),
                                  run.len});
        admits.insert(admits.end(), flat.begin(), flat.begin() + run.len);
      }
    } else {
      for (std::size_t p = 0; p < run.len; ++p) {
        const PacketRecord& pkt = span[p];
        filter.advance_time(pkt.timestamp);
        if (run.dir == Direction::kOutbound) {
          filter.record_outbound(pkt);
        } else {
          admits.push_back(filter.admits_inbound(pkt) ? 1 : 0);
        }
      }
    }
  }
}

BitmapFilterConfig geometry(const Workload& w) {
  BitmapFilterConfig config;
  config.log2_bits = w.log2_bits;
  config.vector_count = 4;
  config.hash_count = w.hash_count;
  config.rotate_interval = Duration::sec(5.0);
  return config;
}

struct RowSpec {
  const char* name;
  bool blocked;
  bool batch;
  bool simd;
};

constexpr RowSpec kRows[] = {
    {"scalar", false, false, false},
    {"chunked", false, true, false},
    {"blocked", true, true, false},
    {"blocked+simd", true, true, true},
};
constexpr std::size_t kRowCount = std::size(kRows);

/// All four rows on one mix; returns the gate speedup (blocked+simd over
/// scalar, or blocked where no SIMD kernel can run).
///
/// Rows are interleaved within each repetition and scored by their best
/// repetition, so a load spike on the host degrades every row's worst
/// samples instead of one row's whole set. Verdicts come from the last
/// repetition (they are identical across reps by construction: fresh
/// filter, same packets).
double run_mix(const Workload& w, std::size_t reps) {
  std::printf("-- mix=%s: %zu packets, %zu runs, N=2^%u, m=%u, %zu reps --\n",
              w.mix, w.packets.size(), w.runs.size(), w.log2_bits,
              w.hash_count, reps);
  double best[kRowCount];
  std::vector<std::uint8_t> admits[kRowCount];
  for (std::size_t r = 0; r < kRowCount; ++r) best[r] = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t r = 0; r < kRowCount; ++r) {
      const RowSpec& row = kRows[r];
      const bool prev = set_simd_hash_enabled(row.simd);
      // Fresh filter per repetition: state and the rotation clock must
      // restart with the trace.
      std::unique_ptr<StateFilter> filter;
      if (row.blocked) {
        filter = std::make_unique<BlockedBitmapFilter>(geometry(w));
      } else {
        filter = std::make_unique<BitmapFilter>(geometry(w));
      }
      admits[r].clear();
      const auto start = std::chrono::steady_clock::now();
      drive(w, *filter, row.batch, admits[r]);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed < best[r]) best[r] = elapsed;
      set_simd_hash_enabled(prev);
    }
  }

  if (admits[1] != admits[0]) {
    std::fprintf(stderr,
                 "FATAL: mix=%s chunked verdicts diverge from scalar\n",
                 w.mix);
    std::exit(1);
  }
  if (admits[3] != admits[2]) {
    std::fprintf(stderr,
                 "FATAL: mix=%s blocked+simd verdicts diverge from "
                 "blocked\n",
                 w.mix);
    std::exit(1);
  }

  const double packets = static_cast<double>(w.packets.size());
  double mpps[kRowCount];
  for (std::size_t r = 0; r < kRowCount; ++r) {
    mpps[r] = best[r] > 0.0 ? packets / best[r] / 1e6 : 0.0;
    std::printf("ROOFLINE mix=%s row=%s mpps=%.3f speedup=%.2f\n", w.mix,
                kRows[r].name, mpps[r],
                mpps[0] > 0.0 ? mpps[r] / mpps[0] : 0.0);
  }
  const double gate = simd_hash_available() ? mpps[3] : mpps[2];
  return mpps[0] > 0.0 ? gate / mpps[0] : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--min-speedup S]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto reps_for = [&](const Trace& t) {
    // Enough repetitions for a stable wall-clock read; smoke keeps CI
    // fast.
    return smoke ? std::size_t{1}
                 : std::max<std::size_t>(
                       6, 2'000'000 /
                              std::max<std::size_t>(1, t.size()));
  };

  bench::header("filter datapath roofline (k=4, m=3, dt=5s)",
                "state stage >= 2x scalar via blocking + batch hashing");
  std::printf("simd %s\n",
              simd_hash_available() ? "available" : "unavailable");

  const GeneratedTrace trace = generate_campus_trace(
      bench::eval_trace_config(/*duration_sec=*/smoke ? 5.0 : 30.0));
  run_mix(eval_mix(trace), reps_for(trace.packets));
  run_mix(burst_mix(trace, "burst", 20, 3), reps_for(trace.packets));

  // Flood: 100x the connection rate over a shorter span against a
  // saturation-provisioned filter. High churn spreads live state across
  // far more cache lines than L1/L2 hold, and the dense probe set makes
  // the flat layout pay m*k touches where blocked pays k.
  CampusTraceConfig flood_config =
      bench::eval_trace_config(/*duration_sec=*/smoke ? 2.0 : 10.0,
                               /*seed=*/11);
  flood_config.connections_per_sec = 8000.0;
  const GeneratedTrace flood = generate_campus_trace(flood_config);
  const double flood_speedup =
      run_mix(burst_mix(flood, "flood", 24, 10), reps_for(flood.packets));

  if (min_speedup > 0.0 && !smoke && flood_speedup < min_speedup) {
    std::fprintf(stderr, "FATAL: flood speedup %.2f < required %.2f\n",
                 flood_speedup, min_speedup);
    return 1;
  }
  return 0;
}
