// Fig. 9 reproduction: original vs filtered bandwidth throughput when the
// bitmap filter limits upload with RED thresholds. The paper bounds a
// ~146.7 Mbps campus link with L = 50 Mbps / H = 100 Mbps; this bench
// applies the same L:H ratio to its (scaled) trace. Expected shape: uplink
// clamped near H while the unfiltered trace rides far above; some downlink
// is filtered too because P2P download rides inbound connections.
#include "bench_common.h"
#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "sim/replay.h"
#include "sim/report.h"

using namespace upbound;

int main() {
  // Offered ~12 Mbps total (~10.5 Mbps uplink); bound at H = 6 Mbps with
  // L = 3 Mbps, the paper's 2:1 H:L ratio scaled to the trace.
  const double kLow = 3e6;
  const double kHigh = 6e6;

  bench::header("Fig. 9 -- Limiting upload traffic with the bitmap filter",
                "uplink bounded near H = 100 Mbps (theirs); both directions "
                "shrink because P2P downloads ride inbound connections");

  const CampusTraceConfig trace_config = bench::eval_trace_config();
  const GeneratedTrace trace = generate_campus_trace(trace_config);
  std::printf("thresholds: L = %s, H = %s; offered %s over the %s window\n\n",
              format_bits_per_sec(kLow).c_str(),
              format_bits_per_sec(kHigh).c_str(),
              format_bits_per_sec(
                  static_cast<double>(trace.outbound_bytes +
                                      trace.inbound_bytes) *
                  8.0 / trace_config.duration.to_sec())
                  .c_str(),
              trace_config.duration.to_string().c_str());

  EdgeRouterConfig config;
  config.network = trace.network;
  config.track_blocked_connections = true;

  EdgeRouter router{config, make_state_filter(bitmap_filter_spec(BitmapFilterConfig{})),
                    std::make_unique<RedDropPolicy>(kLow, kHigh)};
  const ReplayResult result =
      replay_trace(trace.packets, router, trace.network);

  std::printf("== Fig. 9-a (original) vs Fig. 9-b (filtered) ==\n");
  std::printf("%s\n", report::throughput_series(
                          {{"orig-up", &result.offered_outbound},
                           {"filt-up", &result.passed_outbound},
                           {"orig-down", &result.offered_inbound},
                           {"filt-down", &result.passed_inbound}},
                          /*max_rows=*/20)
                          .c_str());

  const double span = trace.span().to_sec();
  const auto avg_mbps = [span](double bytes) {
    return bytes * 8.0 / span / 1e6;
  };
  bench::row("uplink before -> after",
             "~130 -> ~100 Mbps (theirs)",
             report::num(avg_mbps(result.offered_outbound.total())) +
                 " -> " +
                 report::num(avg_mbps(result.passed_outbound.total())) +
                 " Mbps");
  bench::row("downlink before -> after", "also reduced",
             report::num(avg_mbps(result.offered_inbound.total())) + " -> " +
                 report::num(avg_mbps(result.passed_inbound.total())) +
                 " Mbps");

  // Steady-state clamp check over the busy middle of the trace. Note the
  // limiter polices UNSOLICITED inbound packets; upload on already-
  // established (solicited) connections can still burst past H for a
  // moment, exactly as the paper's Fig. 9-b curve does.
  const auto rates = result.passed_outbound.rates();
  CdfBuilder busy;
  const std::size_t lo = rates.size() / 5, hi = rates.size() * 3 / 5;
  for (std::size_t i = lo; i < hi; ++i) busy.add(rates[i] * 8.0);
  bench::row("filtered uplink, busy-window median", "near H",
             format_bits_per_sec(busy.percentile(50)));
  bench::row("filtered uplink, busy-window P90", "bursts allowed, bounded",
             format_bits_per_sec(busy.percentile(90)));

  const EdgeRouterStats& stats = result.stats;
  bench::row("inbound packets dropped", "-",
             report::percent(stats.inbound_drop_rate()));
  bench::row("upload suppressed via blocked connections", "-",
             format_bits_per_sec(
                 static_cast<double>(stats.suppressed_outbound_bytes) * 8.0 /
                 span));
  std::printf(
      "\n(the paper notes replay cannot suppress upload triggered by\n"
      " already-blocked requests; the blocklist models exactly that, so\n"
      " this harness bounds harder than their Fig. 9)\n");
  return 0;
}
