// Live tap throughput: a free-running sender blasts pre-encoded tap
// datagrams at the loopback capture socket while the real event loop +
// datapath (recvmmsg -> decode -> bitmap router) processes them. Reports
// sustained packets/sec through the full live path; exits nonzero when
// --min-pps is not met so CI can gate on the acceptance floor
// (>= 500k pkt/s on a release build).
//
// Usage:
//   bench_live_tap [--smoke] [--packets N] [--burst N] [--senders N]
//                  [--min-pps P]
//
// --smoke shrinks the packet target for CI. UDP drops under pressure are
// expected and harmless here: the sender cycles the ring until the
// receiver has PROCESSED the target count, so the measured rate is the
// receiver's, not the wire's.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "net/live/event_loop.h"
#include "net/live/live_datapath.h"
#include "net/live/udp_tap.h"
#include "trace/campus.h"
#include "util/clock.h"

namespace upbound::live {
namespace {

struct Ring {
  std::vector<std::vector<std::uint8_t>> datagrams;
  ClientNetwork network;
};

Ring encode_ring(std::size_t packets) {
  CampusTraceConfig config;
  config.duration = Duration::sec(10.0);
  config.connections_per_sec = 80.0;
  config.bandwidth_bps = 12e6;
  config.seed = 17;
  const GeneratedTrace trace = generate_campus_trace(config);
  Ring ring;
  ring.network = trace.network;
  const std::size_t n = std::min(packets, trace.packets.size());
  const Trace slice{trace.packets.begin(),
                    trace.packets.begin() + static_cast<std::ptrdiff_t>(n)};
  // Packed multi-record datagrams: the sender's per-datagram cost is
  // amortized over every frame inside, so the receiver's rate is the
  // datapath's, not the loopback's.
  ring.datagrams = pack_tap_datagrams(slice);
  return ring;
}

int run(std::uint64_t target_packets, std::size_t burst, double min_pps,
        std::size_t senders) {
  // ~20k distinct datagrams cycled by the senders: enough variety to keep
  // the filter honest, small enough to stay resident in cache.
  const Ring ring = encode_ring(20'000);

  MonotonicClock clock;
  EventLoop loop;
  UdpTapSource::Config tap_config;
  tap_config.port = 0;
  // Deployment stamping: one clock read per refill, monotone timeline.
  tap_config.timestamp_mode = TapTimestampMode::kOnReceive;
  tap_config.clock = &clock;
  auto source = std::make_unique<UdpTapSource>(tap_config);
  const std::uint16_t port = source->local_port();

  LiveConfig config;
  // Point the router at the trace's own network so every packet takes the
  // real outbound/inbound filter path instead of the cheap ignored path.
  config.router.network = ring.network;
  config.clock = &clock;
  config.max_packets = target_packets;
  config.run_duration = Duration::sec(60.0);  // wall failsafe

  MapFilterArgs args;
  args.set("bits", "20");
  const FilterSpec spec = FilterRegistry::instance().at("bitmap").parse(args);
  LiveDatapath datapath{config, spec, std::move(source), loop};

  // With packed datagrams one free-running sender saturates the receiver
  // even on a single core; --senders exists for many-core runners where
  // one sender might not keep up.
  std::atomic<bool> stop{false};
  std::vector<std::thread> sender_threads;
  sender_threads.reserve(senders);
  for (std::size_t s = 0; s < senders; ++s) {
    sender_threads.emplace_back([&, s] {
      UdpTapSender sender{port};
      const auto& data = ring.datagrams;
      std::size_t at = (s * data.size()) / senders;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t n = std::min(burst, data.size() - at);
        sender.send_burst(
            std::span<const std::vector<std::uint8_t>>{data.data() + at, n});
        at = (at + n) % data.size();
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  loop.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : sender_threads) t.join();
  datapath.finalize();

  const LiveStats& stats = datapath.stats();
  const double seconds = std::max(elapsed.count(), 1e-9);
  const double pps = static_cast<double>(stats.packets) / seconds;
  std::printf("live tap datapath: %llu packets in %.3f s -> %.0f pkt/s\n",
              static_cast<unsigned long long>(stats.packets), seconds, pps);
  std::printf("  frames %llu, decode errors %llu, batches %llu, "
              "forwarded %llu, dropped %llu\n",
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.decode_errors),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.forwarded),
              static_cast<unsigned long long>(stats.dropped));
  if (stats.packets < target_packets) {
    std::printf("  note: wall failsafe hit before the %llu-packet target\n",
                static_cast<unsigned long long>(target_packets));
  }
  if (min_pps > 0.0 && pps < min_pps) {
    std::printf("FAIL: %.0f pkt/s < --min-pps %.0f\n", pps, min_pps);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace upbound::live

int main(int argc, char** argv) {
  bool smoke = false;
  std::uint64_t packets = 0;
  std::size_t burst = 64;
  std::size_t senders = 1;
  double min_pps = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc) {
      packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--burst") == 0 && i + 1 < argc) {
      burst = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--senders") == 0 && i + 1 < argc) {
      senders = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--min-pps") == 0 && i + 1 < argc) {
      min_pps = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_live_tap [--smoke] [--packets N] "
                   "[--burst N] [--senders N] [--min-pps P]\n");
      return 2;
    }
  }
  if (packets == 0) packets = smoke ? 1'000'000 : 5'000'000;
  if (burst == 0) burst = 64;
  if (senders == 0) senders = 1;
  return upbound::live::run(packets, burst, min_pps, senders);
}
