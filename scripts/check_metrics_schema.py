#!/usr/bin/env python3
"""Validate a metrics JSONL file against the upbound.metrics.v1 schema.

The `upbound filter --metrics-out` exporter writes one canonical JSON
object per line (periodic "interval" snapshots followed by one "final"
snapshot). CI runs this validator over a fresh export so a schema drift
in the C++ exporter -- a renamed key, a histogram stat gone missing, a
counter that stops being monotone across snapshots -- fails the build
rather than silently breaking downstream dashboards.

Only the standard library is used. Exit status: 0 valid, 1 invalid,
2 usage error.

Usage: check_metrics_schema.py METRICS.jsonl [--expect-final]
"""

import json
import sys

SCHEMA = "upbound.metrics.v1"
TOP_LEVEL_KEYS = {"schema", "label", "sim_time_usec",
                  "counters", "gauges", "histograms"}
HISTOGRAM_KEYS = {"count", "sum", "min", "max", "p50", "p90", "p99"}

# Cross-counter identities the datapath maintains by construction; a
# violation means a stage counter bug, not a malformed file.
COUNTER_IDENTITIES = [
    ("state.lookups", ("state.hits", "state.misses")),
    ("policy.evaluations", ("policy.drops", "policy.passes")),
]


class SchemaError(Exception):
    pass


def fail(line_no, message):
    raise SchemaError(f"line {line_no}: {message}")


def is_uint(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_histogram(line_no, name, hist):
    if not isinstance(hist, dict):
        fail(line_no, f"histogram {name!r} is not an object")
    if set(hist) != HISTOGRAM_KEYS:
        fail(line_no, f"histogram {name!r} keys {sorted(hist)} != "
                      f"{sorted(HISTOGRAM_KEYS)}")
    for key, value in hist.items():
        if not is_uint(value):
            fail(line_no, f"histogram {name!r}.{key} is not a uint: {value!r}")
    if hist["count"] == 0:
        if any(hist[k] != 0 for k in ("sum", "min", "max", "p50", "p90", "p99")):
            fail(line_no, f"empty histogram {name!r} has nonzero stats")
        return
    # Percentiles are reported as log-linear bin floors, so each is <= the
    # exact max but may undershoot the exact min by one bin width.
    order = [hist["p50"], hist["p90"], hist["p99"]]
    if order != sorted(order):
        fail(line_no, f"histogram {name!r} percentiles not monotone: {order}")
    if hist["p99"] > hist["max"]:
        fail(line_no, f"histogram {name!r} p99 {hist['p99']} > max "
                      f"{hist['max']}")
    if hist["min"] > hist["max"]:
        fail(line_no, f"histogram {name!r} min > max")
    if hist["sum"] < hist["max"]:
        fail(line_no, f"histogram {name!r} sum {hist['sum']} < max "
                      f"{hist['max']}")


def check_line(line_no, obj, prev_counters):
    if not isinstance(obj, dict):
        fail(line_no, "not a JSON object")
    if set(obj) != TOP_LEVEL_KEYS:
        fail(line_no, f"top-level keys {sorted(obj)} != "
                      f"{sorted(TOP_LEVEL_KEYS)}")
    if obj["schema"] != SCHEMA:
        fail(line_no, f"schema {obj['schema']!r} != {SCHEMA!r}")
    if not isinstance(obj["label"], str) or not obj["label"]:
        fail(line_no, f"label must be a non-empty string: {obj['label']!r}")
    if not isinstance(obj["sim_time_usec"], int) or \
            isinstance(obj["sim_time_usec"], bool):
        fail(line_no, f"sim_time_usec is not an int: {obj['sim_time_usec']!r}")

    counters = obj["counters"]
    if not isinstance(counters, dict):
        fail(line_no, "counters is not an object")
    for name, value in counters.items():
        if not is_uint(value):
            fail(line_no, f"counter {name!r} is not a uint: {value!r}")
    for total, parts in COUNTER_IDENTITIES:
        if total in counters:
            expected = sum(counters.get(p, 0) for p in parts)
            if counters[total] != expected:
                fail(line_no, f"counter identity broken: {total}="
                              f"{counters[total]} != {' + '.join(parts)}"
                              f"={expected}")
    # Counters only ever increment, so successive snapshots of one run
    # must be monotone name-by-name.
    for name, value in prev_counters.items():
        if counters.get(name, 0) < value:
            fail(line_no, f"counter {name!r} regressed: {value} -> "
                          f"{counters.get(name, 0)}")

    gauges = obj["gauges"]
    if not isinstance(gauges, dict):
        fail(line_no, "gauges is not an object")
    for name, value in gauges.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            fail(line_no, f"gauge {name!r} is not a number: {value!r}")

    histograms = obj["histograms"]
    if not isinstance(histograms, dict):
        fail(line_no, "histograms is not an object")
    for name, hist in histograms.items():
        check_histogram(line_no, name, hist)
    return counters


def main(argv):
    expect_final = "--expect-final" in argv
    paths = [a for a in argv if not a.startswith("--")]
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    lines = 0
    last_label = None
    prev_counters = {}
    try:
        with open(paths[0], "r", encoding="utf-8") as fh:
            for line_no, raw in enumerate(fh, start=1):
                raw = raw.strip()
                if not raw:
                    fail(line_no, "blank line")
                try:
                    obj = json.loads(raw)
                except json.JSONDecodeError as err:
                    fail(line_no, f"invalid JSON: {err}")
                prev_counters = check_line(line_no, obj, prev_counters)
                last_label = obj["label"]
                lines += 1
        if lines == 0:
            raise SchemaError("file is empty")
        if expect_final and last_label != "final":
            raise SchemaError(
                f"last snapshot label is {last_label!r}, expected 'final'")
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except SchemaError as err:
        print(f"{paths[0]}: INVALID -- {err}", file=sys.stderr)
        return 1

    print(f"{paths[0]}: OK -- {lines} snapshot(s), schema {SCHEMA}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
