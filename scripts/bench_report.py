#!/usr/bin/env python3
"""Registry bakeoff bench report.

Runs bench_ablation, parses its machine-readable BAKEOFF lines into a
schema-validated JSON report (BENCH_6.json at the repo root), and compares
the fresh numbers against previously committed BENCH_*.json baselines,
flagging regressions larger than the threshold.

Deterministic metrics (bypass, collateral, memory) are compared strictly:
the replay is seeded and single-threaded, so they reproduce bit-for-bit on
any machine and a change means the code changed behaviour. Throughput
(mpps) is hardware-dependent and only ever produces warnings.

Standard library only.

Usage:
  scripts/bench_report.py [--build-dir build] [--out BENCH_6.json]
                          [--smoke] [--enforce] [--threshold 0.05]
                          [--validate-only FILE]
"""

import argparse
import json
import math
import os
import re
import subprocess
import sys

SCHEMA = {
    "type": "object",
    "required": ["schema", "version", "pr", "mode", "packets",
                 "reference_drop_rate", "backends"],
    "properties": {
        "schema": {"type": "string", "const": "upbound-bench-bakeoff"},
        "version": {"type": "integer"},
        "pr": {"type": "integer"},
        "mode": {"type": "string", "enum": ["full", "smoke"]},
        "packets": {"type": "integer", "minimum": 1},
        "reference_drop_rate": {"type": "number", "minimum": 0,
                                "maximum": 1},
        "backends": {
            "type": "object",
            "minProperties": 1,
            "values": {
                "type": "object",
                "required": ["drop_rate", "bypass", "collateral",
                             "memory_bytes", "mpps"],
                "properties": {
                    "drop_rate": {"type": "number", "minimum": 0,
                                  "maximum": 1},
                    "bypass": {"type": "number", "minimum": 0,
                               "maximum": 1},
                    "collateral": {"type": "number", "minimum": 0,
                                   "maximum": 1},
                    "memory_bytes": {"type": "integer", "minimum": 0},
                    "mpps": {"type": "number", "minimum": 0},
                },
            },
        },
    },
}

BAKEOFF_RE = re.compile(
    r"^BAKEOFF backend=(\S+) drop_rate=([\d.]+) bypass=([\d.]+) "
    r"collateral=([\d.]+) memory_bytes=(\d+) mpps=([\d.]+)\s*$")
PACKETS_RE = re.compile(r"registry bakeoff: every backend, (\d+) packets")
REFERENCE_RE = re.compile(
    r"reference \(naive exact timers.*: ([\d.]+)% drop rate")


def validate(doc, schema=SCHEMA, path="$"):
    """Minimal JSON-schema-style validator (stdlib only). Raises
    ValueError with the offending path on the first mismatch."""
    t = schema.get("type")
    if t == "object":
        if not isinstance(doc, dict):
            raise ValueError(f"{path}: expected object, got {type(doc).__name__}")
        for key in schema.get("required", []):
            if key not in doc:
                raise ValueError(f"{path}: missing required key '{key}'")
        if "minProperties" in schema and len(doc) < schema["minProperties"]:
            raise ValueError(f"{path}: wants >= {schema['minProperties']} entries")
        for key, sub in schema.get("properties", {}).items():
            if key in doc:
                validate(doc[key], sub, f"{path}.{key}")
        if "values" in schema:
            for key, value in doc.items():
                validate(value, schema["values"], f"{path}.{key}")
    elif t == "integer":
        if not isinstance(doc, int) or isinstance(doc, bool):
            raise ValueError(f"{path}: expected integer")
        _check_range(doc, schema, path)
    elif t == "number":
        if not isinstance(doc, (int, float)) or isinstance(doc, bool):
            raise ValueError(f"{path}: expected number")
        if isinstance(doc, float) and not math.isfinite(doc):
            raise ValueError(f"{path}: non-finite number")
        _check_range(doc, schema, path)
    elif t == "string":
        if not isinstance(doc, str):
            raise ValueError(f"{path}: expected string")
        if "const" in schema and doc != schema["const"]:
            raise ValueError(f"{path}: expected '{schema['const']}', got '{doc}'")
        if "enum" in schema and doc not in schema["enum"]:
            raise ValueError(f"{path}: '{doc}' not one of {schema['enum']}")


def _check_range(value, schema, path):
    if "minimum" in schema and value < schema["minimum"]:
        raise ValueError(f"{path}: {value} below minimum {schema['minimum']}")
    if "maximum" in schema and value > schema["maximum"]:
        raise ValueError(f"{path}: {value} above maximum {schema['maximum']}")


def run_bakeoff(build_dir, smoke):
    binary = os.path.join(build_dir, "bench", "bench_ablation")
    if not os.path.exists(binary):
        sys.exit(f"bench_report: {binary} not built")
    cmd = [binary] + (["--smoke"] if smoke else [])
    out = subprocess.run(cmd, capture_output=True, text=True, check=True)

    backends = {}
    packets = None
    reference = None
    for line in out.stdout.splitlines():
        m = BAKEOFF_RE.match(line)
        if m:
            backends[m.group(1)] = {
                "drop_rate": float(m.group(2)),
                "bypass": float(m.group(3)),
                "collateral": float(m.group(4)),
                "memory_bytes": int(m.group(5)),
                "mpps": float(m.group(6)),
            }
            continue
        m = PACKETS_RE.search(line)
        if m:
            packets = int(m.group(1))
            continue
        m = REFERENCE_RE.search(line)
        if m:
            reference = float(m.group(1)) / 100.0
    if not backends or packets is None or reference is None:
        sys.exit("bench_report: could not parse bench_ablation output")
    return {
        "schema": "upbound-bench-bakeoff",
        "version": 1,
        "pr": 6,
        "mode": "smoke" if smoke else "full",
        "packets": packets,
        "reference_drop_rate": reference,
        "backends": backends,
    }


def compare(fresh, baseline_path, threshold):
    """Returns (errors, warnings) comparing fresh against one baseline.
    Deterministic metrics exceeding the threshold are errors; throughput
    is a warning. A backend present only on one side is a warning (the
    zoo is allowed to grow)."""
    with open(baseline_path) as f:
        base = json.load(f)
    try:
        validate(base)
    except ValueError as e:
        return ([], [f"{baseline_path}: baseline invalid ({e}); skipped"])
    if base.get("mode") != fresh["mode"]:
        return ([], [f"{baseline_path}: mode '{base.get('mode')}' differs "
                     f"from fresh '{fresh['mode']}'; skipped"])

    errors, warnings = [], []
    for name, b in base["backends"].items():
        f_ = fresh["backends"].get(name)
        if f_ is None:
            warnings.append(f"{baseline_path}: backend '{name}' disappeared")
            continue
        for metric in ("bypass", "collateral"):
            old, new = b[metric], f_[metric]
            # Relative gate with an absolute floor: 0 -> 0.0001 is noise,
            # not a 5% regression of nothing.
            if new > old * (1 + threshold) + 1e-4:
                errors.append(
                    f"{name}.{metric}: {old:.6f} -> {new:.6f} "
                    f"(> {threshold:.0%} regression vs {baseline_path})")
        if f_["memory_bytes"] > b["memory_bytes"] * (1 + threshold):
            errors.append(
                f"{name}.memory_bytes: {b['memory_bytes']} -> "
                f"{f_['memory_bytes']} (vs {baseline_path})")
        if b["mpps"] > 0 and f_["mpps"] < b["mpps"] * (1 - threshold):
            warnings.append(
                f"{name}.mpps: {b['mpps']:.3f} -> {f_['mpps']:.3f} "
                f"(hardware-dependent; not enforced)")
    for name in fresh["backends"]:
        if name not in base["backends"]:
            warnings.append(f"new backend '{name}' (no baseline)")
    return errors, warnings


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default=None,
                    help="write the report here (default: no file)")
    ap.add_argument("--smoke", action="store_true",
                    help="short trace, bakeoff only")
    ap.add_argument("--enforce", action="store_true",
                    help="exit 1 on deterministic-metric regressions")
    ap.add_argument("--threshold", type=float, default=0.05)
    ap.add_argument("--baseline", action="append", default=None,
                    help="baseline BENCH_*.json (repeatable; default: all "
                         "BENCH_*.json at the repo root except --out)")
    ap.add_argument("--validate-only", metavar="FILE",
                    help="validate FILE against the schema and exit")
    args = ap.parse_args()

    if args.validate_only:
        with open(args.validate_only) as f:
            validate(json.load(f))
        print(f"{args.validate_only}: valid")
        return

    fresh = run_bakeoff(args.build_dir, args.smoke)
    validate(fresh)

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.baseline is None:
        out_name = os.path.basename(args.out) if args.out else None
        baselines = sorted(
            os.path.join(root, name) for name in os.listdir(root)
            if re.fullmatch(r"BENCH_\d+\.json", name) and name != out_name)
    else:
        baselines = args.baseline

    all_errors = []
    for path in baselines:
        errors, warnings = compare(fresh, path, args.threshold)
        for w in warnings:
            print(f"WARN  {w}")
        for e in errors:
            print(f"REGRESSION  {e}")
        all_errors.extend(errors)
    if not baselines:
        print("no baselines found; nothing to compare")

    if args.out:
        with open(args.out, "w") as f:
            json.dump(fresh, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out} ({len(fresh['backends'])} backends, "
              f"mode={fresh['mode']})")

    if all_errors and args.enforce:
        sys.exit(f"bench_report: {len(all_errors)} regression(s) beyond "
                 f"{args.threshold:.0%}")


if __name__ == "__main__":
    main()
