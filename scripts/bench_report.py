#!/usr/bin/env python3
"""Registry bakeoff bench report.

Runs bench_ablation, parses its machine-readable BAKEOFF lines into a
schema-validated JSON report (BENCH_<pr>.json at the repo root), and
compares the fresh numbers against previously committed BENCH_*.json
baselines, flagging regressions larger than the threshold.

Schema v2 adds an informational "suites" object folding in the remaining
bench binaries (filter roofline, parallel replay, telemetry/fault
overhead, attack engine, batch datapath). Suites are recorded for the
archaeology, never gated: their numbers are hardware-dependent
throughputs or already self-checked budgets.

Deterministic metrics (bypass, collateral, memory) are compared strictly:
the replay is seeded and single-threaded, so they reproduce bit-for-bit on
any machine and a change means the code changed behaviour. Throughput
(mpps) is hardware-dependent and only ever produces warnings.

Standard library only.

--trend renders a cross-version table from every committed BENCH_*.json
at the repo root (no bench run needed): one row per backend/metric, one
column per PR, so drift across versions is visible at a glance. Purely
informational -- CI prints it but never gates on it.

Usage:
  scripts/bench_report.py [--build-dir build] [--out BENCH_8.json]
                          [--pr 8] [--smoke] [--enforce]
                          [--threshold 0.05] [--no-suites]
                          [--validate-only FILE] [--trend]
"""

import argparse
import json
import math
import os
import re
import subprocess
import sys

SCHEMA = {
    "type": "object",
    "required": ["schema", "version", "pr", "mode", "packets",
                 "reference_drop_rate", "backends"],
    "properties": {
        "schema": {"type": "string", "const": "upbound-bench-bakeoff"},
        "version": {"type": "integer"},
        # Informational only (v2+): free-form per-suite results; never
        # compared by compare().
        "suites": {"type": "object"},
        "pr": {"type": "integer"},
        "mode": {"type": "string", "enum": ["full", "smoke"]},
        "packets": {"type": "integer", "minimum": 1},
        "reference_drop_rate": {"type": "number", "minimum": 0,
                                "maximum": 1},
        "backends": {
            "type": "object",
            "minProperties": 1,
            "values": {
                "type": "object",
                "required": ["drop_rate", "bypass", "collateral",
                             "memory_bytes", "mpps"],
                "properties": {
                    "drop_rate": {"type": "number", "minimum": 0,
                                  "maximum": 1},
                    "bypass": {"type": "number", "minimum": 0,
                               "maximum": 1},
                    "collateral": {"type": "number", "minimum": 0,
                                   "maximum": 1},
                    "memory_bytes": {"type": "integer", "minimum": 0},
                    "mpps": {"type": "number", "minimum": 0},
                },
            },
        },
    },
}

BAKEOFF_RE = re.compile(
    r"^BAKEOFF backend=(\S+) drop_rate=([\d.]+) bypass=([\d.]+) "
    r"collateral=([\d.]+) memory_bytes=(\d+) mpps=([\d.]+)\s*$")
PACKETS_RE = re.compile(r"registry bakeoff: every backend, (\d+) packets")
REFERENCE_RE = re.compile(
    r"reference \(naive exact timers.*: ([\d.]+)% drop rate")


def validate(doc, schema=SCHEMA, path="$"):
    """Minimal JSON-schema-style validator (stdlib only). Raises
    ValueError with the offending path on the first mismatch."""
    t = schema.get("type")
    if t == "object":
        if not isinstance(doc, dict):
            raise ValueError(f"{path}: expected object, got {type(doc).__name__}")
        for key in schema.get("required", []):
            if key not in doc:
                raise ValueError(f"{path}: missing required key '{key}'")
        if "minProperties" in schema and len(doc) < schema["minProperties"]:
            raise ValueError(f"{path}: wants >= {schema['minProperties']} entries")
        for key, sub in schema.get("properties", {}).items():
            if key in doc:
                validate(doc[key], sub, f"{path}.{key}")
        if "values" in schema:
            for key, value in doc.items():
                validate(value, schema["values"], f"{path}.{key}")
    elif t == "integer":
        if not isinstance(doc, int) or isinstance(doc, bool):
            raise ValueError(f"{path}: expected integer")
        _check_range(doc, schema, path)
    elif t == "number":
        if not isinstance(doc, (int, float)) or isinstance(doc, bool):
            raise ValueError(f"{path}: expected number")
        if isinstance(doc, float) and not math.isfinite(doc):
            raise ValueError(f"{path}: non-finite number")
        _check_range(doc, schema, path)
    elif t == "string":
        if not isinstance(doc, str):
            raise ValueError(f"{path}: expected string")
        if "const" in schema and doc != schema["const"]:
            raise ValueError(f"{path}: expected '{schema['const']}', got '{doc}'")
        if "enum" in schema and doc not in schema["enum"]:
            raise ValueError(f"{path}: '{doc}' not one of {schema['enum']}")


def _check_range(value, schema, path):
    if "minimum" in schema and value < schema["minimum"]:
        raise ValueError(f"{path}: {value} below minimum {schema['minimum']}")
    if "maximum" in schema and value > schema["maximum"]:
        raise ValueError(f"{path}: {value} above maximum {schema['maximum']}")


def run_bakeoff(build_dir, smoke, pr):
    binary = os.path.join(build_dir, "bench", "bench_ablation")
    if not os.path.exists(binary):
        sys.exit(f"bench_report: {binary} not built")
    cmd = [binary] + (["--smoke"] if smoke else [])
    out = subprocess.run(cmd, capture_output=True, text=True, check=True)

    backends = {}
    packets = None
    reference = None
    for line in out.stdout.splitlines():
        m = BAKEOFF_RE.match(line)
        if m:
            backends[m.group(1)] = {
                "drop_rate": float(m.group(2)),
                "bypass": float(m.group(3)),
                "collateral": float(m.group(4)),
                "memory_bytes": int(m.group(5)),
                "mpps": float(m.group(6)),
            }
            continue
        m = PACKETS_RE.search(line)
        if m:
            packets = int(m.group(1))
            continue
        m = REFERENCE_RE.search(line)
        if m:
            reference = float(m.group(1)) / 100.0
    if not backends or packets is None or reference is None:
        sys.exit("bench_report: could not parse bench_ablation output")
    return {
        "schema": "upbound-bench-bakeoff",
        "version": 2,
        "pr": pr,
        "mode": "smoke" if smoke else "full",
        "packets": packets,
        "reference_drop_rate": reference,
        "backends": backends,
    }


ROOFLINE_RE = re.compile(
    r"^ROOFLINE mix=(\S+) row=(\S+) mpps=([\d.]+) speedup=([\d.]+)\s*$")
REPLAY_ROW_RE = re.compile(
    r"^  (\S.*?\S)\s+([\d.]+) s\s+([\d.]+) Mpkt/s\s+x([\d.]+)")
OVERHEAD_RE = re.compile(
    r"overhead: (-?[\d.]+)% \(budget ([\d.]+)%\)")
ATTACK_RE = re.compile(
    r"generators: (\d+) attack packets in ([\d.]+) s \(([\d.]+) Mpkt/s\)")
GBENCH_RE = re.compile(
    r"^(BM_\S+)\s+([\d.]+) (ns|us|ms)\s+([\d.]+) (ns|us|ms)\s+(\d+)")

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6}


def _run_suite(build_dir, name, args=None, env=None, check=True):
    """Runs one bench binary, returning its stdout or None (with a
    warning) when the binary is missing or fails."""
    binary = os.path.join(build_dir, "bench", name)
    if not os.path.exists(binary):
        print(f"WARN  suite {name}: not built; skipped")
        return None
    full_env = dict(os.environ, **(env or {}))
    out = subprocess.run([binary] + (args or []), capture_output=True,
                         text=True, env=full_env)
    if check and out.returncode != 0:
        print(f"WARN  suite {name}: exit {out.returncode}; skipped")
        return None
    return out.stdout


def run_suites(build_dir, smoke):
    """Folds the non-bakeoff bench binaries into one informational
    object. Every entry is best-effort: a missing or failing binary
    produces a warning, not a report failure."""
    suites = {}

    out = _run_suite(build_dir, "bench_filter_roofline",
                     ["--smoke"] if smoke else [])
    if out is not None:
        mixes = {}
        for line in out.splitlines():
            m = ROOFLINE_RE.match(line)
            if m:
                mixes.setdefault(m.group(1), {})[m.group(2)] = {
                    "mpps": float(m.group(3)),
                    "speedup": float(m.group(4)),
                }
        if mixes:
            suites["filter_roofline"] = {"mixes": mixes}

    # The remaining binaries scale their traces via UPBOUND_BENCH_SCALE.
    scale_env = {"UPBOUND_BENCH_SCALE": "0.05"} if smoke else {}

    out = _run_suite(build_dir, "bench_parallel_replay", env=scale_env)
    if out is not None:
        rows = {}
        for line in out.splitlines():
            m = REPLAY_ROW_RE.match(line)
            if m:
                rows[m.group(1)] = {
                    "mpkt_per_sec": float(m.group(3)),
                    "speedup": float(m.group(4)),
                }
        if rows:
            suites["parallel_replay"] = {"rows": rows}

    for name in ("bench_telemetry_overhead", "bench_fault_overhead"):
        out = _run_suite(build_dir, name, env=scale_env, check=False)
        if out is not None:
            m = OVERHEAD_RE.search(out)
            if m:
                suites[name.removeprefix("bench_")] = {
                    "overhead_pct": float(m.group(1)),
                    "budget_pct": float(m.group(2)),
                    "pass": "PASS" in out,
                }

    out = _run_suite(build_dir, "bench_attack_engine", env=scale_env)
    if out is not None:
        m = ATTACK_RE.search(out)
        if m:
            suites["attack_engine"] = {
                "packets": int(m.group(1)),
                "mpkt_per_sec": float(m.group(3)),
            }

    gbench_args = ["--benchmark_filter=BM_Bitmap"] if smoke else []
    out = _run_suite(build_dir, "bench_batch_datapath", gbench_args)
    if out is not None:
        cases = {}
        for line in out.splitlines():
            m = GBENCH_RE.match(line)
            if m:
                cases[m.group(1)] = {
                    "real_ns": float(m.group(2)) * _UNIT_NS[m.group(3)],
                }
        if cases:
            suites["batch_datapath"] = {"cases": cases}

    return suites


def compare(fresh, baseline_path, threshold):
    """Returns (errors, warnings) comparing fresh against one baseline.
    Deterministic metrics exceeding the threshold are errors; throughput
    is a warning. A backend present only on one side is a warning (the
    zoo is allowed to grow)."""
    with open(baseline_path) as f:
        base = json.load(f)
    try:
        validate(base)
    except ValueError as e:
        return ([], [f"{baseline_path}: baseline invalid ({e}); skipped"])
    if base.get("mode") != fresh["mode"]:
        return ([], [f"{baseline_path}: mode '{base.get('mode')}' differs "
                     f"from fresh '{fresh['mode']}'; skipped"])

    errors, warnings = [], []
    for name, b in base["backends"].items():
        f_ = fresh["backends"].get(name)
        if f_ is None:
            warnings.append(f"{baseline_path}: backend '{name}' disappeared")
            continue
        for metric in ("bypass", "collateral"):
            old, new = b[metric], f_[metric]
            # Relative gate with an absolute floor: 0 -> 0.0001 is noise,
            # not a 5% regression of nothing.
            if new > old * (1 + threshold) + 1e-4:
                errors.append(
                    f"{name}.{metric}: {old:.6f} -> {new:.6f} "
                    f"(> {threshold:.0%} regression vs {baseline_path})")
        if f_["memory_bytes"] > b["memory_bytes"] * (1 + threshold):
            errors.append(
                f"{name}.memory_bytes: {b['memory_bytes']} -> "
                f"{f_['memory_bytes']} (vs {baseline_path})")
        if b["mpps"] > 0 and f_["mpps"] < b["mpps"] * (1 - threshold):
            warnings.append(
                f"{name}.mpps: {b['mpps']:.3f} -> {f_['mpps']:.3f} "
                f"(hardware-dependent; not enforced)")
    for name in fresh["backends"]:
        if name not in base["backends"]:
            warnings.append(f"new backend '{name}' (no baseline)")
    return errors, warnings


def _fmt_metric(metric, value):
    if metric == "memory_bytes":
        return str(value)
    if metric == "mpps":
        return f"{value:.3f}"
    return f"{value:.6f}"


def trend(root):
    """Prints the cross-version table from every committed BENCH_*.json.
    Returns the number of versions rendered. Invalid or unreadable files
    are warned about and skipped -- the trend is archaeology, not a gate."""
    reports = []
    for name in sorted(os.listdir(root)):
        if not re.fullmatch(r"BENCH_\d+\.json", name):
            continue
        path = os.path.join(root, name)
        try:
            with open(path) as f:
                doc = json.load(f)
            validate(doc)
        except (ValueError, OSError) as e:
            print(f"WARN  {name}: skipped ({e})")
            continue
        reports.append(doc)
    if not reports:
        print("trend: no valid BENCH_*.json baselines at the repo root")
        return 0
    reports.sort(key=lambda d: d["pr"])

    prs = [d["pr"] for d in reports]
    backends = sorted({b for d in reports for b in d["backends"]})
    metrics = ("bypass", "collateral", "memory_bytes", "mpps")

    cells = {}
    for d in reports:
        for backend, values in d["backends"].items():
            for metric in metrics:
                cells[(backend, metric, d["pr"])] = _fmt_metric(
                    metric, values[metric])

    label_w = max(len(f"{b}.{m}") for b in backends for m in metrics)
    col_w = {pr: max([len(f"PR{pr}")] +
                     [len(cells.get((b, m, pr), "-"))
                      for b in backends for m in metrics])
             for pr in prs}

    modes = ", ".join(f"PR{d['pr']}={d['mode']}" for d in reports)
    print(f"bench trend: {len(reports)} versions ({modes}); "
          "deterministic metrics reproduce bit-for-bit, mpps is "
          "hardware-dependent")
    header = "  ".join([f"{'':<{label_w}}"] +
                       [f"{f'PR{pr}':>{col_w[pr]}}" for pr in prs])
    print(header)
    for backend in backends:
        for metric in metrics:
            row = [f"{backend + '.' + metric:<{label_w}}"]
            for pr in prs:
                row.append(f"{cells.get((backend, metric, pr), '-'):>{col_w[pr]}}")
            print("  ".join(row))
    return len(reports)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default=None,
                    help="write the report here (default: no file)")
    ap.add_argument("--pr", type=int, default=8,
                    help="PR number stamped into the report")
    ap.add_argument("--smoke", action="store_true",
                    help="short traces everywhere")
    ap.add_argument("--no-suites", action="store_true",
                    help="bakeoff only; skip the informational suites")
    ap.add_argument("--enforce", action="store_true",
                    help="exit 1 on deterministic-metric regressions")
    ap.add_argument("--threshold", type=float, default=0.05)
    ap.add_argument("--baseline", action="append", default=None,
                    help="baseline BENCH_*.json (repeatable; default: all "
                         "BENCH_*.json at the repo root except --out)")
    ap.add_argument("--validate-only", metavar="FILE",
                    help="validate FILE against the schema and exit")
    ap.add_argument("--trend", action="store_true",
                    help="print the cross-version table from committed "
                         "BENCH_*.json and exit (informational)")
    args = ap.parse_args()

    if args.trend:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        trend(root)
        return

    if args.validate_only:
        with open(args.validate_only) as f:
            validate(json.load(f))
        print(f"{args.validate_only}: valid")
        return

    fresh = run_bakeoff(args.build_dir, args.smoke, args.pr)
    if not args.no_suites:
        fresh["suites"] = run_suites(args.build_dir, args.smoke)
    validate(fresh)

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.baseline is None:
        out_name = os.path.basename(args.out) if args.out else None
        baselines = sorted(
            os.path.join(root, name) for name in os.listdir(root)
            if re.fullmatch(r"BENCH_\d+\.json", name) and name != out_name)
    else:
        baselines = args.baseline

    all_errors = []
    for path in baselines:
        errors, warnings = compare(fresh, path, args.threshold)
        for w in warnings:
            print(f"WARN  {w}")
        for e in errors:
            print(f"REGRESSION  {e}")
        all_errors.extend(errors)
    if not baselines:
        print("no baselines found; nothing to compare")

    if args.out:
        with open(args.out, "w") as f:
            json.dump(fresh, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out} ({len(fresh['backends'])} backends, "
              f"mode={fresh['mode']})")

    if all_errors and args.enforce:
        sys.exit(f"bench_report: {len(all_errors)} regression(s) beyond "
                 f"{args.threshold:.0%}")


if __name__ == "__main__":
    main()
