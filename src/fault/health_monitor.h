// Filter health tracking and the degraded-operation stance.
//
// The paper's trust chain is: the bitmap's current-vector occupancy stays
// near its design point, so the Eq. 2 false-positive rate stays small, so
// a state miss is strong evidence of unsolicited traffic. When occupancy
// is driven far past the design point (saturation attack, undersized N)
// or the input clock misbehaves (regressed timestamps wedging rotation),
// that chain breaks -- a miss no longer means much, and the operator must
// pick which error to eat:
//
//   fail-open   admit stateless inbound while degraded (no legitimate
//               traffic lost, the upload bound is temporarily waived);
//   fail-closed drop stateless inbound outright (the bound holds, false
//               positives spike -- Eq. 2 with U -> 1 predicts this).
//
// The monitor is purely simulation-domain: every input is an occupancy
// reading or a clamped-clock event carried by packet timestamps, so state
// transitions are bitwise reproducible at any thread count.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace upbound {

enum class UnhealthyStance {
  kDisabled,    // never degrade; pre-PR behaviour
  kFailOpen,    // degraded => admit stateless inbound
  kFailClosed,  // degraded => drop stateless inbound
};

enum class HealthState { kHealthy, kDegraded };

const char* unhealthy_stance_name(UnhealthyStance stance);
const char* health_state_name(HealthState state);

struct HealthConfig {
  UnhealthyStance stance = UnhealthyStance::kDisabled;
  /// Current-vector occupancy at which the filter is declared degraded.
  /// 0.5 is far past the paper's design point (U ~ 0.04 at 15k
  /// connections): Eq. 2 gives a ~12.5% false-positive rate there for
  /// m=3.
  double occupancy_enter = 0.5;
  /// Occupancy below which the occupancy signal clears (hysteresis so a
  /// reading dancing around the threshold does not flap the stance).
  double occupancy_exit = 0.35;
  /// Occupancy is sampled every this many batches (a full popcount scan
  /// of the current vector -- ~128 KB at 2^20 bits -- so per-batch
  /// sampling would dominate the datapath). The cadence counts batches,
  /// not wall time, so sampling stays deterministic for a fixed batch
  /// framing. 1 = sample every batch (tests).
  std::uint64_t occupancy_sample_batches = 64;
  /// Clamped-clock events within one hold window that trip the clock
  /// signal; 0 disables the signal.
  std::uint64_t clamp_threshold = 0;
  /// How long the clock signal holds after the last clamp burst.
  Duration clamp_hold = Duration::sec(5.0);

  bool enabled() const { return stance != UnhealthyStance::kDisabled; }
};

class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthConfig& config);

  /// Feeds a current-vector occupancy reading taken at sim time `now`.
  void note_occupancy(double occupancy, SimTime now);
  /// Records one clamped-clock event (a packet whose timestamp regressed)
  /// at sim time `now`; BandwidthMeter clamps are fed here too.
  void note_clock_clamp(SimTime now);
  /// Capture-outage signal from the live datapath: while the capture fd
  /// is detached (failure -> backoff -> reattach window) the router is
  /// blind to new outbound state, so a stateless-inbound miss proves
  /// nothing -- the monitor degrades for the whole gap and the configured
  /// stance governs traffic. `active` latches on detach and clears on
  /// reattach; no hysteresis (an fd is down or it is not).
  void note_capture_outage(bool active, SimTime now);

  HealthState state() const { return state_; }
  bool degraded() const { return state_ == HealthState::kDegraded; }
  const HealthConfig& config() const { return config_; }

  std::uint64_t transitions_to_degraded() const { return to_degraded_; }
  std::uint64_t transitions_to_healthy() const { return to_healthy_; }
  std::uint64_t clamp_events() const { return clamp_events_; }
  std::uint64_t capture_outages() const { return capture_outages_; }

 private:
  void update(SimTime now);

  HealthConfig config_;
  HealthState state_ = HealthState::kHealthy;
  bool occupancy_signal_ = false;
  bool clock_signal_ = false;
  bool capture_signal_ = false;
  std::uint64_t capture_outages_ = 0;
  std::uint64_t clamp_events_ = 0;
  std::uint64_t clamps_in_window_ = 0;
  SimTime clock_signal_until_;
  std::uint64_t to_degraded_ = 0;
  std::uint64_t to_healthy_ = 0;
};

}  // namespace upbound
