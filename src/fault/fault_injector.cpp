#include "fault/fault_injector.h"

#include <cmath>
#include <stdexcept>

#include "filter/bitmap_filter.h"
#include "filter/counting_filter.h"
#include "filter/retouched_bitmap.h"
#include "util/hash.h"

namespace upbound {

namespace {

/// Uniform double in [0, 1) from a packet's identity -- stateless, so the
/// corruption decision for packet i never depends on feed order.
double unit_from(std::uint64_t seed, std::uint64_t index, std::uint64_t salt) {
  const std::uint64_t word = mix64(seed ^ mix64(index ^ salt));
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

std::uint64_t word_from(std::uint64_t seed, std::uint64_t index,
                        std::uint64_t salt) {
  return mix64(seed ^ mix64(index ^ salt));
}

constexpr std::uint64_t kCorruptGateSalt = 0x636f727275707431ULL;
constexpr std::uint64_t kCorruptBitsSalt = 0x636f727275707432ULL;

}  // namespace

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  for (const FaultEvent& ev : spec_.events) {
    switch (ev.kind) {
      case FaultKind::kCorruptPacket:
        // Multiple corrupt entries combine into one effective rate.
        corrupt_rate_ = 1.0 - (1.0 - corrupt_rate_) * (1.0 - ev.value);
        break;
      case FaultKind::kClockSkew:
        skew_factor_ *= ev.value;
        break;
      case FaultKind::kClockStep:
        steps_.push_back(ev);
        break;
      case FaultKind::kCaptureKill:
        capture_kills_.push_back(StallEvent{ev.at_packet, 0.0, false});
        break;
      case FaultKind::kCaptureStall:
        capture_stalls_.push_back(StallEvent{ev.at_packet, ev.value, false});
        break;
      case FaultKind::kCheckpointCorrupt:
        checkpoint_corrupt_gens_.push_back(ev.aux);
        break;
      default:
        break;  // lane faults are laid out in bind()
    }
  }
}

void FaultInjector::bind(std::size_t shards) {
  lanes_.assign(shards, LaneFaults{});
  packets_corrupted_ = 0;
  clock_faulted_ = 0;
  for (const FaultEvent& ev : spec_.events) {
    const bool lane_scoped =
        ev.kind == FaultKind::kKillShard ||
        ev.kind == FaultKind::kStallShard || ev.kind == FaultKind::kFlipBit ||
        ev.kind == FaultKind::kRingOverflow;
    if (!lane_scoped) continue;
    if (ev.shard >= shards) {
      throw std::invalid_argument(
          std::string("fault-spec: ") + fault_kind_name(ev.kind) +
          " targets shard " + std::to_string(ev.shard) + " but the run has " +
          std::to_string(shards) + " shards");
    }
    LaneFaults& lane = lanes_[ev.shard];
    lane.faulted = true;
    switch (ev.kind) {
      case FaultKind::kKillShard:
        lane.kill_at = std::min(lane.kill_at, ev.at_packet);
        break;
      case FaultKind::kStallShard:
        lane.stalls.push_back(StallEvent{ev.at_packet, ev.value, false});
        break;
      case FaultKind::kFlipBit:
        lane.flips.push_back(FlipEvent{ev.at_packet, ev.aux, false});
        break;
      case FaultKind::kRingOverflow:
        lane.ring_overflow = true;
        break;
      default:
        break;
    }
  }
}

void FaultInjector::apply_feed(std::uint64_t index, PacketRecord& pkt) {
  if (corrupt_rate_ > 0.0 &&
      unit_from(seed_, index, kCorruptGateSalt) < corrupt_rate_) {
    // Deterministic multi-field mangle: the kind of damage a broken NIC or
    // capture box produces -- a bad checksum, a torn length field, and
    // (sometimes) a smashed port that re-routes the packet entirely.
    const std::uint64_t bits = word_from(seed_, index, kCorruptBitsSalt);
    pkt.checksum_valid = false;
    pkt.payload_size ^= static_cast<std::uint32_t>(bits & 0x3ff);
    if ((bits & 0x400) != 0) {
      pkt.tuple.dst_port = static_cast<std::uint16_t>(bits >> 16);
    }
    ++packets_corrupted_;
  }

  bool clock_touched = false;
  if (skew_factor_ != 1.0) {
    pkt.timestamp = SimTime::from_usec(static_cast<std::int64_t>(
        std::llround(static_cast<double>(pkt.timestamp.usec()) *
                     skew_factor_)));
    clock_touched = true;
  }
  for (const FaultEvent& step : steps_) {
    if (index >= step.at_packet) {
      pkt.timestamp = pkt.timestamp + Duration::sec(step.value);
      clock_touched = true;
    }
  }
  if (clock_touched) ++clock_faulted_;
}

double FaultInjector::take_stall_ms(std::size_t shard,
                                    std::uint64_t processed) {
  LaneFaults& lane = lanes_[shard];
  for (StallEvent& stall : lane.stalls) {
    if (!stall.taken && processed >= stall.at_packet) {
      stall.taken = true;
      ++lane.stalls_taken;
      return stall.ms;
    }
  }
  return 0.0;
}

void FaultInjector::apply_state_faults(std::size_t shard,
                                       std::uint64_t processed,
                                       StateFilter& filter) {
  LaneFaults& lane = lanes_[shard];
  for (FlipEvent& flip : lane.flips) {
    if (flip.applied || processed < flip.at_packet) continue;
    flip.applied = true;
    // Backends with a bit/counter plane take the flip; exact-state
    // filters (SPI/naive hash maps) have nothing addressable to flip.
    auto* bitmap = dynamic_cast<BitmapFilter*>(&filter);
    if (bitmap == nullptr) {
      if (auto* retouched = dynamic_cast<RetouchedBitmapFilter*>(&filter)) {
        bitmap = &retouched->inner();  // flip the ground-truth bit plane
      }
    }
    if (bitmap != nullptr) {
      const std::size_t v = bitmap->current_index();
      const std::size_t bit = flip.bit % bitmap->config().bits();
      std::vector<std::uint64_t> words(bitmap->vector_words(v).begin(),
                                       bitmap->vector_words(v).end());
      words[bit / 64] ^= std::uint64_t{1} << (bit % 64);
      bitmap->load_vector_words(v, words);
      ++lane.bits_flipped;
      continue;
    }
    if (auto* counting = dynamic_cast<CountingFilter*>(&filter)) {
      counting->corrupt_cell(flip.bit);
      ++lane.bits_flipped;
      continue;
    }
    ++lane.flips_ignored;
  }
}

std::uint64_t FaultInjector::next_lane_trigger(std::size_t shard,
                                               std::uint64_t processed) const {
  const LaneFaults& lane = lanes_[shard];
  std::uint64_t next = kFaultNever;
  if (lane.kill_at != kFaultNever && lane.kill_at > processed) {
    next = lane.kill_at;
  }
  for (const FlipEvent& flip : lane.flips) {
    if (!flip.applied && flip.at_packet > processed) {
      next = std::min(next, flip.at_packet);
    }
  }
  for (const StallEvent& stall : lane.stalls) {
    if (!stall.taken && stall.at_packet > processed) {
      next = std::min(next, stall.at_packet);
    }
  }
  return next;
}

std::size_t FaultInjector::ring_chunks_for(std::size_t shard,
                                           std::size_t fallback) const {
  return lanes_[shard].ring_overflow ? 2 : fallback;
}

bool FaultInjector::take_capture_kill(std::uint64_t frames_delivered) {
  for (StallEvent& kill : capture_kills_) {
    if (!kill.taken && frames_delivered >= kill.at_packet) {
      kill.taken = true;
      ++capture_kills_taken_;
      return true;
    }
  }
  return false;
}

double FaultInjector::take_capture_stall_ms(std::uint64_t frames_delivered) {
  for (StallEvent& stall : capture_stalls_) {
    if (!stall.taken && frames_delivered >= stall.at_packet) {
      stall.taken = true;
      ++capture_stalls_taken_;
      return stall.ms;
    }
  }
  return 0.0;
}

bool FaultInjector::corrupt_checkpoint(std::uint64_t generation) const {
  for (const std::uint64_t gen : checkpoint_corrupt_gens_) {
    if (gen == generation) return true;
  }
  return false;
}

std::uint64_t FaultInjector::bits_flipped() const {
  std::uint64_t n = 0;
  for (const LaneFaults& lane : lanes_) n += lane.bits_flipped;
  return n;
}

std::uint64_t FaultInjector::flips_ignored() const {
  std::uint64_t n = 0;
  for (const LaneFaults& lane : lanes_) n += lane.flips_ignored;
  return n;
}

std::uint64_t FaultInjector::stalls_taken() const {
  std::uint64_t n = 0;
  for (const LaneFaults& lane : lanes_) n += lane.stalls_taken;
  return n;
}

}  // namespace upbound
