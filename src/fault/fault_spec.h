// Deterministic fault schedule grammar -- the parsed form of --fault-spec.
//
// A spec is a comma-separated list of fault events. Every trigger is
// expressed in the simulation domain (a packet index in the global trace
// or in one shard's packet subsequence), never in wall-clock time, so a
// spec plus a seed reproduces the exact same faults on any machine at any
// thread count. Grammar (one entry per event):
//
//   kill-shard:<s>[@<n>]        shard s's worker dies after processing n
//                               packets of its stream (default 0: dies
//                               before its first packet)
//   stall-shard:<s>[@<n>][:<ms>]  worker sleeps <ms> wall-clock ms (default
//                               100) once shard s has processed n packets;
//                               perturbs timing only, never results
//   corrupt:<rate>              each fed packet is corrupted independently
//                               with probability rate (seeded RNG keyed by
//                               the packet index)
//   clock-step:<sec>[@<n>]      adds <sec> (may be negative: a regression)
//                               to every timestamp from global packet n on
//   clock-skew:<factor>         multiplies every timestamp by factor
//                               (drifting capture clock)
//   flip-bit:<s>:<bit>[@<n>]    flips bit <bit> of the current vector of
//                               shard s's bitmap filter once it has
//                               processed n packets (ignored, counted, for
//                               non-bitmap filters)
//   ring-overflow:<s>           clamps shard s's hand-off ring to the
//                               minimum capacity, forcing producer
//                               backpressure on every chunk
//
// Daemon-plane faults (the live datapath; no shard scope -- triggers
// count frames the capture source delivered or checkpoint generations):
//
//   capture.kill[@<n>]          the capture source's fd dies once it has
//                               delivered n frames (default 0); exercises
//                               the detach -> backoff -> reattach cycle
//   capture.stall:<ms>[@<n>]    the datapath detaches the capture fd for
//                               <ms> wall-clock ms once n frames were
//                               delivered, then reattaches -- a bounded,
//                               deterministic outage window
//   checkpoint.corrupt:<g>      the checkpointer's write of generation g
//                               is bit-flipped after its CRC was sealed,
//                               so restore must skip it (typed
//                               corrupt-crc) and fall back a generation
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace upbound {

enum class FaultKind {
  kKillShard,
  kStallShard,
  kCorruptPacket,
  kClockStep,
  kClockSkew,
  kFlipBit,
  kRingOverflow,
  // Daemon-plane kinds (live datapath; never shard-scoped, so bind()
  // ignores them at any shard count).
  kCaptureKill,
  kCaptureStall,
  kCheckpointCorrupt,
};

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kKillShard;
  /// Target shard for the shard-scoped kinds; unused otherwise.
  std::size_t shard = 0;
  /// Trigger: packet index (shard-local for shard-scoped kinds, global
  /// trace index for clock faults). 0 = from the start.
  std::uint64_t at_packet = 0;
  /// Kind-specific magnitude: corruption rate, clock step seconds, skew
  /// factor, or stall milliseconds.
  double value = 0.0;
  /// Kind-specific extra: bit index for flip-bit.
  std::uint64_t aux = 0;

  bool operator==(const FaultEvent&) const = default;
};

struct FaultSpec {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Parses the --fault-spec grammar above. Throws std::invalid_argument
  /// with a pointed message on malformed input.
  static FaultSpec parse(const std::string& text);

  std::string to_string() const;
};

}  // namespace upbound
