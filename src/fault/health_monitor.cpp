#include "fault/health_monitor.h"

#include <limits>
#include <stdexcept>

namespace upbound {

const char* unhealthy_stance_name(UnhealthyStance stance) {
  switch (stance) {
    case UnhealthyStance::kDisabled: return "disabled";
    case UnhealthyStance::kFailOpen: return "fail-open";
    case UnhealthyStance::kFailClosed: return "fail-closed";
  }
  return "unknown";
}

const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(const HealthConfig& config)
    : config_(config),
      clock_signal_until_(SimTime::from_usec(
          std::numeric_limits<std::int64_t>::min())) {
  if (!(config_.occupancy_enter > 0.0 && config_.occupancy_enter <= 1.0) ||
      config_.occupancy_exit < 0.0 ||
      config_.occupancy_exit > config_.occupancy_enter) {
    throw std::invalid_argument(
        "HealthMonitor: need 0 < occupancy_enter <= 1 and "
        "0 <= occupancy_exit <= occupancy_enter");
  }
}

void HealthMonitor::note_occupancy(double occupancy, SimTime now) {
  if (occupancy >= config_.occupancy_enter) {
    occupancy_signal_ = true;
  } else if (occupancy <= config_.occupancy_exit) {
    occupancy_signal_ = false;
  }
  update(now);
}

void HealthMonitor::note_clock_clamp(SimTime now) {
  ++clamp_events_;
  if (config_.clamp_threshold == 0) {
    update(now);
    return;
  }
  // Bursts within one hold window accumulate; a quiet window resets the
  // count, so sporadic reordering never trips the signal.
  if (clock_signal_ || now <= clock_signal_until_) {
    ++clamps_in_window_;
  } else {
    clamps_in_window_ = 1;
  }
  clock_signal_until_ = now + config_.clamp_hold;
  if (clamps_in_window_ >= config_.clamp_threshold) clock_signal_ = true;
  update(now);
}

void HealthMonitor::note_capture_outage(bool active, SimTime now) {
  if (active && !capture_signal_) ++capture_outages_;
  capture_signal_ = active;
  update(now);
}

void HealthMonitor::update(SimTime now) {
  if (clock_signal_ && now > clock_signal_until_) {
    clock_signal_ = false;
    clamps_in_window_ = 0;
  }
  const HealthState next =
      (occupancy_signal_ || clock_signal_ || capture_signal_)
          ? HealthState::kDegraded
          : HealthState::kHealthy;
  if (next == state_) return;
  state_ = next;
  if (next == HealthState::kDegraded) {
    ++to_degraded_;
  } else {
    ++to_healthy_;
  }
}

}  // namespace upbound
