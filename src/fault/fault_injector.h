// Deterministic fault injection for the replay engine.
//
// The injector turns a FaultSpec + seed into concrete, reproducible
// perturbations of a replay run. Faults split into two planes:
//
//  * feed faults (corrupt, clock-step, clock-skew) are applied by the
//    partitioning thread to each packet, keyed by its global trace index,
//    BEFORE sharding -- so the same packet is corrupted identically at any
//    thread/shard count;
//  * lane faults (kill-shard, stall-shard, flip-bit, ring-overflow) are
//    applied by the worker owning the target shard, triggered by that
//    shard's local processed-packet count -- a quantity the thread
//    schedule cannot influence.
//
// Everything is off unless a spec is supplied, and the whole plane can be
// compiled out with UPBOUND_FAULTS=OFF (mirrors UPBOUND_TELEMETRY):
// kFaultsCompiled folds to false and the replay engine's injection hooks
// disappear at compile time.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "fault/fault_spec.h"
#include "filter/state_filter.h"
#include "net/packet.h"

namespace upbound {

#ifdef UPBOUND_FAULTS_OFF
inline constexpr bool kFaultsCompiled = false;
#else
inline constexpr bool kFaultsCompiled = true;
#endif

/// "this trigger never fires" sentinel for packet-count trigger points.
inline constexpr std::uint64_t kFaultNever =
    std::numeric_limits<std::uint64_t>::max();

class FaultInjector {
 public:
  FaultInjector(FaultSpec spec, std::uint64_t seed);

  const FaultSpec& spec() const { return spec_; }
  bool armed() const { return !spec_.events.empty(); }

  /// Re-derives per-shard schedules for a run over `shards` shards. Must
  /// be called before a replay uses the injector; throws when an event
  /// targets a shard >= shards. Resets all injection counters.
  void bind(std::size_t shards);
  std::size_t shards() const { return lanes_.size(); }

  // --- Feed plane (partitioning thread only) ---

  /// Applies corrupt/clock faults to the packet with global trace index
  /// `index`. Purely a function of (spec, seed, index, pkt).
  void apply_feed(std::uint64_t index, PacketRecord& pkt);

  // --- Lane plane (each shard queried only by its owning worker) ---

  /// Shard-local packet count at which the lane dies (kFaultNever = no
  /// kill scheduled).
  std::uint64_t kill_at(std::size_t shard) const {
    return lanes_[shard].kill_at;
  }
  /// True when the shard has any lane fault, so fault-free lanes keep the
  /// plain whole-chunk hot path.
  bool lane_faulted(std::size_t shard) const {
    return lanes_[shard].faulted;
  }
  /// One-shot stall: returns the sleep in milliseconds the first time the
  /// shard's processed count reaches the trigger, 0.0 otherwise.
  double take_stall_ms(std::size_t shard, std::uint64_t processed);
  /// Applies every scheduled bit flip whose trigger has been reached to
  /// the shard's filter (BitmapFilter only; others count as ignored).
  void apply_state_faults(std::size_t shard, std::uint64_t processed,
                          StateFilter& filter);
  /// Earliest pending lane trigger (kill, un-applied flip, un-taken
  /// stall) strictly after `processed`; kFaultNever when none. Lets a
  /// worker process packets in whole sub-batches between exact trigger
  /// points.
  std::uint64_t next_lane_trigger(std::size_t shard,
                                  std::uint64_t processed) const;
  /// Ring capacity override: the minimum (2 chunks) for ring-overflow
  /// targets, `fallback` otherwise.
  std::size_t ring_chunks_for(std::size_t shard, std::size_t fallback) const;

  // --- Daemon plane (live datapath; single-threaded, no bind() needed) ---

  /// One-shot capture-fd kill: true the first time the source's delivered
  /// frame count reaches a scheduled capture.kill trigger. The caller
  /// tears the fd down (inject_failure) and lets supervision reattach.
  bool take_capture_kill(std::uint64_t frames_delivered);
  /// One-shot capture stall: the detach window in milliseconds the first
  /// time `frames_delivered` reaches a capture.stall trigger, 0.0
  /// otherwise.
  double take_capture_stall_ms(std::uint64_t frames_delivered);
  /// Whether the checkpoint write of `generation` is scheduled to be
  /// corrupted (checkpoint.corrupt:<g>).
  bool corrupt_checkpoint(std::uint64_t generation) const;

  // --- Injection counters (stable after the run's threads joined) ---
  std::uint64_t packets_corrupted() const { return packets_corrupted_; }
  std::uint64_t capture_kills_taken() const { return capture_kills_taken_; }
  std::uint64_t capture_stalls_taken() const {
    return capture_stalls_taken_;
  }
  std::uint64_t clock_faulted_packets() const { return clock_faulted_; }
  std::uint64_t bits_flipped() const;
  std::uint64_t flips_ignored() const;
  std::uint64_t stalls_taken() const;

 private:
  struct FlipEvent {
    std::uint64_t at_packet = 0;
    std::uint64_t bit = 0;
    bool applied = false;
  };
  struct StallEvent {
    std::uint64_t at_packet = 0;
    double ms = 0.0;
    bool taken = false;
  };
  /// Per-shard schedule; only the owning worker reads/writes one entry, so
  /// the mutable cursors need no synchronization.
  struct LaneFaults {
    std::uint64_t kill_at = kFaultNever;
    std::vector<StallEvent> stalls;
    std::vector<FlipEvent> flips;
    bool ring_overflow = false;
    bool faulted = false;
    std::uint64_t bits_flipped = 0;
    std::uint64_t flips_ignored = 0;
    std::uint64_t stalls_taken = 0;
  };

  FaultSpec spec_;
  std::uint64_t seed_ = 0;
  std::vector<LaneFaults> lanes_;

  // Daemon-plane schedule (the single datapath thread only).
  std::vector<StallEvent> capture_kills_;   // ms unused
  std::vector<StallEvent> capture_stalls_;
  std::vector<std::uint64_t> checkpoint_corrupt_gens_;
  std::uint64_t capture_kills_taken_ = 0;
  std::uint64_t capture_stalls_taken_ = 0;

  // Feed-plane schedule (partitioning thread only).
  double corrupt_rate_ = 0.0;
  double skew_factor_ = 1.0;
  std::vector<FaultEvent> steps_;  // clock-step events
  std::uint64_t packets_corrupted_ = 0;
  std::uint64_t clock_faulted_ = 0;
};

}  // namespace upbound
