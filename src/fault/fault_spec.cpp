#include "fault/fault_spec.h"

#include <cstdlib>
#include <stdexcept>

namespace upbound {

namespace {

[[noreturn]] void bad(const std::string& entry, const std::string& why) {
  throw std::invalid_argument("fault-spec '" + entry + "': " + why);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t next = text.find(sep, start);
    const std::size_t end = next == std::string::npos ? text.size() : next;
    out.push_back(text.substr(start, end - start));
    if (next == std::string::npos) break;
    start = next + 1;
  }
  return out;
}

std::uint64_t parse_u64(const std::string& entry, const std::string& token) {
  if (token.empty()) bad(entry, "expected a number, got ''");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) {
    bad(entry, "expected a number, got '" + token + "'");
  }
  return static_cast<std::uint64_t>(v);
}

double parse_double(const std::string& entry, const std::string& token) {
  if (token.empty()) bad(entry, "expected a number, got ''");
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    bad(entry, "expected a number, got '" + token + "'");
  }
  return v;
}

/// Splits an optional "@<n>" trigger suffix off `token`; returns the base.
std::string take_at(const std::string& entry, const std::string& token,
                    std::uint64_t* at) {
  const std::size_t pos = token.find('@');
  if (pos == std::string::npos) return token;
  *at = parse_u64(entry, token.substr(pos + 1));
  return token.substr(0, pos);
}

FaultEvent parse_entry(const std::string& entry) {
  const std::vector<std::string> parts = split(entry, ':');
  const std::string& name = parts.front();
  const std::size_t operands = parts.size() - 1;
  FaultEvent ev;

  if (name == "kill-shard") {
    if (operands != 1) bad(entry, "expected kill-shard:<s>[@<n>]");
    ev.kind = FaultKind::kKillShard;
    ev.shard = static_cast<std::size_t>(
        parse_u64(entry, take_at(entry, parts[1], &ev.at_packet)));
  } else if (name == "stall-shard") {
    if (operands < 1 || operands > 2) {
      bad(entry, "expected stall-shard:<s>[@<n>][:<ms>]");
    }
    ev.kind = FaultKind::kStallShard;
    ev.shard = static_cast<std::size_t>(
        parse_u64(entry, take_at(entry, parts[1], &ev.at_packet)));
    ev.value = operands == 2 ? parse_double(entry, parts[2]) : 100.0;
    if (ev.value < 0.0) bad(entry, "stall duration must be >= 0 ms");
  } else if (name == "corrupt") {
    if (operands != 1) bad(entry, "expected corrupt:<rate>");
    ev.kind = FaultKind::kCorruptPacket;
    ev.value = parse_double(entry, parts[1]);
    if (ev.value < 0.0 || ev.value > 1.0) {
      bad(entry, "corruption rate must be in [0, 1]");
    }
  } else if (name == "clock-step") {
    if (operands != 1) bad(entry, "expected clock-step:<sec>[@<n>]");
    ev.kind = FaultKind::kClockStep;
    ev.value = parse_double(entry, take_at(entry, parts[1], &ev.at_packet));
  } else if (name == "clock-skew") {
    if (operands != 1) bad(entry, "expected clock-skew:<factor>");
    ev.kind = FaultKind::kClockSkew;
    ev.value = parse_double(entry, parts[1]);
    if (ev.value <= 0.0) bad(entry, "skew factor must be > 0");
  } else if (name == "flip-bit") {
    if (operands != 2) bad(entry, "expected flip-bit:<s>:<bit>[@<n>]");
    ev.kind = FaultKind::kFlipBit;
    ev.shard = static_cast<std::size_t>(parse_u64(entry, parts[1]));
    ev.aux = parse_u64(entry, take_at(entry, parts[2], &ev.at_packet));
  } else if (name == "ring-overflow") {
    if (operands != 1) bad(entry, "expected ring-overflow:<s>");
    ev.kind = FaultKind::kRingOverflow;
    ev.shard = static_cast<std::size_t>(parse_u64(entry, parts[1]));
  } else if (take_at(entry, name, &ev.at_packet) == "capture.kill") {
    // The @<n> trigger rides on the bare name (no ':' operand).
    if (operands != 0) bad(entry, "expected capture.kill[@<n>]");
    ev.kind = FaultKind::kCaptureKill;
  } else if (name == "capture.stall") {
    if (operands != 1) bad(entry, "expected capture.stall:<ms>[@<n>]");
    ev.kind = FaultKind::kCaptureStall;
    ev.value = parse_double(entry, take_at(entry, parts[1], &ev.at_packet));
    if (ev.value <= 0.0) bad(entry, "stall duration must be > 0 ms");
  } else if (name == "checkpoint.corrupt") {
    if (operands != 1) bad(entry, "expected checkpoint.corrupt:<generation>");
    ev.kind = FaultKind::kCheckpointCorrupt;
    ev.aux = parse_u64(entry, parts[1]);
  } else {
    bad(entry,
        "unknown fault (kill-shard|stall-shard|corrupt|clock-step|"
        "clock-skew|flip-bit|ring-overflow|capture.kill|capture.stall|"
        "checkpoint.corrupt)");
  }
  return ev;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKillShard: return "kill-shard";
    case FaultKind::kStallShard: return "stall-shard";
    case FaultKind::kCorruptPacket: return "corrupt";
    case FaultKind::kClockStep: return "clock-step";
    case FaultKind::kClockSkew: return "clock-skew";
    case FaultKind::kFlipBit: return "flip-bit";
    case FaultKind::kRingOverflow: return "ring-overflow";
    case FaultKind::kCaptureKill: return "capture.kill";
    case FaultKind::kCaptureStall: return "capture.stall";
    case FaultKind::kCheckpointCorrupt: return "checkpoint.corrupt";
  }
  return "unknown";
}

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  for (const std::string& entry : split(text, ',')) {
    if (entry.empty()) continue;  // tolerate "a,,b" and trailing commas
    spec.events.push_back(parse_entry(entry));
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) out += ',';
    out += fault_kind_name(ev.kind);
    switch (ev.kind) {
      case FaultKind::kKillShard:
        out += ':' + std::to_string(ev.shard) + '@' +
               std::to_string(ev.at_packet);
        break;
      case FaultKind::kStallShard:
        out += ':' + std::to_string(ev.shard) + '@' +
               std::to_string(ev.at_packet) + ':' +
               std::to_string(ev.value);
        break;
      case FaultKind::kCorruptPacket:
      case FaultKind::kClockSkew:
        out += ':' + std::to_string(ev.value);
        break;
      case FaultKind::kClockStep:
        out += ':' + std::to_string(ev.value) + '@' +
               std::to_string(ev.at_packet);
        break;
      case FaultKind::kFlipBit:
        out += ':' + std::to_string(ev.shard) + ':' +
               std::to_string(ev.aux) + '@' + std::to_string(ev.at_packet);
        break;
      case FaultKind::kRingOverflow:
        out += ':' + std::to_string(ev.shard);
        break;
      case FaultKind::kCaptureKill:
        out += '@' + std::to_string(ev.at_packet);
        break;
      case FaultKind::kCaptureStall:
        out += ':' + std::to_string(ev.value) + '@' +
               std::to_string(ev.at_packet);
        break;
      case FaultKind::kCheckpointCorrupt:
        out += ':' + std::to_string(ev.aux);
        break;
    }
  }
  return out;
}

}  // namespace upbound
