// Adversarial workloads against the {k x N}-bitmap filter (paper
// Section 4). Each generator models an attacker who knows the deployed
// design -- vector count k, rotation interval dt, hash family, even the
// hash seed (Kerckhoffs's principle) -- and emits a time-sorted packet
// stream that is blended with the honest campus trace and replayed
// through the edge router by the AttackEvaluator (attack/evaluator.h).
//
// The four shipped scenarios each target a distinct weakness:
//
//   collision probing    unsolicited inbound packets whose m hash bits
//                        all collide with marks legit outbound traffic
//                        left in the current vector (Bloom false
//                        positives, mined offline from the shared hashes)
//   saturation flooding  compromised inside hosts mark distinct tuples at
//                        high rate, driving occupancy U up and with it
//                        the network-wide false-positive rate (Eq. 2)
//   rotation timing      keepalives placed just after a rotation boundary
//                        stretch state lifetime to the full k*dt instead
//                        of the (k-1)*dt minimum, buying T_e of inbound
//                        reachability per packet
//   trigger forgery      one minimal outbound keepalive legitimizes an
//                        unbounded inbound-request -> outbound-upload
//                        loop: the paper's own conceded limitation
//
// Every generator is a pure function of (legit trace, network, params):
// no wall clock, no global state, so a fixed seed reproduces the attack
// byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "filter/bitmap_filter.h"
#include "net/direction.h"
#include "net/packet.h"

namespace upbound {

/// Per-packet attribution label carried alongside a blended trace. Kept
/// in a parallel vector rather than derived from tuples, because several
/// scenarios deliberately reuse legit five-tuples (stale replays).
enum class AttackLabel : std::uint8_t {
  kLegit,    // honest campus traffic
  kProbe,    // attack inbound measured for bypass
  kSupport,  // attack outbound that builds or keeps state (keepalive,
             // flood marking); not counted as achieved upload
  kUpload,   // attack outbound upload payload triggered by a probe
};

enum class AttackScenarioKind {
  kCollisionProbing,
  kSaturationFlooding,
  kRotationTiming,
  kTriggerForgery,
};

/// Stable scenario name used in CLI flags, report labels, and docs.
const char* attack_scenario_name(AttackScenarioKind kind);

/// Parses a scenario name (as printed by attack_scenario_name, with
/// "collision"/"saturation"/"rotation"/"forgery" accepted as short
/// forms). Returns false on unknown names.
bool parse_attack_scenario(const std::string& name, AttackScenarioKind* out);

/// All four scenarios in canonical (report) order.
std::vector<AttackScenarioKind> all_attack_scenarios();

struct AttackScenarioParams {
  /// Scales attacker effort: probe counts, flood width, flow counts.
  double intensity = 1.0;
  std::uint64_t seed = 42;
  /// The deployed filter design the attacker reverse-engineered. The
  /// collision miner uses its exact hash family; the timing scenario its
  /// rotation schedule.
  BitmapFilterConfig bitmap;
  /// Idle timeout of the SpiFilter baseline evaluated under the same
  /// blend; stale-replay probes are placed inside (T_e, spi_idle) so the
  /// exact-state baselines order strictly (naive < spi).
  Duration spi_idle_timeout = Duration::sec(240.0);
  /// Target set-bit fraction the saturation flood aims for (before the
  /// intensity scaling).
  double saturation_occupancy = 0.4;
  /// When true the rotation-timing keepalives land just *before* each
  /// boundary (worst placement, (k-1)*dt lifetime) instead of just after
  /// (best placement, k*dt). The contrast isolates the schedule leak.
  bool rotation_mistimed = false;
  /// Inbound request rate per forged flow during an active burst.
  double forgery_requests_per_sec = 8.0;

  /// T of the exact-timer baseline, locked to the bitmap's T_e so all
  /// filters see the same nominal expiry.
  Duration naive_timeout() const { return bitmap.expiry_timer(); }
};

/// One scenario's packets plus the per-packet labels (same length).
struct AttackTraffic {
  Trace packets;
  std::vector<AttackLabel> labels;
};

/// Legit + attack merged on the timestamp axis (legit wins ties), with
/// labels carried along packet-for-packet.
struct AttackBlend {
  Trace packets;
  std::vector<AttackLabel> labels;

  SimTime first_time() const {
    return packets.empty() ? SimTime::origin() : packets.front().timestamp;
  }
  SimTime last_time() const {
    return packets.empty() ? SimTime::origin() : packets.back().timestamp;
  }
  Duration span() const { return last_time() - first_time(); }
};

/// Generates one scenario's attack traffic against `legit`.
AttackTraffic generate_attack(AttackScenarioKind kind, const Trace& legit,
                              const ClientNetwork& network,
                              const AttackScenarioParams& params);

/// Merges the attack stream into the legit trace by timestamp; a legit
/// packet precedes an attack packet carrying the same timestamp.
AttackBlend blend_with_legit(const Trace& legit, const AttackTraffic& attack);

}  // namespace upbound
