#include "attack/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "filter/hash_family.h"
#include "util/rng.h"

namespace upbound {

namespace {

constexpr std::uint64_t kScenarioSeedSalt[] = {
    0xc0111510ULL,  // collision probing
    0x5a70f10dULL,  // saturation flooding
    0x407a7103ULL,  // rotation timing
    0xf0463d11ULL,  // trigger forgery
};

/// What the attacker can observe of the honest traffic: the time-ordered
/// marks legit outbound packets leave in the bitmap, the inside hosts
/// worth targeting, and the long-lived UDP flows whose tuples can be
/// replayed stale.
struct LegitSurvey {
  SimTime first = SimTime::origin();
  SimTime last = SimTime::origin();
  std::vector<Ipv4Addr> internal_hosts;          // first-seen order
  std::vector<FiveTuple> udp_outbound;           // first-seen order
  std::vector<SimTime> udp_outbound_last;        // last outbound time
  // bit index -> sorted outbound mark times (trace order == time order).
  std::unordered_map<std::size_t, std::vector<SimTime>> mark_times;
};

LegitSurvey survey_legit(const Trace& legit, const ClientNetwork& network,
                         const AttackScenarioParams& params,
                         bool want_marks) {
  LegitSurvey s;
  if (legit.empty()) return s;
  s.first = legit.front().timestamp;
  s.last = legit.back().timestamp;

  BloomHashFamily hashes{params.bitmap.bits(), params.bitmap.hash_count,
                         params.bitmap.hash_seed};
  std::vector<std::size_t> scratch(params.bitmap.hash_count);
  std::unordered_set<std::uint32_t> seen_hosts;
  std::unordered_map<FiveTuple, std::size_t, FiveTupleHash> udp_index;

  for (const PacketRecord& pkt : legit) {
    if (network.classify(pkt) != Direction::kOutbound) continue;
    if (seen_hosts.insert(pkt.tuple.src_addr.value()).second) {
      s.internal_hosts.push_back(pkt.tuple.src_addr);
    }
    if (pkt.is_udp()) {
      const auto [it, inserted] =
          udp_index.try_emplace(pkt.tuple, s.udp_outbound.size());
      if (inserted) {
        s.udp_outbound.push_back(pkt.tuple);
        s.udp_outbound_last.push_back(pkt.timestamp);
      } else {
        s.udp_outbound_last[it->second] = pkt.timestamp;
      }
    }
    if (want_marks) {
      hashes.outbound_indexes(pkt.tuple, params.bitmap.key_mode, scratch);
      for (const std::size_t bit : scratch) {
        s.mark_times[bit].push_back(pkt.timestamp);
      }
    }
  }
  return s;
}

/// A public address outside the client network (and away from loopback /
/// low reserved space), drawn deterministically.
Ipv4Addr random_external(Rng& rng, const ClientNetwork& network) {
  for (;;) {
    const auto a = static_cast<std::uint8_t>(11 + rng.next_below(180));
    if (a == 127) continue;
    const Ipv4Addr addr{a, static_cast<std::uint8_t>(rng.next_below(256)),
                        static_cast<std::uint8_t>(rng.next_below(256)),
                        static_cast<std::uint8_t>(1 + rng.next_below(254))};
    if (!network.is_internal(addr)) return addr;
  }
}

std::uint16_t random_port(Rng& rng) {
  return static_cast<std::uint16_t>(1024 + rng.next_below(64512));
}

std::uint16_t ephemeral_port(Rng& rng) {
  return static_cast<std::uint16_t>(32768 + rng.next_below(28233));
}

PacketRecord make_packet(SimTime t, const FiveTuple& tuple,
                         std::uint32_t payload_size, bool psh = false) {
  PacketRecord pkt;
  pkt.timestamp = t;
  pkt.tuple = tuple;
  if (tuple.protocol == Protocol::kTcp) {
    pkt.flags.ack = true;
    pkt.flags.psh = psh;
  }
  pkt.payload_size = payload_size;
  return pkt;
}

void emit(AttackTraffic& out, PacketRecord pkt, AttackLabel label) {
  out.packets.push_back(std::move(pkt));
  out.labels.push_back(label);
}

std::size_t scaled_count(double base, double intensity, std::size_t floor_) {
  const double v = base * intensity;
  const auto n = static_cast<std::size_t>(std::llround(std::max(0.0, v)));
  return std::max(floor_, n);
}

/// Replay delay for stale probes: past the exact-timer expiry T (= T_e)
/// but still inside the SPI idle window, so the SpiFilter admits what the
/// naive filter (and the bitmap, marks long rotated out) already forgot.
Duration stale_delay(const AttackScenarioParams& params) {
  const Duration naive = params.naive_timeout();
  const Duration probe = naive * 1.5;
  if (probe < params.spi_idle_timeout) return probe;
  if (params.spi_idle_timeout > naive) {
    return naive + (params.spi_idle_timeout - naive) * 0.5;
  }
  return probe;  // degenerate config (spi <= naive): ordering not possible
}

// ---------------------------------------------------------------------------
// Scenario 1: collision probing.
//
// The attacker knows the hash family, replays the observable outbound
// stream through it offline, and searches for external socket pairs whose
// m inbound bits are all covered by marks young enough to be guaranteed
// alive ((k-1)*dt, the minimum survival). Such a probe rides pure Bloom
// false positives through the current vector. Stale replays of idle legit
// UDP tuples are added so the exact baselines separate: the naive timer
// already expired them while SPI's idle window still admits them.
// ---------------------------------------------------------------------------
AttackTraffic collision_probing(const Trace& legit,
                                const ClientNetwork& network,
                                const AttackScenarioParams& params) {
  AttackTraffic out;
  const LegitSurvey s =
      survey_legit(legit, network, params, /*want_marks=*/true);
  if (s.internal_hosts.empty()) return out;

  Rng rng{params.seed ^ kScenarioSeedSalt[0]};
  BloomHashFamily hashes{params.bitmap.bits(), params.bitmap.hash_count,
                         params.bitmap.hash_seed};
  std::vector<std::size_t> bits(params.bitmap.hash_count);
  const Duration survive =
      params.bitmap.rotate_interval *
      static_cast<double>(params.bitmap.vector_count - 1);
  const Duration burst_step = Duration::msec(20);
  constexpr int kBurst = 3;

  SimTime window_start = s.first + params.bitmap.expiry_timer();
  if (window_start >= s.last) window_start = s.first + (s.last - s.first) * 0.25;
  const std::size_t slots = scaled_count(48, params.intensity, 8);
  const std::size_t budget = scaled_count(200'000, params.intensity, 1'000);
  const std::size_t per_slot = std::max<std::size_t>(1, budget / slots);
  const Duration slot_step = (s.last - window_start) / static_cast<std::int64_t>(slots);

  // True when every inbound bit of `tuple` holds a mark set at or before
  // `t` that is still guaranteed present at `t_end`.
  const auto covered = [&](const FiveTuple& tuple, SimTime t, SimTime t_end) {
    hashes.inbound_indexes(tuple, params.bitmap.key_mode, bits);
    for (const std::size_t bit : bits) {
      const auto it = s.mark_times.find(bit);
      if (it == s.mark_times.end()) return false;
      const auto& times = it->second;
      const auto up = std::upper_bound(times.begin(), times.end(), t);
      if (up == times.begin()) return false;
      if (*(up - 1) + survive <= t_end) return false;
    }
    return true;
  };

  for (std::size_t slot = 0; slot < slots; ++slot) {
    const SimTime t =
        window_start + slot_step * static_cast<std::int64_t>(slot);
    const SimTime t_end = t + burst_step * (kBurst - 1);
    FiveTuple candidate;
    bool mined = false;
    for (std::size_t trial = 0; trial < per_slot; ++trial) {
      candidate.protocol = Protocol::kUdp;
      candidate.src_addr = random_external(rng, network);
      candidate.src_port = random_port(rng);
      candidate.dst_addr =
          s.internal_hosts[rng.next_below(s.internal_hosts.size())];
      candidate.dst_port = random_port(rng);
      if (covered(candidate, t, t_end)) {
        mined = true;
        break;
      }
    }
    // A miss still sends the last candidate: the attacker pays for the
    // probe either way, and the evaluator's bypass rate reflects the
    // mining yield rather than only the successes.
    for (int b = 0; b < kBurst; ++b) {
      emit(out, make_packet(t + burst_step * b, candidate, 64),
           AttackLabel::kProbe);
    }
    (void)mined;
  }

  // Stale replays of idle legit UDP flows, from the (spoofed) peer side.
  const Duration delay = stale_delay(params);
  const std::size_t replays = scaled_count(32, params.intensity, 4);
  if (!s.udp_outbound.empty()) {
    const std::size_t stride =
        std::max<std::size_t>(1, s.udp_outbound.size() / replays);
    for (std::size_t i = 0; i < s.udp_outbound.size() &&
             out.packets.size() < slots * kBurst + replays * 2;
         i += stride) {
      const SimTime t = s.udp_outbound_last[i] + delay;
      const FiveTuple probe = s.udp_outbound[i].inverse();
      emit(out, make_packet(t, probe, 64), AttackLabel::kProbe);
      emit(out, make_packet(t + Duration::msec(50), probe, 64),
           AttackLabel::kProbe);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 2: saturation flooding.
//
// c compromised inside hosts send a spread of distinct-tuple outbound UDP
// datagrams; each marks m bits in all k vectors, so occupancy climbs
// toward the target U and with it the admission probability of *any*
// unsolicited inbound packet (Eq. 2: p = U^m). Random probes measure the
// inflated false-positive rate; echo probes (inverses of flood tuples,
// sent stale) keep the exact baselines strictly ordered.
// ---------------------------------------------------------------------------
AttackTraffic saturation_flooding(const Trace& legit,
                                  const ClientNetwork& network,
                                  const AttackScenarioParams& params) {
  AttackTraffic out;
  const LegitSurvey s =
      survey_legit(legit, network, params, /*want_marks=*/false);
  if (s.internal_hosts.empty()) return out;

  Rng rng{params.seed ^ kScenarioSeedSalt[1]};
  const std::size_t hosts =
      std::min(s.internal_hosts.size(),
               scaled_count(4, params.intensity, 1));
  const double n_bits = static_cast<double>(params.bitmap.bits());
  const double u_target = std::clamp(
      params.saturation_occupancy * params.intensity, 0.02, 0.98);
  const auto flood_count = static_cast<std::size_t>(std::ceil(
      -n_bits * std::log1p(-u_target) /
      static_cast<double>(params.bitmap.hash_count)));

  const Duration span = s.last - s.first;
  const SimTime flood_start = s.first + span * 0.10;
  const SimTime flood_end = s.first + span * 0.50;
  const Duration flood_step =
      (flood_end - flood_start) /
      static_cast<std::int64_t>(std::max<std::size_t>(1, flood_count));

  std::vector<FiveTuple> flood_tuples;
  std::vector<SimTime> flood_times;
  flood_tuples.reserve(flood_count);
  for (std::size_t i = 0; i < flood_count; ++i) {
    FiveTuple tuple;
    tuple.protocol = Protocol::kUdp;
    tuple.src_addr = s.internal_hosts[i % hosts];
    tuple.src_port = ephemeral_port(rng);
    tuple.dst_addr = random_external(rng, network);
    tuple.dst_port = random_port(rng);
    const SimTime t = flood_start + flood_step * static_cast<std::int64_t>(i);
    emit(out, make_packet(t, tuple, 16), AttackLabel::kSupport);
    flood_tuples.push_back(tuple);
    flood_times.push_back(t);
  }

  // Unsolicited probes against the saturated vector.
  const std::size_t probes = scaled_count(1'200, params.intensity, 64);
  const SimTime probe_start = s.first + span * 0.55;
  const Duration probe_step =
      (s.last - probe_start) / static_cast<std::int64_t>(probes);
  for (std::size_t i = 0; i < probes; ++i) {
    FiveTuple tuple;
    tuple.protocol = Protocol::kUdp;
    tuple.src_addr = random_external(rng, network);
    tuple.src_port = random_port(rng);
    tuple.dst_addr = s.internal_hosts[rng.next_below(s.internal_hosts.size())];
    tuple.dst_port = random_port(rng);
    emit(out,
         make_packet(probe_start + probe_step * static_cast<std::int64_t>(i),
                     tuple, 64),
         AttackLabel::kProbe);
  }

  // Stale echoes of the flood's own tuples: SPI still holds the flows the
  // flood created, the naive timer does not.
  const Duration delay = stale_delay(params);
  const std::size_t echoes =
      std::min(flood_tuples.size(), scaled_count(120, params.intensity, 8));
  if (!flood_tuples.empty() && echoes > 0) {
    const std::size_t stride =
        std::max<std::size_t>(1, flood_tuples.size() / echoes);
    for (std::size_t i = 0; i < flood_tuples.size(); i += stride) {
      emit(out,
           make_packet(flood_times[i] + delay, flood_tuples[i].inverse(), 64),
           AttackLabel::kProbe);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 3: rotation-boundary timing.
//
// A mark set at time tau survives until the rotation schedule clears it:
// between (k-1)*dt (tau just before a boundary) and k*dt (just after).
// An attacker who knows the schedule anchors keepalives at boundary+eps
// and needs only one packet per T_e to keep a flow reachable; the
// mistimed variant (boundary-eps) shows the same budget covering only a
// (k-1)/k fraction. Every third keepalive is skipped so the window where
// exact timers lapse while SPI's probe-refreshed flow survives keeps the
// baselines strictly ordered.
// ---------------------------------------------------------------------------
AttackTraffic rotation_timing(const Trace& legit, const ClientNetwork& network,
                              const AttackScenarioParams& params) {
  AttackTraffic out;
  const LegitSurvey s =
      survey_legit(legit, network, params, /*want_marks=*/false);
  if (s.internal_hosts.empty()) return out;

  Rng rng{params.seed ^ kScenarioSeedSalt[2]};
  const Duration dt = params.bitmap.rotate_interval;
  const Duration te = params.bitmap.expiry_timer();
  const Duration eps = std::min(dt * 0.02, Duration::msec(10));
  const std::size_t flows = scaled_count(3, params.intensity, 1);

  const SimTime window_start = s.first + dt;
  for (std::size_t f = 0; f < flows; ++f) {
    FiveTuple tuple;
    tuple.protocol = Protocol::kTcp;
    tuple.src_addr = s.internal_hosts[rng.next_below(s.internal_hosts.size())];
    tuple.src_port = ephemeral_port(rng);
    tuple.dst_addr = random_external(rng, network);
    tuple.dst_port = random_port(rng);

    // First rotation boundary at or after the window start; boundaries
    // sit at origin + n*dt (the filter anchors its schedule at origin).
    const std::int64_t dtu = dt.count_usec();
    std::int64_t b = ((window_start.usec() + dtu - 1) / dtu) * dtu;
    if (b <= 0) b = dtu;

    SimTime first_keepalive = SimTime::infinite();
    for (std::size_t i = 0; SimTime::from_usec(b) <= s.last; ++i, b += te.count_usec()) {
      if (i % 3 == 2) continue;  // skipped: the exact-timer lapse window
      const SimTime at = params.rotation_mistimed
                             ? SimTime::from_usec(b) - eps
                             : SimTime::from_usec(b) + eps;
      first_keepalive = std::min(first_keepalive, at);
      emit(out, make_packet(at, tuple, 1), AttackLabel::kSupport);
    }
    if (first_keepalive == SimTime::infinite()) continue;

    // Steady inbound probe stream measuring reachability.
    const FiveTuple probe = tuple.inverse();
    for (SimTime t = first_keepalive + Duration::msec(100); t <= s.last;
         t += Duration::msec(250)) {
      emit(out, make_packet(t, probe, 64), AttackLabel::kProbe);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 4: trigger forgery.
//
// The paper concedes that "a keepalive is cheap": one minimal outbound
// packet makes the flow look client-initiated, after which every inbound
// request can trigger an arbitrarily large outbound upload that itself
// refreshes the state. Requests arrive in bursts separated by quiet gaps
// longer than the exact timer T, so the first requests of each burst land
// on expired exact state (dropped by naive/bitmap, their uploads
// orphaned) while SPI's idle window, refreshed by the requests
// themselves, admits everything.
// ---------------------------------------------------------------------------
AttackTraffic trigger_forgery(const Trace& legit, const ClientNetwork& network,
                              const AttackScenarioParams& params) {
  AttackTraffic out;
  const LegitSurvey s =
      survey_legit(legit, network, params, /*want_marks=*/false);
  if (s.internal_hosts.empty()) return out;

  Rng rng{params.seed ^ kScenarioSeedSalt[3]};
  const Duration naive = params.naive_timeout();
  Duration gap = naive * 1.3;
  if (gap >= params.spi_idle_timeout && params.spi_idle_timeout > naive) {
    gap = naive + (params.spi_idle_timeout - naive) * 0.5;
  }
  const Duration burst_len = std::min(Duration::sec(2.5), naive * 0.5);
  const double rate = std::max(1.0, params.forgery_requests_per_sec);
  const auto burst_requests = static_cast<std::size_t>(
      std::max<long long>(3, std::llround(rate * burst_len.to_sec())));
  const Duration req_step = Duration::sec(1.0 / rate);
  const std::size_t flows = scaled_count(3, params.intensity, 1);
  const Duration span = s.last - s.first;

  for (std::size_t f = 0; f < flows; ++f) {
    FiveTuple tuple;
    tuple.protocol = Protocol::kTcp;
    tuple.src_addr = s.internal_hosts[rng.next_below(s.internal_hosts.size())];
    tuple.src_port = ephemeral_port(rng);
    tuple.dst_addr = random_external(rng, network);
    tuple.dst_port = random_port(rng);
    const FiveTuple request = tuple.inverse();

    SimTime t = s.first + span * 0.05 +
                Duration::msec(150) * static_cast<std::int64_t>(f);
    // The one minimal outbound packet that legitimizes the flow.
    emit(out, make_packet(t, tuple, 1), AttackLabel::kSupport);

    while (t < s.last) {
      const SimTime burst_start = t + Duration::msec(200);
      SimTime last_emit = burst_start;
      for (std::size_t j = 0; j < burst_requests; ++j) {
        // The first three requests land before the first upload response
        // can re-mark outbound state: on a lapsed timer they are clean
        // drops for the exact filters.
        const SimTime rt =
            j < 3 ? burst_start + Duration::msec(10) * static_cast<std::int64_t>(j)
                  : burst_start + Duration::msec(30) +
                        req_step * static_cast<std::int64_t>(j - 2);
        if (rt > s.last) break;
        emit(out, make_packet(rt, request, 64), AttackLabel::kProbe);
        for (int u = 0; u < 3; ++u) {
          emit(out,
               make_packet(rt + Duration::msec(30 + 15 * u), tuple, 1400,
                           /*psh=*/true),
               AttackLabel::kUpload);
        }
        last_emit = rt + Duration::msec(60);
      }
      t = last_emit + gap;
    }
  }
  return out;
}

}  // namespace

const char* attack_scenario_name(AttackScenarioKind kind) {
  switch (kind) {
    case AttackScenarioKind::kCollisionProbing:
      return "collision-probing";
    case AttackScenarioKind::kSaturationFlooding:
      return "saturation-flooding";
    case AttackScenarioKind::kRotationTiming:
      return "rotation-timing";
    case AttackScenarioKind::kTriggerForgery:
      return "trigger-forgery";
  }
  return "unknown";
}

bool parse_attack_scenario(const std::string& name, AttackScenarioKind* out) {
  for (const AttackScenarioKind kind : all_attack_scenarios()) {
    if (name == attack_scenario_name(kind)) {
      *out = kind;
      return true;
    }
  }
  if (name == "collision") *out = AttackScenarioKind::kCollisionProbing;
  else if (name == "saturation") *out = AttackScenarioKind::kSaturationFlooding;
  else if (name == "rotation") *out = AttackScenarioKind::kRotationTiming;
  else if (name == "forgery") *out = AttackScenarioKind::kTriggerForgery;
  else return false;
  return true;
}

std::vector<AttackScenarioKind> all_attack_scenarios() {
  return {AttackScenarioKind::kCollisionProbing,
          AttackScenarioKind::kSaturationFlooding,
          AttackScenarioKind::kRotationTiming,
          AttackScenarioKind::kTriggerForgery};
}

AttackTraffic generate_attack(AttackScenarioKind kind, const Trace& legit,
                              const ClientNetwork& network,
                              const AttackScenarioParams& params) {
  AttackTraffic traffic;
  switch (kind) {
    case AttackScenarioKind::kCollisionProbing:
      traffic = collision_probing(legit, network, params);
      break;
    case AttackScenarioKind::kSaturationFlooding:
      traffic = saturation_flooding(legit, network, params);
      break;
    case AttackScenarioKind::kRotationTiming:
      traffic = rotation_timing(legit, network, params);
      break;
    case AttackScenarioKind::kTriggerForgery:
      traffic = trigger_forgery(legit, network, params);
      break;
  }
  // Generators emit flow by flow; the blend needs one time axis. The sort
  // is stable so equal timestamps keep their (deterministic) emit order.
  std::vector<std::size_t> order(traffic.packets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return traffic.packets[a].timestamp <
                            traffic.packets[b].timestamp;
                   });
  AttackTraffic sorted;
  sorted.packets.reserve(traffic.packets.size());
  sorted.labels.reserve(traffic.labels.size());
  for (const std::size_t i : order) {
    sorted.packets.push_back(std::move(traffic.packets[i]));
    sorted.labels.push_back(traffic.labels[i]);
  }
  return sorted;
}

AttackBlend blend_with_legit(const Trace& legit, const AttackTraffic& attack) {
  AttackBlend blend;
  blend.packets.reserve(legit.size() + attack.packets.size());
  blend.labels.reserve(legit.size() + attack.packets.size());
  std::size_t li = 0;
  std::size_t ai = 0;
  while (li < legit.size() || ai < attack.packets.size()) {
    const bool take_legit =
        ai >= attack.packets.size() ||
        (li < legit.size() &&
         legit[li].timestamp <= attack.packets[ai].timestamp);
    if (take_legit) {
      blend.packets.push_back(legit[li]);
      blend.labels.push_back(AttackLabel::kLegit);
      ++li;
    } else {
      blend.packets.push_back(attack.packets[ai]);
      blend.labels.push_back(attack.labels[ai]);
      ++ai;
    }
  }
  return blend;
}

}  // namespace upbound
