#include "attack/evaluator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "filter/drop_policy.h"
#include "filter/filter_registry.h"
#include "sim/edge_router.h"
#include "sim/parallel_replay.h"
#include "sim/report.h"
#include "util/metrics_export.h"

namespace upbound {

namespace {

/// Builds the filter under attack via the registry, so every registered
/// backend is attackable. Bitmap-geometry backends inherit the scenario's
/// bitmap design (the attacker's model of the filter and the filter itself
/// must agree); exact-state backends take the scenario timeouts.
std::unique_ptr<StateFilter> make_named_filter(
    const std::string& name, const AttackEvaluatorConfig& config) {
  const BitmapFilterConfig& bitmap = config.attack.bitmap;
  MapFilterArgs args;
  args.set("bits", std::to_string(bitmap.log2_bits));
  args.set("k", std::to_string(bitmap.vector_count));
  args.set("m", std::to_string(bitmap.hash_count));
  args.set("dt", std::to_string(bitmap.rotate_interval.to_sec()));
  if (bitmap.key_mode == KeyMode::kHolePunching) args.set_flag("hole-punching");
  if (name == "spi") {
    args.set("timeout", std::to_string(config.attack.spi_idle_timeout.to_sec()));
  } else if (name == "naive") {
    args.set("timeout", std::to_string(config.attack.naive_timeout().to_sec()));
  }
  // Tenancy wraps the backend under attack as the fine tier of the
  // hierarchical filter: per-subscriber fine state behind the shared
  // front, same geometry/timeout arguments. An explicitly hierarchical
  // filter name is built as requested.
  if (config.tenancy.enabled && name != "hierarchical") {
    args.set("fine", name);
    args.set("tenant-mode", tenant_mode_name(config.tenancy.table.mode));
    if (config.tenant_cap > 0) {
      args.set("tenant-cap", std::to_string(config.tenant_cap));
    }
    return make_state_filter(
        FilterRegistry::instance().at("hierarchical").parse(args));
  }
  const BackendDescriptor& backend = FilterRegistry::instance().at(name);
  return make_state_filter(backend.parse(args));
}

struct RunResult {
  AttackTally tally;
  std::vector<std::uint32_t> occupancy_permille;
  /// Per-tenant tallies; populated only for tenancy runs. Keyed by the
  /// address-derived TenantId, so shard merges are order-independent.
  std::map<TenantId, AttackTally> tenants;
};

std::uint32_t occupancy_permille_of(const StateFilter& filter) {
  return static_cast<std::uint32_t>(
      std::llround(filter.occupancy_fraction().value_or(0.0) * 1000.0));
}

/// Replays one shard's slice through one router, splitting batches at the
/// occupancy grid so the bitmap is sampled at exact sim times.
RunResult run_shard(const std::vector<PacketRecord>& packets,
                    const std::vector<AttackLabel>& labels,
                    const ClientNetwork& network, const std::string& filter,
                    std::uint64_t seed,
                    const std::vector<SimTime>& occupancy_grid,
                    const AttackEvaluatorConfig& config) {
  EdgeRouterConfig rcfg;
  rcfg.network = network;
  // The blocklist would make the open-loop blend diverge from the paper's
  // replay semantics and couple scenarios through TTL state; collateral
  // is measured purely through the drop policy.
  rcfg.track_blocked_connections = false;
  rcfg.seed = seed;
  rcfg.stage_timing = false;
  rcfg.tenancy = config.tenancy;
  EdgeRouter router{rcfg, make_named_filter(filter, config),
                    std::make_unique<ConstantDropPolicy>(config.pd)};
  StateFilter& state = router.filter();
  const bool sample_occupancy = state.occupancy_fraction().has_value();

  RunResult result;
  result.occupancy_permille.assign(sample_occupancy ? occupancy_grid.size() : 0,
                                   0);

  // connection (canonical tuple) -> was the most recent probe admitted?
  std::unordered_map<FiveTuple, bool, CanonicalTupleHash, CanonicalTupleEq>
      probe_verdict;

  // Per-tenant attribution mirrors the router's: outbound-side labels
  // (support, upload, legit outbound) to the source tenant, inbound-side
  // (probe, legit inbound) to the destination tenant.
  const bool tenancy = config.tenancy.enabled;
  const TenantTable tenant_table{config.tenancy.table};
  const auto out_slice = [&](const PacketRecord& p) -> AttackTally& {
    return result.tenants[tenant_table.tenant_of_outbound(p.tuple)];
  };
  const auto in_slice = [&](const PacketRecord& p) -> AttackTally& {
    return result.tenants[tenant_table.tenant_of_inbound(p.tuple)];
  };

  constexpr std::size_t kBatch = 256;
  RouterDecision decisions[kBatch];
  std::size_t pos = 0;
  std::size_t grid_i = 0;
  AttackTally& tally = result.tally;
  while (pos < packets.size()) {
    const SimTime next_grid = sample_occupancy && grid_i < occupancy_grid.size()
                                  ? occupancy_grid[grid_i]
                                  : SimTime::infinite();
    if (packets[pos].timestamp >= next_grid) {
      // Advancing the filter clock to the grid point before the next
      // packet (whose timestamp is >= the grid point) runs exactly the
      // rotations the router would run anyway: decisions are unchanged.
      state.advance_time(next_grid);
      result.occupancy_permille[grid_i] = occupancy_permille_of(state);
      ++grid_i;
      continue;
    }
    std::size_t end = pos + 1;
    while (end < packets.size() && end - pos < kBatch &&
           packets[end].timestamp < next_grid) {
      ++end;
    }
    const std::size_t n = end - pos;
    router.process_batch(PacketBatch{packets.data() + pos, n},
                         std::span<RouterDecision>{decisions, n});
    for (std::size_t i = 0; i < n; ++i) {
      const PacketRecord& pkt = packets[pos + i];
      const RouterDecision decision = decisions[i];
      switch (labels[pos + i]) {
        case AttackLabel::kLegit:
          if (decision == RouterDecision::kPassedOutbound) {
            ++tally.legit_outbound_packets;
            if (tenancy) ++out_slice(pkt).legit_outbound_packets;
          } else if (decision == RouterDecision::kPassedInbound) {
            ++tally.legit_inbound_packets;
            if (tenancy) ++in_slice(pkt).legit_inbound_packets;
          } else if (decision == RouterDecision::kDroppedByPolicy ||
                     decision == RouterDecision::kDroppedBlocked) {
            ++tally.legit_inbound_packets;
            ++tally.legit_inbound_dropped;
            if (tenancy) {
              AttackTally& slice = in_slice(pkt);
              ++slice.legit_inbound_packets;
              ++slice.legit_inbound_dropped;
            }
          }
          break;
        case AttackLabel::kProbe: {
          ++tally.probe_packets;
          const bool admitted = decision == RouterDecision::kPassedInbound;
          if (admitted) ++tally.probe_admitted;
          probe_verdict[pkt.tuple] = admitted;
          if (tenancy) {
            AttackTally& slice = in_slice(pkt);
            ++slice.probe_packets;
            if (admitted) ++slice.probe_admitted;
          }
          break;
        }
        case AttackLabel::kSupport:
          ++tally.support_packets;
          if (tenancy) ++out_slice(pkt).support_packets;
          break;
        case AttackLabel::kUpload: {
          ++tally.upload_packets;
          const std::uint64_t bytes = pkt.wire_size();
          tally.upload_bytes += bytes;
          const auto it = probe_verdict.find(pkt.tuple);
          const bool achieved = decision == RouterDecision::kPassedOutbound &&
                                it != probe_verdict.end() && it->second;
          if (achieved) tally.achieved_upload_bytes += bytes;
          if (tenancy) {
            AttackTally& slice = out_slice(pkt);
            ++slice.upload_packets;
            slice.upload_bytes += bytes;
            if (achieved) slice.achieved_upload_bytes += bytes;
          }
          break;
        }
      }
    }
    pos = end;
  }
  if (sample_occupancy) {
    for (; grid_i < occupancy_grid.size(); ++grid_i) {
      state.advance_time(occupancy_grid[grid_i]);
      result.occupancy_permille[grid_i] = occupancy_permille_of(state);
    }
  }
  return result;
}

RunResult run_blend(const AttackBlend& blend, const ClientNetwork& network,
                    const std::string& filter,
                    const AttackEvaluatorConfig& config) {
  // Fixed sim-time grid shared by every shard (and every filter, so the
  // exported trajectories line up point for point).
  std::vector<SimTime> grid;
  if (!blend.packets.empty() && !config.occupancy_interval.is_zero()) {
    const auto samples = static_cast<std::size_t>(std::min<std::int64_t>(
        blend.span().count_usec() / config.occupancy_interval.count_usec(),
        4096));
    grid.reserve(samples);
    for (std::size_t i = 1; i <= samples; ++i) {
      grid.push_back(blend.first_time() +
                     config.occupancy_interval * static_cast<std::int64_t>(i));
    }
  }

  const std::size_t shards = std::max<std::size_t>(1, config.shards);
  if (shards == 1) {
    return run_shard(blend.packets, blend.labels, network, filter,
                     config.seed, grid, config);
  }

  std::vector<std::vector<PacketRecord>> shard_packets(shards);
  std::vector<std::vector<AttackLabel>> shard_labels(shards);
  for (std::size_t i = 0; i < blend.packets.size(); ++i) {
    const std::size_t s = shard_of(blend.packets[i].tuple, shards);
    shard_packets[s].push_back(blend.packets[i]);
    shard_labels[s].push_back(blend.labels[i]);
  }
  RunResult merged;
  const bool merge_occupancy =
      FilterRegistry::instance().at(filter).has(kCapOccupancy);
  merged.occupancy_permille.assign(merge_occupancy ? grid.size() : 0, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    const RunResult shard =
        run_shard(shard_packets[s], shard_labels[s], network, filter,
                  shard_seed(config.seed, s), grid, config);
    merged.tally.merge(shard.tally);
    for (const auto& [tenant, slice] : shard.tenants) {
      merged.tenants[tenant].merge(slice);
    }
    for (std::size_t i = 0; i < merged.occupancy_permille.size(); ++i) {
      merged.occupancy_permille[i] += shard.occupancy_permille[i];
    }
  }
  // Mean across the per-shard filters: each holds its slice's marks, so
  // the mean tracks the aggregate utilization an unsharded deployment
  // would see (up to rounding).
  for (auto& v : merged.occupancy_permille) {
    v = static_cast<std::uint32_t>(v / shards);
  }
  return merged;
}

}  // namespace

AttackTally& AttackTally::merge(const AttackTally& other) {
  probe_packets += other.probe_packets;
  probe_admitted += other.probe_admitted;
  legit_inbound_packets += other.legit_inbound_packets;
  legit_inbound_dropped += other.legit_inbound_dropped;
  legit_outbound_packets += other.legit_outbound_packets;
  support_packets += other.support_packets;
  upload_packets += other.upload_packets;
  upload_bytes += other.upload_bytes;
  achieved_upload_bytes += other.achieved_upload_bytes;
  return *this;
}

std::uint32_t AttackOutcome::occupancy_peak_permille() const {
  std::uint32_t peak = 0;
  for (const std::uint32_t v : occupancy_permille) peak = std::max(peak, v);
  return peak;
}

MetricsSnapshot AttackOutcome::to_metrics() const {
  MetricsRegistry registry;
  registry.gauge("attack.bypass_rate").set(bypass_rate());
  registry.gauge("attack.probe_packets")
      .set(static_cast<double>(tally.probe_packets));
  registry.gauge("attack.probe_admitted")
      .set(static_cast<double>(tally.probe_admitted));
  registry.gauge("attack.collateral_drop_rate").set(collateral_drop_rate());
  registry.gauge("attack.baseline_legit_drop_rate")
      .set(baseline_legit_drop_rate);
  registry.gauge("attack.legit_inbound_packets")
      .set(static_cast<double>(tally.legit_inbound_packets));
  registry.gauge("attack.legit_inbound_dropped")
      .set(static_cast<double>(tally.legit_inbound_dropped));
  registry.gauge("attack.legit_outbound_packets")
      .set(static_cast<double>(tally.legit_outbound_packets));
  registry.gauge("attack.support_packets")
      .set(static_cast<double>(tally.support_packets));
  registry.gauge("attack.upload_packets")
      .set(static_cast<double>(tally.upload_packets));
  registry.gauge("attack.upload_bytes")
      .set(static_cast<double>(tally.upload_bytes));
  registry.gauge("attack.achieved_upload_bytes")
      .set(static_cast<double>(tally.achieved_upload_bytes));
  registry.gauge("attack.upload_vs_bound").set(upload_vs_bound);
  registry.gauge("attack.occupancy_peak")
      .set(static_cast<double>(occupancy_peak_permille()) / 1000.0);
  registry.gauge("attack.occupancy_final")
      .set(occupancy_permille.empty()
               ? 0.0
               : static_cast<double>(occupancy_permille.back()) / 1000.0);
  LatencyHistogram& hist = registry.histogram("attack.occupancy_permille");
  for (const std::uint32_t v : occupancy_permille) hist.record(v);
  return registry.snapshot();
}

std::string AttackReport::to_jsonl() const {
  std::string out;
  for (const AttackOutcome& outcome : outcomes) {
    out += metrics_to_json(outcome.to_metrics(),
                           "attack:" + outcome.scenario + ":" + outcome.filter,
                           end_time);
    out += '\n';
  }
  return out;
}

std::string AttackReport::summary_table() const {
  std::vector<std::vector<std::string>> rows{
      {"scenario", "filter", "probes", "bypass", "legit drop", "baseline",
       "upload/bound", "occ peak"}};
  for (const AttackOutcome& o : outcomes) {
    rows.push_back({o.scenario, o.filter,
                    std::to_string(o.tally.probe_packets),
                    report::percent(o.bypass_rate()),
                    report::percent(o.collateral_drop_rate()),
                    report::percent(o.baseline_legit_drop_rate),
                    report::num(o.upload_vs_bound),
                    report::percent(
                        static_cast<double>(o.occupancy_peak_permille()) /
                        1000.0, 1)});
  }
  return report::table(rows);
}

std::string AttackReport::tenant_table() const {
  std::vector<std::vector<std::string>> rows{
      {"scenario", "filter", "tenant", "probes", "bypass", "legit drop",
       "upload/bound"}};
  for (const AttackOutcome& o : outcomes) {
    for (const TenantAttackRow& row : o.tenants) {
      rows.push_back({o.scenario, o.filter, row.label,
                      std::to_string(row.tally.probe_packets),
                      report::percent(row.tally.bypass_rate()),
                      report::percent(row.tally.legit_drop_rate()),
                      report::num(row.upload_vs_bound)});
    }
  }
  return rows.size() == 1 ? std::string{} : report::table(rows);
}

AttackReport evaluate_attacks(const Trace& legit, const ClientNetwork& network,
                              std::span<const AttackScenarioKind> scenarios,
                              const AttackEvaluatorConfig& config) {
  // Blends are generated up front (they are shared read-only by all
  // filter runs of a scenario). Index 0 is the legit-only baseline.
  std::vector<AttackBlend> blends;
  blends.reserve(scenarios.size() + 1);
  {
    AttackBlend legit_only;
    legit_only.packets = legit;
    legit_only.labels.assign(legit.size(), AttackLabel::kLegit);
    blends.push_back(std::move(legit_only));
  }
  for (const AttackScenarioKind kind : scenarios) {
    blends.push_back(blend_with_legit(
        legit, generate_attack(kind, legit, network, config.attack)));
  }

  struct Run {
    std::size_t blend;   // index into blends
    std::size_t filter;  // index into config.filters
  };
  std::vector<Run> runs;
  for (std::size_t b = 0; b < blends.size(); ++b) {
    for (std::size_t f = 0; f < config.filters.size(); ++f) {
      runs.push_back(Run{b, f});
    }
  }

  // Workers claim whole runs; every run is independent and deterministic,
  // and results land in a preallocated slot, so the thread count cannot
  // influence the report.
  std::vector<RunResult> results(runs.size());
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(config.threads, runs.size()));
  if (workers == 1) {
    for (std::size_t r = 0; r < runs.size(); ++r) {
      results[r] = run_blend(blends[runs[r].blend], network,
                             config.filters[runs[r].filter], config);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&]() {
        for (;;) {
          const std::size_t r = next.fetch_add(1);
          if (r >= runs.size()) return;
          results[r] = run_blend(blends[runs[r].blend], network,
                                 config.filters[runs[r].filter], config);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  AttackReport report;
  report.end_time = SimTime::origin();
  for (const AttackBlend& blend : blends) {
    report.end_time = std::max(report.end_time, blend.last_time());
  }
  const std::size_t filters = config.filters.size();
  for (std::size_t b = 0; b < blends.size(); ++b) {
    const double span_sec = blends[b].span().to_sec();
    for (std::size_t f = 0; f < filters; ++f) {
      const RunResult& run = results[b * filters + f];
      AttackOutcome outcome;
      outcome.scenario =
          b == 0 ? "baseline" : attack_scenario_name(scenarios[b - 1]);
      outcome.filter = config.filters[f];
      outcome.tally = run.tally;
      outcome.baseline_legit_drop_rate =
          results[f].tally.legit_drop_rate();  // blend 0 = legit only
      outcome.occupancy_permille = run.occupancy_permille;
      if (span_sec > 0.0 && config.upload_bound_bps > 0.0) {
        outcome.upload_vs_bound =
            static_cast<double>(run.tally.achieved_upload_bytes) * 8.0 /
            span_sec / config.upload_bound_bps;
      }
      // std::map iteration is id-sorted, so the rows are deterministic.
      const TenantTable tenant_table{config.tenancy.table};
      for (const auto& [tenant, slice] : run.tenants) {
        TenantAttackRow row;
        row.tenant = tenant;
        row.label = tenant_table.label(tenant);
        row.tally = slice;
        if (span_sec > 0.0 && config.upload_bound_bps > 0.0) {
          row.upload_vs_bound =
              static_cast<double>(slice.achieved_upload_bytes) * 8.0 /
              span_sec / config.upload_bound_bps;
        }
        outcome.tenants.push_back(std::move(row));
      }
      report.outcomes.push_back(std::move(outcome));
    }
  }
  return report;
}

}  // namespace upbound
