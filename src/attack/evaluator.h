// AttackEvaluator: replays attack blends (attack/scenario.h) through the
// EdgeRouter and reports what the adversary achieved versus what honest
// traffic lost. For every (scenario, filter) pair it measures
//
//   bypass rate            admitted fraction of attack probe packets
//   collateral drop rate   legit inbound drop rate under attack, next to
//                          the same filter's legit-only baseline
//   upload-vs-bound        achieved attack upload throughput (uploads
//                          whose triggering probe was admitted) relative
//                          to the configured upload bound
//   occupancy trajectory   filter occupancy fraction sampled on a fixed
//                          sim-time grid for backends with an occupancy
//                          signal (the saturation scenario's headline
//                          curve)
//
// Runs are bit-deterministic under a fixed seed: simulation-domain inputs
// only, fixed shard partition (shard count is part of the semantics, as
// in sim/parallel_replay.h), shard-order merges, and worker threads that
// only ever pick up whole independent runs. The JSONL export carries
// gauges and deterministic histograms only, so reports are byte-identical
// across repeat runs and thread counts.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "attack/scenario.h"
#include "sim/edge_router.h"  // TenancyConfig
#include "util/metrics.h"

namespace upbound {

struct AttackEvaluatorConfig {
  /// Scenario knobs; also the source of the bitmap design and the SPI /
  /// naive baseline timeouts, so the attacked filter and the attacker's
  /// model of it cannot drift apart.
  AttackScenarioParams attack;
  /// P_d for stateless inbound (paper Fig. 8 strict mode: drop all).
  double pd = 1.0;
  /// Denominator of the upload-vs-bound ratio, bits/s.
  double upload_bound_bps = 2e6;
  /// Router seed (drop-coin stream; irrelevant at pd = 1.0 but kept so
  /// probabilistic configs stay reproducible).
  std::uint64_t seed = 7;
  /// Worker threads; each worker executes whole (scenario, filter) runs,
  /// so the thread count never affects results.
  std::size_t threads = 1;
  /// Shard count of the sharded-parallel replay path. 1 = one router
  /// sees the whole blend (the reference semantics, and the mode where
  /// collision mining models the deployed aggregate filter). Like the
  /// parallel replay engine, the shard count is part of the semantics:
  /// results are comparable only at equal shard counts.
  std::size_t shards = 1;
  /// Occupancy sampling grid.
  Duration occupancy_interval = Duration::sec(1.0);
  /// Filters to evaluate under each blend, in report order.
  std::vector<std::string> filters{"bitmap", "spi", "naive"};
  /// Per-subscriber enforcement during the runs. When enabled, each
  /// evaluated backend is wrapped as the fine tier of the hierarchical
  /// tenant filter (unless it already is "hierarchical"), the router's
  /// tenancy attribution is switched on, and every outcome carries
  /// per-tenant tallies -- including each tenant's achieved-upload versus
  /// the bound, the paper's Eq. 1 check at subscriber granularity.
  TenancyConfig tenancy;
  /// Cap on live fine filters per router when tenancy wraps the backend
  /// (forwarded as the hierarchical filter's tenant-cap). 0 = default.
  std::uint64_t tenant_cap = 0;
};

/// Integer event tallies of one run; exact, so merging shard results in
/// shard order is trivially deterministic.
struct AttackTally {
  std::uint64_t probe_packets = 0;
  std::uint64_t probe_admitted = 0;
  std::uint64_t legit_inbound_packets = 0;
  std::uint64_t legit_inbound_dropped = 0;
  std::uint64_t legit_outbound_packets = 0;
  std::uint64_t support_packets = 0;
  std::uint64_t upload_packets = 0;
  std::uint64_t upload_bytes = 0;
  /// Upload bytes whose most recent same-connection probe was admitted:
  /// the upload a closed-loop attacker would actually have been paid for.
  std::uint64_t achieved_upload_bytes = 0;

  bool operator==(const AttackTally&) const = default;
  AttackTally& merge(const AttackTally& other);

  double bypass_rate() const {
    return probe_packets == 0 ? 0.0
                              : static_cast<double>(probe_admitted) /
                                    static_cast<double>(probe_packets);
  }
  double legit_drop_rate() const {
    return legit_inbound_packets == 0
               ? 0.0
               : static_cast<double>(legit_inbound_dropped) /
                     static_cast<double>(legit_inbound_packets);
  }
};

/// One tenant's slice of an outcome (tenancy runs only). Rows are kept
/// sorted by TenantId, so reports are deterministic.
struct TenantAttackRow {
  TenantId tenant = 0;
  /// Human-readable tenant label (dotted quad or "a.b.c.0/24").
  std::string label;
  AttackTally tally;
  /// This tenant's achieved attack upload bits/s over the blend span,
  /// divided by the configured bound -- Eq. 1 checked per subscriber.
  double upload_vs_bound = 0.0;

  bool operator==(const TenantAttackRow&) const = default;
};

/// Result of one (scenario, filter) run.
struct AttackOutcome {
  std::string scenario;  // attack_scenario_name(), or "baseline"
  std::string filter;
  AttackTally tally;
  /// Legit-only drop rate of the same filter (the collateral reference).
  double baseline_legit_drop_rate = 0.0;
  /// Achieved upload bits/s over the blend span, divided by the bound.
  double upload_vs_bound = 0.0;
  /// Filter occupancy fraction per grid point, in permille; empty for
  /// backends without an occupancy signal (kCapOccupancy).
  std::vector<std::uint32_t> occupancy_permille;
  /// Per-tenant tallies, sorted by tenant; empty unless tenancy ran.
  std::vector<TenantAttackRow> tenants;

  bool operator==(const AttackOutcome&) const = default;

  double bypass_rate() const { return tally.bypass_rate(); }
  double collateral_drop_rate() const { return tally.legit_drop_rate(); }
  std::uint32_t occupancy_peak_permille() const;

  /// Gauges + the occupancy histogram, counters left empty (independent
  /// runs cannot promise cross-line counter monotonicity, which the
  /// JSONL schema checker enforces).
  MetricsSnapshot to_metrics() const;
};

struct AttackReport {
  std::vector<AttackOutcome> outcomes;  // scenario-major, filter order
  SimTime end_time;                     // last blend timestamp

  bool operator==(const AttackReport&) const = default;

  /// One upbound.metrics.v1 JSON line per outcome, newline-terminated;
  /// byte-identical for equal reports.
  std::string to_jsonl() const;

  /// Aligned human-readable summary table.
  std::string summary_table() const;

  /// Per-tenant rows of every outcome that carries them (tenancy runs):
  /// each tenant's probes, bypass, collateral, and achieved upload
  /// against the bound. Empty string when no outcome has tenant rows.
  std::string tenant_table() const;
};

/// Runs every scenario against every configured filter (plus one
/// legit-only baseline run per filter) and assembles the report.
AttackReport evaluate_attacks(const Trace& legit, const ClientNetwork& network,
                              std::span<const AttackScenarioKind> scenarios,
                              const AttackEvaluatorConfig& config);

}  // namespace upbound
