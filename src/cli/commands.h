// The upbound command-line tool: generate synthetic campus traces, analyze
// and filter pcap captures, and size bitmap-filter deployments -- the full
// pipeline without writing a line of C++.
//
//   upbound generate --out trace.pcap --duration 60 --bandwidth 12e6
//   upbound analyze  --pcap trace.pcap --network 140.112.30.0/24
//   upbound filter   --pcap trace.pcap --network 140.112.30.0/24
//                    ... --filter bitmap --low 3e6 --high 6e6 --blocklist
//   upbound advise   --connections 15000 --bits 20 --k 4 --dt 5
#pragma once

#include "cli/args.h"

namespace upbound::cli {

/// Dispatches to the command named by args; returns a process exit code.
/// Usage/errors go to stdout/stderr.
int run(int argc, const char* const* argv);

// Individual commands (exposed for tests).
int cmd_generate(const Args& args);
int cmd_analyze(const Args& args);
int cmd_filter(const Args& args);
int cmd_compare(const Args& args);
int cmd_advise(const Args& args);
int cmd_attack(const Args& args);
int cmd_live(const Args& args);
int cmd_tapsend(const Args& args);

/// Prints the usage summary.
void print_usage();

/// Backend used when --filter is omitted: the cache-resident
/// bitmap-blocked layout, unless the run asked for a capability it does
/// not carry (snapshot save/load, or the shared-view shard mode), in
/// which case the classic bitmap is selected instead.
std::string resolve_default_filter(bool wants_snapshot,
                                   bool wants_shared_view);

}  // namespace upbound::cli
