// Minimal command-line argument handling for the upbound CLI: positional
// command word plus --key value / --key=value options, with typed,
// defaulted accessors and unknown-option detection.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace upbound::cli {

class ArgError : public std::runtime_error {
 public:
  explicit ArgError(const std::string& what) : std::runtime_error(what) {}
};

class Args {
 public:
  /// Parses argv[1..): first token is the command, the rest options.
  /// Throws ArgError on malformed input (option without value, stray
  /// positional).
  static Args parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  bool empty() const { return command_.empty(); }

  /// Typed accessors; throw ArgError on conversion failure.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::uint64_t get_u64(const std::string& key,
                        std::uint64_t fallback) const;
  bool get_flag(const std::string& key) const;

  /// Required variant: throws ArgError when the option is absent.
  std::string require_string(const std::string& key) const;

  bool has(const std::string& key) const { return values_.contains(key); }

  /// Options present on the command line but never read by the command;
  /// call after the command consumed its options to reject typos.
  std::vector<std::string> unconsumed() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::string command_;
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
  mutable std::set<std::string> consumed_;
};

}  // namespace upbound::cli
