#include "cli/commands.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>

#include "analyzer/analyzer.h"
#include "analyzer/host_stats.h"
#include "analyzer/netflow.h"
#include "attack/evaluator.h"
#include "attack/scenario.h"
#include "fault/fault_injector.h"
#include "fault/fault_spec.h"
#include "filter/filter_registry.h"
#include "filter/params.h"
#include "filter/snapshot.h"
#include "net/live/af_packet.h"
#include "net/live/event_loop.h"
#include "net/live/live_datapath.h"
#include "net/live/udp_tap.h"
#include "net/pcap.h"
#include "net/pcapng.h"
#include "sim/parallel_replay.h"
#include "sim/replay.h"
#include "sim/report.h"
#include "sim/tenant_scenarios.h"
#include "tenant/hierarchical_filter.h"
#include "tenant/tenant_table.h"
#include "trace/campus.h"
#include "util/clock.h"
#include "util/metrics_export.h"

namespace upbound::cli {

namespace {

/// The one replay seed knob shared by filter/compare/attack: every
/// command reads --seed with the same default, so a seed that reproduces
/// one command's run reproduces the whole pipeline.
std::uint64_t seed_from(const Args& args) { return args.get_u64("seed", 7); }

ClientNetwork network_from(const Args& args) {
  const std::string spec =
      args.get_string("network", "140.112.30.0/24");
  ClientNetwork network;
  std::size_t start = 0;
  while (start < spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string one = spec.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    const auto cidr = Cidr::parse(one);
    if (!cidr) throw ArgError("bad CIDR '" + one + "' in --network");
    network.add_prefix(*cidr);
    start = comma == std::string::npos ? spec.size() : comma + 1;
  }
  return network;
}

BitmapFilterConfig bitmap_from(const Args& args) {
  BitmapFilterConfig config;
  config.log2_bits = static_cast<unsigned>(args.get_int("bits", 20));
  config.vector_count = static_cast<unsigned>(args.get_int("k", 4));
  config.hash_count = static_cast<unsigned>(args.get_int("m", 3));
  config.rotate_interval = Duration::sec(args.get_double("dt", 5.0));
  if (args.get_flag("hole-punching")) {
    config.key_mode = KeyMode::kHolePunching;
  }
  config.validate();
  return config;
}

// Reads a capture of either format, sniffing the magic number.
Trace read_capture(const std::string& path, std::uint64_t* skipped) {
  std::uint8_t magic[4] = {0, 0, 0, 0};
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw PcapError("cannot open for reading: " + path);
    const std::size_t got = std::fread(magic, 1, sizeof(magic), f);
    std::fclose(f);
    if (got != sizeof(magic)) throw PcapError("capture too short: " + path);
  }
  const std::uint32_t value = static_cast<std::uint32_t>(magic[0]) |
                              (static_cast<std::uint32_t>(magic[1]) << 8) |
                              (static_cast<std::uint32_t>(magic[2]) << 16) |
                              (static_cast<std::uint32_t>(magic[3]) << 24);
  if (value == kPcapngShb) {
    PcapngReader reader{path};
    Trace trace = reader.read_all();
    if (skipped != nullptr) *skipped = reader.blocks_skipped();
    return trace;
  }
  PcapReader reader{path};
  Trace trace = reader.read_all();
  if (skipped != nullptr) *skipped = reader.frames_skipped();
  return trace;
}

/// Telemetry export options of the filter command (--metrics-*).
struct MetricsOptions {
  std::string out;
  Duration interval{};  // zero = only the final snapshot
  bool prometheus = false;
  bool deterministic = false;

  bool enabled() const { return !out.empty(); }
};

MetricsOptions metrics_options_from(const Args& args, bool parallel_engine) {
  MetricsOptions opts;
  opts.out = args.get_string("metrics-out", "");
  const double interval_sec = args.get_double("metrics-interval", 0.0);
  const std::string format = args.get_string("metrics-format", "jsonl");
  opts.deterministic = args.get_flag("metrics-deterministic");
  if (format == "prom") {
    opts.prometheus = true;
  } else if (format != "jsonl") {
    throw ArgError("--metrics-format must be jsonl or prom");
  }
  if (opts.out.empty()) {
    if (interval_sec != 0.0 || opts.deterministic) {
      throw ArgError("--metrics-interval/--metrics-deterministic require "
                     "--metrics-out");
    }
    return opts;
  }
  if (interval_sec < 0.0) throw ArgError("--metrics-interval must be >= 0");
  if (interval_sec > 0.0) {
    // Interval snapshots walk sim time inside the single-thread replay
    // loop; the parallel engine only yields one merged final snapshot.
    if (parallel_engine) {
      throw ArgError("--metrics-interval requires the single-thread engine "
                     "(--threads 1, no --fault-spec)");
    }
    if (opts.prometheus) {
      throw ArgError("--metrics-interval requires --metrics-format jsonl");
    }
    opts.interval = Duration::sec(interval_sec);
  }
  return opts;
}

/// Writes the final (possibly deterministic-only) snapshot in the chosen
/// format. Interval snapshots are handled inline by the replay loop.
void write_final_metrics(const MetricsOptions& opts,
                         MetricsJsonlWriter* jsonl_writer,
                         const MetricsSnapshot& snapshot, SimTime end_time) {
  const MetricsSnapshot exported =
      opts.deterministic ? snapshot.deterministic() : snapshot;
  if (opts.prometheus) {
    std::FILE* f = std::fopen(opts.out.c_str(), "wb");
    if (f == nullptr) {
      throw std::runtime_error("cannot open metrics output: " + opts.out);
    }
    const std::string text = metrics_to_prometheus(exported);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return;
  }
  jsonl_writer->write(exported, "final", end_time);
}

int reject_unconsumed(const Args& args) {
  const auto leftovers = args.unconsumed();
  if (leftovers.empty()) return 0;
  for (const auto& key : leftovers) {
    std::fprintf(stderr, "error: unknown option --%s\n", key.c_str());
  }
  return 2;
}

/// FilterArgs view over cli::Args. The registry's backend parsers consume
/// exactly the keys they understand through this adapter, so
/// reject_unconsumed() still catches typos and keys the selected backend
/// does not take.
class CliFilterArgs final : public FilterArgs {
 public:
  explicit CliFilterArgs(const Args& args) : args_(args) {}

  std::optional<std::string> value(const std::string& key) const override {
    if (!args_.has(key)) return std::nullopt;
    return args_.get_string(key, "");
  }
  bool flag(const std::string& key) const override {
    return args_.get_flag(key);
  }

 private:
  const Args& args_;
};

/// Resolves --filter through the registry and parses the backend's
/// arguments, mapping registry errors onto ArgError (exit code 2).
FilterSpec parse_filter_spec(const Args& args, const std::string& kind) {
  const FilterRegistry& registry = FilterRegistry::instance();
  const BackendDescriptor* backend = registry.find(kind);
  if (backend == nullptr) {
    throw ArgError("unknown --filter '" + kind + "' (" +
                   registry.names_joined("|") + ")");
  }
  try {
    return backend->parse(CliFilterArgs{args});
  } catch (const std::invalid_argument& e) {
    throw ArgError(e.what());
  }
}

/// Parsed --tenants/--tenant-mode/--tenant-cap, shared by filter, compare,
/// attack, and live. --tenants switches per-subscriber enforcement on and
/// doubles as the hierarchical filter's sizing hint.
struct TenancySpec {
  TenancyConfig router;       // goes into EdgeRouterConfig::tenancy
  std::uint64_t tenants = 0;  // sizing hint (0 = not given)
  std::uint64_t cap = 0;      // live fine-filter cap (0 = backend default)

  bool enabled() const { return router.enabled; }
};

TenancySpec tenancy_from(const Args& args) {
  TenancySpec spec;
  if (!args.has("tenants")) {
    if (args.has("tenant-mode") || args.has("tenant-cap")) {
      throw ArgError("--tenant-mode/--tenant-cap require --tenants");
    }
    return spec;
  }
  spec.router.enabled = true;
  spec.tenants = args.get_u64("tenants", 0);
  const std::string mode = args.get_string("tenant-mode", "subscriber");
  const std::optional<TenantMode> parsed = parse_tenant_mode(mode);
  if (!parsed.has_value()) {
    throw ArgError("--tenant-mode must be subscriber or prefix24");
  }
  spec.router.table.mode = *parsed;
  spec.cap = args.get_u64("tenant-cap", 0);
  return spec;
}

/// The CLI args with the hierarchical wrap's "fine" key layered on top:
/// --tenants turns "--filter X" into "--filter hierarchical --fine X"
/// without the user spelling the wrap, while every other key (including
/// --tenant-mode/--tenant-cap/--tenants themselves) still reads through
/// to the command line, so reject_unconsumed keeps catching typos.
class TenantOverlayArgs final : public FilterArgs {
 public:
  TenantOverlayArgs(const Args& args, std::string fine)
      : cli_(args), fine_(std::move(fine)) {}

  std::optional<std::string> value(const std::string& key) const override {
    if (key == "fine") return fine_;
    return cli_.value(key);
  }
  bool flag(const std::string& key) const override { return cli_.flag(key); }

 private:
  CliFilterArgs cli_;
  std::string fine_;
};

/// Parses the backend named by --filter; with --tenants, the named
/// backend becomes the fine tier of the hierarchical tenant filter.
FilterSpec parse_effective_filter_spec(const Args& args,
                                       const std::string& kind,
                                       const TenancySpec& tenancy) {
  if (!tenancy.enabled() || kind == "hierarchical") {
    return parse_filter_spec(args, kind);
  }
  if (FilterRegistry::instance().find(kind) == nullptr) {
    throw ArgError("unknown --filter '" + kind + "' (" +
                   FilterRegistry::instance().names_joined("|") + ")");
  }
  try {
    return FilterRegistry::instance().at("hierarchical").parse(
        TenantOverlayArgs{args, kind});
  } catch (const std::invalid_argument& e) {
    throw ArgError(e.what());
  }
}

/// Per-tenant attribution of a finished run, heaviest uploaders first.
/// Truncation is announced in the heading, never silent.
void print_tenant_stats(const EdgeRouterStats& stats,
                        const TenantTable& table) {
  if (stats.tenants.empty()) return;
  std::vector<std::pair<TenantId, const TenantStats*>> order;
  order.reserve(stats.tenants.size());
  for (const auto& [tenant, slice] : stats.tenants) {
    order.emplace_back(tenant, &slice);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second->outbound_bytes != b.second->outbound_bytes) {
      return a.second->outbound_bytes > b.second->outbound_bytes;
    }
    return a.first < b.first;
  });
  constexpr std::size_t kMaxTenantRows = 16;
  const std::size_t shown = std::min(order.size(), kMaxTenantRows);
  std::vector<std::vector<std::string>> rows{
      {"tenant", "out pkts", "out bytes", "in passed", "in dropped",
       "drop rate", "suppressed"}};
  for (std::size_t i = 0; i < shown; ++i) {
    const TenantStats& t = *order[i].second;
    rows.push_back({table.label(order[i].first),
                    std::to_string(t.outbound_packets),
                    std::to_string(t.outbound_bytes),
                    std::to_string(t.inbound_passed_packets),
                    std::to_string(t.inbound_dropped_packets),
                    report::percent(t.inbound_drop_rate()),
                    std::to_string(t.suppressed_outbound_packets)});
  }
  std::printf("\nper-tenant breakdown (%zu tenants, top %zu by upload):\n%s",
              stats.tenants.size(), shown, report::table(rows).c_str());
}

/// One-line hierarchical-filter health summary (instantiation/LRU churn
/// plus how much traffic the shared front tier absorbed).
void print_hierarchical_summary(const HierarchicalFilter& hier) {
  std::printf("tenancy: %zu tenants, %zu live fine filters "
              "(%llu instantiated, %llu evicted), front absorbed %llu, "
              "digest admits %llu\n",
              hier.tenant_count(), hier.live_fine_filters(),
              static_cast<unsigned long long>(hier.fine_instantiations()),
              static_cast<unsigned long long>(hier.fine_evictions()),
              static_cast<unsigned long long>(hier.front_absorbed()),
              static_cast<unsigned long long>(hier.digest_admits()));
}

/// Registered backend names holding `cap`, pipe-joined for error text.
std::string names_with(FilterCapability cap) {
  std::string out;
  for (const BackendDescriptor& backend :
       FilterRegistry::instance().descriptors()) {
    if (!backend.has(cap)) continue;
    if (!out.empty()) out += '|';
    out += backend.name;
  }
  return out;
}

/// Parsed drop-policy parameters; RED thresholds are divided by the shard
/// count in parallel mode, since each shard meters only its own slice of
/// the uplink.
struct PolicySpec {
  bool red = false;
  double low = 50e6;
  double high = 100e6;
  double pd = 1.0;
};

PolicySpec policy_spec_from(const Args& args) {
  PolicySpec spec;
  if (args.has("low") || args.has("high")) {
    spec.red = true;
    spec.low = args.get_double("low", 50e6);
    spec.high = args.get_double("high", 100e6);
  } else {
    spec.pd = args.get_double("pd", 1.0);
  }
  return spec;
}

std::unique_ptr<DropPolicy> make_policy(const PolicySpec& spec,
                                        std::size_t shards) {
  if (spec.red) {
    const double scale = static_cast<double>(shards == 0 ? 1 : shards);
    return std::make_unique<RedDropPolicy>(spec.low / scale,
                                           spec.high / scale);
  }
  return std::make_unique<ConstantDropPolicy>(spec.pd);
}

/// --on-unhealthy/--health-occupancy, shared by the replay and live
/// datapaths: arms the router's health monitor (degraded stance).
void apply_health_args(const Args& args, EdgeRouterConfig& config) {
  const std::string on_unhealthy = args.get_string("on-unhealthy", "");
  if (on_unhealthy.empty()) {
    if (args.has("health-occupancy")) {
      throw ArgError("--health-occupancy requires --on-unhealthy");
    }
    return;
  }
  if (!kFaultsCompiled) {
    throw ArgError(
        "--on-unhealthy requires a build with UPBOUND_FAULTS=ON "
        "(the fault plane is compiled out of this binary)");
  }
  if (on_unhealthy == "fail-open") {
    config.health.stance = UnhealthyStance::kFailOpen;
  } else if (on_unhealthy == "fail-closed") {
    config.health.stance = UnhealthyStance::kFailClosed;
  } else {
    throw ArgError("--on-unhealthy must be fail-open or fail-closed");
  }
  const double occ =
      args.get_double("health-occupancy", config.health.occupancy_enter);
  if (!(occ > 0.0) || occ > 1.0) {
    throw ArgError("--health-occupancy must be in (0, 1]");
  }
  config.health.occupancy_enter = occ;
  config.health.occupancy_exit = occ * 0.7;
}

std::string shard_mode_from(const Args& args) {
  const std::string mode = args.get_string("shard-mode", "sharded");
  if (mode != "sharded" && mode != "shared") {
    throw ArgError("unknown --shard-mode '" + mode + "' (sharded|shared)");
  }
  return mode;
}

void print_shard_table(const ParallelReplayResult& result) {
  std::vector<std::vector<std::string>> rows{
      {"shard", "packets", "out bytes", "in passed", "in dropped",
       "drop rate"}};
  for (std::size_t s = 0; s < result.shards; ++s) {
    const EdgeRouterStats& stats = result.shard_stats[s];
    rows.push_back({std::to_string(s),
                    std::to_string(result.shard_packets[s]),
                    std::to_string(stats.outbound_bytes),
                    std::to_string(stats.inbound_passed_bytes),
                    std::to_string(stats.inbound_dropped_packets),
                    report::percent(stats.inbound_drop_rate())});
  }
  std::printf("\nper-shard breakdown (%zu shards, %zu threads):\n%s",
              result.shards, result.threads, report::table(rows).c_str());
}

}  // namespace

std::string resolve_default_filter(bool wants_snapshot,
                                   bool wants_shared_view) {
  // bitmap-blocked is the default datapath backend: one 512-bit block per
  // lookup, same verdict guarantees as the classic bitmap. Snapshots and
  // the shared concurrent view are bitmap-only capabilities, so runs that
  // asked for either fall back to the classic layout.
  if (wants_snapshot || wants_shared_view) return "bitmap";
  return "bitmap-blocked";
}

namespace {

/// Writes a packet stream in the requested capture format; shared by the
/// campus and multi-tenant branches of `generate`.
std::uint64_t write_generated(const std::string& out,
                              const std::string& format,
                              const Trace& packets) {
  if (format == "pcapng") {
    PcapngWriter writer{out};
    writer.write_all(packets);
    return writer.packets_written();
  }
  if (format == "pcap") {
    PcapWriter writer{out};
    writer.write_all(packets);
    return writer.packets_written();
  }
  throw ArgError("unknown --format '" + format + "' (pcap|pcapng)");
}

}  // namespace

int cmd_generate(const Args& args) {
  const std::string out = args.require_string("out");
  const std::string format = args.get_string("format", "pcap");

  // --tenant-scenario switches to the multi-tenant workload generators
  // (sim/tenant_scenarios.h): a subscriber-pool trace with per-tenant
  // ground truth, ready for `filter --tenants` / `attack --tenants`.
  const std::string scenario_name = args.get_string("tenant-scenario", "");
  if (!scenario_name.empty()) {
    TenantScenarioKind kind;
    if (!parse_tenant_scenario(scenario_name, &kind)) {
      throw ArgError("unknown --tenant-scenario '" + scenario_name +
                     "' (flash-crowd|diurnal-swell|swarm-join)");
    }
    TenantScenarioConfig config;
    config.tenants = args.get_u64("tenants", config.tenants);
    config.duration = Duration::sec(args.get_double("duration", 60.0));
    config.seed = args.get_u64("seed", 42);
    const std::string mode = args.get_string("tenant-mode", "subscriber");
    const std::optional<TenantMode> parsed_mode = parse_tenant_mode(mode);
    if (!parsed_mode) {
      throw ArgError("--tenant-mode must be subscriber or prefix24");
    }
    config.mode = *parsed_mode;
    if (const int rc = reject_unconsumed(args); rc != 0) return rc;

    const TenantScenarioTrace trace = generate_tenant_scenario(kind, config);
    const std::uint64_t written = write_generated(out, format, trace.packets);
    std::printf("wrote %llu packets (%s scenario, %zu tenants, %s window) "
                "to %s\n",
                static_cast<unsigned long long>(written),
                tenant_scenario_name(kind), trace.truth.size(),
                config.duration.to_string().c_str(), out.c_str());
    return 0;
  }

  CampusTraceConfig config;
  config.duration = Duration::sec(args.get_double("duration", 60.0));
  config.connections_per_sec = args.get_double("rate", 80.0);
  config.bandwidth_bps = args.get_double("bandwidth", 12e6);
  config.seed = args.get_u64("seed", 42);
  config.network.client_prefix =
      network_from(args).prefixes().front();
  if (const int rc = reject_unconsumed(args); rc != 0) return rc;

  const GeneratedTrace trace = generate_campus_trace(config);
  const std::uint64_t written = write_generated(out, format, trace.packets);
  std::printf("wrote %llu packets (%zu connections, %s over the %s window) "
              "to %s\n",
              static_cast<unsigned long long>(written),
              trace.connection_count,
              format_bits_per_sec(
                  static_cast<double>(trace.outbound_bytes +
                                      trace.inbound_bytes) *
                  8.0 / config.duration.to_sec())
                  .c_str(),
              config.duration.to_string().c_str(), out.c_str());
  return 0;
}

int cmd_analyze(const Args& args) {
  const std::string path = args.require_string("pcap");
  AnalyzerConfig config;
  config.network = network_from(args);
  config.out_in_expiry = Duration::sec(args.get_double("te", 600.0));
  const std::size_t top_n =
      static_cast<std::size_t>(args.get_int("top", 0));
  const std::string netflow_out = args.get_string("netflow", "");
  if (const int rc = reject_unconsumed(args); rc != 0) return rc;

  std::uint64_t skipped = 0;
  const Trace capture = read_capture(path, &skipped);
  TrafficAnalyzer analyzer{config};
  HostAccounting hosts{config.network};
  for (const PacketRecord& pkt : capture) {
    analyzer.process(pkt);
    if (top_n > 0) hosts.observe(pkt);
  }
  const AnalyzerReport report = analyzer.finish();

  std::printf("%llu packets (%llu skipped frames/blocks), %llu connections\n\n",
              static_cast<unsigned long long>(analyzer.packets_processed()),
              static_cast<unsigned long long>(skipped),
              static_cast<unsigned long long>(report.total_connections));
  std::printf("%s\n", report.protocol_table().c_str());
  std::printf("upload share: %s; TCP bytes: %s; UDP connections: %s\n",
              report::percent(report.upload_fraction()).c_str(),
              report::percent(static_cast<double>(report.tcp_bytes) /
                              std::max<std::uint64_t>(
                                  1, report.tcp_bytes + report.udp_bytes))
                  .c_str(),
              report::percent(static_cast<double>(report.udp_connections) /
                              std::max<std::uint64_t>(
                                  1, report.total_connections))
                  .c_str());
  if (report.lifetimes.count() > 0) {
    std::printf("TCP lifetimes: mean %.2f s, P90 %.2f s, P99 %.2f s\n",
                report.lifetime_summary.mean(),
                report.lifetimes.percentile(90),
                report.lifetimes.percentile(99));
  }
  if (report.out_in_delays.count() > 0) {
    std::printf("out-in delay: P50 %.3f s, P99 %.3f s, under 2.8 s: %s\n",
                report.out_in_delays.percentile(50),
                report.out_in_delays.percentile(99),
                report::percent(report.out_in_delays.fraction_below(2.8))
                    .c_str());
  }

  if (top_n > 0) {
    std::vector<std::vector<std::string>> rows{
        {"host", "upload", "download", "up%", "conns in", "conns out"}};
    for (const HostRecord& host : hosts.top_uploaders(top_n)) {
      rows.push_back({host.addr.to_string(),
                      std::to_string(host.upload_bytes),
                      std::to_string(host.download_bytes),
                      report::percent(host.upload_fraction(), 0),
                      std::to_string(host.connections_accepted),
                      std::to_string(host.connections_initiated)});
    }
    std::printf("\ntop uploaders:\n%s", report::table(rows).c_str());
  }

  if (!netflow_out.empty()) {
    std::FILE* f = std::fopen(netflow_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", netflow_out.c_str());
      return 1;
    }
    std::size_t flows = 0;
    for (const auto& packet : export_netflow_v5(analyzer.connections())) {
      std::fwrite(packet.data(), 1, packet.size(), f);
      flows += (packet.size() - kNetflowV5HeaderSize) / kNetflowV5RecordSize;
    }
    std::fclose(f);
    std::printf("\nexported %zu NetFlow v5 records to %s\n", flows,
                netflow_out.c_str());
  }
  return 0;
}

int cmd_filter(const Args& args) {
  const std::string path = args.require_string("pcap");
  const std::string out = args.get_string("out", "");
  const std::string save_state = args.get_string("save-state", "");
  const std::string load_state = args.get_string("load-state", "");
  const std::size_t threads =
      static_cast<std::size_t>(args.get_int("threads", 1));
  const std::size_t shards =
      static_cast<std::size_t>(args.get_int("shards", 0));
  const std::string shard_mode = shard_mode_from(args);
  const std::string kind = args.get_string(
      "filter",
      resolve_default_filter(!save_state.empty() || !load_state.empty(),
                             shard_mode == "shared"));
  const TenancySpec tenancy = tenancy_from(args);

  const FilterRegistry& registry = FilterRegistry::instance();
  const BackendDescriptor* backend = registry.find(kind);
  if (backend == nullptr) {
    throw ArgError("unknown --filter '" + kind + "' (" +
                   registry.names_joined("|") + ")");
  }
  // With --tenants the run's real filter is the hierarchical wrap, which
  // has no snapshot format and no shared concurrent view; reject those
  // combinations up front instead of failing after the replay.
  if (tenancy.enabled()) {
    if (!save_state.empty() || !load_state.empty()) {
      throw ArgError("--tenants is incompatible with "
                     "--save-state/--load-state (the hierarchical tenant "
                     "filter has no snapshot format)");
    }
    if (shard_mode == "shared") {
      throw ArgError("--tenants is incompatible with --shard-mode shared "
                     "(tenant state is shard-local by design)");
    }
    if (kind != "hierarchical") {
      backend = &registry.at("hierarchical");
    }
  }
  // Snapshot flags are gated on the backend's capability up front, so a
  // run never completes and then discovers its state cannot be saved (or
  // silently ignores a --load-state it cannot honor).
  if (!save_state.empty() && !backend->has(kCapSnapshot)) {
    throw ArgError("--save-state requires a snapshot-capable backend (" +
                   names_with(kCapSnapshot) + "); --filter " + kind +
                   " does not support snapshots");
  }
  if (!load_state.empty() && !backend->has(kCapSnapshot)) {
    throw ArgError("--load-state requires a snapshot-capable backend (" +
                   names_with(kCapSnapshot) + "); --filter " + kind +
                   " does not support snapshots");
  }

  EdgeRouterConfig config;
  config.network = network_from(args);
  config.track_blocked_connections = args.get_flag("blocklist");
  config.seed = seed_from(args);
  config.tenancy = tenancy.router;

  // --on-unhealthy arms the router's health monitor (degraded stance);
  // effective on both engines.
  apply_health_args(args, config);

  // --fault-spec routes the run through the supervised parallel engine
  // (even at --threads 1) so lane faults have lanes to land on.
  const std::string fault_spec_text = args.get_string("fault-spec", "");
  std::optional<FaultInjector> fault_injector;
  if (!fault_spec_text.empty()) {
    if (!kFaultsCompiled) {
      throw ArgError(
          "--fault-spec requires a build with UPBOUND_FAULTS=ON "
          "(the fault plane is compiled out of this binary)");
    }
    try {
      fault_injector.emplace(FaultSpec::parse(fault_spec_text), config.seed);
    } catch (const std::invalid_argument& e) {
      throw ArgError(std::string{"--fault-spec: "} + e.what());
    }
  }
  const bool faulted = fault_injector.has_value() && fault_injector->armed();
  const bool parallel_engine = threads > 1 || faulted;
  const MetricsOptions metrics = metrics_options_from(args, parallel_engine);

  // --tune arms the recommend-only adaptive tuner. Like
  // --metrics-interval it needs the single-thread engine: the tuner
  // samples the one live filter's occupancy in sim time.
  const bool tune = args.get_flag("tune");
  double tune_target = 0.01;
  if (args.has("tune-target")) {
    tune_target = args.get_double("tune-target", 0.01);
    if (!tune) throw ArgError("--tune-target requires --tune");
    if (!(tune_target > 0.0 && tune_target < 1.0)) {
      throw ArgError("--tune-target must be in (0, 1)");
    }
  }
  if (tune) {
    if (parallel_engine) {
      throw ArgError("--tune requires the single-thread engine "
                     "(--threads 1, no --fault-spec)");
    }
    if (!backend->has(kCapOccupancy)) {
      throw ArgError("--tune requires a backend with an occupancy signal (" +
                     names_with(kCapOccupancy) + ")");
    }
    config.tuner.enabled = true;
    config.tuner.target_penetration = tune_target;
  }

  if (parallel_engine) {
    if (!out.empty() || !save_state.empty() || !load_state.empty()) {
      throw ArgError(
          faulted
              ? "--fault-spec is incompatible with "
                "--out/--save-state/--load-state"
              : "--out/--save-state/--load-state require --threads 1");
    }
    if (shard_mode == "shared" && !backend->has(kCapSharedView)) {
      throw ArgError("--shard-mode shared requires a shared-view-capable "
                     "backend (" + names_with(kCapSharedView) + ")");
    }
    const FilterSpec spec = parse_effective_filter_spec(args, kind, tenancy);
    const PolicySpec policy_spec = policy_spec_from(args);
    if (const int rc = reject_unconsumed(args); rc != 0) return rc;

    const Trace trace = read_capture(path, nullptr);
    ParallelReplayConfig pconfig;
    pconfig.threads = threads;
    pconfig.shards = shards;
    if (faulted) pconfig.fault_injector = &*fault_injector;
    const std::size_t effective_shards =
        shards == 0 ? kDefaultShardCount : shards;

    std::unique_ptr<ConcurrentBitmapFilter> shared_filter;
    if (shard_mode == "shared") {
      shared_filter = std::make_unique<ConcurrentBitmapFilter>(
          spec.config_as<BitmapFilterConfig>());
    }
    ConcurrentBitmapFilter* shared = shared_filter.get();
    const EdgeRouterConfig base = config;
    const ShardRouterFactory factory =
        [&spec, &policy_spec, &base, shared, effective_shards](
            const ClientNetwork& net, std::size_t shard) {
          EdgeRouterConfig cfg = base;
          cfg.network = net;
          cfg.seed = shard_seed(base.seed, shard);
          std::unique_ptr<StateFilter> shard_state =
              shared != nullptr
                  ? std::unique_ptr<StateFilter>(
                        std::make_unique<SharedFilterView>(*shared))
                  : make_state_filter(spec);
          return std::make_unique<EdgeRouter>(
              cfg, std::move(shard_state),
              make_policy(policy_spec, effective_shards));
        };

    const ParallelReplayResult result =
        parallel_replay(trace, config.network, factory, pconfig);
    const EdgeRouterStats& stats = result.merged.stats;
    std::printf("outbound passed:  %llu packets, %llu bytes\n",
                static_cast<unsigned long long>(stats.outbound_packets),
                static_cast<unsigned long long>(stats.outbound_bytes));
    std::printf("inbound passed:   %llu packets, %llu bytes\n",
                static_cast<unsigned long long>(stats.inbound_passed_packets),
                static_cast<unsigned long long>(stats.inbound_passed_bytes));
    std::printf("inbound dropped:  %llu packets (%s), %llu via blocklist\n",
                static_cast<unsigned long long>(
                    stats.inbound_dropped_packets),
                report::percent(stats.inbound_drop_rate()).c_str(),
                static_cast<unsigned long long>(stats.blocked_drops));
    std::printf("upload suppressed: %llu packets, %llu bytes\n",
                static_cast<unsigned long long>(
                    stats.suppressed_outbound_packets),
                static_cast<unsigned long long>(
                    stats.suppressed_outbound_bytes));
    if (shared != nullptr) {
      std::printf("filter state: %zu bytes shared across %zu shards (%s)\n",
                  shared->storage_bytes(), result.shards,
                  result.filter_name.c_str());
    } else {
      std::size_t total_bytes = 0;
      for (const std::size_t bytes : result.shard_filter_bytes) {
        total_bytes += bytes;
      }
      std::printf("filter state: %zu bytes over %zu shards (%s)\n",
                  total_bytes, result.shards, result.filter_name.c_str());
    }
    std::printf("datapath stage counters:\n");
    for (const CounterSample& sample : stats.stage_counters) {
      std::printf("  %-28s %llu\n", sample.name.c_str(),
                  static_cast<unsigned long long>(sample.value));
    }
    print_shard_table(result);
    if (tenancy.enabled()) {
      // Shard-local tenant stats merge key-wise, so the table is the same
      // at any thread count.
      print_tenant_stats(result.merged.stats,
                         TenantTable{tenancy.router.table});
    }
    if (faulted) {
      std::size_t dead_lanes = 0;
      for (const std::uint8_t failed : result.shard_failed) {
        dead_lanes += failed;
      }
      std::printf("fault plane: spec '%s', seed %llu\n",
                  fault_spec_text.c_str(),
                  static_cast<unsigned long long>(config.seed));
      std::printf(
          "  feed: %llu corrupted, %llu clock-faulted\n",
          static_cast<unsigned long long>(fault_injector->packets_corrupted()),
          static_cast<unsigned long long>(
              fault_injector->clock_faulted_packets()));
      std::printf(
          "  lanes: %llu bit flips (%llu ignored), %llu stalls, "
          "%zu dead of %zu\n",
          static_cast<unsigned long long>(fault_injector->bits_flipped()),
          static_cast<unsigned long long>(fault_injector->flips_ignored()),
          static_cast<unsigned long long>(fault_injector->stalls_taken()),
          dead_lanes, result.shards);
      std::printf(
          "  failover: %llu packets re-merged, %llu unroutable, "
          "%llu lost, %llu condemned by watchdog\n",
          static_cast<unsigned long long>(result.failover_packets),
          static_cast<unsigned long long>(result.unroutable_packets),
          static_cast<unsigned long long>(result.lost_packets),
          static_cast<unsigned long long>(result.lanes_condemned));
    }
    if (metrics.enabled()) {
      const SimTime end =
          trace.empty() ? SimTime::origin() : trace.back().timestamp;
      std::unique_ptr<MetricsJsonlWriter> jsonl;
      if (!metrics.prometheus) {
        jsonl = std::make_unique<MetricsJsonlWriter>(metrics.out);
      }
      write_final_metrics(metrics, jsonl.get(), result.merged.metrics, end);
      std::printf("metrics written to %s\n", metrics.out.c_str());
    }
    return 0;
  }

  // With --load-state the filter's geometry comes from the snapshot, so
  // the backend's own arguments are not parsed (geometry flags alongside
  // --load-state are rejected as unconsumed).
  const bool load_snapshot = !load_state.empty();
  std::optional<FilterSpec> spec;
  if (!load_snapshot) spec = parse_effective_filter_spec(args, kind, tenancy);
  std::unique_ptr<DropPolicy> policy = make_policy(policy_spec_from(args), 1);
  if (const int rc = reject_unconsumed(args); rc != 0) return rc;

  // The trace is read before --load-state resolves so the staleness check
  // can compare the snapshot time against the replay's first timestamp.
  const Trace trace = read_capture(path, nullptr);
  std::unique_ptr<StateFilter> filter;
  if (load_snapshot) {
    std::FILE* f = std::fopen(load_state.c_str(), "rb");
    if (f == nullptr) throw ArgError("cannot read " + load_state);
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + got);
    }
    std::fclose(f);
    const std::optional<SimTime> now =
        trace.empty() ? std::nullopt
                      : std::optional<SimTime>{trace.front().timestamp};
    auto restored = restore_bitmap_filter_checked(bytes, now);
    if (!restored.ok()) {
      if (restored.error == SnapshotRestoreError::kStale) {
        throw ArgError("snapshot " + load_state + " is stale: taken " +
                       restored.staleness.to_string() +
                       " before the trace starts (> T_e); every mark has "
                       "expired -- start cold instead");
      }
      throw ArgError("cannot restore " + load_state + ": " +
                     snapshot_restore_error_name(restored.error));
    }
    std::printf("restored bitmap state from %s (snapshot at %s)\n",
                load_state.c_str(),
                restored.restored->snapshot_time.to_string().c_str());
    if (tune) {
      const BitmapFilterConfig& bc = restored.restored->filter.config();
      config.tuner.geometry.bits = bc.bits();
      config.tuner.geometry.hash_count = bc.hash_count;
      config.tuner.geometry.vector_count = bc.vector_count;
      config.tuner.geometry.rotate_interval = bc.rotate_interval;
    }
    filter = take_restored_filter(std::move(*restored.restored));
  } else {
    if (tune) {
      const std::optional<FilterGeometry> geometry = backend->geometry(*spec);
      if (!geometry.has_value()) {
        throw ArgError("--tune requires a backend with a declared geometry");
      }
      config.tuner.geometry = *geometry;
    }
    filter = make_state_filter(*spec);
  }
  EdgeRouter router{config, std::move(filter), std::move(policy)};

  std::unique_ptr<PcapWriter> writer;
  if (!out.empty()) writer = std::make_unique<PcapWriter>(out);
  std::unique_ptr<MetricsJsonlWriter> metrics_writer;
  if (metrics.enabled() && !metrics.prometheus) {
    metrics_writer = std::make_unique<MetricsJsonlWriter>(metrics.out);
  }
  // Interval snapshots fire on sim-time boundaries measured from the first
  // packet, so a trace replayed at any speed emits the same sequence.
  const bool interval_mode = !metrics.interval.is_zero() && !trace.empty();
  SimTime next_emit = interval_mode
                          ? trace.front().timestamp + metrics.interval
                          : SimTime::infinite();
  constexpr std::size_t kCliBatch = 256;
  std::array<RouterDecision, kCliBatch> decisions;
  for (std::size_t start = 0; start < trace.size(); start += kCliBatch) {
    const std::size_t n = std::min(kCliBatch, trace.size() - start);
    const PacketBatch batch{trace.data() + start, n};
    router.process_batch(batch, std::span<RouterDecision>{decisions.data(), n});
    while (batch[n - 1].timestamp >= next_emit) {
      const MetricsSnapshot snap = metrics.deterministic
                                       ? router.metrics_snapshot().deterministic()
                                       : router.metrics_snapshot();
      metrics_writer->write(snap, "interval", next_emit);
      next_emit += metrics.interval;
    }
    if (writer == nullptr) continue;
    for (std::size_t p = 0; p < n; ++p) {
      if (decisions[p] == RouterDecision::kPassedOutbound ||
          decisions[p] == RouterDecision::kPassedInbound) {
        writer->write(batch[p]);
      }
    }
  }
  if (metrics.enabled()) {
    const SimTime end =
        trace.empty() ? SimTime::origin() : trace.back().timestamp;
    write_final_metrics(metrics, metrics_writer.get(),
                        router.metrics_snapshot(), end);
    std::printf("metrics written to %s\n", metrics.out.c_str());
  }

  const EdgeRouterStats& stats = router.stats();
  std::printf("outbound passed:  %llu packets, %llu bytes\n",
              static_cast<unsigned long long>(stats.outbound_packets),
              static_cast<unsigned long long>(stats.outbound_bytes));
  std::printf("inbound passed:   %llu packets, %llu bytes\n",
              static_cast<unsigned long long>(stats.inbound_passed_packets),
              static_cast<unsigned long long>(stats.inbound_passed_bytes));
  std::printf("inbound dropped:  %llu packets (%s), %llu via blocklist\n",
              static_cast<unsigned long long>(stats.inbound_dropped_packets),
              report::percent(stats.inbound_drop_rate()).c_str(),
              static_cast<unsigned long long>(stats.blocked_drops));
  std::printf("upload suppressed: %llu packets, %llu bytes\n",
              static_cast<unsigned long long>(
                  stats.suppressed_outbound_packets),
              static_cast<unsigned long long>(
                  stats.suppressed_outbound_bytes));
  std::printf("filter state: %zu bytes (%s)\n",
              router.filter().storage_bytes(),
              router.filter().name().c_str());
  std::printf("datapath stage counters:\n");
  for (const CounterSample& sample : stats.stage_counters) {
    std::printf("  %-28s %llu\n", sample.name.c_str(),
                static_cast<unsigned long long>(sample.value));
  }
  if (const AdaptiveTuner* tuner = router.tuner()) {
    std::printf("%s\n", tuner->recommendation().to_string().c_str());
  }
  if (const HierarchicalFilter* hier = router.hierarchical_filter()) {
    print_hierarchical_summary(*hier);
  }
  if (router.tenancy_enabled()) {
    print_tenant_stats(stats, router.tenant_table());
  }
  if (writer != nullptr) {
    std::printf("surviving packets written to %s\n", out.c_str());
  }
  if (!save_state.empty()) {
    const auto* bitmap = dynamic_cast<const BitmapFilter*>(&router.filter());
    if (bitmap == nullptr) {
      std::fprintf(stderr,
                   "error: --save-state only supports --filter bitmap\n");
      return 2;
    }
    const SimTime end =
        trace.empty() ? SimTime::origin() : trace.back().timestamp;
    const auto snapshot = snapshot_bitmap_filter(*bitmap, end);
    try {
      // Crash-consistent: tmp file + flush + fsync + atomic rename, so a
      // crash mid-save leaves either the old state or the new one.
      save_snapshot_file(save_state, snapshot);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("bitmap state (%zu bytes) saved to %s\n", snapshot.size(),
                save_state.c_str());
  }
  return 0;
}

int cmd_compare(const Args& args) {
  const std::string path = args.require_string("pcap");
  const double pd = args.get_double("pd", 1.0);
  const ClientNetwork network = network_from(args);
  const BitmapFilterConfig bitmap_config = bitmap_from(args);
  const std::uint64_t seed = seed_from(args);
  const std::size_t threads =
      static_cast<std::size_t>(args.get_int("threads", 1));
  const std::size_t shards =
      static_cast<std::size_t>(args.get_int("shards", 0));
  const std::string shard_mode = shard_mode_from(args);
  const TenancySpec tenancy = tenancy_from(args);
  if (tenancy.enabled() && shard_mode == "shared") {
    throw ArgError("--tenants is incompatible with --shard-mode shared "
                   "(tenant state is shard-local by design)");
  }
  if (const int rc = reject_unconsumed(args); rc != 0) return rc;

  const Trace trace = read_capture(path, nullptr);

  // One row per registered backend, every backend derived from the shared
  // bitmap design so the rows stay comparable: bitmap-geometry backends
  // take {bits, k, m, dt} directly, the exact-state backends take the
  // matching expiry window (naive) or the SPI default timeout.
  std::vector<std::vector<std::string>> rows{
      {"filter", "inbound drop rate", "carried up", "carried down",
       "state bytes"}};
  for (const BackendDescriptor& backend :
       FilterRegistry::instance().descriptors()) {
    MapFilterArgs margs;
    margs.set("bits", std::to_string(bitmap_config.log2_bits));
    margs.set("k", std::to_string(bitmap_config.vector_count));
    margs.set("m", std::to_string(bitmap_config.hash_count));
    margs.set("dt", std::to_string(bitmap_config.rotate_interval.to_sec()));
    if (bitmap_config.key_mode == KeyMode::kHolePunching) {
      margs.set_flag("hole-punching");
    }
    if (backend.name == "spi") {
      margs.set("timeout", "240");
    } else if (backend.name == "naive") {
      margs.set("timeout",
                std::to_string(bitmap_config.expiry_timer().to_sec()));
    }
    // With --tenants every row runs behind the hierarchical tenant wrap
    // (the hierarchical row itself just gains the tenant keys), so the
    // comparison measures each backend as a fine tier under identical
    // per-subscriber enforcement.
    const bool wrapped = tenancy.enabled() && backend.name != "hierarchical";
    if (tenancy.enabled()) {
      margs.set("tenant-mode", tenant_mode_name(tenancy.router.table.mode));
      if (tenancy.tenants > 0) {
        margs.set("tenants", std::to_string(tenancy.tenants));
      }
      if (tenancy.cap > 0) {
        margs.set("tenant-cap", std::to_string(tenancy.cap));
      }
      if (wrapped) margs.set("fine", backend.name);
    }
    const BackendDescriptor& parse_backend =
        wrapped ? FilterRegistry::instance().at("hierarchical") : backend;
    const FilterSpec spec = parse_backend.parse(margs);
    // In shared mode, shared-view-capable rows drive one concurrent
    // filter from every shard instead of a per-shard instance.
    const bool share = threads > 1 && shard_mode == "shared" &&
                       backend.has(kCapSharedView);
    std::string label = share ? backend.name + " (shared)" : backend.name;
    if (wrapped) label = backend.name + " (tenant)";
    if (threads > 1) {
      std::unique_ptr<ConcurrentBitmapFilter> shared_filter;
      if (share) {
        shared_filter = std::make_unique<ConcurrentBitmapFilter>(
            spec.config_as<BitmapFilterConfig>());
      }
      ConcurrentBitmapFilter* shared = shared_filter.get();
      const ShardRouterFactory factory =
          [&spec, &network, &tenancy, seed, pd, shared](const ClientNetwork&,
                                                        std::size_t shard) {
            EdgeRouterConfig config;
            config.network = network;
            config.seed = shard_seed(seed, shard);
            config.track_blocked_connections = false;
            config.tenancy = tenancy.router;
            std::unique_ptr<StateFilter> shard_state =
                shared != nullptr
                    ? std::unique_ptr<StateFilter>(
                          std::make_unique<SharedFilterView>(*shared))
                    : make_state_filter(spec);
            return std::make_unique<EdgeRouter>(
                config, std::move(shard_state),
                std::make_unique<ConstantDropPolicy>(pd));
          };
      ParallelReplayConfig pconfig;
      pconfig.threads = threads;
      pconfig.shards = shards;
      const ParallelReplayResult result =
          parallel_replay(trace, network, factory, pconfig);
      std::size_t state_bytes = 0;
      if (shared != nullptr) {
        state_bytes = shared->storage_bytes();
      } else {
        for (const std::size_t bytes : result.shard_filter_bytes) {
          state_bytes += bytes;
        }
      }
      const EdgeRouterStats& stats = result.merged.stats;
      rows.push_back({label,
                      report::percent(stats.inbound_drop_rate(), 3),
                      std::to_string(stats.outbound_bytes),
                      std::to_string(stats.inbound_passed_bytes),
                      std::to_string(state_bytes)});
      continue;
    }
    EdgeRouterConfig config;
    config.network = network;
    config.seed = seed;
    config.track_blocked_connections = false;
    config.tenancy = tenancy.router;
    EdgeRouter router{config, make_state_filter(spec),
                      std::make_unique<ConstantDropPolicy>(pd)};
    constexpr std::size_t kCompareBatch = 256;
    std::array<RouterDecision, kCompareBatch> decisions;
    for (std::size_t start = 0; start < trace.size();
         start += kCompareBatch) {
      const std::size_t n = std::min(kCompareBatch, trace.size() - start);
      router.process_batch(PacketBatch{trace.data() + start, n},
                           std::span<RouterDecision>{decisions.data(), n});
    }
    const EdgeRouterStats& stats = router.stats();
    rows.push_back({label,
                    report::percent(stats.inbound_drop_rate(), 3),
                    std::to_string(stats.outbound_bytes),
                    std::to_string(stats.inbound_passed_bytes),
                    std::to_string(router.filter().storage_bytes())});
  }
  std::printf("%zu packets, P_d = %.2f for stateless inbound\n\n%s",
              trace.size(), pd, report::table(rows).c_str());
  return 0;
}

int cmd_attack(const Args& args) {
  const std::string pcap = args.get_string("pcap", "");
  const std::string scenario_arg = args.get_string("scenario", "all");
  const std::string filters_arg = args.get_string("filters", "bitmap,spi,naive");
  const std::string out = args.get_string("out", "attack_report.jsonl");

  AttackEvaluatorConfig config;
  config.attack.bitmap = bitmap_from(args);
  config.attack.intensity = args.get_double("intensity", 1.0);
  config.attack.seed = seed_from(args);
  config.attack.spi_idle_timeout =
      Duration::sec(args.get_double("spi-timeout", 240.0));
  config.attack.saturation_occupancy =
      args.get_double("saturation-occupancy", 0.4);
  config.attack.rotation_mistimed = args.get_flag("mistimed");
  config.attack.forgery_requests_per_sec = args.get_double("request-rate", 8.0);
  config.pd = args.get_double("pd", 1.0);
  config.upload_bound_bps = args.get_double("bound", 2e6);
  config.seed = config.attack.seed;
  config.threads = static_cast<std::size_t>(args.get_int("threads", 1));
  config.shards = static_cast<std::size_t>(args.get_int("shards", 1));
  config.occupancy_interval =
      Duration::sec(args.get_double("occupancy-interval", 1.0));
  const TenancySpec tenancy = tenancy_from(args);
  config.tenancy = tenancy.router;
  config.tenant_cap = tenancy.cap;
  if (config.threads == 0) throw ArgError("--threads must be >= 1");
  if (config.shards == 0) throw ArgError("--shards must be >= 1");
  if (config.attack.intensity <= 0.0) {
    throw ArgError("--intensity must be > 0");
  }

  config.filters.clear();
  for (std::size_t start = 0; start < filters_arg.size();) {
    const std::size_t comma = filters_arg.find(',', start);
    const std::size_t end =
        comma == std::string::npos ? filters_arg.size() : comma;
    if (end > start) config.filters.push_back(filters_arg.substr(start, end - start));
    start = end + 1;
  }
  if (config.filters.empty()) throw ArgError("--filters must name a filter");
  for (const std::string& name : config.filters) {
    if (FilterRegistry::instance().find(name) == nullptr) {
      throw ArgError("unknown filter '" + name + "' in --filters (" +
                     FilterRegistry::instance().names_joined("|") + ")");
    }
  }

  std::vector<AttackScenarioKind> scenarios;
  if (scenario_arg == "all") {
    scenarios = all_attack_scenarios();
  } else {
    for (std::size_t start = 0; start < scenario_arg.size();) {
      const std::size_t comma = scenario_arg.find(',', start);
      const std::size_t end =
          comma == std::string::npos ? scenario_arg.size() : comma;
      const std::string one = scenario_arg.substr(start, end - start);
      AttackScenarioKind kind;
      if (!parse_attack_scenario(one, &kind)) {
        throw ArgError("unknown --scenario '" + one +
                       "' (collision|saturation|rotation|forgery|all)");
      }
      scenarios.push_back(kind);
      start = end + 1;
    }
  }
  if (scenarios.empty()) throw ArgError("--scenario must name a scenario");

  const ClientNetwork network = network_from(args);
  // The legit background comes from a capture when provided, else from the
  // calibrated campus generator (same knobs as `generate`).
  CampusTraceConfig campus;
  campus.duration = Duration::sec(args.get_double("duration", 60.0));
  campus.connections_per_sec = args.get_double("rate", 80.0);
  campus.bandwidth_bps = args.get_double("bandwidth", 12e6);
  campus.seed = config.attack.seed;
  campus.network.client_prefix = network.prefixes().front();
  if (const int rc = reject_unconsumed(args); rc != 0) return rc;

  Trace legit;
  if (!pcap.empty()) {
    legit = read_capture(pcap, nullptr);
  } else {
    legit = generate_campus_trace(campus).packets;
  }

  const AttackReport report =
      evaluate_attacks(legit, network, scenarios, config);

  std::printf("%zu legit packets, %zu scenarios x %zu filters "
              "(seed %llu, shards %zu)\n\n%s",
              legit.size(), scenarios.size(), config.filters.size(),
              static_cast<unsigned long long>(config.attack.seed),
              config.shards, report.summary_table().c_str());
  const std::string tenant_rows = report.tenant_table();
  if (!tenant_rows.empty()) {
    std::printf("\nper-tenant attack breakdown (achieved upload vs the "
                "%.2f Mbit/s bound):\n%s",
                config.upload_bound_bps / 1e6, tenant_rows.c_str());
  }
  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    const std::string jsonl = report.to_jsonl();
    std::fwrite(jsonl.data(), 1, jsonl.size(), f);
    std::fclose(f);
    std::printf("\nreport written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_advise(const Args& args) {
  const std::size_t connections =
      static_cast<std::size_t>(args.get_int("connections", 15'000));
  const unsigned bits = static_cast<unsigned>(args.get_int("bits", 20));
  const unsigned k = static_cast<unsigned>(args.get_int("k", 4));
  const double dt = args.get_double("dt", 5.0);
  if (const int rc = reject_unconsumed(args); rc != 0) return rc;

  const BitmapAdvice advice = advise(std::size_t{1} << bits, k,
                                     Duration::sec(dt), connections);
  std::printf("recommended configuration for %zu connections/expiry "
              "window:\n  %s\n",
              connections, advice.to_string().c_str());
  std::printf("capacity at this N (Eq. 6): p=10%% -> %zu conns, "
              "p=5%% -> %zu, p=1%% -> %zu\n",
              max_connections_for(0.10, std::size_t{1} << bits),
              max_connections_for(0.05, std::size_t{1} << bits),
              max_connections_for(0.01, std::size_t{1} << bits));
  return 0;
}

int cmd_live(const Args& args) {
  using namespace upbound::live;

  const bool tap = args.get_flag("tap");
  const std::string afpacket = args.get_string("afpacket", "");
  if (tap == !afpacket.empty()) {
    throw ArgError("live needs exactly one capture backend: "
                   "--tap or --afpacket IFACE");
  }
  const std::string kind = args.get_string(
      "filter", resolve_default_filter(false, false));
  const TenancySpec tenancy = tenancy_from(args);
  const FilterSpec spec = parse_effective_filter_spec(args, kind, tenancy);
  const std::string filter_label =
      tenancy.enabled() && kind != "hierarchical"
          ? "hierarchical(fine=" + kind + ")"
          : kind;

  LiveConfig config;
  config.router.network = network_from(args);
  config.router.track_blocked_connections = args.get_flag("blocklist");
  config.router.seed = seed_from(args);
  config.router.tenancy = tenancy.router;
  apply_health_args(args, config.router);

  const PolicySpec policy = policy_spec_from(args);
  config.policy_red = policy.red;
  config.policy_low = policy.low;
  config.policy_high = policy.high;
  config.policy_pd = policy.pd;

  const MetricsOptions metrics = metrics_options_from(args, false);
  config.metrics_out = metrics.out;
  config.metrics_interval = metrics.interval;
  config.metrics_deterministic = metrics.deterministic;
  config.metrics_prometheus = metrics.prometheus;

  const double duration_sec = args.get_double("duration", 0.0);
  if (duration_sec < 0.0) throw ArgError("--duration must be >= 0");
  config.run_duration = Duration::sec(duration_sec);
  config.max_packets = args.get_u64("max-packets", 0);
  const int tick_ms = static_cast<int>(args.get_int("tick-ms", 100));
  if (tick_ms <= 0) throw ArgError("--tick-ms must be > 0");
  config.tick = Duration::msec(tick_ms);
  const int batch = static_cast<int>(args.get_int("batch", 256));
  if (batch <= 0) throw ArgError("--batch must be > 0");
  config.batch_max = static_cast<std::size_t>(batch);

  const std::string stamp = args.get_string("stamp", "frame");
  if (stamp != "frame" && stamp != "arrival") {
    throw ArgError("--stamp must be frame or arrival");
  }
  const int tap_port = static_cast<int>(args.get_int("tap-port", 9000));
  if (tap_port < 0 || tap_port > 65535) {
    throw ArgError("--tap-port must be in [0, 65535]");
  }
  const std::string control_path = args.get_string("control", "");
  const double control_timeout_sec =
      args.get_double("control-timeout", 30.0);
  if (control_timeout_sec < 0.0) {
    throw ArgError("--control-timeout must be >= 0 (0 disables reaping)");
  }

  config.checkpoint_dir = args.get_string("checkpoint-dir", "");
  const double checkpoint_sec = args.get_double("checkpoint-interval", 5.0);
  if (checkpoint_sec <= 0.0) {
    throw ArgError("--checkpoint-interval must be > 0");
  }
  config.checkpoint_interval = Duration::sec(checkpoint_sec);
  const int checkpoint_keep =
      static_cast<int>(args.get_int("checkpoint-keep", 4));
  if (checkpoint_keep <= 0) throw ArgError("--checkpoint-keep must be > 0");
  config.checkpoint_keep = static_cast<std::size_t>(checkpoint_keep);
  const std::string restore_dir = args.get_string("restore-dir", "");
  const std::string reload_config = args.get_string("reload-config", "");
  config.capture_retry_limit = args.get_u64("capture-retry-limit", 0);

  const std::string fault_spec_text = args.get_string("fault-spec", "");
  std::optional<FaultInjector> fault_injector;
  if (!fault_spec_text.empty()) {
    if (!kFaultsCompiled) {
      throw ArgError(
          "--fault-spec requires a build with UPBOUND_FAULTS=ON "
          "(the fault plane is compiled out of this binary)");
    }
    try {
      fault_injector.emplace(FaultSpec::parse(fault_spec_text),
                             config.router.seed);
    } catch (const std::invalid_argument& e) {
      throw ArgError(std::string{"--fault-spec: "} + e.what());
    }
    config.faults = &*fault_injector;
  }

  const std::string out = args.get_string("out", "");
  if (const int rc = reject_unconsumed(args); rc != 0) return rc;

  MonotonicClock clock;
  config.clock = &clock;

  std::unique_ptr<CaptureSource> source;
  const UdpTapSource* tap_source = nullptr;
  if (tap) {
    UdpTapSource::Config tap_config;
    tap_config.port = static_cast<std::uint16_t>(tap_port);
    tap_config.timestamp_mode = stamp == "frame"
                                    ? TapTimestampMode::kFromFrames
                                    : TapTimestampMode::kOnReceive;
    tap_config.clock = &clock;
    auto owned = std::make_unique<UdpTapSource>(tap_config);
    tap_source = owned.get();
    source = std::move(owned);
  } else {
    AfPacketSource::Config ap_config;
    ap_config.interface = afpacket;
    ap_config.clock = &clock;
    source = std::make_unique<AfPacketSource>(ap_config);
  }

  EventLoop loop;
  LiveDatapath datapath{std::move(config), spec, std::move(source), loop};
  if (!control_path.empty()) {
    datapath.enable_control(control_path,
                            Duration::sec(control_timeout_sec));
  }

  if (!restore_dir.empty()) {
    // Warm-start before any traffic flows. Cross-process restart: no
    // comparable sim time, so staleness is not checked here (the rotation
    // schedule re-anchors on the first packet).
    const CheckpointRestore restore =
        datapath.restore_checkpoint_dir(restore_dir);
    std::printf("live: %s\n", restore.report().c_str());
  }

  std::unique_ptr<PcapWriter> writer;
  if (!out.empty()) {
    writer = std::make_unique<PcapWriter>(out);
    datapath.set_verdict_sink(
        [&writer](const PacketRecord& pkt, RouterDecision decision) {
          if (decision == RouterDecision::kPassedOutbound ||
              decision == RouterDecision::kPassedInbound) {
            writer->write(pkt);
          }
        });
  }
  loop.add_signals(
      {SIGINT, SIGTERM, SIGHUP},
      [&datapath, &reload_config](int signo) {
        if (signo == SIGHUP) {
          // Hot reload: same path as the control socket's `reload` verb.
          if (reload_config.empty()) {
            std::fprintf(stderr,
                         "live: SIGHUP ignored (no --reload-config)\n");
            return;
          }
          const ControlReply reply =
              datapath.reload_from_file(reload_config);
          std::fprintf(stderr, "live: reload %s: %s\n",
                       reload_config.c_str(), reply.render().c_str());
          return;
        }
        datapath.drain_and_stop();
      });

  if (tap_source != nullptr) {
    std::printf("live: udp-tap on 127.0.0.1:%u (filter %s)\n",
                static_cast<unsigned>(tap_source->local_port()),
                filter_label.c_str());
  } else {
    std::printf("live: af_packet on %s (filter %s)\n", afpacket.c_str(),
                filter_label.c_str());
  }
  if (!control_path.empty()) {
    std::printf("live: control socket at %s\n", control_path.c_str());
  }
  if (const Checkpointer* ck = datapath.checkpointer()) {
    std::printf("live: checkpointing to %s every %s (keep %zu)\n",
                ck->config().dir.c_str(),
                ck->config().interval.to_string().c_str(),
                ck->config().keep);
  }
  std::fflush(stdout);

  loop.run();
  datapath.finalize();

  const LiveStats& live = datapath.stats();
  std::printf("frames received:  %llu (%llu bytes), %llu malformed, "
              "%llu decode errors\n",
              static_cast<unsigned long long>(live.frames),
              static_cast<unsigned long long>(live.frame_bytes),
              static_cast<unsigned long long>(live.malformed),
              static_cast<unsigned long long>(live.decode_errors));
  std::printf("packets processed: %llu in %llu batches "
              "(%llu forwarded, %llu dropped, %llu ignored)\n",
              static_cast<unsigned long long>(live.packets),
              static_cast<unsigned long long>(live.batches),
              static_cast<unsigned long long>(live.forwarded),
              static_cast<unsigned long long>(live.dropped),
              static_cast<unsigned long long>(live.ignored));
  const EdgeRouterStats& stats = datapath.router().stats();
  std::printf("inbound dropped:  %llu packets (%s), %llu via blocklist\n",
              static_cast<unsigned long long>(stats.inbound_dropped_packets),
              report::percent(stats.inbound_drop_rate()).c_str(),
              static_cast<unsigned long long>(stats.blocked_drops));
  std::printf("filter state: %zu bytes (%s)\n",
              datapath.router().filter().storage_bytes(),
              datapath.router().filter().name().c_str());
  std::printf("datapath stage counters:\n");
  for (const CounterSample& sample : stats.stage_counters) {
    std::printf("  %-28s %llu\n", sample.name.c_str(),
                static_cast<unsigned long long>(sample.value));
  }
  if (const HierarchicalFilter* hier =
          datapath.router().hierarchical_filter()) {
    print_hierarchical_summary(*hier);
  }
  if (datapath.router().tenancy_enabled()) {
    print_tenant_stats(stats, datapath.router().tenant_table());
  }
  if (live.capture_failures > 0 || live.frames_lost > 0) {
    std::printf("capture: %llu failures, %llu reattaches "
                "(%llu attempts), %llu frames lost, %.3f s detached\n",
                static_cast<unsigned long long>(live.capture_failures),
                static_cast<unsigned long long>(live.capture_reattaches),
                static_cast<unsigned long long>(
                    live.capture_reattach_attempts),
                static_cast<unsigned long long>(live.frames_lost),
                static_cast<double>(live.capture_gap_usec) / 1e6);
  }
  if (datapath.checkpointer() != nullptr) {
    std::printf("checkpoints: %llu written, %llu errors\n",
                static_cast<unsigned long long>(live.checkpoints_written),
                static_cast<unsigned long long>(live.checkpoint_errors));
  }
  if (live.metrics_export_errors > 0) {
    std::printf("metrics export errors: %llu\n",
                static_cast<unsigned long long>(live.metrics_export_errors));
  }
  if (const ControlServer* control = datapath.control()) {
    std::printf("control: %llu connections, %llu commands, "
                "%llu protocol errors, %llu reaped\n",
                static_cast<unsigned long long>(
                    control->connections_accepted()),
                static_cast<unsigned long long>(
                    control->commands_processed()),
                static_cast<unsigned long long>(control->protocol_errors()),
                static_cast<unsigned long long>(
                    control->connections_reaped()));
  }
  if (!metrics.out.empty() && datapath.metrics_export_ok()) {
    std::printf("metrics written to %s\n", metrics.out.c_str());
  }
  if (writer != nullptr) {
    std::printf("surviving packets written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_tapsend(const Args& args) {
  using namespace upbound::live;

  const int port = static_cast<int>(args.get_int("port", 9000));
  if (port <= 0 || port > 65535) {
    throw ArgError("--port must be in [1, 65535]");
  }
  const std::string host = args.get_string("host", "127.0.0.1");
  const std::string pcap = args.get_string("pcap", "");
  const double pps = args.get_double("pps", 0.0);
  if (pps < 0.0) throw ArgError("--pps must be >= 0");
  const int burst = static_cast<int>(args.get_int("burst", 64));
  if (burst <= 0) throw ArgError("--burst must be > 0");

  Trace trace;
  if (!pcap.empty()) {
    trace = read_capture(pcap, nullptr);
  } else {
    CampusTraceConfig config;
    config.duration = Duration::sec(args.get_double("duration", 10.0));
    config.connections_per_sec = args.get_double("rate", 80.0);
    config.bandwidth_bps = args.get_double("bandwidth", 12e6);
    config.seed = args.get_u64("seed", 42);
    config.network.client_prefix = network_from(args).prefixes().front();
    trace = generate_campus_trace(config).packets;
  }
  if (const int rc = reject_unconsumed(args); rc != 0) return rc;
  if (trace.empty()) throw ArgError("nothing to send: empty trace");

  UdpTapSender sender{static_cast<std::uint16_t>(port), host};
  std::vector<std::vector<std::uint8_t>> datagrams;
  datagrams.reserve(static_cast<std::size_t>(burst));

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  for (std::size_t start = 0; start < trace.size();
       start += static_cast<std::size_t>(burst)) {
    const std::size_t n = std::min(static_cast<std::size_t>(burst),
                                   trace.size() - start);
    datagrams.clear();
    for (std::size_t p = 0; p < n; ++p) {
      datagrams.push_back(encode_tap_datagram(trace[start + p]));
    }
    sender.send_burst(datagrams);
    sent += n;
    if (pps > 0.0) {
      // Pace against the wall clock from t0, not per-burst sleeps, so
      // scheduling jitter does not accumulate into rate drift.
      const auto due =
          t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(
                       static_cast<double>(sent) / pps));
      std::this_thread::sleep_until(due);
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  const double seconds = std::max(elapsed.count(), 1e-9);
  std::printf("sent %llu tap datagrams to %s:%d in %.3f s (%.0f pkt/s)\n",
              static_cast<unsigned long long>(sent), host.c_str(), port,
              seconds, static_cast<double>(sent) / seconds);
  return 0;
}

void print_usage() {
  const std::string filters = FilterRegistry::instance().names_joined("|");
  std::printf(
      "upbound -- bound P2P upload traffic without payload inspection\n"
      "\n"
      "usage: upbound <command> [options]\n"
      "\n"
      "commands:\n"
      "  generate  synthesize a calibrated campus trace to a pcap file\n"
      "            --out FILE [--duration SEC] [--rate CONNS/S]\n"
      "            [--format pcap|pcapng]\n"
      "            [--bandwidth BPS] [--seed N] [--network CIDR]\n"
      "            [--tenant-scenario flash-crowd|diurnal-swell|swarm-join\n"
      "             --tenants N --tenant-mode subscriber|prefix24]\n"
      "  analyze   classify a pcap and print the measurement report\n"
      "            --pcap FILE [--network CIDR[,CIDR...]] [--te SEC]\n"
      "            [--top N] [--netflow FILE]\n"
      "  filter    replay a pcap through an edge filter\n"
      "            --pcap FILE [--network CIDR]\n"
      "            [--filter %s]\n"
      "            (default bitmap-blocked; bitmap with snapshot/shared runs)\n"
      "            [--low BPS --high BPS | --pd PROB] [--blocklist]\n"
      "            [--bits N --k K --dt SEC --m M] [--hole-punching]\n"
      "            [--timeout SEC] [--retouch-fraction R --retouch-seed N]\n"
      "            [--no-close-delete] [--out FILE] [--seed N]\n"
      "            [--tenants N] [--tenant-mode subscriber|prefix24]\n"
      "            [--tenant-cap N] [--front bitmap|bitmap-blocked|bitmap-mt]\n"
      "            [--front-bits N --front-k K --front-m M --front-dt SEC]\n"
      "            [--no-digest] [--digest-bits N --digest-m M]\n"
      "            [--save-state FILE] [--load-state FILE]\n"
      "            [--tune] [--tune-target P]\n"
      "            [--threads N] [--shards S] [--shard-mode sharded|shared]\n"
      "            [--metrics-out FILE] [--metrics-interval SEC]\n"
      "            [--metrics-format jsonl|prom] [--metrics-deterministic]\n"
      "            [--fault-spec SPEC] [--on-unhealthy fail-open|fail-closed]\n"
      "            [--health-occupancy U]\n"
      "  compare   run every registered filter backend side by side\n"
      "            --pcap FILE [--network CIDR] [--pd PROB] [--seed N]\n"
      "            [--bits N --k K --dt SEC --m M]\n"
      "            [--tenants N] [--tenant-mode subscriber|prefix24]\n"
      "            [--tenant-cap N]\n"
      "            [--threads N] [--shards S] [--shard-mode sharded|shared]\n"
      "  attack    evaluate adversarial workloads against the filters\n"
      "            [--scenario collision|saturation|rotation|forgery|all]\n"
      "            [--pcap FILE | --duration SEC --rate CONNS/S\n"
      "             --bandwidth BPS] [--network CIDR] [--seed N]\n"
      "            [--filters NAME[,NAME...] from %s]\n"
      "            [--intensity X]\n"
      "            [--bits N --k K --dt SEC --m M] [--hole-punching]\n"
      "            [--pd PROB] [--bound BPS] [--spi-timeout SEC]\n"
      "            [--saturation-occupancy U] [--mistimed]\n"
      "            [--request-rate R] [--occupancy-interval SEC]\n"
      "            [--tenants N] [--tenant-mode subscriber|prefix24]\n"
      "            [--tenant-cap N]\n"
      "            [--threads N] [--shards S] [--out FILE]\n"
      "  advise    size a bitmap filter for an expected load\n"
      "            [--connections N] [--bits N] [--k K] [--dt SEC]\n"
      "  live      run the filter on live traffic (epoll datapath)\n"
      "            --tap [--tap-port P] | --afpacket IFACE\n"
      "            [--filter %s]\n"
      "            [--network CIDR] [--low BPS --high BPS | --pd PROB]\n"
      "            [--blocklist] [--bits N --k K --dt SEC --m M]\n"
      "            [--tenants N] [--tenant-mode subscriber|prefix24]\n"
      "            [--tenant-cap N]\n"
      "            [--control PATH] [--control-timeout SEC]\n"
      "            [--stamp frame|arrival]\n"
      "            [--duration SEC] [--max-packets N] [--tick-ms MS]\n"
      "            [--batch N] [--out FILE] [--seed N]\n"
      "            [--checkpoint-dir DIR] [--checkpoint-interval SEC]\n"
      "            [--checkpoint-keep N] [--restore-dir DIR]\n"
      "            [--reload-config FILE  (applied on SIGHUP)]\n"
      "            [--capture-retry-limit N] [--fault-spec SPEC]\n"
      "            [--metrics-out FILE] [--metrics-interval SEC]\n"
      "            [--metrics-format jsonl|prom] [--metrics-deterministic]\n"
      "            [--on-unhealthy fail-open|fail-closed]\n"
      "            [--health-occupancy U]\n"
      "  tapsend   send a trace into a live --tap datapath\n"
      "            [--port P] [--host ADDR] [--pcap FILE |\n"
      "             --duration SEC --rate CONNS/S --bandwidth BPS\n"
      "             --seed N --network CIDR]\n"
      "            [--pps RATE] [--burst N]\n",
      filters.c_str(), filters.c_str(), filters.c_str());
}

int run(int argc, const char* const* argv) {
  try {
    const Args args = Args::parse(argc, argv);
    if (args.empty() || args.command() == "help") {
      print_usage();
      return args.empty() ? 2 : 0;
    }
    if (args.command() == "generate") return cmd_generate(args);
    if (args.command() == "analyze") return cmd_analyze(args);
    if (args.command() == "filter") return cmd_filter(args);
    if (args.command() == "compare") return cmd_compare(args);
    if (args.command() == "attack") return cmd_attack(args);
    if (args.command() == "advise") return cmd_advise(args);
    if (args.command() == "live") return cmd_live(args);
    if (args.command() == "tapsend") return cmd_tapsend(args);
    std::fprintf(stderr, "error: unknown command '%s'\n",
                 args.command().c_str());
    print_usage();
    return 2;
  } catch (const ArgError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace upbound::cli
