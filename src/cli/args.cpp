#include "cli/args.h"

#include <charconv>

namespace upbound::cli {

Args Args::parse(int argc, const char* const* argv) {
  Args args;
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    args.command_ = argv[i];
    ++i;
  }
  while (i < argc) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw ArgError("unexpected argument '" + token + "'");
    }
    token = token.substr(2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      args.values_[token.substr(0, eq)] = token.substr(eq + 1);
      ++i;
      continue;
    }
    // "--key value" when the next token is not an option; bare "--key"
    // is a boolean flag.
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      args.values_[token] = argv[i + 1];
      i += 2;
    } else {
      args.flags_.insert(token);
      ++i;
    }
  }
  return args;
}

std::optional<std::string> Args::raw(const std::string& key) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

std::string Args::require_string(const std::string& key) const {
  const auto value = raw(key);
  if (!value) throw ArgError("missing required option --" + key);
  return *value;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*value, &pos);
    if (pos != value->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    throw ArgError("option --" + key + " expects a number, got '" + *value +
                   "'");
  }
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  std::int64_t parsed = 0;
  const auto [ptr, ec] = std::from_chars(
      value->data(), value->data() + value->size(), parsed);
  if (ec != std::errc{} || ptr != value->data() + value->size()) {
    throw ArgError("option --" + key + " expects an integer, got '" + *value +
                   "'");
  }
  return parsed;
}

std::uint64_t Args::get_u64(const std::string& key,
                            std::uint64_t fallback) const {
  const std::int64_t parsed =
      get_int(key, static_cast<std::int64_t>(fallback));
  if (parsed < 0) throw ArgError("option --" + key + " must be >= 0");
  return static_cast<std::uint64_t>(parsed);
}

bool Args::get_flag(const std::string& key) const {
  consumed_.insert(key);
  return flags_.contains(key);
}

std::vector<std::string> Args::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (!consumed_.contains(key)) out.push_back(key);
  }
  for (const auto& key : flags_) {
    if (!consumed_.contains(key)) out.push_back(key);
  }
  return out;
}

}  // namespace upbound::cli
