// Pike VM: executes a compiled NFA program over a byte buffer in
// O(input * program) worst case with no backtracking -- classification sits
// on the packet path, so pathological patterns must not blow up.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rex/program.h"

namespace upbound::rex {

/// Reusable VM scratch state. Not thread-safe; create one per thread.
class PikeVm {
 public:
  /// True if the pattern matches starting at input offset 0.
  bool match_at_start(const Program& program,
                      std::span<const std::uint8_t> input);

  /// True if the pattern matches anywhere in the input (unanchored search).
  bool search(const Program& program, std::span<const std::uint8_t> input);

 private:
  bool run(const Program& program, std::span<const std::uint8_t> input,
           bool anchored);

  // Adds pc (following epsilon transitions) to the next thread list.
  void add_thread(const Program& program, std::uint32_t pc, std::size_t pos,
                  std::size_t input_size, std::vector<std::uint32_t>& list);

  std::vector<std::uint32_t> current_;
  std::vector<std::uint32_t> next_;
  std::vector<std::uint32_t> seen_;    // generation stamps per pc
  std::uint32_t generation_ = 0;
  bool matched_ = false;
};

}  // namespace upbound::rex
