// Recursive-descent parser: pattern text -> AST.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "rex/ast.h"

namespace upbound::rex {

/// Thrown for malformed patterns; carries the byte offset of the error.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at offset " + std::to_string(offset) +
                           ")"),
        offset_(offset) {}

  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

struct ParseOptions {
  /// Fold ASCII case: literals and class members match both cases.
  bool ignore_case = false;
  /// Upper bound on expanded {n,m} repetition counts (DoS guard).
  int max_counted_repeat = 256;
};

/// Parses `pattern` into an AST. Throws ParseError on malformed input.
NodePtr parse(std::string_view pattern, const ParseOptions& options = {});

}  // namespace upbound::rex
