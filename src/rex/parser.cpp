#include "rex/parser.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <utility>

namespace upbound::rex {

namespace {

ByteSet fold_case(ByteSet set, bool ignore_case) {
  if (!ignore_case) return set;
  for (int b = 'a'; b <= 'z'; ++b) {
    const int upper = b - 'a' + 'A';
    if (set.test(static_cast<std::size_t>(b))) set.set(static_cast<std::size_t>(upper));
    if (set.test(static_cast<std::size_t>(upper))) set.set(static_cast<std::size_t>(b));
  }
  return set;
}

ByteSet single(std::uint8_t b) {
  ByteSet set;
  set.set(b);
  return set;
}

ByteSet digit_set() {
  ByteSet set;
  for (int b = '0'; b <= '9'; ++b) set.set(static_cast<std::size_t>(b));
  return set;
}

ByteSet word_set() {
  ByteSet set = digit_set();
  for (int b = 'a'; b <= 'z'; ++b) set.set(static_cast<std::size_t>(b));
  for (int b = 'A'; b <= 'Z'; ++b) set.set(static_cast<std::size_t>(b));
  set.set('_');
  return set;
}

ByteSet space_set() {
  ByteSet set;
  for (char c : {' ', '\t', '\n', '\r', '\f', '\v'}) {
    set.set(static_cast<std::uint8_t>(c));
  }
  return set;
}

class Parser {
 public:
  Parser(std::string_view pattern, const ParseOptions& options)
      : pattern_(pattern), options_(options) {}

  NodePtr run() {
    NodePtr node = parse_alternation();
    if (!at_end()) {
      throw ParseError("unexpected '" + std::string(1, peek()) + "'", pos_);
    }
    return node;
  }

 private:
  bool at_end() const { return pos_ >= pattern_.size(); }
  char peek() const { return pattern_[pos_]; }
  char take() { return pattern_[pos_++]; }
  bool consume(char c) {
    if (!at_end() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  NodePtr parse_alternation() {
    std::vector<NodePtr> branches;
    branches.push_back(parse_concat());
    while (consume('|')) branches.push_back(parse_concat());
    if (branches.size() == 1) return std::move(branches.front());
    return Node::alternate(std::move(branches));
  }

  NodePtr parse_concat() {
    std::vector<NodePtr> parts;
    while (!at_end() && peek() != '|' && peek() != ')') {
      parts.push_back(parse_repetition());
    }
    if (parts.empty()) return Node::empty();
    if (parts.size() == 1) return std::move(parts.front());
    return Node::concat(std::move(parts));
  }

  NodePtr parse_repetition() {
    NodePtr atom = parse_atom();
    for (;;) {
      if (consume('*')) {
        atom = Node::repeat(std::move(atom), 0, kUnbounded);
      } else if (consume('+')) {
        atom = Node::repeat(std::move(atom), 1, kUnbounded);
      } else if (consume('?')) {
        atom = Node::repeat(std::move(atom), 0, 1);
      } else if (!at_end() && peek() == '{') {
        const std::size_t brace = pos_;
        auto counted = try_parse_counted();
        if (!counted) {
          // A '{' that is not a well-formed counted repeat is a literal.
          break;
        }
        const auto [min, max] = *counted;
        if (min < 0 || (max != kUnbounded && max < min)) {
          throw ParseError("bad repeat bounds", brace);
        }
        if (min > options_.max_counted_repeat ||
            (max != kUnbounded && max > options_.max_counted_repeat)) {
          throw ParseError("counted repeat too large", brace);
        }
        atom = Node::repeat(std::move(atom), min, max);
      } else {
        break;
      }
    }
    return atom;
  }

  // Parses "{n}", "{n,}", or "{n,m}". Returns nullopt (without consuming)
  // when the braces do not form a counted repeat.
  std::optional<std::pair<int, int>> try_parse_counted() {
    const std::size_t start = pos_;
    ++pos_;  // '{'
    auto read_int = [&]() -> std::optional<int> {
      // Digits saturate well above any legal bound so oversized repeats
      // parse as counted repeats and fail the range check (rather than
      // silently degrading to literal braces).
      constexpr int kSaturate = 2'000'000;
      int value = 0;
      bool any = false;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        value = std::min(kSaturate, value * 10 + (take() - '0'));
        any = true;
      }
      return any ? std::optional<int>(value) : std::nullopt;
    };
    const auto min = read_int();
    if (!min) {
      pos_ = start;
      return std::nullopt;
    }
    int max;
    if (consume(',')) {
      if (!at_end() && peek() == '}') {
        max = kUnbounded;
      } else {
        const auto m = read_int();
        if (!m) {
          pos_ = start;
          return std::nullopt;
        }
        max = *m;
      }
    } else {
      max = *min;
    }
    if (!consume('}')) {
      pos_ = start;
      return std::nullopt;
    }
    return std::make_pair(*min, max);
  }

  NodePtr parse_atom() {
    if (at_end()) throw ParseError("pattern ends where atom expected", pos_);
    const char c = take();
    switch (c) {
      case '(': {
        // Accept both "(...)" and the explicit non-capturing "(?:...)";
        // the engine has no captures, so they are identical.
        if (!at_end() && peek() == '?') {
          const std::size_t mark = pos_;
          ++pos_;
          if (!consume(':')) {
            throw ParseError("only (?: groups are supported", mark);
          }
        }
        NodePtr inner = parse_alternation();
        if (!consume(')')) throw ParseError("unterminated group", pos_);
        return inner;
      }
      case ')':
        throw ParseError("unmatched ')'", pos_ - 1);
      case '[':
        return parse_class();
      case '.':
        return Node::any();
      case '^':
        return Node::assert_start();
      case '$':
        return Node::assert_end();
      case '*':
      case '+':
      case '?':
        throw ParseError("quantifier with nothing to repeat", pos_ - 1);
      case '\\':
        return parse_escape(/*in_class=*/false).node();
      default:
        return Node::byte_set(fold_case(single(static_cast<std::uint8_t>(c)),
                                        options_.ignore_case));
    }
  }

  // An escape is either a single byte or a predefined class.
  class Escaped {
   public:
    static Escaped byte(std::uint8_t b) {
      Escaped e;
      e.is_byte_ = true;
      e.byte_ = b;
      return e;
    }
    static Escaped cls(ByteSet set) {
      Escaped e;
      e.set_ = set;
      return e;
    }

    bool is_byte() const { return is_byte_; }
    std::uint8_t byte_value() const { return byte_; }
    const ByteSet& set() const { return set_; }

    NodePtr node() const {
      if (is_byte_) return Node::byte_set(single(byte_));
      return Node::byte_set(set_);
    }

   private:
    bool is_byte_ = false;
    std::uint8_t byte_ = 0;
    ByteSet set_;
  };

  Escaped parse_escape(bool in_class) {
    if (at_end()) throw ParseError("dangling backslash", pos_);
    const char c = take();
    switch (c) {
      case 'x': {
        int value = 0;
        int digits = 0;
        while (digits < 2 && !at_end() &&
               std::isxdigit(static_cast<unsigned char>(peek()))) {
          const char h = take();
          value = value * 16 + (std::isdigit(static_cast<unsigned char>(h))
                                    ? h - '0'
                                    : std::tolower(h) - 'a' + 10);
          ++digits;
        }
        if (digits == 0) throw ParseError("\\x needs hex digits", pos_);
        return Escaped::byte(static_cast<std::uint8_t>(value));
      }
      case 'n': return Escaped::byte('\n');
      case 'r': return Escaped::byte('\r');
      case 't': return Escaped::byte('\t');
      case 'f': return Escaped::byte('\f');
      case 'v': return Escaped::byte('\v');
      case 'a': return Escaped::byte('\a');
      case '0': return Escaped::byte(0);
      case 'd': return Escaped::cls(digit_set());
      case 'D': return Escaped::cls(~digit_set());
      case 'w': return Escaped::cls(word_set());
      case 'W': return Escaped::cls(~word_set());
      case 's': return Escaped::cls(space_set());
      case 'S': return Escaped::cls(~space_set());
      default:
        if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
          throw ParseError("unknown escape \\" + std::string(1, c), pos_ - 1);
        }
        (void)in_class;
        return Escaped::byte(static_cast<std::uint8_t>(c));
    }
  }

  NodePtr parse_class() {
    const std::size_t start = pos_ - 1;
    bool negate = consume('^');
    ByteSet set;
    bool first = true;
    for (;;) {
      if (at_end()) throw ParseError("unterminated class", start);
      if (peek() == ']' && !first) {
        ++pos_;
        break;
      }
      first = false;

      // Lead element: literal byte, escape, or ']' as the first member.
      std::optional<std::uint8_t> lead_byte;
      const char c = take();
      if (c == '\\') {
        const Escaped e = parse_escape(/*in_class=*/true);
        if (e.is_byte()) {
          lead_byte = e.byte_value();
        } else {
          set |= e.set();
          continue;  // class escapes cannot start a range
        }
      } else {
        lead_byte = static_cast<std::uint8_t>(c);
      }

      // Range "a-z"? A '-' followed by ']' is a literal dash.
      if (!at_end() && peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        ++pos_;  // '-'
        std::uint8_t hi;
        const char hc = take();
        if (hc == '\\') {
          const Escaped e = parse_escape(/*in_class=*/true);
          if (!e.is_byte()) {
            throw ParseError("class escape cannot end a range", pos_);
          }
          hi = e.byte_value();
        } else {
          hi = static_cast<std::uint8_t>(hc);
        }
        if (hi < *lead_byte) throw ParseError("reversed class range", pos_);
        for (int b = *lead_byte; b <= hi; ++b) {
          set.set(static_cast<std::size_t>(b));
        }
      } else {
        set.set(*lead_byte);
      }
    }
    set = fold_case(set, options_.ignore_case);
    if (negate) set = ~set;
    if (set.none()) throw ParseError("class matches nothing", start);
    return Node::byte_set(set);
  }

  std::string_view pattern_;
  ParseOptions options_;
  std::size_t pos_ = 0;
};

}  // namespace

NodePtr parse(std::string_view pattern, const ParseOptions& options) {
  return Parser{pattern, options}.run();
}

}  // namespace upbound::rex
