// Compiled NFA program: a flat instruction array executed by the Pike VM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rex/ast.h"

namespace upbound::rex {

enum class OpCode : std::uint8_t {
  kByteSet,  // consume one byte if class_table[arg1] contains it
  kAny,      // consume any byte
  kSplit,    // fork execution to arg1 and arg2
  kJump,     // continue at arg1
  kAssertStart,
  kAssertEnd,
  kMatch,
};

struct Instruction {
  OpCode op;
  std::uint32_t arg1 = 0;
  std::uint32_t arg2 = 0;
};

struct Program {
  std::vector<Instruction> code;
  std::vector<ByteSet> classes;  // referenced by kByteSet.arg1

  std::size_t size() const { return code.size(); }

  /// Human-readable disassembly for debugging.
  std::string disassemble() const;
};

}  // namespace upbound::rex
