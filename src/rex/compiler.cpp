#include "rex/compiler.h"

#include <cstdio>
#include <stdexcept>
#include <unordered_map>

namespace upbound::rex {

namespace {

class Compiler {
 public:
  Program run(const Node& root) {
    emit_node(root);
    emit(OpCode::kMatch);
    return std::move(program_);
  }

 private:
  std::uint32_t emit(OpCode op, std::uint32_t arg1 = 0,
                     std::uint32_t arg2 = 0) {
    program_.code.push_back(Instruction{op, arg1, arg2});
    return static_cast<std::uint32_t>(program_.code.size() - 1);
  }

  std::uint32_t here() const {
    return static_cast<std::uint32_t>(program_.code.size());
  }

  std::uint32_t class_index(const ByteSet& set) {
    // Dedupe classes; patterns reuse the same sets heavily.
    const std::string key = set.to_string();
    const auto [it, inserted] =
        class_cache_.try_emplace(key, program_.classes.size());
    if (inserted) program_.classes.push_back(set);
    return static_cast<std::uint32_t>(it->second);
  }

  void emit_node(const Node& node) {
    switch (node.kind) {
      case NodeKind::kEmpty:
        break;
      case NodeKind::kByteSet:
        emit(OpCode::kByteSet, class_index(node.bytes));
        break;
      case NodeKind::kAny:
        emit(OpCode::kAny);
        break;
      case NodeKind::kAssertStart:
        emit(OpCode::kAssertStart);
        break;
      case NodeKind::kAssertEnd:
        emit(OpCode::kAssertEnd);
        break;
      case NodeKind::kConcat:
        for (const auto& child : node.children) emit_node(*child);
        break;
      case NodeKind::kAlternate:
        emit_alternate(node);
        break;
      case NodeKind::kRepeat:
        emit_repeat(node);
        break;
    }
  }

  void emit_alternate(const Node& node) {
    // branch_i preceded by Split(branch_i, next_split); each branch ends
    // with Jump(end).
    std::vector<std::uint32_t> jumps;
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      const bool last = i + 1 == node.children.size();
      std::uint32_t split = 0;
      if (!last) split = emit(OpCode::kSplit);
      emit_node(*node.children[i]);
      if (!last) {
        jumps.push_back(emit(OpCode::kJump));
        // First alternative begins right after the split.
        program_.code[split].arg1 = split + 1;
        program_.code[split].arg2 = here();
      }
    }
    for (std::uint32_t j : jumps) program_.code[j].arg1 = here();
  }

  void emit_repeat(const Node& node) {
    const Node& child = *node.children.front();
    const int min = node.min;
    const int max = node.max;

    // Mandatory copies.
    for (int i = 0; i < min; ++i) emit_node(child);

    if (max == kUnbounded) {
      // Kleene star over the remainder: L1: Split(L2, L3); L2: child;
      // Jump(L1); L3:
      const std::uint32_t l1 = emit(OpCode::kSplit);
      emit_node(child);
      emit(OpCode::kJump, l1);
      program_.code[l1].arg1 = l1 + 1;
      program_.code[l1].arg2 = here();
      return;
    }

    // (max - min) optional copies, each guarded by a Split that can bail
    // straight to the end.
    std::vector<std::uint32_t> splits;
    for (int i = min; i < max; ++i) {
      const std::uint32_t s = emit(OpCode::kSplit);
      splits.push_back(s);
      program_.code[s].arg1 = s + 1;
      emit_node(child);
    }
    for (std::uint32_t s : splits) program_.code[s].arg2 = here();
  }

  Program program_;
  std::unordered_map<std::string, std::size_t> class_cache_;
};

}  // namespace

Program compile(const Node& root) { return Compiler{}.run(root); }

std::string Program::disassemble() const {
  std::string out;
  char line[96];
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Instruction& ins = code[i];
    switch (ins.op) {
      case OpCode::kByteSet: {
        const std::size_t population = classes[ins.arg1].count();
        std::snprintf(line, sizeof(line), "%4zu  byteset class=%u (|%zu|)\n",
                      i, ins.arg1, population);
        break;
      }
      case OpCode::kAny:
        std::snprintf(line, sizeof(line), "%4zu  any\n", i);
        break;
      case OpCode::kSplit:
        std::snprintf(line, sizeof(line), "%4zu  split -> %u, %u\n", i,
                      ins.arg1, ins.arg2);
        break;
      case OpCode::kJump:
        std::snprintf(line, sizeof(line), "%4zu  jump -> %u\n", i, ins.arg1);
        break;
      case OpCode::kAssertStart:
        std::snprintf(line, sizeof(line), "%4zu  assert ^\n", i);
        break;
      case OpCode::kAssertEnd:
        std::snprintf(line, sizeof(line), "%4zu  assert $\n", i);
        break;
      case OpCode::kMatch:
        std::snprintf(line, sizeof(line), "%4zu  match\n", i);
        break;
    }
    out += line;
  }
  return out;
}

}  // namespace upbound::rex
