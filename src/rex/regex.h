// Public facade: compile once, search many buffers.
//
//   rex::Regex sig{"^\\x13bittorrent protocol", {.ignore_case = true}};
//   bool hit = sig.search(payload_bytes);
//
// Semantics follow the L7-filter convention the paper adopts: patterns are
// unanchored unless they begin with '^', matching is byte-oriented, and
// case-insensitivity is the norm for protocol text.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "rex/compiler.h"
#include "rex/parser.h"
#include "rex/vm.h"

namespace upbound::rex {

struct RegexOptions {
  bool ignore_case = false;
};

class Regex {
 public:
  /// Compiles `pattern`; throws ParseError on malformed input.
  explicit Regex(std::string_view pattern, RegexOptions options = {});

  /// True if the pattern matches anywhere in `input`. Thread-compatible:
  /// concurrent searches need one Regex per thread or external locking
  /// (the VM scratch state is reused between calls).
  bool search(std::span<const std::uint8_t> input) const;
  bool search(std::string_view input) const;

  /// True if the pattern matches a prefix of `input` (implicit '^').
  bool match_prefix(std::span<const std::uint8_t> input) const;
  bool match_prefix(std::string_view input) const;

  const std::string& pattern() const { return pattern_; }
  std::size_t program_size() const { return program_.size(); }
  std::string disassemble() const { return program_.disassemble(); }

 private:
  std::string pattern_;
  Program program_;
  mutable PikeVm vm_;
};

}  // namespace upbound::rex
