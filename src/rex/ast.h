// AST for the byte-oriented regex dialect used by the traffic classifier.
//
// The dialect covers what the L7-filter patterns in paper Table 1 need:
// byte literals, \xHH and class escapes, [...] classes with ranges and
// negation, grouping, alternation, the * + ? {n} {n,} {n,m} quantifiers,
// and ^/$ anchors. Matching is byte-wise (no locales, no UTF-8): protocol
// signatures are binary strings.
#pragma once

#include <bitset>
#include <cstdint>
#include <memory>
#include <vector>

namespace upbound::rex {

/// A set of bytes; the representation for literals and classes alike
/// (a literal is a one-bit set, case-insensitive literals two bits).
using ByteSet = std::bitset<256>;

enum class NodeKind {
  kByteSet,   // match one byte from `bytes`
  kAny,       // match any byte
  kConcat,    // children in sequence
  kAlternate, // any one child
  kRepeat,    // child repeated min..max times (max = kUnbounded for open)
  kAssertStart,
  kAssertEnd,
  kEmpty,     // matches the empty string
};

constexpr int kUnbounded = -1;

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  NodeKind kind;
  ByteSet bytes;               // kByteSet
  std::vector<NodePtr> children;  // kConcat / kAlternate / kRepeat(1 child)
  int min = 0;                 // kRepeat
  int max = 0;                 // kRepeat; kUnbounded for {n,} * +

  explicit Node(NodeKind k) : kind(k) {}

  static NodePtr byte_set(const ByteSet& set) {
    auto n = std::make_unique<Node>(NodeKind::kByteSet);
    n->bytes = set;
    return n;
  }
  static NodePtr any() { return std::make_unique<Node>(NodeKind::kAny); }
  static NodePtr empty() { return std::make_unique<Node>(NodeKind::kEmpty); }
  static NodePtr assert_start() {
    return std::make_unique<Node>(NodeKind::kAssertStart);
  }
  static NodePtr assert_end() {
    return std::make_unique<Node>(NodeKind::kAssertEnd);
  }
  static NodePtr concat(std::vector<NodePtr> children) {
    auto n = std::make_unique<Node>(NodeKind::kConcat);
    n->children = std::move(children);
    return n;
  }
  static NodePtr alternate(std::vector<NodePtr> children) {
    auto n = std::make_unique<Node>(NodeKind::kAlternate);
    n->children = std::move(children);
    return n;
  }
  static NodePtr repeat(NodePtr child, int min, int max) {
    auto n = std::make_unique<Node>(NodeKind::kRepeat);
    n->children.push_back(std::move(child));
    n->min = min;
    n->max = max;
    return n;
  }
};

}  // namespace upbound::rex
