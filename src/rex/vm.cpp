#include "rex/vm.h"

namespace upbound::rex {

void PikeVm::add_thread(const Program& program, std::uint32_t pc,
                        std::size_t pos, std::size_t input_size,
                        std::vector<std::uint32_t>& list) {
  // Iterative epsilon closure; the explicit stack keeps deep programs from
  // overflowing the call stack.
  thread_local std::vector<std::uint32_t> stack;
  stack.clear();
  stack.push_back(pc);
  while (!stack.empty()) {
    const std::uint32_t p = stack.back();
    stack.pop_back();
    if (seen_[p] == generation_) continue;
    seen_[p] = generation_;
    const Instruction& ins = program.code[p];
    switch (ins.op) {
      case OpCode::kJump:
        stack.push_back(ins.arg1);
        break;
      case OpCode::kSplit:
        // Push arg2 first so arg1 (the greedy branch) is explored first;
        // for boolean matching order does not change the answer.
        stack.push_back(ins.arg2);
        stack.push_back(ins.arg1);
        break;
      case OpCode::kAssertStart:
        if (pos == 0) stack.push_back(p + 1);
        break;
      case OpCode::kAssertEnd:
        if (pos == input_size) stack.push_back(p + 1);
        break;
      case OpCode::kMatch:
        matched_ = true;
        break;
      default:
        list.push_back(p);
        break;
    }
  }
}

bool PikeVm::run(const Program& program, std::span<const std::uint8_t> input,
                 bool anchored) {
  current_.clear();
  next_.clear();
  seen_.assign(program.code.size(), 0);
  generation_ = 0;
  matched_ = false;

  ++generation_;
  add_thread(program, 0, 0, input.size(), current_);
  if (matched_) return true;

  for (std::size_t pos = 0; pos < input.size(); ++pos) {
    if (current_.empty() && (anchored || matched_)) break;
    const std::uint8_t byte = input[pos];
    ++generation_;
    next_.clear();
    for (const std::uint32_t pc : current_) {
      const Instruction& ins = program.code[pc];
      const bool consumes =
          ins.op == OpCode::kAny ||
          (ins.op == OpCode::kByteSet && program.classes[ins.arg1].test(byte));
      if (consumes) {
        add_thread(program, pc + 1, pos + 1, input.size(), next_);
        if (matched_) return true;
      }
    }
    if (!anchored) {
      // Unanchored search: seed a fresh attempt at every offset.
      add_thread(program, 0, pos + 1, input.size(), next_);
      if (matched_) return true;
    }
    std::swap(current_, next_);
  }
  return matched_;
}

bool PikeVm::match_at_start(const Program& program,
                            std::span<const std::uint8_t> input) {
  return run(program, input, /*anchored=*/true);
}

bool PikeVm::search(const Program& program,
                    std::span<const std::uint8_t> input) {
  return run(program, input, /*anchored=*/false);
}

}  // namespace upbound::rex
