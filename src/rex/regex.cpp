#include "rex/regex.h"

namespace upbound::rex {

Regex::Regex(std::string_view pattern, RegexOptions options)
    : pattern_(pattern) {
  ParseOptions parse_options;
  parse_options.ignore_case = options.ignore_case;
  program_ = compile(*parse(pattern_, parse_options));
}

bool Regex::search(std::span<const std::uint8_t> input) const {
  return vm_.search(program_, input);
}

bool Regex::search(std::string_view input) const {
  return search(std::span<const std::uint8_t>{
      reinterpret_cast<const std::uint8_t*>(input.data()), input.size()});
}

bool Regex::match_prefix(std::span<const std::uint8_t> input) const {
  return vm_.match_at_start(program_, input);
}

bool Regex::match_prefix(std::string_view input) const {
  return match_prefix(std::span<const std::uint8_t>{
      reinterpret_cast<const std::uint8_t*>(input.data()), input.size()});
}

}  // namespace upbound::rex
