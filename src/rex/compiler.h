// Thompson construction: AST -> NFA program.
#pragma once

#include "rex/ast.h"
#include "rex/program.h"

namespace upbound::rex {

/// Compiles an AST into a Pike-VM program. Counted repeats are expanded,
/// so program size is O(pattern size * repeat bounds).
Program compile(const Node& root);

}  // namespace upbound::rex
