// Simulation time primitives.
//
// All trace and filter code operates on a single monotonic timeline whose
// origin is the first packet of a trace. Times and durations are stored as
// signed 64-bit microsecond counts, which covers ~292k years of trace at
// microsecond resolution -- far beyond the 7.5 h traces the paper studies.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace upbound {

/// A span of simulated time (microsecond resolution).
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration usec(std::int64_t u) { return Duration{u}; }
  static constexpr Duration msec(std::int64_t m) { return Duration{m * 1000}; }
  static constexpr Duration sec(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr Duration minutes(std::int64_t m) {
    return Duration{m * 60'000'000};
  }
  static constexpr Duration hours(std::int64_t h) {
    return Duration{h * 3'600'000'000LL};
  }

  constexpr std::int64_t count_usec() const { return usec_; }
  constexpr double to_sec() const { return static_cast<double>(usec_) / 1e6; }
  constexpr double to_msec() const { return static_cast<double>(usec_) / 1e3; }

  constexpr bool is_zero() const { return usec_ == 0; }
  constexpr bool is_negative() const { return usec_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration{usec_ + o.usec_}; }
  constexpr Duration operator-(Duration o) const { return Duration{usec_ - o.usec_}; }
  constexpr Duration operator*(double f) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(usec_) * f)};
  }
  constexpr Duration operator/(std::int64_t d) const { return Duration{usec_ / d}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(usec_) / static_cast<double>(o.usec_);
  }
  constexpr Duration operator-() const { return Duration{-usec_}; }
  constexpr Duration& operator+=(Duration o) { usec_ += o.usec_; return *this; }
  constexpr Duration& operator-=(Duration o) { usec_ -= o.usec_; return *this; }

  constexpr auto operator<=>(const Duration&) const = default;

  /// Renders as a human-readable quantity, e.g. "45.84s" or "2.8ms".
  std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t u) : usec_(u) {}
  std::int64_t usec_ = 0;
};

/// An instant on the simulated timeline (microseconds since trace origin).
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime from_usec(std::int64_t u) { return SimTime{u}; }
  static constexpr SimTime from_sec(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr SimTime origin() { return SimTime{0}; }
  /// Sentinel greater than every real timestamp.
  static constexpr SimTime infinite() { return SimTime{INT64_MAX}; }

  constexpr std::int64_t usec() const { return usec_; }
  constexpr double sec() const { return static_cast<double>(usec_) / 1e6; }

  constexpr SimTime operator+(Duration d) const { return SimTime{usec_ + d.count_usec()}; }
  constexpr SimTime operator-(Duration d) const { return SimTime{usec_ - d.count_usec()}; }
  constexpr Duration operator-(SimTime o) const { return Duration::usec(usec_ - o.usec_); }
  constexpr SimTime& operator+=(Duration d) { usec_ += d.count_usec(); return *this; }

  constexpr auto operator<=>(const SimTime&) const = default;

  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t u) : usec_(u) {}
  std::int64_t usec_ = 0;
};

}  // namespace upbound
