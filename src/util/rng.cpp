#include "util/rng.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace upbound {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Lemire-style rejection to stay unbiased.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_range: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return next_double() < probability;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mu + sigma * spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return mu + sigma * u * factor;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("Rng::pareto: xm and alpha must be > 0");
  }
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::fork(std::uint64_t salt) {
  std::uint64_t mix = next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng{splitmix64(mix)};
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  // Binary search the first rank whose CDF covers u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

DiscreteSampler::DiscreteSampler(std::vector<double> weights) {
  if (weights.empty()) throw std::invalid_argument("DiscreteSampler: empty");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("DiscreteSampler: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("DiscreteSampler: zero total");
  cdf_.reserve(weights.size());
  double run = 0.0;
  for (double w : weights) {
    run += w;
    cdf_.push_back(run);
  }
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const double u = rng.next_double() * cdf_.back();
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double DiscreteSampler::probability(std::size_t i) const {
  const double prev = i == 0 ? 0.0 : cdf_[i - 1];
  return (cdf_[i] - prev) / cdf_.back();
}

}  // namespace upbound
