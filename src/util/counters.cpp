#include "util/counters.h"

#include <algorithm>

namespace upbound {

StageCounter& CounterRegistry::counter(std::string_view name) {
  for (auto& [existing, value] : counters_) {
    if (existing == name) return value;
  }
  counters_.emplace_back(std::string{name}, StageCounter{});
  return counters_.back().second;
}

std::uint64_t CounterRegistry::value(std::string_view name) const {
  for (const auto& [existing, value] : counters_) {
    if (existing == name) return value.value();
  }
  return 0;
}

CounterSnapshot CounterRegistry::snapshot() const {
  CounterSnapshot out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    out.push_back(CounterSample{name, value.value()});
  }
  std::sort(out.begin(), out.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.name < b.name;
            });
  return out;
}

void CounterRegistry::reset() {
  for (auto& [name, value] : counters_) value.reset();
}

}  // namespace upbound
