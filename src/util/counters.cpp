#include "util/counters.h"

#include <algorithm>

namespace upbound {

StageCounter& CounterRegistry::counter(std::string_view name) {
  for (auto& [existing, value] : counters_) {
    if (existing == name) return value;
  }
  counters_.emplace_back(std::string{name}, StageCounter{});
  return counters_.back().second;
}

std::uint64_t CounterRegistry::value(std::string_view name) const {
  for (const auto& [existing, value] : counters_) {
    if (existing == name) return value.value();
  }
  return 0;
}

CounterSnapshot CounterRegistry::snapshot() const {
  CounterSnapshot out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    out.push_back(CounterSample{name, value.value()});
  }
  std::sort(out.begin(), out.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.name < b.name;
            });
  return out;
}

void CounterRegistry::reset() {
  for (auto& [name, value] : counters_) value.reset();
}

void merge_counter_snapshot(CounterSnapshot& into,
                            const CounterSnapshot& from) {
  CounterSnapshot merged;
  merged.reserve(into.size() + from.size());
  std::size_t i = 0, j = 0;
  while (i < into.size() && j < from.size()) {
    if (into[i].name == from[j].name) {
      merged.push_back(
          CounterSample{into[i].name, into[i].value + from[j].value});
      ++i;
      ++j;
    } else if (into[i].name < from[j].name) {
      merged.push_back(into[i++]);
    } else {
      merged.push_back(from[j++]);
    }
  }
  for (; i < into.size(); ++i) merged.push_back(into[i]);
  for (; j < from.size(); ++j) merged.push_back(from[j]);
  into = std::move(merged);
}

}  // namespace upbound
