#include "util/time.h"

#include <cmath>
#include <cstdio>

namespace upbound {

namespace {

std::string format_usec(std::int64_t usec) {
  char buf[64];
  const double abs_us = std::abs(static_cast<double>(usec));
  if (abs_us < 1e3) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(usec));
  } else if (abs_us < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3gms", static_cast<double>(usec) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4gs", static_cast<double>(usec) / 1e6);
  }
  return buf;
}

}  // namespace

std::string Duration::to_string() const { return format_usec(usec_); }

std::string SimTime::to_string() const { return format_usec(usec_); }

}  // namespace upbound
