// Bounded lock-free single-producer/single-consumer ring buffer -- the
// hand-off primitive of the sharded parallel replay engine. One thread may
// push, one (other) thread may pop; under that contract every operation is
// wait-free: one relaxed load, one acquire load at most, one release store.
//
// The producer and consumer each keep a cached copy of the opposite index
// so the common case touches only the cache line they own; the shared
// indexes live on their own cache lines to avoid false sharing between the
// two sides. Capacity is rounded up to a power of two so wrap-around is a
// mask, and the indexes are free-running 64-bit counters (no ABA at any
// realistic rate).
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace upbound {

/// T must be default-constructible and movable; slots are recycled in
/// place, so popped values are moved out and replaced by moved-in pushes.
template <typename T>
class SpscRing {
 public:
  // Fixed 64 rather than std::hardware_destructive_interference_size: the
  // library value varies per -mtune (an ABI hazard GCC warns about), and 64
  // is the destructive-interference line size on every target we build for.
  static constexpr std::size_t kCacheLine = 64;

  /// Holds up to `capacity` elements (rounded up to a power of two, min 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == capacity()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == capacity()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot count; exact only when called from the producer or consumer
  /// thread (the other side may move concurrently).
  ///
  /// Reading order matters: head_ must be loaded BEFORE tail_. head_ only
  /// grows and head_ <= tail_ holds at every instant, so a tail_ read that
  /// happens after the head_ read always observes tail >= the head value
  /// read, and the unsigned subtraction cannot wrap. (The reverse order
  /// loses that guarantee: a pop between the two loads makes the stale
  /// tail smaller than the fresh head and size() returns a near-2^64
  /// value, so empty() reports a full ring.) The clamp is belt and braces.
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Consumer-owned line: shared head plus the consumer's cache of tail.
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;
  // Producer-owned line: shared tail plus the producer's cache of head.
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;
};

}  // namespace upbound
