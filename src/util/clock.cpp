#include "util/clock.h"

#include <ctime>

namespace upbound {

namespace {

std::int64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

MonotonicClock::MonotonicClock() : epoch_ns_(monotonic_ns()) {}

SimTime MonotonicClock::now() {
  return SimTime::from_usec((monotonic_ns() - epoch_ns_) / 1000);
}

}  // namespace upbound
