// Software prefetch hints for the batched datapath. The batch pipeline
// computes all hash indexes for a chunk first, issues prefetches for every
// bit-vector word the chunk will touch, and only then dereferences them --
// turning a serial chain of dependent cache misses into overlapped ones
// (memory-level parallelism). On compilers without __builtin_prefetch the
// hints compile to nothing; correctness never depends on them.
#pragma once

namespace upbound {

inline void prefetch_read(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, 0, 3);
#else
  (void)addr;
#endif
}

inline void prefetch_write(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, 1, 3);
#else
  (void)addr;
#endif
}

}  // namespace upbound
