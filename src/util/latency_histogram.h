// Log-linear histogram for latency-class values (HdrHistogram-style
// binning): 2^kSubBucketBits linear sub-buckets per power-of-two octave,
// so every recorded value lands in a bin whose lower bound is within
// 1/2^kSubBucketBits (6.25%) of the value. Bins cover the full uint64
// range in a fixed-size array, record() is branch-light O(1) (a bit-scan
// plus two shifts), and two histograms merge by bin-wise addition -- the
// property the sharded replay engine relies on for deterministic
// shard-order merges.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace upbound {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave: 16, giving <= 6.25% bin width.
  static constexpr unsigned kSubBucketBits = 4;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  /// Values below kSubBuckets get exact bins; each higher octave
  /// (64 - kSubBucketBits of them) contributes kSubBuckets bins.
  static constexpr std::size_t kBinCount =
      kSubBuckets * (64 - kSubBucketBits + 1);

  /// Bin index holding `value`. Exact for value < kSubBuckets.
  static std::size_t bin_of(std::uint64_t value);

  /// Smallest value mapping to `bin` -- the deterministic representative
  /// used for percentile queries.
  static std::uint64_t bin_floor(std::size_t bin);

  void record(std::uint64_t value, std::uint64_t count = 1);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  /// Exact extremes (not bin-quantized); 0 when empty.
  std::uint64_t min_value() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max_value() const { return count_ == 0 ? 0 : max_; }

  /// Value at percentile `pct` in [0, 100]: the bin floor of the first bin
  /// whose cumulative count reaches pct% of the total (exact max_value()
  /// for pct >= 100). 0 when empty.
  std::uint64_t percentile(double pct) const;

  std::uint64_t bin_count_at(std::size_t bin) const { return bins_[bin]; }

  /// Bin-wise sum of `other` into this histogram.
  void merge(const LatencyHistogram& other);

  void reset();

 private:
  std::array<std::uint64_t, kBinCount> bins_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace upbound
