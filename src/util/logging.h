// Minimal leveled logging to stderr. Quiet by default so benches emit only
// their result tables; tests flip the level when diagnosing failures.
#pragma once

#include <sstream>
#include <string>

namespace upbound {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LOG(kInfo) << "x=" << x;
#define UPBOUND_LOG(level)                                       \
  for (bool upbound_log_once =                                   \
           static_cast<int>(::upbound::LogLevel::level) >=       \
           static_cast<int>(::upbound::log_level());             \
       upbound_log_once; upbound_log_once = false)               \
  ::upbound::detail::LogLine(::upbound::LogLevel::level).stream()

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace upbound
