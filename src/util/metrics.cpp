#include "util/metrics.h"

#include <algorithm>

namespace upbound {

namespace {

bool is_wall_clock_name(std::string_view name) {
  return name.ends_with("_ns");
}

HistogramSample sample_of(const std::string& name,
                          const LatencyHistogram& hist) {
  HistogramSample out;
  out.name = name;
  out.count = hist.count();
  out.sum = hist.sum();
  out.min = hist.min_value();
  out.max = hist.max_value();
  for (std::size_t bin = 0; bin < LatencyHistogram::kBinCount; ++bin) {
    const std::uint64_t count = hist.bin_count_at(bin);
    if (count != 0) {
      out.bins.push_back(
          HistogramBinSample{static_cast<std::uint32_t>(bin), count});
    }
  }
  return out;
}

/// Bin-sorted sparse merge of `from` into `into`.
void merge_bins(std::vector<HistogramBinSample>& into,
                const std::vector<HistogramBinSample>& from) {
  std::vector<HistogramBinSample> merged;
  merged.reserve(into.size() + from.size());
  std::size_t i = 0, j = 0;
  while (i < into.size() && j < from.size()) {
    if (into[i].bin == from[j].bin) {
      merged.push_back(
          HistogramBinSample{into[i].bin, into[i].count + from[j].count});
      ++i;
      ++j;
    } else if (into[i].bin < from[j].bin) {
      merged.push_back(into[i++]);
    } else {
      merged.push_back(from[j++]);
    }
  }
  for (; i < into.size(); ++i) merged.push_back(into[i]);
  for (; j < from.size(); ++j) merged.push_back(from[j]);
  into = std::move(merged);
}

void merge_histogram_sample(HistogramSample& into,
                            const HistogramSample& from) {
  if (from.count == 0) return;
  if (into.count == 0) {
    into.min = from.min;
    into.max = from.max;
  } else {
    into.min = std::min(into.min, from.min);
    into.max = std::max(into.max, from.max);
  }
  into.count += from.count;
  into.sum += from.sum;
  merge_bins(into.bins, from.bins);
}

}  // namespace

std::uint64_t HistogramSample::percentile(double pct) const {
  if (count == 0) return 0;
  if (pct >= 100.0) return max;
  if (pct < 0.0) pct = 0.0;
  const double exact = pct / 100.0 * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (const HistogramBinSample& bin : bins) {
    cumulative += bin.count;
    if (cumulative >= rank) return LatencyHistogram::bin_floor(bin.bin);
  }
  return max;
}

MetricsSnapshot MetricsSnapshot::deterministic() const {
  MetricsSnapshot out;
  out.counters = counters;
  out.gauges = gauges;
  for (const HistogramSample& hist : histograms) {
    if (!is_wall_clock_name(hist.name)) out.histograms.push_back(hist);
  }
  return out;
}

void merge_metrics_snapshot(MetricsSnapshot& into,
                            const MetricsSnapshot& from) {
  merge_counter_snapshot(into.counters, from.counters);

  std::vector<GaugeSample> gauges;
  gauges.reserve(into.gauges.size() + from.gauges.size());
  std::size_t i = 0, j = 0;
  while (i < into.gauges.size() && j < from.gauges.size()) {
    if (into.gauges[i].name == from.gauges[j].name) {
      gauges.push_back(GaugeSample{into.gauges[i].name,
                                   into.gauges[i].value +
                                       from.gauges[j].value});
      ++i;
      ++j;
    } else if (into.gauges[i].name < from.gauges[j].name) {
      gauges.push_back(into.gauges[i++]);
    } else {
      gauges.push_back(from.gauges[j++]);
    }
  }
  for (; i < into.gauges.size(); ++i) gauges.push_back(into.gauges[i]);
  for (; j < from.gauges.size(); ++j) gauges.push_back(from.gauges[j]);
  into.gauges = std::move(gauges);

  std::vector<HistogramSample> hists;
  hists.reserve(into.histograms.size() + from.histograms.size());
  i = 0;
  j = 0;
  while (i < into.histograms.size() && j < from.histograms.size()) {
    if (into.histograms[i].name == from.histograms[j].name) {
      HistogramSample merged = std::move(into.histograms[i]);
      merge_histogram_sample(merged, from.histograms[j]);
      hists.push_back(std::move(merged));
      ++i;
      ++j;
    } else if (into.histograms[i].name < from.histograms[j].name) {
      hists.push_back(std::move(into.histograms[i++]));
    } else {
      hists.push_back(from.histograms[j++]);
    }
  }
  for (; i < into.histograms.size(); ++i) {
    hists.push_back(std::move(into.histograms[i]));
  }
  for (; j < from.histograms.size(); ++j) {
    hists.push_back(from.histograms[j]);
  }
  into.histograms = std::move(hists);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  for (auto& [existing, value] : gauges_) {
    if (existing == name) return value;
  }
  gauges_.emplace_back(std::string{name}, Gauge{});
  return gauges_.back().second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  for (auto& [existing, value] : histograms_) {
    if (existing == name) return value;
  }
  histograms_.emplace_back(std::string{name}, LatencyHistogram{});
  return histograms_.back().second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.counters = counters_.snapshot();
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.push_back(GaugeSample{name, gauge.value()});
  }
  std::sort(out.gauges.begin(), out.gauges.end(),
            [](const GaugeSample& a, const GaugeSample& b) {
              return a.name < b.name;
            });
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.histograms.push_back(sample_of(name, hist));
  }
  std::sort(out.histograms.begin(), out.histograms.end(),
            [](const HistogramSample& a, const HistogramSample& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::reset() {
  counters_.reset();
  for (auto& [name, gauge] : gauges_) gauge.set(0.0);
  for (auto& [name, hist] : histograms_) hist.reset();
}

}  // namespace upbound
