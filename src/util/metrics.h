// Stage-accurate telemetry registry: named counters (reusing the PR 1
// CounterRegistry), gauges, and log-linear latency histograms behind one
// snapshot/merge surface.
//
// Metric classes and the determinism contract
// -------------------------------------------
// Counters, gauges, and histograms whose samples come from the simulation
// domain (packet counts, batch sizes, state bytes) are *deterministic*:
// replaying the same trace yields bit-identical values regardless of
// worker-thread scheduling, and shard-order snapshot merges preserve that
// (the PR 2 invariant). Histograms whose samples are wall-clock timings
// are *non-deterministic* by nature; by convention their names end in
// "_ns" and MetricsSnapshot::deterministic() strips them, which is what
// the determinism tests and the --metrics-deterministic CLI flag compare.
//
// The UPBOUND_TELEMETRY compile switch (CMake option, default ON; OFF
// defines UPBOUND_TELEMETRY_OFF) removes every histogram record and clock
// read from the datapath at compile time: kTelemetryCompiled is constexpr
// false, so the guarding branches fold away and the hot path carries zero
// telemetry cost. Counters are not affected by the switch -- they are part
// of the stats contract, not telemetry.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/counters.h"
#include "util/latency_histogram.h"

namespace upbound {

#ifdef UPBOUND_TELEMETRY_OFF
inline constexpr bool kTelemetryCompiled = false;
#else
inline constexpr bool kTelemetryCompiled = true;
#endif

/// Monotonic wall-clock nanoseconds (arbitrary epoch) for stage timing;
/// constant 0 when telemetry is compiled out, so callers can subtract
/// freely without branching on the build mode.
inline std::uint64_t telemetry_clock_ns() {
  if constexpr (!kTelemetryCompiled) {
    return 0;
  } else {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
}

/// A last-write-wins instantaneous value. Not thread-safe; like counters,
/// each datapath thread owns its registry and merges snapshots.
class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;

  bool operator==(const GaugeSample&) const = default;
};

/// One populated histogram bin (sparse: empty bins are omitted).
struct HistogramBinSample {
  std::uint32_t bin = 0;
  std::uint64_t count = 0;

  bool operator==(const HistogramBinSample&) const = default;
};

/// A point-in-time reading of one histogram, carrying the sparse bins so
/// snapshots merge losslessly and percentiles can be re-derived after a
/// merge.
struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::vector<HistogramBinSample> bins;  // sorted by bin index

  bool operator==(const HistogramSample&) const = default;

  /// Same semantics as LatencyHistogram::percentile over the sparse bins.
  std::uint64_t percentile(double pct) const;
};

/// Name-sorted readings of a whole MetricsRegistry.
struct MetricsSnapshot {
  CounterSnapshot counters;
  std::vector<GaugeSample> gauges;       // name-sorted
  std::vector<HistogramSample> histograms;  // name-sorted

  bool operator==(const MetricsSnapshot&) const = default;

  /// Copy with every wall-clock histogram (name ending "_ns") removed:
  /// the subset covered by the bitwise-determinism contract.
  MetricsSnapshot deterministic() const;
};

/// Merges `from` into `into` by metric name: counters and histogram bins
/// sum, gauges sum (per-shard instantaneous values add up to the site
/// total), min/max combine. Inputs must be name-sorted (as snapshot()
/// produces); the result is name-sorted, so a fixed shard-order merge is
/// deterministic regardless of worker scheduling.
void merge_metrics_snapshot(MetricsSnapshot& into,
                            const MetricsSnapshot& from);

class MetricsRegistry {
 public:
  /// Counters live in the embedded CounterRegistry (same names, same
  /// semantics as PR 1); the reference stays valid for the registry's
  /// lifetime. Likewise for gauges and histograms.
  StageCounter& counter(std::string_view name) {
    return counters_.counter(name);
  }
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  const CounterRegistry& counters() const { return counters_; }
  CounterRegistry& counters() { return counters_; }

  std::size_t gauge_count() const { return gauges_.size(); }
  std::size_t histogram_count() const { return histograms_.size(); }

  /// All metrics, each section sorted by name.
  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (registrations are kept).
  void reset();

 private:
  CounterRegistry counters_;
  // Deques keep addresses stable across registrations (same rationale as
  // CounterRegistry); registries hold tens of entries, so linear lookup at
  // registration time is fine.
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, LatencyHistogram>> histograms_;
};

}  // namespace upbound
