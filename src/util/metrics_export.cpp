#include "util/metrics_export.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace upbound {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += buf;
}

/// Canonical double rendering: integral values (the common case -- byte
/// and entry counts) as plain decimals, everything else shortest
/// round-trip via %.17g.
void append_double(std::string& out, double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.0e15) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

std::string prometheus_name(std::string_view prefix, std::string_view name) {
  std::string out{prefix};
  out.push_back('_');
  for (const char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c))
                      ? c
                      : '_');
  }
  return out;
}

}  // namespace

std::string metrics_to_json(const MetricsSnapshot& snapshot,
                            std::string_view label, SimTime sim_time) {
  std::string out;
  out.reserve(1024);
  out += "{\"schema\":\"upbound.metrics.v1\",\"label\":\"";
  append_escaped(out, label);
  out += "\",\"sim_time_usec\":";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(sim_time.usec()));
  out += buf;

  out += ",\"counters\":{";
  bool first = true;
  for (const CounterSample& counter : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, counter.name);
    out += "\":";
    append_u64(out, counter.value);
  }

  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSample& gauge : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, gauge.name);
    out += "\":";
    append_double(out, gauge.value);
  }

  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSample& hist : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, hist.name);
    out += "\":{\"count\":";
    append_u64(out, hist.count);
    out += ",\"sum\":";
    append_u64(out, hist.sum);
    out += ",\"min\":";
    append_u64(out, hist.min);
    out += ",\"max\":";
    append_u64(out, hist.max);
    out += ",\"p50\":";
    append_u64(out, hist.percentile(50));
    out += ",\"p90\":";
    append_u64(out, hist.percentile(90));
    out += ",\"p99\":";
    append_u64(out, hist.percentile(99));
    out += '}';
  }
  out += "}}";
  return out;
}

std::string metrics_to_prometheus(const MetricsSnapshot& snapshot,
                                  std::string_view prefix) {
  std::string out;
  out.reserve(2048);
  for (const CounterSample& counter : snapshot.counters) {
    const std::string name = prometheus_name(prefix, counter.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    append_u64(out, counter.value);
    out.push_back('\n');
  }
  for (const GaugeSample& gauge : snapshot.gauges) {
    const std::string name = prometheus_name(prefix, gauge.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    append_double(out, gauge.value);
    out.push_back('\n');
  }
  for (const HistogramSample& hist : snapshot.histograms) {
    const std::string name = prometheus_name(prefix, hist.name);
    out += "# TYPE " + name + " summary\n";
    for (const double pct : {50.0, 90.0, 99.0}) {
      char label[32];
      std::snprintf(label, sizeof(label), "{quantile=\"%.2f\"} ",
                    pct / 100.0);
      out += name + label;
      append_u64(out, hist.percentile(pct));
      out.push_back('\n');
    }
    out += name + "_sum ";
    append_u64(out, hist.sum);
    out.push_back('\n');
    out += name + "_count ";
    append_u64(out, hist.count);
    out.push_back('\n');
    out += name + "_max ";
    append_u64(out, hist.max);
    out.push_back('\n');
  }
  return out;
}

MetricsJsonlWriter::MetricsJsonlWriter(const std::string& path)
    : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open metrics output: " + path);
  }
}

MetricsJsonlWriter::~MetricsJsonlWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void MetricsJsonlWriter::write(const MetricsSnapshot& snapshot,
                               std::string_view label, SimTime sim_time) {
  const std::string line = metrics_to_json(snapshot, label, sim_time);
  // fflush is part of the check: a small line parks in the stdio buffer,
  // and without it an ENOSPC would surface only at close, long after the
  // caller could count the failure.
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF || std::fflush(file_) != 0) {
    throw std::runtime_error("write failed on metrics output: " + path_);
  }
  ++written_;
}

}  // namespace upbound
