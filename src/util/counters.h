// Lightweight named-counter registry for datapath instrumentation.
//
// Each pipeline stage owns StageCounter references resolved once at setup
// (a linear name lookup); the hot path then pays a single add on a plain
// u64 -- no hashing, no atomics, no branches. snapshot() materializes a
// name-sorted copy for reports and cross-implementation comparisons, so a
// registry can be diffed with operator== in tests.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace upbound {

/// One monotonically increasing event counter. Not thread-safe; each
/// datapath thread should own its registry and merge snapshots.
class StageCounter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time reading of one counter.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;

  bool operator==(const CounterSample&) const = default;
};

/// Name-sorted readings of a whole registry.
using CounterSnapshot = std::vector<CounterSample>;

/// Sums `from` into `into` by counter name; names present in only one
/// snapshot keep their value. Both inputs must be name-sorted (as
/// CounterRegistry::snapshot() produces) and the result is name-sorted,
/// so merging per-thread registries is deterministic regardless of how
/// the work was scheduled.
void merge_counter_snapshot(CounterSnapshot& into,
                            const CounterSnapshot& from);

class CounterRegistry {
 public:
  /// Returns the counter registered under `name`, creating it at zero on
  /// first use. The reference stays valid for the registry's lifetime.
  StageCounter& counter(std::string_view name);

  /// Current value of `name`, or 0 when it was never registered.
  std::uint64_t value(std::string_view name) const;

  /// All counters, sorted by name.
  CounterSnapshot snapshot() const;

  std::size_t size() const { return counters_.size(); }

  /// Zeroes every registered counter (registrations are kept).
  void reset();

 private:
  // A deque keeps addresses stable across registrations; registries hold
  // tens of counters, so linear lookup at registration time is fine.
  std::deque<std::pair<std::string, StageCounter>> counters_;
};

}  // namespace upbound
