// Deterministic pseudo-random generation for synthetic workloads.
//
// The trace generator must be reproducible across runs and platforms, so we
// implement the generator and every distribution from scratch instead of
// relying on the implementation-defined std::<distribution> algorithms.
// The core engine is xoshiro256++, seeded through splitmix64.
#pragma once

#include <cstdint>
#include <vector>

namespace upbound {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ engine with explicit, reproducible seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the closed range [lo, hi]. Requires lo <= hi.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool next_bool(double probability);

  /// Exponential with the given mean (> 0). Used for inter-arrival gaps.
  double exponential(double mean);

  /// Standard normal via the Marsaglia polar method.
  double normal(double mu = 0.0, double sigma = 1.0);

  /// Log-normal where mu/sigma parameterize the underlying normal.
  /// Matches the heavy-tailed connection lifetime shapes in Fig. 4.
  double lognormal(double mu, double sigma);

  /// Pareto (Lomax-style, min scale xm > 0, shape alpha > 0): heavy-tailed
  /// transfer sizes.
  double pareto(double xm, double alpha);

  /// Forks a statistically independent child stream; deterministic given
  /// the parent state and salt.
  Rng fork(std::uint64_t salt);

 private:
  std::uint64_t s_[4];
  // Cached second output of the polar method.
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// Zipf(s) sampler over ranks {1..n} using a precomputed inverse CDF table.
/// Used for host/port popularity skew (a few hot services, long tail).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [0, n).
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Weighted discrete choice over arbitrary weights (alias-free linear CDF;
/// fine for the small category sets used in the workload mixes).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::vector<double> weights);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }
  /// Normalized probability of category i.
  double probability(std::size_t i) const;

 private:
  std::vector<double> cdf_;  // cumulative, last element == total
};

}  // namespace upbound
