// Hashing primitives.
//
// The bitmap filter needs a family of m independent hash functions over
// socket-pair keys (paper Section 4.2); everything here is implemented from
// scratch so hash values are stable across platforms and standard library
// versions -- test vectors and experiment results must not change when the
// toolchain does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace upbound {

/// 64-bit FNV-1a. Cheap; used for hash-table bucketing.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// 128-bit MurmurHash3 (x64 variant), the workhorse behind the Bloom hash
/// family. Returns the two 64-bit halves.
struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const Hash128&) const = default;
};

Hash128 murmur3_x64_128(std::span<const std::uint8_t> data,
                        std::uint64_t seed = 0);

/// Final avalanche mixer from MurmurHash3; good for combining small ints.
std::uint64_t mix64(std::uint64_t x);

/// CRC-32 (IEEE 802.3 polynomial, reflected), for detecting bit rot in
/// at-rest artifacts like filter snapshots. Software table-driven so the
/// value is identical on every platform. `seed` is the running CRC for
/// incremental use (pass the previous return value to continue).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

/// Combines two hashes order-dependently.
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace upbound
