// Hashing primitives.
//
// The bitmap filter needs a family of m independent hash functions over
// socket-pair keys (paper Section 4.2); everything here is implemented from
// scratch so hash values are stable across platforms and standard library
// versions -- test vectors and experiment results must not change when the
// toolchain does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace upbound {

/// 64-bit FNV-1a. Cheap; used for hash-table bucketing.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// 128-bit MurmurHash3 (x64 variant), the workhorse behind the Bloom hash
/// family. Returns the two 64-bit halves.
struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const Hash128&) const = default;
};

Hash128 murmur3_x64_128(std::span<const std::uint8_t> data,
                        std::uint64_t seed = 0);

/// Key slot stride for the batch hasher: each key occupies one 16-byte
/// slot, zero-padded past its length so the kernel can load whole words.
inline constexpr std::size_t kHashKeyStride = 16;

/// Hashes `count` short keys (len <= 15, i.e. no 16-byte body blocks --
/// covers the 13-byte five-tuple and 11-byte hole-punch keys) laid out at
/// kHashKeyStride-byte slots. Bit-identical to murmur3_x64_128 over each
/// slot's first `len` bytes; bytes past `len` in every slot MUST be zero.
/// Dispatches to the AVX2 kernel when it is compiled in, the CPU supports
/// it, and it has not been disabled via set_simd_hash_enabled().
void murmur3_x64_128_short_batch(const std::uint8_t* keys, std::size_t len,
                                 std::size_t count, std::uint64_t seed,
                                 Hash128* out);

/// True when the AVX2 batch kernel was compiled in (UPBOUND_SIMD=ON).
bool simd_hash_compiled();

/// simd_hash_compiled() AND the running CPU reports AVX2 support.
bool simd_hash_available();

/// Process-global switch consulted by murmur3_x64_128_short_batch; starts
/// at simd_hash_available(). Forcing `true` where the kernel is absent is
/// a no-op (the switch stays false). Returns the previous value so tests
/// can save/restore around a differential run.
bool set_simd_hash_enabled(bool enabled);
bool simd_hash_enabled();

/// Final avalanche mixer from MurmurHash3; good for combining small ints.
std::uint64_t mix64(std::uint64_t x);

/// CRC-32 (IEEE 802.3 polynomial, reflected), for detecting bit rot in
/// at-rest artifacts like filter snapshots. Software table-driven so the
/// value is identical on every platform. `seed` is the running CRC for
/// incremental use (pass the previous return value to continue).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

/// Combines two hashes order-dependently.
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace upbound
