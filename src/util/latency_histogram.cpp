#include "util/latency_histogram.h"

#include <algorithm>
#include <bit>

namespace upbound {

std::size_t LatencyHistogram::bin_of(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // Octave = position of the most significant bit; the next kSubBucketBits
  // bits select the linear sub-bucket within it.
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(value));
  const unsigned group = msb - kSubBucketBits + 1;
  const std::uint64_t sub =
      (value >> (msb - kSubBucketBits)) & (kSubBuckets - 1);
  return group * kSubBuckets + static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bin_floor(std::size_t bin) {
  if (bin < kSubBuckets) return bin;
  const std::size_t group = bin / kSubBuckets;
  const std::uint64_t sub = bin % kSubBuckets;
  const unsigned msb = static_cast<unsigned>(group) + kSubBucketBits - 1;
  return (std::uint64_t{1} << msb) | (sub << (msb - kSubBucketBits));
}

void LatencyHistogram::record(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  bins_[bin_of(value)] += count;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += value * count;
}

std::uint64_t LatencyHistogram::percentile(double pct) const {
  if (count_ == 0) return 0;
  if (pct >= 100.0) return max_;
  if (pct < 0.0) pct = 0.0;
  // First bin where the cumulative count reaches ceil(pct% of total), with
  // a minimum rank of 1 so p0 reports the lowest populated bin.
  const double exact = pct / 100.0 * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t bin = 0; bin < kBinCount; ++bin) {
    cumulative += bins_[bin];
    if (cumulative >= rank) return bin_floor(bin);
  }
  return max_;  // unreachable when counts are consistent
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t bin = 0; bin < kBinCount; ++bin) {
    bins_[bin] += other.bins_[bin];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::reset() {
  bins_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace upbound
