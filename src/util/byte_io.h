// Endian-explicit byte readers/writers used by the packet header codecs and
// the pcap file format. Header-only.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace upbound {

/// Byte-order reversal (std::byteswap is C++23; we target C++20).
constexpr std::uint32_t bswap32(std::uint32_t v) {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}
constexpr std::uint64_t bswap64(std::uint64_t v) {
  return (static_cast<std::uint64_t>(bswap32(static_cast<std::uint32_t>(v)))
          << 32) |
         bswap32(static_cast<std::uint32_t>(v >> 32));
}

/// Appends fixed-width integers to a growable byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16be(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32be(std::uint32_t v) {
    u16be(static_cast<std::uint16_t>(v >> 16));
    u16be(static_cast<std::uint16_t>(v));
  }
  void u16le(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32le(std::uint32_t v) {
    u16le(static_cast<std::uint16_t>(v));
    u16le(static_cast<std::uint16_t>(v >> 16));
  }

  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Thrown when a reader runs past the end of its buffer.
class ByteUnderflow : public std::runtime_error {
 public:
  ByteUnderflow() : std::runtime_error("byte reader underflow") {}
};

/// Consumes fixed-width integers from a byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool empty() const { return remaining() == 0; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16be() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32be() {
    need(4);  // all-or-nothing: check before consuming either half
    const std::uint32_t hi = u16be();
    const std::uint32_t lo = u16be();
    return (hi << 16) | lo;
  }
  std::uint16_t u16le() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32le() {
    need(4);  // all-or-nothing: check before consuming either half
    const std::uint32_t lo = u16le();
    const std::uint32_t hi = u16le();
    return lo | (hi << 16);
  }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw ByteUnderflow{};
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace upbound
