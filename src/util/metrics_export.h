// Machine-readable metrics export: JSON-lines snapshots (one snapshot per
// line, schema "upbound.metrics.v1", validated in CI by
// scripts/check_metrics_schema.py) and Prometheus text exposition.
//
// Rendering is deliberately canonical -- metrics are emitted in the
// snapshot's name-sorted order, integers as plain decimals, doubles via a
// shortest-round-trip format -- so exporting a deterministic snapshot
// yields a byte-identical file across runs and thread counts (the CLI's
// --metrics-deterministic mode relies on this).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "util/metrics.h"
#include "util/time.h"

namespace upbound {

/// One JSON object (single line, no trailing newline) for a snapshot.
/// `label` names the snapshot ("interval"/"final"); `sim_time` is the
/// simulation time it was taken at.
std::string metrics_to_json(const MetricsSnapshot& snapshot,
                            std::string_view label, SimTime sim_time);

/// Prometheus text exposition (one metric family per counter/gauge, a
/// summary per histogram). Metric names are prefixed with `prefix` and
/// dots become underscores: state.lookups -> upbound_state_lookups.
std::string metrics_to_prometheus(const MetricsSnapshot& snapshot,
                                  std::string_view prefix = "upbound");

/// Appends JSON-lines snapshots to a file. Throws std::runtime_error when
/// the file cannot be opened or written.
class MetricsJsonlWriter {
 public:
  explicit MetricsJsonlWriter(const std::string& path);
  ~MetricsJsonlWriter();

  MetricsJsonlWriter(const MetricsJsonlWriter&) = delete;
  MetricsJsonlWriter& operator=(const MetricsJsonlWriter&) = delete;

  void write(const MetricsSnapshot& snapshot, std::string_view label,
             SimTime sim_time);

  std::uint64_t snapshots_written() const { return written_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t written_ = 0;
};

}  // namespace upbound
