#include "util/hash.h"

#include <atomic>
#include <bit>
#include <cstring>

#include "util/byte_io.h"

namespace upbound {

std::uint64_t fnv1a64(std::span<const std::uint8_t> data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

namespace {

/// Nibble-sliced CRC-32 table (16 entries): small enough to stay resident,
/// two lookups per byte. Built once at static-init from the reflected
/// IEEE polynomial 0xedb88320.
struct Crc32Table {
  std::uint32_t entries[16];
  constexpr Crc32Table() : entries{} {
    for (std::uint32_t i = 0; i < 16; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 4; ++bit) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};
constexpr Crc32Table kCrc32Table;

std::uint64_t load_u64le(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = bswap64(v);
  }
  return v;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t c = ~seed;
  for (const std::uint8_t byte : data) {
    c = kCrc32Table.entries[(c ^ byte) & 0x0f] ^ (c >> 4);
    c = kCrc32Table.entries[(c ^ (byte >> 4)) & 0x0f] ^ (c >> 4);
  }
  return ~c;
}

Hash128 murmur3_x64_128(std::span<const std::uint8_t> data,
                        std::uint64_t seed) {
  const std::size_t len = data.size();
  const std::size_t nblocks = len / 16;
  const std::uint8_t* base = data.data();

  std::uint64_t h1 = seed;
  std::uint64_t h2 = seed;
  const std::uint64_t c1 = 0x87c37b91114253d5ULL;
  const std::uint64_t c2 = 0x4cf5ad432745937fULL;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint64_t k1 = load_u64le(base + i * 16);
    std::uint64_t k2 = load_u64le(base + i * 16 + 8);

    k1 *= c1;
    k1 = std::rotl(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = std::rotl(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52dce729;

    k2 *= c2;
    k2 = std::rotl(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = std::rotl(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495ab5;
  }

  const std::uint8_t* tail = base + nblocks * 16;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  switch (len & 15) {
    case 15: k2 ^= static_cast<std::uint64_t>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<std::uint64_t>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<std::uint64_t>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<std::uint64_t>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<std::uint64_t>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<std::uint64_t>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<std::uint64_t>(tail[8]);
      k2 *= c2;
      k2 = std::rotl(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<std::uint64_t>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<std::uint64_t>(tail[0]);
      k1 *= c1;
      k1 = std::rotl(k1, 31);
      k1 *= c2;
      h1 ^= k1;
      break;
    case 0:
      break;
  }

  h1 ^= static_cast<std::uint64_t>(len);
  h2 ^= static_cast<std::uint64_t>(len);
  h1 += h2;
  h2 += h1;
  h1 = mix64(h1);
  h2 = mix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

namespace detail {
#if defined(UPBOUND_SIMD_COMPILED)
// Defined in hash_simd.cpp (the only TU compiled with -mavx2); processes a
// multiple of four 16-byte slots.
void murmur3_avx2_short_batch(const std::uint8_t* keys, std::size_t count,
                              std::uint64_t len, std::uint64_t seed,
                              Hash128* out);
#endif
}  // namespace detail

namespace {

/// One short key (<= 15 bytes, zero-padded to a 16-byte slot). The tail
/// path of murmur3_x64_128 collapses to this branch-free form because a
/// zero k1/k2 contributes exactly nothing to its half: for len < 9 the
/// switch never touches k2, and here k2 == 0 transforms to 0, leaving
/// h2 == seed either way (same argument for k1 at len == 0).
Hash128 murmur3_short(const std::uint8_t* slot, std::uint64_t len,
                      std::uint64_t seed) {
  const std::uint64_t c1 = 0x87c37b91114253d5ULL;
  const std::uint64_t c2 = 0x4cf5ad432745937fULL;
  std::uint64_t h1 = seed ^ (std::rotl(load_u64le(slot) * c1, 31) * c2);
  std::uint64_t h2 = seed ^ (std::rotl(load_u64le(slot + 8) * c2, 33) * c1);
  h1 ^= len;
  h2 ^= len;
  h1 += h2;
  h2 += h1;
  h1 = mix64(h1);
  h2 = mix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

std::atomic<bool>& simd_hash_flag() {
  static std::atomic<bool> flag{simd_hash_available()};
  return flag;
}

}  // namespace

bool simd_hash_compiled() {
#if defined(UPBOUND_SIMD_COMPILED)
  return true;
#else
  return false;
#endif
}

bool simd_hash_available() {
#if defined(UPBOUND_SIMD_COMPILED)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool simd_hash_enabled() {
  return simd_hash_flag().load(std::memory_order_relaxed);
}

bool set_simd_hash_enabled(bool enabled) {
  if (enabled && !simd_hash_available()) enabled = false;
  return simd_hash_flag().exchange(enabled, std::memory_order_relaxed);
}

void murmur3_x64_128_short_batch(const std::uint8_t* keys, std::size_t len,
                                 std::size_t count, std::uint64_t seed,
                                 Hash128* out) {
  std::size_t i = 0;
#if defined(UPBOUND_SIMD_COMPILED)
  if (count >= 4 && simd_hash_enabled()) {
    const std::size_t groups = count & ~std::size_t{3};
    detail::murmur3_avx2_short_batch(keys, groups, len, seed, out);
    i = groups;
  }
#endif
  for (; i < count; ++i) {
    out[i] = murmur3_short(keys + i * kHashKeyStride, len, seed);
  }
}

}  // namespace upbound
