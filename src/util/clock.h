// Pluggable time source shared by the live datapath and its harnesses.
// Offline replay derives time from packet timestamps; live mode needs an
// external clock to drive rotation ticks and metrics cadence between
// packets. One interface serves both: MonotonicClock wraps
// CLOCK_MONOTONIC for deployment, VirtualClock is set explicitly by the
// loopback conformance harness so a live run replays a trace on the exact
// simulated timeline the offline replay used.
#pragma once

#include "util/time.h"

namespace upbound {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time. Implementations must be monotonic: successive calls
  /// never go backwards.
  virtual SimTime now() = 0;
};

/// Explicitly driven clock for tests and the conformance harness. Never
/// regresses: advance_to() below the current time is a no-op, so harness
/// code can pin the clock to "last packet processed" without ordering
/// hazards.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(SimTime start = SimTime::origin()) : now_(start) {}

  SimTime now() override { return now_; }

  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }
  void advance_by(Duration d) { now_ = now_ + d; }

 private:
  SimTime now_;
};

/// CLOCK_MONOTONIC, rebased so the first call is t=0. Rebasing keeps live
/// timestamps in the same small-epoch domain as synthetic traces (and the
/// TimeSeries bucket math, which is origin-anchored).
class MonotonicClock final : public Clock {
 public:
  MonotonicClock();

  SimTime now() override;

 private:
  std::int64_t epoch_ns_ = 0;
};

}  // namespace upbound
