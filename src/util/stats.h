// Statistics accumulators shared by the traffic analyzer, the evaluation
// harness, and the benches: running summaries, percentile/CDF builders,
// fixed-bin histograms, bucketed time series and EWMA smoothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace upbound {

/// Streaming count/mean/variance/min/max via Welford's algorithm.
class SummaryStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects raw samples and answers percentile / CDF queries. Memory is
/// O(samples); use Histogram when sample counts are unbounded.
class CdfBuilder {
 public:
  void add(double x) { samples_.push_back(x); dirty_ = true; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }

  /// Percentile in [0, 100]. Linear interpolation between order statistics.
  double percentile(double pct) const;

  /// Fraction of samples <= x.
  double fraction_below(double x) const;

  /// Evenly spaced (x, cumulative fraction) points suitable for plotting;
  /// `points` > 1.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

  const std::vector<double>& sorted() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool dirty_ = false;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp into
/// the edge bins so totals always match.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t total() const { return total_; }

  /// Approximate percentile from bin boundaries.
  double percentile(double pct) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Accumulates per-interval values keyed by simulation time; used for the
/// throughput-vs-time series in Figs. 8 and 9.
class TimeSeries {
 public:
  explicit TimeSeries(Duration bucket_width);

  void add(SimTime t, double value);

  Duration bucket_width() const { return width_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  /// Value of bucket i; 0 beyond the last populated bucket (the series is
  /// conceptually infinite and sparse).
  double bucket_value(std::size_t i) const {
    return i < buckets_.size() ? buckets_[i] : 0.0;
  }
  SimTime bucket_start(std::size_t i) const;

  /// Sum over all buckets.
  double total() const;

  /// Bucket sums scaled by 1/width (per-second rates if values are counts).
  std::vector<double> rates() const;

  /// Bucket-wise sum of `other` into this series; widths must match
  /// (throws std::invalid_argument otherwise). Used to merge per-shard
  /// series -- byte counts are integer-valued doubles far below 2^53, so
  /// the sums are exact and merge order cannot change the result.
  void add_series(const TimeSeries& other);

  bool operator==(const TimeSeries&) const = default;

 private:
  Duration width_;
  std::vector<double> buckets_;
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha);

  void add(double x);
  double value() const { return value_; }
  bool empty() const { return !initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Formats `x` with SI rate suffix, e.g. 146.7e6 -> "146.7 Mbps".
std::string format_bits_per_sec(double bits_per_sec);

}  // namespace upbound
