// AVX2 lane-parallel murmur3 for short zero-padded 16-byte key slots.
//
// This is the only TU compiled with -mavx2; callers reach it through
// murmur3_x64_128_short_batch, which consults __builtin_cpu_supports
// before dispatching, so no AVX2 instruction executes on hardware that
// lacks it. The math mirrors murmur3_short in hash.cpp lane-for-lane, so
// the output is bit-identical to the scalar murmur3_x64_128 path.
#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "util/hash.h"

namespace upbound::detail {

namespace {

// AVX2 has no 64-bit lane multiply; build it from 32-bit partial
// products: lo*lo + ((lo*hi + hi*lo) << 32).
inline __m256i mullo64(__m256i a, __m256i b) {
  const __m256i lo_hi = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  const __m256i hi_lo = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i cross =
      _mm256_slli_epi64(_mm256_add_epi64(lo_hi, hi_lo), 32);
  return _mm256_add_epi64(_mm256_mul_epu32(a, b), cross);
}

inline __m256i rotl64(__m256i x, int r) {
  return _mm256_or_si256(_mm256_slli_epi64(x, r),
                         _mm256_srli_epi64(x, 64 - r));
}

inline __m256i mix64v(__m256i x) {
  const __m256i m1 =
      _mm256_set1_epi64x(static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m256i m2 =
      _mm256_set1_epi64x(static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = mullo64(x, m1);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = mullo64(x, m2);
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
}

}  // namespace

void murmur3_avx2_short_batch(const std::uint8_t* keys, std::size_t count,
                              std::uint64_t len, std::uint64_t seed,
                              Hash128* out) {
  const __m256i c1 =
      _mm256_set1_epi64x(static_cast<long long>(0x87c37b91114253d5ULL));
  const __m256i c2 =
      _mm256_set1_epi64x(static_cast<long long>(0x4cf5ad432745937fULL));
  const __m256i seedv = _mm256_set1_epi64x(static_cast<long long>(seed));
  const __m256i lenv = _mm256_set1_epi64x(static_cast<long long>(len));

  for (std::size_t i = 0; i < count; i += 4) {
    // Slots i..i+3 as two 256-bit loads: a = [k1_i k2_i k1_i1 k2_i1],
    // b = [k1_i2 k2_i2 k1_i3 k2_i3]. unpacklo/hi interleave to lane order
    // {i, i+2, i+1, i+3}; the identical unpack on the way out restores
    // key order, so no permutes are needed anywhere.
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i * kHashKeyStride));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + (i + 2) * kHashKeyStride));
    const __m256i k1 = _mm256_unpacklo_epi64(a, b);
    const __m256i k2 = _mm256_unpackhi_epi64(a, b);

    __m256i h1 = _mm256_xor_si256(
        seedv, mullo64(rotl64(mullo64(k1, c1), 31), c2));
    __m256i h2 = _mm256_xor_si256(
        seedv, mullo64(rotl64(mullo64(k2, c2), 33), c1));

    h1 = _mm256_xor_si256(h1, lenv);
    h2 = _mm256_xor_si256(h2, lenv);
    h1 = _mm256_add_epi64(h1, h2);
    h2 = _mm256_add_epi64(h2, h1);
    h1 = mix64v(h1);
    h2 = mix64v(h2);
    h1 = _mm256_add_epi64(h1, h2);
    h2 = _mm256_add_epi64(h2, h1);

    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_unpacklo_epi64(h1, h2));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 2),
                        _mm256_unpackhi_epi64(h1, h2));
  }
}

}  // namespace upbound::detail
