#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace upbound {

void SummaryStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

const std::vector<double>& CdfBuilder::sorted() const {
  if (dirty_) {
    std::sort(samples_.begin(), samples_.end());
    dirty_ = false;
  }
  return samples_;
}

double CdfBuilder::percentile(double pct) const {
  const auto& s = sorted();
  if (s.empty()) throw std::logic_error("CdfBuilder::percentile: no samples");
  if (pct <= 0.0) return s.front();
  if (pct >= 100.0) return s.back();
  const double pos = pct / 100.0 * static_cast<double>(s.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= s.size()) return s.back();
  return s[idx] * (1.0 - frac) + s[idx + 1] * frac;
}

double CdfBuilder::fraction_below(double x) const {
  const auto& s = sorted();
  if (s.empty()) return 0.0;
  const auto it = std::upper_bound(s.begin(), s.end(), x);
  return static_cast<double>(it - s.begin()) / static_cast<double>(s.size());
}

std::vector<std::pair<double, double>> CdfBuilder::curve(
    std::size_t points) const {
  if (points < 2) throw std::invalid_argument("CdfBuilder::curve: points < 2");
  const auto& s = sorted();
  std::vector<std::pair<double, double>> out;
  if (s.empty()) return out;
  out.reserve(points);
  const double lo = s.front();
  const double hi = s.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, fraction_below(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need bins > 0 and hi > lo");
  }
}

void Histogram::add(double x, std::uint64_t weight) {
  double pos = (x - lo_) / width_;
  std::size_t idx;
  if (pos < 0.0) {
    idx = 0;
  } else if (pos >= static_cast<double>(counts_.size())) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>(pos);
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::percentile(double pct) const {
  if (total_ == 0) throw std::logic_error("Histogram::percentile: empty");
  const double target = pct / 100.0 * static_cast<double>(total_);
  double run = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    run += static_cast<double>(counts_[i]);
    if (run >= target) {
      // Interpolate inside the bin.
      const double prev = run - static_cast<double>(counts_[i]);
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - prev) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
  }
  return bin_hi(counts_.size() - 1);
}

TimeSeries::TimeSeries(Duration bucket_width) : width_(bucket_width) {
  if (width_.count_usec() <= 0) {
    throw std::invalid_argument("TimeSeries: bucket width must be positive");
  }
}

void TimeSeries::add(SimTime t, double value) {
  if (t.usec() < 0) return;  // before trace origin: ignore
  const std::size_t idx =
      static_cast<std::size_t>(t.usec() / width_.count_usec());
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
  buckets_[idx] += value;
}

SimTime TimeSeries::bucket_start(std::size_t i) const {
  return SimTime::from_usec(static_cast<std::int64_t>(i) * width_.count_usec());
}

double TimeSeries::total() const {
  double sum = 0.0;
  for (double b : buckets_) sum += b;
  return sum;
}

void TimeSeries::add_series(const TimeSeries& other) {
  if (width_ != other.width_) {
    throw std::invalid_argument("TimeSeries::add_series: width mismatch");
  }
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0.0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

std::vector<double> TimeSeries::rates() const {
  std::vector<double> out(buckets_.size());
  const double w = width_.to_sec();
  for (std::size_t i = 0; i < buckets_.size(); ++i) out[i] = buckets_[i] / w;
  return out;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("Ewma: alpha must be in (0, 1]");
  }
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

std::string format_bits_per_sec(double bits_per_sec) {
  char buf[64];
  if (bits_per_sec >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f Gbps", bits_per_sec / 1e9);
  } else if (bits_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f Mbps", bits_per_sec / 1e6);
  } else if (bits_per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f Kbps", bits_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f bps", bits_per_sec);
  }
  return buf;
}

}  // namespace upbound
