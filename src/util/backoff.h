// Bounded exponential backoff for producer/consumer waits.
//
// A full SPSC ring used to be handled with a bare yield loop, which pegs
// a core at 100% while the consumer catches up. ExpBackoff escalates
// instead: a few spins (cheap, catches sub-microsecond stalls), then
// yields, then exponentially growing sleeps capped at kMaxSleep -- so a
// slow consumer costs throughput, never a burned core, and the waiter
// still reacts within ~a quarter millisecond once space appears.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "util/time.h"

namespace upbound {

class ExpBackoff {
 public:
  static constexpr std::uint32_t kSpinLimit = 64;
  static constexpr std::uint32_t kYieldLimit = 16;
  static constexpr std::chrono::microseconds kMinSleep{1};
  static constexpr std::chrono::microseconds kMaxSleep{256};

  /// One wait step; each call escalates until the sleep cap is reached.
  void pause() {
    if (round_ < kSpinLimit) {
      ++round_;
      // Busy-spin: the scheduler-free path for the common transient case.
      return;
    }
    if (round_ < kSpinLimit + kYieldLimit) {
      ++round_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(sleep_);
    if (sleep_ < kMaxSleep) sleep_ *= 2;
  }

  /// Call after the awaited condition held, so the next wait starts cheap.
  void reset() {
    round_ = 0;
    sleep_ = kMinSleep;
  }

  /// True once the backoff has escalated past pure spinning -- the point
  /// from which the wait is worth accounting as backpressure.
  bool slow() const { return round_ >= kSpinLimit; }

 private:
  std::uint32_t round_ = 0;
  std::chrono::microseconds sleep_{kMinSleep};
};

/// The timer-domain sibling of ExpBackoff: a bounded exponential delay
/// schedule for supervised retries (capture reattach, lane restart).
/// Where ExpBackoff blocks the calling thread, RetryDelay only computes
/// how long the next armed timer should wait -- each next() returns the
/// current delay and doubles it up to `max`, so a flapping resource is
/// probed quickly at first and then at a bounded, non-busy cadence.
class RetryDelay {
 public:
  RetryDelay(Duration initial, Duration max)
      : initial_(initial), max_(max), current_(initial) {}

  /// The delay to arm now; escalates for the next call.
  Duration next() {
    const Duration delay = current_;
    const Duration doubled = Duration::usec(current_.count_usec() * 2);
    current_ = doubled < max_ ? doubled : max_;
    return delay;
  }

  /// Peek without escalating (telemetry).
  Duration current() const { return current_; }

  /// Call once the resource recovered, so the next outage probes fast.
  void reset() { current_ = initial_; }

 private:
  Duration initial_;
  Duration max_;
  Duration current_;
};

}  // namespace upbound
