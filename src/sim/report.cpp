#include "sim/report.h"

#include <algorithm>
#include <cstdio>

namespace upbound::report {

std::string num(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string percent(double fraction, int decimals) {
  return num(fraction * 100.0, decimals) + "%";
}

std::string metrics_table(const MetricsSnapshot& snapshot) {
  std::string out;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"metric", "value"});
  for (const CounterSample& counter : snapshot.counters) {
    rows.push_back({counter.name, std::to_string(counter.value)});
  }
  for (const GaugeSample& gauge : snapshot.gauges) {
    rows.push_back({gauge.name, num(gauge.value, 0)});
  }
  out += table(rows);

  if (!snapshot.histograms.empty()) {
    rows.clear();
    rows.push_back({"histogram", "count", "p50", "p90", "p99", "max"});
    for (const HistogramSample& hist : snapshot.histograms) {
      const bool ns = hist.name.size() > 3 &&
                      hist.name.compare(hist.name.size() - 3, 3, "_ns") == 0;
      const auto cell = [ns](std::uint64_t v) {
        return ns ? num(static_cast<double>(v) / 1000.0, 2) + "us"
                  : std::to_string(v);
      };
      rows.push_back({hist.name, std::to_string(hist.count),
                      cell(hist.percentile(50)), cell(hist.percentile(90)),
                      cell(hist.percentile(99)), cell(hist.max)});
    }
    out += "\n" + table(rows);
  }
  return out;
}

std::string table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return "";
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out += "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < rows[r].size() ? rows[r][c] : "";
      const std::size_t pad = widths[c] - cell.size();
      out += " ";
      if (c == 0) {
        out += cell + std::string(pad, ' ');
      } else {
        out += std::string(pad, ' ') + cell;
      }
      out += " |";
    }
    out += "\n";
    if (r == 0) {
      out += "|";
      for (const std::size_t w : widths) {
        out += std::string(w + 2, '-') + "|";
      }
      out += "\n";
    }
  }
  return out;
}

std::string cdf_curve(const CdfBuilder& cdf, const std::string& x_label,
                      std::size_t points) {
  std::string out;
  out += "  " + x_label + "  cum.fraction\n";
  if (cdf.count() == 0) {
    out += "  (no samples)\n";
    return out;
  }
  char line[96];
  for (const auto& [x, frac] : cdf.curve(points)) {
    std::snprintf(line, sizeof(line), "  %12.4f  %8.4f %s\n", x, frac,
                  bar(frac, 1.0, 30).c_str());
    out += line;
  }
  for (const double pct : {50.0, 90.0, 95.0, 99.0}) {
    std::snprintf(line, sizeof(line), "  P%-4.0f = %.4f\n", pct,
                  cdf.percentile(pct));
    out += line;
  }
  return out;
}

std::string throughput_series(
    const std::vector<std::pair<std::string, const TimeSeries*>>& series,
    std::size_t max_rows) {
  std::string out = "  t(s)";
  std::size_t buckets = 0;
  double peak = 1.0;
  for (const auto& [name, ts] : series) {
    char head[64];
    std::snprintf(head, sizeof(head), "  %14s", (name + "(Mbps)").c_str());
    out += head;
    buckets = std::max(buckets, ts->bucket_count());
    for (std::size_t i = 0; i < ts->bucket_count(); ++i) {
      peak = std::max(peak,
                      ts->bucket_value(i) * 8.0 /
                          ts->bucket_width().to_sec() / 1e6);
    }
  }
  out += "\n";
  const std::size_t step = buckets > max_rows ? (buckets + max_rows - 1) / max_rows : 1;
  char line[64];
  for (std::size_t i = 0; i < buckets; i += step) {
    const auto* first = series.front().second;
    std::snprintf(line, sizeof(line), "  %4.0f",
                  first->bucket_start(std::min(i, buckets - 1)).sec());
    out += line;
    for (const auto& [name, ts] : series) {
      const double mbps =
          i < ts->bucket_count()
              ? ts->bucket_value(i) * 8.0 / ts->bucket_width().to_sec() / 1e6
              : 0.0;
      std::snprintf(line, sizeof(line), "  %14.2f", mbps);
      out += line;
    }
    out += "\n";
  }
  std::snprintf(line, sizeof(line), "  (peak %.2f Mbps)\n", peak);
  out += line;
  return out;
}

std::string bar(double value, double max, std::size_t width) {
  if (max <= 0.0) max = 1.0;
  const std::size_t filled = static_cast<std::size_t>(
      std::clamp(value / max, 0.0, 1.0) * static_cast<double>(width));
  return std::string(filled, '#') + std::string(width - filled, '.');
}

}  // namespace upbound::report
