// FilterBank: the paper's Fig. 6 deployment as a first-class object. An
// ISP installs one edge router (filter + policy + meter) per client
// network; a packet is routed to the filter guarding whichever network it
// belongs to, and packets belonging to none (core transit) pass untouched.
//
// Each site keeps its own constant-size bitmap, so total state is
// O(sites), never O(flows) -- an SPI bank would grow with the union of all
// sites' connections.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "filter/bitmap_filter.h"
#include "filter/filter_registry.h"
#include "net/packet_batch.h"
#include "sim/edge_router.h"

namespace upbound {

class FilterBank {
 public:
  /// Builds router instances with the given factory, one per site.
  /// The factory receives the site's network and must return a router
  /// configured for it.
  using RouterFactory = std::function<std::unique_ptr<EdgeRouter>(
      const ClientNetwork& network)>;

  /// Adds a guarded site. Site prefixes should be disjoint; when they
  /// overlap, the earliest-added site wins.
  void add_site(std::string name, ClientNetwork network,
                std::unique_ptr<EdgeRouter> router);

  /// Adds a site whose filter comes from a registry-parsed spec, with a
  /// RED drop policy. Any registered backend works.
  void add_filter_site(std::string name, ClientNetwork network,
                       const FilterSpec& spec, double red_low_bps,
                       double red_high_bps);

  /// Convenience: add a site with a standard bitmap + RED configuration.
  void add_bitmap_site(std::string name, ClientNetwork network,
                       const BitmapFilterConfig& filter_config,
                       double red_low_bps, double red_high_bps);

  /// Routes the packet to its site's filter. Packets that belong to no
  /// site are passed through (kIgnored).
  RouterDecision process(const PacketRecord& pkt);

  /// Batched routing: consecutive packets of the same site are handed to
  /// that site's router as one sub-batch, so each site still sees its
  /// packets in trace order. Writes one decision per packet.
  void process_batch(PacketBatch batch, std::span<RouterDecision> decisions);

  std::size_t site_count() const { return sites_.size(); }
  /// Site index for an address, or npos when unguarded.
  static constexpr std::size_t kNoSite = static_cast<std::size_t>(-1);
  std::size_t site_of(Ipv4Addr addr) const;

  const std::string& site_name(std::size_t i) const {
    return sites_.at(i).name;
  }
  const EdgeRouter& site_router(std::size_t i) const {
    return *sites_.at(i).router;
  }

  /// Total connection-tracking state across all sites.
  std::size_t total_filter_state_bytes() const;
  /// Packets that matched no site.
  std::uint64_t unguarded_packets() const { return unguarded_; }

 private:
  struct Site {
    std::string name;
    ClientNetwork network;
    std::unique_ptr<EdgeRouter> router;
  };

  std::vector<Site> sites_;
  std::uint64_t unguarded_ = 0;
};

}  // namespace upbound
