// Multi-tenant workload generators for the per-subscriber edge
// (src/tenant/). Each scenario emits a time-sorted packet stream over a
// pool of subscriber addresses plus per-tenant ground truth -- exactly
// what each tenant sent and received -- so tests can check the router's
// per-tenant attribution, the hierarchical filter's instantiation/LRU
// behaviour, and the per-tenant Eq. 1 bound against known-true numbers.
//
//   flash crowd    a steady base population, then a burst window where
//                  many never-seen subscribers appear at once: the worst
//                  case for lazy fine-filter instantiation and the LRU
//                  cap, and the differential-test workload of the CI
//                  tenant-smoke job
//   diurnal swell  one population whose rate follows a day-shaped swell
//                  (quiet -> peak -> quiet): occupancy breathes through
//                  the shared front filter's rotation schedule
//   swarm join     one subscriber progressively joins a P2P swarm
//                  (ramping connection count, upload-heavy payloads)
//                  while everyone else idles along: the isolation
//                  workload -- tenant A's swarm must not move tenant B's
//                  drop rate
//
// Every generator is a pure function of its config: no wall clock, no
// global state, so a fixed seed reproduces the workload byte for byte.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/direction.h"
#include "net/packet.h"
#include "tenant/tenant_table.h"

namespace upbound {

enum class TenantScenarioKind {
  kFlashCrowd,
  kDiurnalSwell,
  kSwarmJoin,
};

/// Stable scenario name ("flash-crowd", "diurnal-swell", "swarm-join")
/// used in CLI flags, report labels, and docs.
const char* tenant_scenario_name(TenantScenarioKind kind);

/// Parses a scenario name as printed by tenant_scenario_name (with
/// "flash"/"diurnal"/"swarm" accepted as short forms). Returns false on
/// unknown names.
bool parse_tenant_scenario(const std::string& name, TenantScenarioKind* out);

/// All scenarios in canonical (report) order.
std::vector<TenantScenarioKind> all_tenant_scenarios();

struct TenantScenarioConfig {
  /// Steady-state subscriber count. The flash crowd adds its burst
  /// arrivals on top of this.
  std::uint64_t tenants = 16;
  Duration duration = Duration::sec(60.0);
  std::uint64_t seed = 42;
  /// Subscriber address pool; one address per tenant is drawn from it
  /// (per-prefix24 ground truth still aggregates correctly because the
  /// mapping below is applied with the same TenantTable the router uses).
  Cidr subscribers = Cidr{Ipv4Addr{10, 40, 0, 0}, 16};
  /// Tenant mapping used for the ground-truth keys; must match the
  /// router's tenancy config for truth and stats to line up.
  TenantMode mode = TenantMode::kPerSubscriber;
  /// Steady-state request exchanges per tenant per second.
  double exchanges_per_sec = 4.0;
  /// Probability that an exchange is followed by one unsolicited inbound
  /// packet from a never-contacted peer (the stateless-inbound traffic
  /// Eq. 1 meters per tenant).
  double unsolicited_prob = 0.25;
  /// Flash crowd: burst arrivals as a multiple of `tenants` (0.5 = half
  /// again as many new subscribers during the burst window).
  double flash_tenant_multiple = 1.0;
  /// Flash crowd: burst window as fractions of the duration.
  double flash_start_frac = 0.4;
  double flash_end_frac = 0.7;
  /// Diurnal swell: peak-to-trough rate ratio.
  double swell_ratio = 8.0;
  /// Swarm join: upload payload bytes per swarm exchange, and the final
  /// rate multiple the ramp reaches at the end of the trace.
  std::uint32_t swarm_payload = 1400;
  double swarm_final_multiple = 24.0;
};

/// What one tenant actually did in the generated trace -- the oracle the
/// router's per-tenant stats are checked against.
struct TenantGroundTruth {
  std::uint64_t outbound_packets = 0;
  std::uint64_t outbound_bytes = 0;  // wire bytes, as the meter counts
  std::uint64_t inbound_packets = 0;
  std::uint64_t inbound_bytes = 0;
  /// Inbound packets with no prior outbound state (distinct never-seen
  /// peers): the packets that must reach the Eq. 1 policy stage.
  std::uint64_t unsolicited_inbound = 0;

  bool operator==(const TenantGroundTruth&) const = default;
};

struct TenantScenarioTrace {
  /// Time-sorted packets (client-side addresses inside `network`).
  Trace packets;
  ClientNetwork network;
  /// Per-tenant ground truth, keyed exactly as the router keys its
  /// TenantStats (same TenantTable mapping).
  std::map<TenantId, TenantGroundTruth> truth;
};

/// Generates one scenario. Deterministic for a given config.
TenantScenarioTrace generate_tenant_scenario(TenantScenarioKind kind,
                                             const TenantScenarioConfig& config);

}  // namespace upbound
