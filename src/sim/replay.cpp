#include "sim/replay.h"

#include <algorithm>
#include <array>

#include "net/packet_batch.h"

namespace upbound {

namespace {

void account_offered(ReplayResult& result, const PacketRecord& pkt,
                     Direction dir) {
  if (dir == Direction::kOutbound) {
    result.offered_outbound.add(pkt.timestamp,
                                static_cast<double>(pkt.wire_size()));
  } else if (dir == Direction::kInbound) {
    result.offered_inbound.add(pkt.timestamp,
                               static_cast<double>(pkt.wire_size()));
  }
}

}  // namespace

ReplayResult replay_trace(const Trace& trace, EdgeRouter& router,
                          const ClientNetwork& network,
                          Duration series_bucket) {
  // Fixed-size chunks through the batched datapath; the decision buffer
  // lives on the stack so replay performs no per-packet allocation.
  constexpr std::size_t kReplayBatch = 256;
  std::array<RouterDecision, kReplayBatch> decisions;

  ReplayResult result{series_bucket};
  for (std::size_t start = 0; start < trace.size(); start += kReplayBatch) {
    const std::size_t n = std::min(kReplayBatch, trace.size() - start);
    const PacketBatch batch{trace.data() + start, n};
    for (const PacketRecord& pkt : batch) {
      account_offered(result, pkt, network.classify(pkt));
    }
    router.process_batch(batch, std::span<RouterDecision>{decisions.data(), n});
    for (std::size_t p = 0; p < n; ++p) {
      const PacketRecord& pkt = batch[p];
      if (decisions[p] == RouterDecision::kPassedOutbound) {
        result.passed_outbound.add(pkt.timestamp,
                                   static_cast<double>(pkt.wire_size()));
      } else if (decisions[p] == RouterDecision::kPassedInbound) {
        result.passed_inbound.add(pkt.timestamp,
                                  static_cast<double>(pkt.wire_size()));
      }
    }
  }
  result.stats = router.stats();
  return result;
}

ReplayResult offered_load(const Trace& trace, const ClientNetwork& network,
                          Duration series_bucket) {
  ReplayResult result{series_bucket};
  for (const PacketRecord& pkt : trace) {
    account_offered(result, pkt, network.classify(pkt));
  }
  return result;
}

}  // namespace upbound
