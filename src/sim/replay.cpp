#include "sim/replay.h"

namespace upbound {

namespace {

void account_offered(ReplayResult& result, const PacketRecord& pkt,
                     Direction dir) {
  if (dir == Direction::kOutbound) {
    result.offered_outbound.add(pkt.timestamp,
                                static_cast<double>(pkt.wire_size()));
  } else if (dir == Direction::kInbound) {
    result.offered_inbound.add(pkt.timestamp,
                               static_cast<double>(pkt.wire_size()));
  }
}

}  // namespace

ReplayResult replay_trace(const Trace& trace, EdgeRouter& router,
                          const ClientNetwork& network,
                          Duration series_bucket) {
  ReplayResult result{series_bucket};
  for (const PacketRecord& pkt : trace) {
    const Direction dir = network.classify(pkt);
    account_offered(result, pkt, dir);
    const RouterDecision decision = router.process(pkt);
    if (decision == RouterDecision::kPassedOutbound) {
      result.passed_outbound.add(pkt.timestamp,
                                 static_cast<double>(pkt.wire_size()));
    } else if (decision == RouterDecision::kPassedInbound) {
      result.passed_inbound.add(pkt.timestamp,
                                static_cast<double>(pkt.wire_size()));
    }
  }
  result.stats = router.stats();
  return result;
}

ReplayResult offered_load(const Trace& trace, const ClientNetwork& network,
                          Duration series_bucket) {
  ReplayResult result{series_bucket};
  for (const PacketRecord& pkt : trace) {
    account_offered(result, pkt, network.classify(pkt));
  }
  return result;
}

}  // namespace upbound
