#include "sim/replay.h"

#include <algorithm>
#include <array>

#include "net/packet_batch.h"

namespace upbound {

namespace {

void account_offered(ReplayResult& result, const PacketRecord& pkt,
                     Direction dir) {
  if (dir == Direction::kOutbound) {
    result.offered_outbound.add(pkt.timestamp,
                                static_cast<double>(pkt.wire_size()));
  } else if (dir == Direction::kInbound) {
    result.offered_inbound.add(pkt.timestamp,
                               static_cast<double>(pkt.wire_size()));
  }
}

}  // namespace

ReplayResult& ReplayResult::merge(const ReplayResult& other) {
  stats.merge(other.stats);
  offered_outbound.add_series(other.offered_outbound);
  offered_inbound.add_series(other.offered_inbound);
  passed_outbound.add_series(other.passed_outbound);
  passed_inbound.add_series(other.passed_inbound);
  merge_metrics_snapshot(metrics, other.metrics);
  return *this;
}

void account_replay_batch(ReplayResult& result, const ClientNetwork& network,
                          PacketBatch batch,
                          std::span<const RouterDecision> decisions) {
  for (const PacketRecord& pkt : batch) {
    account_offered(result, pkt, network.classify(pkt));
  }
  for (std::size_t p = 0; p < batch.size(); ++p) {
    const PacketRecord& pkt = batch[p];
    if (decisions[p] == RouterDecision::kPassedOutbound) {
      result.passed_outbound.add(pkt.timestamp,
                                 static_cast<double>(pkt.wire_size()));
    } else if (decisions[p] == RouterDecision::kPassedInbound) {
      result.passed_inbound.add(pkt.timestamp,
                                static_cast<double>(pkt.wire_size()));
    }
  }
}

ReplayResult replay_trace(const Trace& trace, EdgeRouter& router,
                          const ClientNetwork& network,
                          Duration series_bucket) {
  // Fixed-size chunks through the batched datapath; the decision buffer
  // lives on the stack so replay performs no per-packet allocation.
  constexpr std::size_t kReplayBatch = 256;
  std::array<RouterDecision, kReplayBatch> decisions;

  ReplayResult result{series_bucket};
  for (std::size_t start = 0; start < trace.size(); start += kReplayBatch) {
    const std::size_t n = std::min(kReplayBatch, trace.size() - start);
    const PacketBatch batch{trace.data() + start, n};
    router.process_batch(batch, std::span<RouterDecision>{decisions.data(), n});
    account_replay_batch(result, network, batch,
                         std::span<const RouterDecision>{decisions.data(), n});
  }
  result.stats = router.stats();
  result.metrics = router.metrics_snapshot();
  return result;
}

ReplayResult offered_load(const Trace& trace, const ClientNetwork& network,
                          Duration series_bucket) {
  ReplayResult result{series_bucket};
  for (const PacketRecord& pkt : trace) {
    account_offered(result, pkt, network.classify(pkt));
  }
  return result;
}

}  // namespace upbound
