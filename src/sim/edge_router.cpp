#include "sim/edge_router.h"

#include <limits>
#include <stdexcept>

#include "fault/fault_injector.h"  // kFaultsCompiled
#include "tenant/hierarchical_filter.h"

namespace upbound {

EdgeRouter::EdgeRouter(EdgeRouterConfig config,
                       std::unique_ptr<StateFilter> filter,
                       std::unique_ptr<DropPolicy> policy)
    : config_(std::move(config)),
      filter_(std::move(filter)),
      policy_(std::move(policy)),
      meter_(config_.meter_window),
      tenant_table_(config_.tenancy.table),
      blocklist_(config_.blocklist_ttl),
      rng_(config_.seed),
      passed_out_(config_.series_bucket),
      passed_in_(config_.series_bucket),
      last_time_(
          SimTime::from_usec(std::numeric_limits<std::int64_t>::min())),
      ctr_classify_outbound_(metrics_.counter("classify.outbound_packets")),
      ctr_classify_inbound_(metrics_.counter("classify.inbound_packets")),
      ctr_classify_ignored_(metrics_.counter("classify.ignored_packets")),
      ctr_classify_out_of_order_(
          metrics_.counter("classify.out_of_order_packets")),
      ctr_blocklist_lookups_(metrics_.counter("blocklist.lookups")),
      ctr_blocklist_hits_(metrics_.counter("blocklist.hits")),
      ctr_blocklist_inserts_(metrics_.counter("blocklist.inserts")),
      ctr_state_marks_(metrics_.counter("state.marks")),
      ctr_state_lookups_(metrics_.counter("state.lookups")),
      ctr_state_hits_(metrics_.counter("state.hits")),
      ctr_state_misses_(metrics_.counter("state.misses")),
      ctr_policy_evaluations_(metrics_.counter("policy.evaluations")),
      ctr_policy_drops_(metrics_.counter("policy.drops")),
      ctr_policy_passes_(metrics_.counter("policy.passes")),
      hist_batch_packets_(metrics_.histogram("batch.packets")),
      hist_run_packets_(metrics_.histogram("run.packets")),
      hist_batch_ns_(metrics_.histogram("latency.batch_ns")),
      hist_classify_ns_(metrics_.histogram("latency.classify_ns")),
      hist_blocklist_ns_(metrics_.histogram("latency.blocklist_ns")),
      hist_state_ns_(metrics_.histogram("latency.state_ns")),
      hist_policy_ns_(metrics_.histogram("latency.policy_ns")),
      hist_forward_ns_(metrics_.histogram("latency.forward_ns")),
      timing_(kTelemetryCompiled && config_.stage_timing) {
  if (filter_ == nullptr || policy_ == nullptr) {
    throw std::invalid_argument("EdgeRouter: filter and policy required");
  }
  // Telemetry-only downcast: the tenancy.* gauges and the control
  // socket's per-tenant stats read the hierarchical filter's
  // introspection counters. The decision path never touches hier_.
  hier_ = dynamic_cast<HierarchicalFilter*>(filter_.get());
  if constexpr (kFaultsCompiled) {
    if (config_.health.enabled()) {
      health_.emplace(config_.health);
      health_occupancy_supported_ =
          filter_->occupancy_fraction().has_value();
      // Lazily registered here, not in the init list: a router with health
      // disabled must not grow new counter names in its snapshots.
      ctr_health_fail_open_ = &metrics_.counter("health.fail_open_admits");
      ctr_health_fail_closed_ = &metrics_.counter("health.fail_closed_drops");
      ctr_health_degraded_ =
          &metrics_.counter("health.transitions_degraded");
      ctr_health_recovered_ =
          &metrics_.counter("health.transitions_recovered");
      ctr_health_occupancy_unsupported_ =
          &metrics_.counter("health.occupancy_unsupported");
    }
  }
  if (config_.tuner.enabled) {
    config_.tuner.validate();
    if (!filter_->occupancy_fraction().has_value()) {
      throw std::invalid_argument(
          "EdgeRouter: the tuner requires a filter with an occupancy "
          "signal (filter '" +
          filter_->name() + "' has none)");
    }
    tuner_.emplace(config_.tuner);
  }
}

void EdgeRouter::health_poll(PacketBatch batch) {
  if (batch.empty()) return;
  SimTime now = batch[0].timestamp;
  if (now < last_time_) now = last_time_;
  // The meter clamps on its own high-water mark; surface every clamp it
  // took since the last poll as a clock anomaly.
  const std::uint64_t clamps = meter_.clamp_events();
  for (; health_meter_clamps_seen_ < clamps; ++health_meter_clamps_seen_) {
    health_->note_clock_clamp(now);
  }
  if (health_tick_++ % config_.health.occupancy_sample_batches == 0) {
    // Capability-driven occupancy: any backend reporting
    // occupancy_fraction() feeds the saturation signal; the rest count
    // skipped samples so "healthy" is distinguishable from "blind".
    if (health_occupancy_supported_) {
      health_->note_occupancy(*filter_->occupancy_fraction(), now);
    } else {
      ctr_health_occupancy_unsupported_->inc();
    }
  }
  const std::uint64_t degraded = health_->transitions_to_degraded();
  const std::uint64_t recovered = health_->transitions_to_healthy();
  ctr_health_degraded_->inc(degraded - health_degraded_seen_);
  ctr_health_recovered_->inc(recovered - health_recovered_seen_);
  health_degraded_seen_ = degraded;
  health_recovered_seen_ = recovered;
  health_degraded_ = health_->degraded();
}

void EdgeRouter::tuner_poll() {
  if (tuner_tick_++ % config_.tuner.sample_batches != 0) return;
  // The constructor guarantees the filter reports occupancy.
  tuner_->observe(*filter_->occupancy_fraction(),
                  filter_->expiry_generations());
}

void EdgeRouter::advance_clock(SimTime now) {
  if (now <= last_time_) return;
  last_time_ = now;
  filter_->advance_time(now);
  meter_.advance(now);
}

void EdgeRouter::set_drop_policy(std::unique_ptr<DropPolicy> policy) {
  if (policy == nullptr) {
    throw std::invalid_argument("EdgeRouter::set_drop_policy: null policy");
  }
  policy_ = std::move(policy);
}

bool EdgeRouter::set_unhealthy_stance(UnhealthyStance stance) {
  if (!kFaultsCompiled || !health_.has_value()) return false;
  config_.health.stance = stance;
  return true;
}

void EdgeRouter::replace_filter(std::unique_ptr<StateFilter> filter) {
  if (filter == nullptr) {
    throw std::invalid_argument("EdgeRouter::replace_filter: null filter");
  }
  if (tuner_.has_value() && !filter->occupancy_fraction().has_value()) {
    throw std::invalid_argument(
        "EdgeRouter::replace_filter: the tuner requires a filter with an "
        "occupancy signal (filter '" + filter->name() + "' has none)");
  }
  filter_ = std::move(filter);
  // Re-derive everything the constructor derived from the filter type:
  // a reload may change the backend out from under the telemetry seams.
  hier_ = dynamic_cast<HierarchicalFilter*>(filter_.get());
  if (kFaultsCompiled && health_.has_value()) {
    health_occupancy_supported_ = filter_->occupancy_fraction().has_value();
  }
}

bool EdgeRouter::note_capture_outage(bool active, SimTime now) {
  if (!kFaultsCompiled || !health_.has_value()) return false;
  if (now < last_time_) now = last_time_;
  health_->note_capture_outage(active, now);
  // Mirror the transition counters and the per-packet degraded flag right
  // here: the next batch may arrive before the next health_poll.
  const std::uint64_t degraded = health_->transitions_to_degraded();
  const std::uint64_t recovered = health_->transitions_to_healthy();
  ctr_health_degraded_->inc(degraded - health_degraded_seen_);
  ctr_health_recovered_->inc(recovered - health_recovered_seen_);
  health_degraded_seen_ = degraded;
  health_recovered_seen_ = recovered;
  health_degraded_ = health_->degraded();
  return true;
}

RouterDecision EdgeRouter::process(const PacketRecord& pkt) {
  RouterDecision decision = RouterDecision::kIgnored;
  process_batch(PacketBatch{&pkt, 1}, std::span<RouterDecision>{&decision, 1});
  return decision;
}

void EdgeRouter::process_batch(PacketBatch batch,
                               std::span<RouterDecision> decisions) {
  if (decisions.size() < batch.size()) {
    throw std::invalid_argument(
        "EdgeRouter::process_batch: decisions span smaller than batch");
  }
  // Telemetry reads sit outside the decision path: clock values are only
  // ever recorded, never branched on, so decisions and stats are
  // bit-identical with timing on, off, or compiled out.
  if constexpr (kTelemetryCompiled) hist_batch_packets_.record(batch.size());
  // kTelemetryCompiled is constexpr, so under UPBOUND_TELEMETRY=OFF every
  // `kTelemetryCompiled && timing_` check and the clock reads behind it
  // are eliminated at compile time.
  const std::uint64_t batch_t0 =
      (kTelemetryCompiled && timing_) ? telemetry_clock_ns() : 0;
  if (kFaultsCompiled && health_.has_value()) health_poll(batch);
  if (tuner_.has_value()) tuner_poll();
  classify_batch(batch);

  std::size_t i = 0;
  while (i < batch.size()) {
    const PacketRecord& pkt = batch[i];
    const Direction dir = dirs_[i];

    if (pkt.timestamp < last_time_) {
      // Regressed clock (reordered capture, clock step): clamp to the
      // last-seen time so the meter, blocklist TTLs, and the filter's
      // rotation schedule stay monotonic instead of silently corrupting.
      ++stats_.out_of_order_packets;
      ctr_classify_out_of_order_.inc();
      if (kFaultsCompiled && health_.has_value()) {
        health_->note_clock_clamp(last_time_);
        health_degraded_ = health_->degraded();
      }
      PacketRecord clamped = pkt;
      clamped.timestamp = last_time_;
      decisions[i] = process_one(clamped, dir);
      ++i;
      continue;
    }

    if (dir != Direction::kOutbound && dir != Direction::kInbound) {
      last_time_ = pkt.timestamp;
      filter_->advance_time(last_time_);
      ++stats_.ignored_packets;
      decisions[i] = RouterDecision::kIgnored;
      ++i;
      continue;
    }

    // Maximal same-direction, time-sorted run: the unit the state stage
    // can batch without changing any mark/lookup interleaving.
    std::size_t j = i + 1;
    while (j < batch.size() && dirs_[j] == dir &&
           batch[j].timestamp >= batch[j - 1].timestamp) {
      ++j;
    }
    const PacketBatch run = batch.subspan(i, j - i);
    if constexpr (kTelemetryCompiled) hist_run_packets_.record(run.size());
    if (dir == Direction::kOutbound) {
      process_outbound_run(run, decisions.subspan(i, j - i));
    } else {
      process_inbound_run(run, decisions.subspan(i, j - i));
    }
    last_time_ = batch[j - 1].timestamp;
    i = j;
  }
  if (kTelemetryCompiled && timing_) {
    hist_batch_ns_.record(telemetry_clock_ns() - batch_t0);
  }
}

void EdgeRouter::classify_batch(PacketBatch batch) {
  const std::uint64_t t0 =
      (kTelemetryCompiled && timing_) ? telemetry_clock_ns() : 0;
  dirs_.resize(batch.size());
  std::uint64_t outbound = 0;
  std::uint64_t inbound = 0;
  std::uint64_t ignored = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Direction dir = config_.network.classify(batch[i]);
    dirs_[i] = dir;
    if (dir == Direction::kOutbound) {
      ++outbound;
    } else if (dir == Direction::kInbound) {
      ++inbound;
    } else {
      ++ignored;
    }
  }
  ctr_classify_outbound_.inc(outbound);
  ctr_classify_inbound_.inc(inbound);
  ctr_classify_ignored_.inc(ignored);
  if (kTelemetryCompiled && timing_) {
    hist_classify_ns_.record(telemetry_clock_ns() - t0);
  }
}

void EdgeRouter::process_outbound_run(PacketBatch run,
                                      std::span<RouterDecision> decisions) {
  // Blocklist stage. is_blocked refreshes entry TTLs, so it runs per
  // packet in order; within an outbound run nothing inserts entries, so
  // the verdicts are stable for the rest of the run.
  const bool check_blocked = config_.track_blocked_connections &&
                             config_.suppress_blocked_outbound;
  // 1-in-kTimingSamplePeriod run sampling; see the header note.
  const bool sample = kTelemetryCompiled && timing_ &&
                      (timing_tick_++ & (kTimingSamplePeriod - 1)) == 0;
  const std::uint64_t blocklist_t0 = sample ? telemetry_clock_ns() : 0;
  if (check_blocked) {
    run_blocked_.resize(run.size());
    for (std::size_t p = 0; p < run.size(); ++p) {
      ctr_blocklist_lookups_.inc();
      run_blocked_[p] =
          blocklist_.is_blocked(run[p].tuple, run[p].timestamp) ? 1 : 0;
    }
  } else {
    run_blocked_.assign(run.size(), 0);
  }
  const std::uint64_t state_t0 = sample ? telemetry_clock_ns() : 0;
  if (sample) hist_blocklist_ns_.record(state_t0 - blocklist_t0);

  // State stage: batch-mark maximal unsuppressed stretches. Suppressed
  // packets never reach record_outbound (same as scalar); they only keep
  // the filter clock current.
  std::size_t s = 0;
  while (s < run.size()) {
    if (run_blocked_[s]) {
      filter_->advance_time(run[s].timestamp);
      ++s;
      continue;
    }
    std::size_t e = s + 1;
    while (e < run.size() && !run_blocked_[e]) ++e;
    filter_->record_outbound_batch(run.subspan(s, e - s));
    ctr_state_marks_.inc(e - s);
    s = e;
  }
  const std::uint64_t forward_t0 = sample ? telemetry_clock_ns() : 0;
  if (sample) hist_state_ns_.record(forward_t0 - state_t0);

  // Meter/bookkeeping stage. The meter is only read on the inbound path,
  // which cannot occur inside an outbound run.
  for (std::size_t p = 0; p < run.size(); ++p) {
    const PacketRecord& pkt = run[p];
    if (run_blocked_[p]) {
      ctr_blocklist_hits_.inc();
      ++stats_.suppressed_outbound_packets;
      stats_.suppressed_outbound_bytes += pkt.wire_size();
      if (config_.tenancy.enabled) tenant_note_suppressed(pkt);
      decisions[p] = RouterDecision::kDroppedBlocked;
      continue;
    }
    meter_.add(pkt.timestamp, pkt.wire_size());
    ++stats_.outbound_packets;
    stats_.outbound_bytes += pkt.wire_size();
    passed_out_.add(pkt.timestamp, static_cast<double>(pkt.wire_size()));
    if (config_.tenancy.enabled) tenant_note_outbound(pkt);
    decisions[p] = RouterDecision::kPassedOutbound;
  }
  if (sample) hist_forward_ns_.record(telemetry_clock_ns() - forward_t0);
}

void EdgeRouter::process_inbound_run(PacketBatch run,
                                     std::span<RouterDecision> decisions) {
  // 1-in-kTimingSamplePeriod run sampling; see the header note.
  const bool sample = kTelemetryCompiled && timing_ &&
                      (timing_tick_++ & (kTimingSamplePeriod - 1)) == 0;
  if (!filter_->inbound_lookup_is_pure()) {
    // Side-effectful lookups (SPI refreshes flow timers): preserve the
    // exact scalar interleaving of blocklist, lookup, and policy. The
    // whole interleaved run is attributed to the policy stage.
    const std::uint64_t t0 = sample ? telemetry_clock_ns() : 0;
    for (std::size_t p = 0; p < run.size(); ++p) {
      decisions[p] = process_one(run[p], Direction::kInbound);
    }
    if (sample) hist_policy_ns_.record(telemetry_clock_ns() - t0);
    return;
  }

  // State stage first: the whole run's verdicts in one batched lookup.
  // Safe because the lookup is pure -- verdicts for packets the blocklist
  // stage later rejects are simply discarded. state.lookups is counted in
  // the per-packet loop below, not here: the scalar path never consults
  // the filter for blocked packets, and the counters must agree exactly
  // (lookups == hits + misses on both paths).
  const std::uint64_t state_t0 = sample ? telemetry_clock_ns() : 0;
  if (admit_capacity_ < run.size()) {
    admit_buf_ = std::make_unique<bool[]>(run.size());
    admit_capacity_ = run.size();
  }
  const std::span<bool> admits{admit_buf_.get(), run.size()};
  filter_->admits_inbound_batch(run, admits);
  const std::uint64_t policy_t0 = sample ? telemetry_clock_ns() : 0;
  if (sample) hist_state_ns_.record(policy_t0 - state_t0);

  if (!config_.track_blocked_connections) {
    // No blocklist: the admit mask from the state stage IS the verdict
    // mask, so the per-packet blocklist branch disappears and the state
    // counters accumulate in bulk (identical totals to the per-packet
    // incs). Policy randomness still draws once per miss, in packet
    // order, so the rng stream matches the scalar path bit for bit.
    std::size_t hits = 0;
    for (std::size_t p = 0; p < run.size(); ++p) {
      const bool admit = admits[p];
      hits += static_cast<std::size_t>(admit);
      decisions[p] = admit ? admit_inbound(run[p])
                           : drop_or_pass_inbound(run[p], run[p].timestamp);
    }
    ctr_state_lookups_.inc(run.size());
    ctr_state_hits_.inc(hits);
    ctr_state_misses_.inc(run.size() - hits);
    if (sample) hist_policy_ns_.record(telemetry_clock_ns() - policy_t0);
    return;
  }

  // Blocklist + policy stages, per packet in order (both mutate: a policy
  // drop inserts a blocklist entry that later packets of the same run
  // must observe).
  for (std::size_t p = 0; p < run.size(); ++p) {
    const PacketRecord& pkt = run[p];
    const SimTime now = pkt.timestamp;
    ctr_blocklist_lookups_.inc();
    if (blocklist_.is_blocked(pkt.tuple, now)) {
      ctr_blocklist_hits_.inc();
      ++stats_.inbound_dropped_packets;
      stats_.inbound_dropped_bytes += pkt.wire_size();
      ++stats_.blocked_drops;
      if (config_.tenancy.enabled) {
        tenant_note_inbound_dropped(pkt, /*blocked=*/true, /*policy=*/false);
      }
      decisions[p] = RouterDecision::kDroppedBlocked;
      continue;
    }
    ctr_state_lookups_.inc();
    if (admits[p]) {
      ctr_state_hits_.inc();
      decisions[p] = admit_inbound(pkt);
      continue;
    }
    ctr_state_misses_.inc();
    decisions[p] = drop_or_pass_inbound(pkt, now);
  }
  if (sample) hist_policy_ns_.record(telemetry_clock_ns() - policy_t0);
}

RouterDecision EdgeRouter::process_one(const PacketRecord& pkt,
                                       Direction dir) {
  const SimTime now = pkt.timestamp;
  last_time_ = now;  // caller guarantees now >= the previous last_time_
  filter_->advance_time(now);

  if (dir != Direction::kOutbound && dir != Direction::kInbound) {
    ++stats_.ignored_packets;
    return RouterDecision::kIgnored;
  }

  // Section 5.3: once a connection is blocked, every later packet of sigma
  // or its inverse is dropped without consulting the filter. Outbound
  // packets of a blocked connection are suppressed too -- they are
  // responses a real client would never have generated had the inbound
  // request been dropped at the edge (the replay limitation the paper
  // notes; per-connection suppression models it).
  if (config_.track_blocked_connections &&
      (dir == Direction::kInbound || config_.suppress_blocked_outbound)) {
    ctr_blocklist_lookups_.inc();
    if (blocklist_.is_blocked(pkt.tuple, now)) {
      ctr_blocklist_hits_.inc();
      if (dir == Direction::kOutbound) {
        ++stats_.suppressed_outbound_packets;
        stats_.suppressed_outbound_bytes += pkt.wire_size();
        if (config_.tenancy.enabled) tenant_note_suppressed(pkt);
      } else {
        ++stats_.inbound_dropped_packets;
        stats_.inbound_dropped_bytes += pkt.wire_size();
        ++stats_.blocked_drops;
        if (config_.tenancy.enabled) {
          tenant_note_inbound_dropped(pkt, /*blocked=*/true,
                                      /*policy=*/false);
        }
      }
      return RouterDecision::kDroppedBlocked;
    }
  }

  if (dir == Direction::kOutbound) {
    ctr_state_marks_.inc();
    filter_->record_outbound(pkt);
    meter_.add(now, pkt.wire_size());
    ++stats_.outbound_packets;
    stats_.outbound_bytes += pkt.wire_size();
    passed_out_.add(now, static_cast<double>(pkt.wire_size()));
    if (config_.tenancy.enabled) tenant_note_outbound(pkt);
    return RouterDecision::kPassedOutbound;
  }

  ctr_state_lookups_.inc();
  if (filter_->admits_inbound(pkt)) {
    ctr_state_hits_.inc();
    return admit_inbound(pkt);
  }
  ctr_state_misses_.inc();
  return drop_or_pass_inbound(pkt, now);
}

RouterDecision EdgeRouter::admit_inbound(const PacketRecord& pkt) {
  ++stats_.inbound_passed_packets;
  stats_.inbound_passed_bytes += pkt.wire_size();
  passed_in_.add(pkt.timestamp, static_cast<double>(pkt.wire_size()));
  if (config_.tenancy.enabled) tenant_note_inbound_passed(pkt);
  return RouterDecision::kPassedInbound;
}

BandwidthMeter& EdgeRouter::tenant_meter(TenantId tenant) {
  const auto it = tenant_meters_.find(tenant);
  if (it != tenant_meters_.end()) return it->second;
  return tenant_meters_.try_emplace(tenant, config_.meter_window)
      .first->second;
}

double EdgeRouter::tenant_uplink_bits_per_sec(TenantId tenant, SimTime now) {
  const auto it = tenant_meters_.find(tenant);
  return it == tenant_meters_.end() ? 0.0 : it->second.bits_per_sec(now);
}

void EdgeRouter::tenant_note_outbound(const PacketRecord& pkt) {
  const TenantId tenant = tenant_table_.tenant_of_outbound(pkt.tuple);
  tenant_meter(tenant).add(pkt.timestamp, pkt.wire_size());
  TenantStats& slice = stats_.tenants[tenant];
  ++slice.outbound_packets;
  slice.outbound_bytes += pkt.wire_size();
}

void EdgeRouter::tenant_note_suppressed(const PacketRecord& pkt) {
  TenantStats& slice =
      stats_.tenants[tenant_table_.tenant_of_outbound(pkt.tuple)];
  ++slice.suppressed_outbound_packets;
  slice.suppressed_outbound_bytes += pkt.wire_size();
}

void EdgeRouter::tenant_note_inbound_passed(const PacketRecord& pkt) {
  TenantStats& slice =
      stats_.tenants[tenant_table_.tenant_of_inbound(pkt.tuple)];
  ++slice.inbound_passed_packets;
  slice.inbound_passed_bytes += pkt.wire_size();
}

void EdgeRouter::tenant_note_inbound_dropped(const PacketRecord& pkt,
                                             bool blocked, bool policy) {
  TenantStats& slice =
      stats_.tenants[tenant_table_.tenant_of_inbound(pkt.tuple)];
  ++slice.inbound_dropped_packets;
  slice.inbound_dropped_bytes += pkt.wire_size();
  if (blocked) ++slice.blocked_drops;
  if (policy) ++slice.policy_drops;
}

RouterDecision EdgeRouter::drop_or_pass_inbound(const PacketRecord& pkt,
                                                SimTime now) {
  if (kFaultsCompiled && health_degraded_) {
    // Degraded: the miss that brought us here is no longer evidence (the
    // Eq. 2 chain is broken), so Eq. 1 is not evaluated and nothing is
    // blocklisted -- both stances are reversible the moment health
    // recovers.
    if (config_.health.stance == UnhealthyStance::kFailOpen) {
      ctr_health_fail_open_->inc();
      return admit_inbound(pkt);
    }
    ctr_health_fail_closed_->inc();
    ++stats_.inbound_dropped_packets;
    stats_.inbound_dropped_bytes += pkt.wire_size();
    if (config_.tenancy.enabled) {
      tenant_note_inbound_dropped(pkt, /*blocked=*/false, /*policy=*/false);
    }
    return RouterDecision::kDroppedByPolicy;
  }
  ctr_policy_evaluations_.inc();
  // Eq. 1 input b: the aggregate uplink throughput -- or, with tenancy
  // on, the throughput of the tenant this inbound packet targets, so one
  // subscriber's upload burst cannot raise another subscriber's P_d.
  // Either way exactly one rng draw happens per evaluation, so decision
  // sequences stay reproducible for a given seed and packet stream.
  const double uplink =
      config_.tenancy.enabled
          ? tenant_uplink_bits_per_sec(
                tenant_table_.tenant_of_inbound(pkt.tuple), now)
          : meter_.bits_per_sec(now);
  const double p_drop = policy_->drop_probability(uplink);
  if (rng_.next_bool(p_drop)) {
    ctr_policy_drops_.inc();
    ++stats_.inbound_dropped_packets;
    stats_.inbound_dropped_bytes += pkt.wire_size();
    if (config_.tenancy.enabled) {
      tenant_note_inbound_dropped(pkt, /*blocked=*/false, /*policy=*/true);
    }
    if (config_.track_blocked_connections) {
      ctr_blocklist_inserts_.inc();
      blocklist_.block(pkt.tuple, now);
    }
    return RouterDecision::kDroppedByPolicy;
  }
  ctr_policy_passes_.inc();
  return admit_inbound(pkt);
}

TenantStats& TenantStats::merge(const TenantStats& other) {
  outbound_packets += other.outbound_packets;
  outbound_bytes += other.outbound_bytes;
  inbound_passed_packets += other.inbound_passed_packets;
  inbound_passed_bytes += other.inbound_passed_bytes;
  inbound_dropped_packets += other.inbound_dropped_packets;
  inbound_dropped_bytes += other.inbound_dropped_bytes;
  blocked_drops += other.blocked_drops;
  policy_drops += other.policy_drops;
  suppressed_outbound_packets += other.suppressed_outbound_packets;
  suppressed_outbound_bytes += other.suppressed_outbound_bytes;
  return *this;
}

EdgeRouterStats& EdgeRouterStats::merge(const EdgeRouterStats& other) {
  outbound_packets += other.outbound_packets;
  outbound_bytes += other.outbound_bytes;
  inbound_passed_packets += other.inbound_passed_packets;
  inbound_passed_bytes += other.inbound_passed_bytes;
  inbound_dropped_packets += other.inbound_dropped_packets;
  inbound_dropped_bytes += other.inbound_dropped_bytes;
  blocked_drops += other.blocked_drops;
  suppressed_outbound_packets += other.suppressed_outbound_packets;
  suppressed_outbound_bytes += other.suppressed_outbound_bytes;
  ignored_packets += other.ignored_packets;
  out_of_order_packets += other.out_of_order_packets;
  merge_counter_snapshot(stage_counters, other.stage_counters);
  // Key-wise: tenants are keyed by address-derived id, never a per-shard
  // index, so merging shard maps in any order yields the same aggregate.
  for (const auto& [tenant, slice] : other.tenants) {
    tenants[tenant].merge(slice);
  }
  return *this;
}

EdgeRouterStats EdgeRouter::stats() const {
  EdgeRouterStats out = stats_;
  out.stage_counters = metrics_.counters().snapshot();
  return out;
}

MetricsSnapshot EdgeRouter::metrics_snapshot() {
  metrics_.gauge("filter.storage_bytes")
      .set(static_cast<double>(filter_->storage_bytes()));
  metrics_.gauge("blocklist.entries")
      .set(static_cast<double>(blocklist_.size()));
  if (const std::optional<double> occupancy = filter_->occupancy_fraction()) {
    // Current-generation set-slot fraction: the live Eq. 2 false-positive
    // input, and the quantity saturation attacks drive up. Only emitted
    // by backends with an occupancy signal (registry kCapOccupancy).
    metrics_.gauge("state.occupancy").set(*occupancy);
  }
  if (kFaultsCompiled && health_.has_value()) {
    metrics_.gauge("health.state").set(health_->degraded() ? 1.0 : 0.0);
  }
  if (hier_ != nullptr) {
    // Two-level tenant filter introspection. Registered only when the
    // backend is hierarchical, so every other router's metrics output is
    // unchanged by the feature existing.
    metrics_.gauge("tenancy.tenants")
        .set(static_cast<double>(hier_->tenant_count()));
    metrics_.gauge("tenancy.fine_live")
        .set(static_cast<double>(hier_->live_fine_filters()));
    metrics_.gauge("tenancy.fine_instantiations")
        .set(static_cast<double>(hier_->fine_instantiations()));
    metrics_.gauge("tenancy.fine_evictions")
        .set(static_cast<double>(hier_->fine_evictions()));
    metrics_.gauge("tenancy.front_absorbed")
        .set(static_cast<double>(hier_->front_absorbed()));
    metrics_.gauge("tenancy.digest_admits")
        .set(static_cast<double>(hier_->digest_admits()));
    // Per-tenant occupancy gauges, bounded so a flash crowd cannot blow
    // up the metrics namespace: beyond 32 live fine filters only the
    // aggregate gauges above are emitted.
    constexpr std::size_t kMaxTenantGauges = 32;
    const auto occupancies = hier_->tenant_occupancies();
    if (occupancies.size() <= kMaxTenantGauges) {
      for (const auto& [tenant, occupancy] : occupancies) {
        metrics_
            .gauge("tenancy.occupancy." + tenant_table_.label(tenant))
            .set(occupancy);
      }
    }
  }
  if (tuner_.has_value()) {
    const TunerRecommendation& rec = tuner_->recommendation();
    metrics_.gauge("tuner.occupancy_peak_ewma").set(rec.occupancy_peak_ewma);
    metrics_.gauge("tuner.estimated_connections")
        .set(rec.estimated_connections);
    metrics_.gauge("tuner.penetration_estimate")
        .set(rec.penetration_estimate);
    metrics_.gauge("tuner.recommended_hash_count")
        .set(static_cast<double>(rec.recommended_hash_count));
    metrics_.gauge("tuner.recommended_bits")
        .set(static_cast<double>(rec.recommended_bits));
    metrics_.gauge("tuner.recommended_rotate_sec")
        .set(rec.recommended_rotate_interval.to_sec());
    metrics_.gauge("tuner.generations_observed")
        .set(static_cast<double>(rec.generations_observed));
    metrics_.gauge("tuner.samples").set(static_cast<double>(rec.samples));
  }
  return metrics_.snapshot();
}

}  // namespace upbound
