#include "sim/edge_router.h"

#include <stdexcept>

namespace upbound {

EdgeRouter::EdgeRouter(EdgeRouterConfig config,
                       std::unique_ptr<StateFilter> filter,
                       std::unique_ptr<DropPolicy> policy)
    : config_(std::move(config)),
      filter_(std::move(filter)),
      policy_(std::move(policy)),
      meter_(config_.meter_window),
      blocklist_(config_.blocklist_ttl),
      rng_(config_.seed),
      passed_out_(config_.series_bucket),
      passed_in_(config_.series_bucket) {
  if (filter_ == nullptr || policy_ == nullptr) {
    throw std::invalid_argument("EdgeRouter: filter and policy required");
  }
}

RouterDecision EdgeRouter::process(const PacketRecord& pkt) {
  const SimTime now = pkt.timestamp;
  filter_->advance_time(now);

  const Direction dir = config_.network.classify(pkt);
  if (dir != Direction::kOutbound && dir != Direction::kInbound) {
    ++stats_.ignored_packets;
    return RouterDecision::kIgnored;
  }

  // Section 5.3: once a connection is blocked, every later packet of sigma
  // or its inverse is dropped without consulting the filter. Outbound
  // packets of a blocked connection are suppressed too -- they are
  // responses a real client would never have generated had the inbound
  // request been dropped at the edge (the replay limitation the paper
  // notes; per-connection suppression models it).
  if (config_.track_blocked_connections &&
      (dir == Direction::kInbound || config_.suppress_blocked_outbound) &&
      blocklist_.is_blocked(pkt.tuple, now)) {
    if (dir == Direction::kOutbound) {
      ++stats_.suppressed_outbound_packets;
      stats_.suppressed_outbound_bytes += pkt.wire_size();
    } else {
      ++stats_.inbound_dropped_packets;
      stats_.inbound_dropped_bytes += pkt.wire_size();
      ++stats_.blocked_drops;
    }
    return RouterDecision::kDroppedBlocked;
  }

  if (dir == Direction::kOutbound) {
    filter_->record_outbound(pkt);
    meter_.add(now, pkt.wire_size());
    ++stats_.outbound_packets;
    stats_.outbound_bytes += pkt.wire_size();
    passed_out_.add(now, static_cast<double>(pkt.wire_size()));
    return RouterDecision::kPassedOutbound;
  }

  // Inbound.
  if (filter_->admits_inbound(pkt)) {
    ++stats_.inbound_passed_packets;
    stats_.inbound_passed_bytes += pkt.wire_size();
    passed_in_.add(now, static_cast<double>(pkt.wire_size()));
    return RouterDecision::kPassedInbound;
  }

  const double p_drop =
      policy_->drop_probability(meter_.bits_per_sec(now));
  if (rng_.next_bool(p_drop)) {
    ++stats_.inbound_dropped_packets;
    stats_.inbound_dropped_bytes += pkt.wire_size();
    if (config_.track_blocked_connections) {
      blocklist_.block(pkt.tuple, now);
    }
    return RouterDecision::kDroppedByPolicy;
  }

  ++stats_.inbound_passed_packets;
  stats_.inbound_passed_bytes += pkt.wire_size();
  passed_in_.add(now, static_cast<double>(pkt.wire_size()));
  return RouterDecision::kPassedInbound;
}

}  // namespace upbound
