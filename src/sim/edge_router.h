// The simulated edge router of paper Section 5.3: a connection-state
// filter (bitmap / SPI / naive), an uplink bandwidth meter feeding the
// Eq. 1 drop policy, and the blocked-connection store that models peers
// giving up after their packets are dropped.
//
// Packet flow (Algorithm 2 embedded in the deployment):
//   outbound -> record state, meter uplink, always pass
//   inbound  -> blocked sigma?            drop
//              state present?            pass
//              else                      drop with P_d(uplink throughput)
#pragma once

#include <memory>

#include "filter/bandwidth_meter.h"
#include "filter/blocklist.h"
#include "filter/drop_policy.h"
#include "filter/state_filter.h"
#include "net/direction.h"
#include "util/rng.h"
#include "util/stats.h"

namespace upbound {

enum class RouterDecision {
  kPassedOutbound,
  kPassedInbound,
  kDroppedByPolicy,    // no state and the P_d coin said drop
  kDroppedBlocked,     // connection previously blocked (Section 5.3 rule)
  kIgnored,            // local/transit: not the edge's business
};

struct EdgeRouterConfig {
  ClientNetwork network;
  /// Averaging window of the uplink throughput estimate.
  Duration meter_window = Duration::sec(1.0);
  /// Per-bucket width of the recorded throughput series (Figs. 8-9).
  Duration series_bucket = Duration::sec(1.0);
  /// Enables the Section 5.3 blocked-connection persistence.
  bool track_blocked_connections = true;
  /// When true (default), outbound packets of blocked connections are
  /// suppressed too -- responses a real client would never send had the
  /// inbound request been dropped. Setting false reproduces the paper's
  /// replay semantics exactly: replayed upload keeps flowing (and keeps
  /// marking filter state), which is the limitation Section 5.3 concedes.
  bool suppress_blocked_outbound = true;
  /// TTL for blocked entries (0 = never forget).
  Duration blocklist_ttl = Duration::sec(120.0);
  std::uint64_t seed = 7;
};

struct EdgeRouterStats {
  std::uint64_t outbound_packets = 0;
  std::uint64_t outbound_bytes = 0;
  std::uint64_t inbound_passed_packets = 0;
  std::uint64_t inbound_passed_bytes = 0;
  std::uint64_t inbound_dropped_packets = 0;
  std::uint64_t inbound_dropped_bytes = 0;
  std::uint64_t blocked_drops = 0;   // inbound drops via the blocklist
  /// Outbound traffic of blocked connections: upload a real network never
  /// carries once the triggering inbound request is gone (the effect the
  /// paper says replay cannot fully capture -- we can, per-connection).
  std::uint64_t suppressed_outbound_packets = 0;
  std::uint64_t suppressed_outbound_bytes = 0;
  std::uint64_t ignored_packets = 0;

  /// Inbound drop rate over all inbound packets.
  double inbound_drop_rate() const {
    const std::uint64_t total =
        inbound_passed_packets + inbound_dropped_packets;
    return total == 0 ? 0.0
                      : static_cast<double>(inbound_dropped_packets) /
                            static_cast<double>(total);
  }
};

class EdgeRouter {
 public:
  EdgeRouter(EdgeRouterConfig config, std::unique_ptr<StateFilter> filter,
             std::unique_ptr<DropPolicy> policy);

  /// Processes one packet; timestamps must be non-decreasing.
  RouterDecision process(const PacketRecord& pkt);

  const EdgeRouterStats& stats() const { return stats_; }
  const StateFilter& filter() const { return *filter_; }
  const BlockList& blocklist() const { return blocklist_; }

  /// Bytes that crossed the router, bucketed over time, by direction.
  const TimeSeries& passed_outbound_series() const { return passed_out_; }
  const TimeSeries& passed_inbound_series() const { return passed_in_; }

  /// Current uplink throughput estimate (the Eq. 1 input b).
  double uplink_bits_per_sec(SimTime now) { return meter_.bits_per_sec(now); }

 private:
  EdgeRouterConfig config_;
  std::unique_ptr<StateFilter> filter_;
  std::unique_ptr<DropPolicy> policy_;
  BandwidthMeter meter_;
  BlockList blocklist_;
  Rng rng_;
  EdgeRouterStats stats_;
  TimeSeries passed_out_;
  TimeSeries passed_in_;
};

}  // namespace upbound
