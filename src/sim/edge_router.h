// The simulated edge router of paper Section 5.3: a connection-state
// filter (bitmap / SPI / naive), an uplink bandwidth meter feeding the
// Eq. 1 drop policy, and the blocked-connection store that models peers
// giving up after their packets are dropped.
//
// Packet flow (Algorithm 2 embedded in the deployment):
//   outbound -> record state, meter uplink, always pass
//   inbound  -> blocked sigma?            drop
//              state present?            pass
//              else                      drop with P_d(uplink throughput)
//
// The datapath is batched: process_batch() runs a batch through explicit
// stages -- classify -> blocklist -> state -> meter/Eq.1 policy -- and
// hands maximal same-direction runs to the filter's batch API so the
// bitmap path hashes once per packet and overlaps its bit-vector cache
// misses. The single-packet process() is a batch-of-1 wrapper. Decisions
// and stats are bit-identical between the two entry points (enforced by
// the differential tests); each stage exposes per-stage event counters
// through a CounterRegistry.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "fault/health_monitor.h"
#include "filter/adaptive_tuner.h"
#include "filter/bandwidth_meter.h"
#include "filter/blocklist.h"
#include "filter/drop_policy.h"
#include "filter/state_filter.h"
#include "net/direction.h"
#include "net/packet_batch.h"
#include "tenant/tenant_table.h"
#include "util/counters.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stats.h"

namespace upbound {

class HierarchicalFilter;

enum class RouterDecision {
  kPassedOutbound,
  kPassedInbound,
  kDroppedByPolicy,    // no state and the P_d coin said drop
  kDroppedBlocked,     // connection previously blocked (Section 5.3 rule)
  kIgnored,            // local/transit: not the edge's business
};

/// Switches on per-subscriber accounting and enforcement; see the
/// EdgeRouterConfig::tenancy field for semantics.
struct TenancyConfig {
  bool enabled = false;
  /// How client addresses map to tenants (per-subscriber or per-/24).
  TenantTableConfig table;
};

struct EdgeRouterConfig {
  ClientNetwork network;
  /// Averaging window of the uplink throughput estimate.
  Duration meter_window = Duration::sec(1.0);
  /// Per-bucket width of the recorded throughput series (Figs. 8-9).
  Duration series_bucket = Duration::sec(1.0);
  /// Enables the Section 5.3 blocked-connection persistence.
  bool track_blocked_connections = true;
  /// When true (default), outbound packets of blocked connections are
  /// suppressed too -- responses a real client would never send had the
  /// inbound request been dropped. Setting false reproduces the paper's
  /// replay semantics exactly: replayed upload keeps flowing (and keeps
  /// marking filter state), which is the limitation Section 5.3 concedes.
  bool suppress_blocked_outbound = true;
  /// TTL for blocked entries (0 = never forget).
  Duration blocklist_ttl = Duration::sec(120.0);
  std::uint64_t seed = 7;
  /// Records wall-clock per-stage latency histograms (latency.*_ns) while
  /// replaying. Only effective when telemetry is compiled in
  /// (UPBOUND_TELEMETRY=ON); the timing reads happen outside the decision
  /// path, so decisions and stats are identical either way.
  bool stage_timing = true;
  /// Health monitoring + degraded stance (see fault/health_monitor.h).
  /// Disabled by default; also inert when the fault plane is compiled out
  /// (UPBOUND_FAULTS=OFF). While degraded, only the stateless-inbound
  /// verdict changes: fail-open admits, fail-closed drops (without
  /// evaluating Eq. 1 or inserting blocklist entries, so the policy.* and
  /// blocklist stage identities keep holding).
  HealthConfig health;
  /// Online {k, N, dt} recommendation from sampled occupancy (see
  /// filter/adaptive_tuner.h). Recommend-only: never mutates the filter.
  /// Requires a filter with an occupancy signal (registry kCapOccupancy);
  /// the constructor throws otherwise. Disabled by default, and the
  /// tuner.* gauges are never registered while disabled.
  TunerConfig tuner;
  /// Per-subscriber accounting and enforcement (the multi-tenant edge of
  /// src/tenant/). When enabled, every pass/drop decision is additionally
  /// attributed to the client-side tenant of its tuple, each tenant gets
  /// its own uplink BandwidthMeter (window = meter_window), and the Eq. 1
  /// input b becomes the *tenant's* uplink throughput -- one subscriber's
  /// swarm can no longer push every subscriber's P_d toward the knee.
  /// Disabled (the default) leaves the datapath bit-identical to a build
  /// of this struct without the field. Tenant attribution is a pure
  /// function of the tuple (tenant/tenant_table.h), so per-tenant stats
  /// are shard-local under parallel replay and merge deterministically.
  TenancyConfig tenancy;
};

/// Per-tenant slice of the router's decision bookkeeping. Keys of the
/// EdgeRouterStats::tenants map are TenantIds (subscriber address or /24
/// network, host order), so iteration order -- and every report built
/// from it -- is deterministic.
struct TenantStats {
  std::uint64_t outbound_packets = 0;
  std::uint64_t outbound_bytes = 0;
  std::uint64_t inbound_passed_packets = 0;
  std::uint64_t inbound_passed_bytes = 0;
  std::uint64_t inbound_dropped_packets = 0;
  std::uint64_t inbound_dropped_bytes = 0;
  std::uint64_t blocked_drops = 0;
  std::uint64_t policy_drops = 0;
  std::uint64_t suppressed_outbound_packets = 0;
  std::uint64_t suppressed_outbound_bytes = 0;

  bool operator==(const TenantStats&) const = default;

  TenantStats& merge(const TenantStats& other);

  double inbound_drop_rate() const {
    const std::uint64_t total =
        inbound_passed_packets + inbound_dropped_packets;
    return total == 0 ? 0.0
                      : static_cast<double>(inbound_dropped_packets) /
                            static_cast<double>(total);
  }
};

struct EdgeRouterStats {
  std::uint64_t outbound_packets = 0;
  std::uint64_t outbound_bytes = 0;
  std::uint64_t inbound_passed_packets = 0;
  std::uint64_t inbound_passed_bytes = 0;
  std::uint64_t inbound_dropped_packets = 0;
  std::uint64_t inbound_dropped_bytes = 0;
  std::uint64_t blocked_drops = 0;   // inbound drops via the blocklist
  /// Outbound traffic of blocked connections: upload a real network never
  /// carries once the triggering inbound request is gone (the effect the
  /// paper says replay cannot fully capture -- we can, per-connection).
  std::uint64_t suppressed_outbound_packets = 0;
  std::uint64_t suppressed_outbound_bytes = 0;
  std::uint64_t ignored_packets = 0;
  /// Packets whose timestamp regressed below the last-seen time; their
  /// time is clamped so the meter and rotation schedule stay monotonic.
  std::uint64_t out_of_order_packets = 0;
  /// Per-stage datapath counters (classify./blocklist./state./policy.*),
  /// snapshotted from the router's CounterRegistry by stats().
  CounterSnapshot stage_counters;
  /// Per-tenant decision slices; empty unless tenancy is enabled. Ordered
  /// by TenantId, so reports and merges are deterministic.
  std::map<TenantId, TenantStats> tenants;

  bool operator==(const EdgeRouterStats&) const = default;

  /// Sums `other` into this stats object, including the per-stage counter
  /// snapshot (merged by name). Merging per-shard stats in a fixed shard
  /// order is how the parallel replay engine builds its deterministic
  /// aggregate report.
  EdgeRouterStats& merge(const EdgeRouterStats& other);

  /// Inbound drop rate over all inbound packets.
  double inbound_drop_rate() const {
    const std::uint64_t total =
        inbound_passed_packets + inbound_dropped_packets;
    return total == 0 ? 0.0
                      : static_cast<double>(inbound_dropped_packets) /
                            static_cast<double>(total);
  }
};

class EdgeRouter {
 public:
  EdgeRouter(EdgeRouterConfig config, std::unique_ptr<StateFilter> filter,
             std::unique_ptr<DropPolicy> policy);

  /// Processes one packet: a batch-of-1 through the staged pipeline.
  RouterDecision process(const PacketRecord& pkt);

  /// Processes a batch; writes one decision per packet into `decisions`
  /// (which must be at least batch.size() long). Timestamps should be
  /// non-decreasing; regressions are clamped and counted. Decisions and
  /// stats are identical to calling process() per packet in batch order.
  void process_batch(PacketBatch batch, std::span<RouterDecision> decisions);

  /// Aggregate stats, including a fresh per-stage counter snapshot.
  EdgeRouterStats stats() const;

  /// Full telemetry snapshot: the stage counters plus gauges (state
  /// footprint, blocklist population) and per-stage histograms -- batch and
  /// run size distributions (deterministic) and, with stage_timing, the
  /// wall-clock latency.*_ns latency distributions. Gauges are refreshed
  /// from live structures at snapshot time.
  MetricsSnapshot metrics_snapshot();

  const StateFilter& filter() const { return *filter_; }
  /// Mutable access for harnesses that advance the filter clock between
  /// packets (e.g. occupancy sampling on a fixed sim-time grid); callers
  /// must keep the filter's time monotonic with the packet stream.
  StateFilter& filter() { return *filter_; }
  const BlockList& blocklist() const { return blocklist_; }
  /// The health monitor, or nullptr when disabled (or compiled out).
  const HealthMonitor* health() const {
    return health_.has_value() ? &*health_ : nullptr;
  }
  /// The adaptive tuner, or nullptr when disabled.
  const AdaptiveTuner* tuner() const {
    return tuner_.has_value() ? &*tuner_ : nullptr;
  }
  const CounterRegistry& counters() const { return metrics_.counters(); }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Bytes that crossed the router, bucketed over time, by direction.
  const TimeSeries& passed_outbound_series() const { return passed_out_; }
  const TimeSeries& passed_inbound_series() const { return passed_in_; }

  /// Current uplink throughput estimate (the Eq. 1 input b when tenancy
  /// is disabled; always the aggregate uplink series either way).
  double uplink_bits_per_sec(SimTime now) { return meter_.bits_per_sec(now); }

  /// Whether per-tenant accounting/enforcement is on.
  bool tenancy_enabled() const { return config_.tenancy.enabled; }
  /// The tenant mapping in effect (valid regardless of tenancy.enabled).
  const TenantTable& tenant_table() const { return tenant_table_; }
  /// The tenant's uplink throughput estimate (its Eq. 1 input b). A
  /// tenant with no meter yet -- no outbound traffic seen -- reads 0.
  double tenant_uplink_bits_per_sec(TenantId tenant, SimTime now);
  /// The filter as a HierarchicalFilter when the backend is the
  /// two-level tenant filter, else nullptr. Telemetry-only seam: the
  /// datapath itself never branches on it.
  const HierarchicalFilter* hierarchical_filter() const { return hier_; }

  /// Advances the router's notion of time without a packet: the filter's
  /// rotation schedule fires and metered traffic ages out of the Eq. 1
  /// window. Live mode's tick timer calls this between packets; offline
  /// replay never needs it (packet timestamps carry the clock), and a
  /// call at or below the last-seen time is a no-op, so a live run whose
  /// clock trails the packet stream is observably identical to replay.
  void advance_clock(SimTime now);

  /// Swaps the Eq. 1 drop policy at runtime (live `set L/H`). Takes
  /// effect on the next stateless-inbound decision; throws on null.
  void set_drop_policy(std::unique_ptr<DropPolicy> policy);
  const DropPolicy& drop_policy() const { return *policy_; }

  /// Retargets the degraded-mode stance at runtime (live
  /// `set on-unhealthy`). Returns false when health monitoring is not
  /// engaged (disabled by config or compiled out): the stance would
  /// never be consulted, so pretending to set it would be lying to the
  /// operator.
  bool set_unhealthy_stance(UnhealthyStance stance);

  /// Swaps the state filter at runtime (live hot reload: the caller has
  /// already migrated state into `filter`). Re-derives the telemetry
  /// downcast and the occupancy-capability flag; throws on null, and --
  /// with the tuner engaged -- on a filter without an occupancy signal
  /// (same contract the constructor enforces), leaving the running
  /// filter untouched in every throwing path.
  void replace_filter(std::unique_ptr<StateFilter> filter);

  /// Live capture-outage feed: latches (or clears) the health monitor's
  /// capture signal at sim time `now` and refreshes the degraded stance
  /// mirror immediately -- traffic processed during the gap must already
  /// run under the degraded stance, not one batch later. Returns false
  /// when health monitoring is not engaged.
  bool note_capture_outage(bool active, SimTime now);

 private:
  // --- Pipeline stages (each consumes a batch or a run of one) ---

  /// Stage 1: direction per packet into dirs_, plus classify.* counters.
  void classify_batch(PacketBatch batch);

  /// Stages 2-4 for a maximal same-direction, time-sorted run.
  void process_outbound_run(PacketBatch run,
                            std::span<RouterDecision> decisions);
  void process_inbound_run(PacketBatch run,
                           std::span<RouterDecision> decisions);

  /// Exact scalar pipeline for one packet whose direction is known.
  /// Used for clamped out-of-order packets and for filters whose inbound
  /// lookup has side effects (SPI) and therefore cannot be batched.
  RouterDecision process_one(const PacketRecord& pkt, Direction dir);

  // Inbound verdict bookkeeping shared by the batched and scalar paths.
  RouterDecision admit_inbound(const PacketRecord& pkt);
  RouterDecision drop_or_pass_inbound(const PacketRecord& pkt, SimTime now);

  /// Health sampling, once per batch: feeds occupancy and any meter clamp
  /// events accumulated since the last poll into the monitor and mirrors
  /// its transition counters. Only called when health_ is engaged.
  void health_poll(PacketBatch batch);

  /// Tuner sampling, once per batch on its own cadence. Only called when
  /// tuner_ is engaged. Simulation-domain (batch ticks + filter state),
  /// so sampling is deterministic for a given packet/batch sequence.
  void tuner_poll();

  /// Tenancy attribution shared by the batched and scalar paths. Only
  /// called when tenancy is enabled; the packet's timestamp must already
  /// be monotonic (callers clamp before attributing).
  void tenant_note_outbound(const PacketRecord& pkt);
  void tenant_note_suppressed(const PacketRecord& pkt);
  void tenant_note_inbound_passed(const PacketRecord& pkt);
  void tenant_note_inbound_dropped(const PacketRecord& pkt,
                                   bool blocked, bool policy);
  /// The tenant's meter, created on first touch (window = meter_window).
  BandwidthMeter& tenant_meter(TenantId tenant);

  EdgeRouterConfig config_;
  std::unique_ptr<StateFilter> filter_;
  std::unique_ptr<DropPolicy> policy_;
  BandwidthMeter meter_;
  /// Tuple -> tenant mapping; constructed always (it is stateless and
  /// cheap), consulted only when tenancy is enabled.
  TenantTable tenant_table_;
  /// Per-tenant uplink meters backing the per-tenant Eq. 1 input.
  /// Ordered so metrics iteration is deterministic.
  std::map<TenantId, BandwidthMeter> tenant_meters_;
  /// Set iff the filter is the hierarchical tenant backend; feeds the
  /// tenancy.* gauges in metrics_snapshot().
  HierarchicalFilter* hier_ = nullptr;
  BlockList blocklist_;
  Rng rng_;
  EdgeRouterStats stats_;
  TimeSeries passed_out_;
  TimeSeries passed_in_;

  /// Highest timestamp seen; regressions are clamped up to this.
  SimTime last_time_;

  /// Engaged iff config_.health.enabled() and the fault plane is compiled
  /// in; every health member below is untouched otherwise, and the
  /// health.* counters are never registered -- a disabled router's metrics
  /// output is byte-identical to a build without the feature.
  std::optional<HealthMonitor> health_;
  /// Whether the filter reports occupancy_fraction() (registry capability
  /// kCapOccupancy). When false, sampling ticks count into
  /// health.occupancy_unsupported instead -- operators can tell a healthy
  /// router from a blind one.
  bool health_occupancy_supported_ = false;
  std::uint64_t health_meter_clamps_seen_ = 0;
  /// Batch tick driving the occupancy sampling cadence (simulation-domain:
  /// advances per batch, never reads a clock).
  std::uint64_t health_tick_ = 0;
  /// Mirror of health_->degraded(), refreshed at the two sites that can
  /// change it (health_poll, clock clamps), so the per-packet policy path
  /// tests one bool instead of chasing the optional. Always false when
  /// health is disengaged.
  bool health_degraded_ = false;
  std::uint64_t health_degraded_seen_ = 0;
  std::uint64_t health_recovered_seen_ = 0;
  StageCounter* ctr_health_fail_open_ = nullptr;
  StageCounter* ctr_health_fail_closed_ = nullptr;
  StageCounter* ctr_health_degraded_ = nullptr;
  StageCounter* ctr_health_recovered_ = nullptr;
  StageCounter* ctr_health_occupancy_unsupported_ = nullptr;

  /// Engaged iff config_.tuner.enabled (independent of the fault plane).
  std::optional<AdaptiveTuner> tuner_;
  std::uint64_t tuner_tick_ = 0;

  MetricsRegistry metrics_;
  // Cached per-stage counters (references into metrics_ stay valid).
  StageCounter& ctr_classify_outbound_;
  StageCounter& ctr_classify_inbound_;
  StageCounter& ctr_classify_ignored_;
  StageCounter& ctr_classify_out_of_order_;
  StageCounter& ctr_blocklist_lookups_;
  StageCounter& ctr_blocklist_hits_;
  StageCounter& ctr_blocklist_inserts_;
  StageCounter& ctr_state_marks_;
  StageCounter& ctr_state_lookups_;
  StageCounter& ctr_state_hits_;
  StageCounter& ctr_state_misses_;
  StageCounter& ctr_policy_evaluations_;
  StageCounter& ctr_policy_drops_;
  StageCounter& ctr_policy_passes_;

  // Telemetry histograms (references into metrics_ stay valid). The
  // batch./run. size histograms are simulation-domain and deterministic;
  // the latency.*_ns histograms are wall-clock and recorded only when
  // timing_ is set. Empty in both classes when telemetry is compiled out.
  LatencyHistogram& hist_batch_packets_;
  LatencyHistogram& hist_run_packets_;
  LatencyHistogram& hist_batch_ns_;
  LatencyHistogram& hist_classify_ns_;
  LatencyHistogram& hist_blocklist_ns_;
  LatencyHistogram& hist_state_ns_;
  LatencyHistogram& hist_policy_ns_;
  LatencyHistogram& hist_forward_ns_;
  /// config_.stage_timing && telemetry compiled in; constant-folded to
  /// false (dead timing code removed) under UPBOUND_TELEMETRY=OFF.
  const bool timing_;
  /// Runs are often a handful of packets, so timing every one would spend
  /// more cycles in the clock than in the stages (~75% overhead measured).
  /// The run-level stage timers sample 1 run in kTimingSamplePeriod
  /// instead; batch-level timers (batch_ns, classify_ns) are per batch and
  /// stay unsampled. The tick advances with the run sequence only -- no
  /// clock value feeds it -- so sampling preserves decision purity.
  static constexpr std::uint64_t kTimingSamplePeriod = 32;
  std::uint64_t timing_tick_ = 0;

  // Reused per-batch scratch; capacity persists so the steady-state
  // datapath performs no allocations.
  std::vector<Direction> dirs_;
  std::vector<std::uint8_t> run_blocked_;
  std::unique_ptr<bool[]> admit_buf_;
  std::size_t admit_capacity_ = 0;
};

}  // namespace upbound
