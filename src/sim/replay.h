// Trace replay: drives a whole trace through an edge router and collects
// the before/after throughput series the Fig. 8-9 evaluations compare.
#pragma once

#include "net/direction.h"
#include "net/packet.h"
#include "sim/edge_router.h"
#include "util/stats.h"

namespace upbound {

struct ReplayResult {
  EdgeRouterStats stats;
  /// Offered (pre-filter) load by direction.
  TimeSeries offered_outbound;
  TimeSeries offered_inbound;
  /// Carried (post-filter) load by direction.
  TimeSeries passed_outbound;
  TimeSeries passed_inbound;
  /// Full telemetry snapshot of the router(s) that produced this result.
  /// Deliberately excluded from operator==: its latency.*_ns histograms
  /// are wall-clock and differ run to run, while everything compared by
  /// the replay-equivalence tests is simulation-domain. Use
  /// metrics.deterministic() to compare the deterministic subset.
  MetricsSnapshot metrics;

  ReplayResult(Duration bucket)
      : offered_outbound(bucket),
        offered_inbound(bucket),
        passed_outbound(bucket),
        passed_inbound(bucket) {}

  bool operator==(const ReplayResult& other) const {
    return stats == other.stats &&
           offered_outbound == other.offered_outbound &&
           offered_inbound == other.offered_inbound &&
           passed_outbound == other.passed_outbound &&
           passed_inbound == other.passed_inbound;
  }

  /// Sums `other` into this result: stats merge plus bucket-wise series
  /// sums plus a name-wise metrics merge. All series values are integer
  /// byte counts held in doubles, so the sums are exact and a fixed merge
  /// order is bitwise deterministic (for metrics: over the deterministic
  /// subset -- wall-clock histograms merge losslessly but their contents
  /// vary run to run).
  ReplayResult& merge(const ReplayResult& other);
};

/// Accounts one processed batch into `result`: offered load from the
/// network's direction classification, carried load from the router's
/// decisions. Shared by replay_trace and the parallel replay workers so
/// both paths account identically.
void account_replay_batch(ReplayResult& result, const ClientNetwork& network,
                          PacketBatch batch,
                          std::span<const RouterDecision> decisions);

/// Replays `trace` through `router`. The offered series are measured from
/// the raw trace with the router's network/bucketing so original and
/// filtered curves align bucket-for-bucket.
ReplayResult replay_trace(const Trace& trace, EdgeRouter& router,
                          const ClientNetwork& network,
                          Duration series_bucket = Duration::sec(1.0));

/// Measures only the offered per-direction series of a trace.
ReplayResult offered_load(const Trace& trace, const ClientNetwork& network,
                          Duration series_bucket = Duration::sec(1.0));

}  // namespace upbound
