// Trace replay: drives a whole trace through an edge router and collects
// the before/after throughput series the Fig. 8-9 evaluations compare.
#pragma once

#include "net/direction.h"
#include "net/packet.h"
#include "sim/edge_router.h"
#include "util/stats.h"

namespace upbound {

struct ReplayResult {
  EdgeRouterStats stats;
  /// Offered (pre-filter) load by direction.
  TimeSeries offered_outbound;
  TimeSeries offered_inbound;
  /// Carried (post-filter) load by direction.
  TimeSeries passed_outbound;
  TimeSeries passed_inbound;

  ReplayResult(Duration bucket)
      : offered_outbound(bucket),
        offered_inbound(bucket),
        passed_outbound(bucket),
        passed_inbound(bucket) {}
};

/// Replays `trace` through `router`. The offered series are measured from
/// the raw trace with the router's network/bucketing so original and
/// filtered curves align bucket-for-bucket.
ReplayResult replay_trace(const Trace& trace, EdgeRouter& router,
                          const ClientNetwork& network,
                          Duration series_bucket = Duration::sec(1.0));

/// Measures only the offered per-direction series of a trace.
ReplayResult offered_load(const Trace& trace, const ClientNetwork& network,
                          Duration series_bucket = Duration::sec(1.0));

}  // namespace upbound
