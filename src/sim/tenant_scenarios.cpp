#include "sim/tenant_scenarios.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.h"

namespace upbound {

const char* tenant_scenario_name(TenantScenarioKind kind) {
  switch (kind) {
    case TenantScenarioKind::kFlashCrowd:
      return "flash-crowd";
    case TenantScenarioKind::kDiurnalSwell:
      return "diurnal-swell";
    case TenantScenarioKind::kSwarmJoin:
      return "swarm-join";
  }
  return "?";
}

bool parse_tenant_scenario(const std::string& name, TenantScenarioKind* out) {
  if (name == "flash-crowd" || name == "flash") {
    *out = TenantScenarioKind::kFlashCrowd;
  } else if (name == "diurnal-swell" || name == "diurnal") {
    *out = TenantScenarioKind::kDiurnalSwell;
  } else if (name == "swarm-join" || name == "swarm") {
    *out = TenantScenarioKind::kSwarmJoin;
  } else {
    return false;
  }
  return true;
}

std::vector<TenantScenarioKind> all_tenant_scenarios() {
  return {TenantScenarioKind::kFlashCrowd, TenantScenarioKind::kDiurnalSwell,
          TenantScenarioKind::kSwarmJoin};
}

namespace {

constexpr std::uint32_t kResponsePayload = 1200;
constexpr Duration kResponseDelay = Duration::sec(0.04);

/// Emits exchanges for one subscriber and books them into the shared
/// ground truth under the scenario's tenant mapping.
class Emitter {
 public:
  Emitter(const TenantScenarioConfig& config, TenantScenarioTrace& out)
      : config_(config),
        table_(TenantTableConfig{config.mode}),
        out_(out) {}

  /// One request/response exchange at `t`: outbound request (payload
  /// `out_payload`), inbound response, and -- with unsolicited_prob -- one
  /// inbound packet from a peer this subscriber never contacted (the
  /// stateless-inbound traffic the per-tenant Eq. 1 policy meters).
  void exchange(SimTime t, Ipv4Addr client, std::uint32_t out_payload,
                Rng& rng) {
    const Ipv4Addr peer = next_peer();
    const auto client_port =
        static_cast<std::uint16_t>(1024 + rng.next_below(60000));
    FiveTuple request{Protocol::kUdp, client, client_port, peer, 6881};

    PacketRecord out_pkt;
    out_pkt.timestamp = t;
    out_pkt.tuple = request;
    out_pkt.payload_size = out_payload;
    book_outbound(out_pkt);

    PacketRecord in_pkt;
    in_pkt.timestamp = t + kResponseDelay;
    in_pkt.tuple = request.inverse();
    in_pkt.payload_size = kResponsePayload;
    book_inbound(in_pkt, /*unsolicited=*/false);

    if (rng.next_bool(config_.unsolicited_prob)) {
      PacketRecord probe;
      probe.timestamp = t + kResponseDelay + kResponseDelay;
      probe.tuple = FiveTuple{Protocol::kUdp, next_peer(), 6881, client,
                              client_port};
      probe.payload_size = kResponsePayload;
      book_inbound(probe, /*unsolicited=*/true);
    }
  }

 private:
  /// Fresh external peer addresses from the 198.18.0.0/15 benchmark
  /// range -- never inside any subscriber prefix.
  Ipv4Addr next_peer() {
    const std::uint32_t i = peer_counter_++;
    return Ipv4Addr{(std::uint32_t{198} << 24) | (std::uint32_t{18} << 16) |
                    (i & 0x1ffffu)};
  }

  void book_outbound(const PacketRecord& pkt) {
    TenantGroundTruth& truth = out_.truth[table_.tenant_of_outbound(pkt.tuple)];
    ++truth.outbound_packets;
    truth.outbound_bytes += pkt.wire_size();
    out_.packets.push_back(pkt);
  }

  void book_inbound(const PacketRecord& pkt, bool unsolicited) {
    TenantGroundTruth& truth = out_.truth[table_.tenant_of_inbound(pkt.tuple)];
    ++truth.inbound_packets;
    truth.inbound_bytes += pkt.wire_size();
    if (unsolicited) ++truth.unsolicited_inbound;
    out_.packets.push_back(pkt);
  }

  const TenantScenarioConfig& config_;
  TenantTable table_;
  TenantScenarioTrace& out_;
  std::uint32_t peer_counter_ = 0;
};

/// The i-th subscriber's address. Per-prefix24 mode strides whole /24s so
/// every tenant is a distinct prefix (and a distinct TenantId).
Ipv4Addr subscriber_addr(const TenantScenarioConfig& config, std::uint64_t i) {
  const std::uint64_t stride =
      config.mode == TenantMode::kPerPrefix24 ? 256 : 1;
  const std::uint64_t offset = i * stride + 2;  // skip .0/.1
  if (offset >= config.subscribers.size()) {
    throw std::invalid_argument(
        "generate_tenant_scenario: subscriber pool " +
        config.subscribers.to_string() + " too small for " +
        std::to_string(i + 1) + " tenants");
  }
  return config.subscribers.host(offset);
}

/// Emits one subscriber's exchanges over [start, end) as a thinned
/// Poisson stream: arrivals at `peak_rate`, kept with probability
/// rate(t)/peak_rate. `rate` must never exceed `peak_rate`.
template <typename RateFn>
void emit_stream(Emitter& emitter, Ipv4Addr client, SimTime start, SimTime end,
                 double peak_rate, std::uint32_t out_payload, Rng rng,
                 RateFn rate) {
  if (peak_rate <= 0.0) return;
  SimTime t = start;
  for (;;) {
    const double u = rng.next_double();
    const double gap_sec = -std::log1p(-u) / peak_rate;
    t += Duration::sec(gap_sec);
    if (t >= end) return;
    if (rng.next_double() * peak_rate <= rate(t)) {
      emitter.exchange(t, client, out_payload, rng);
    }
  }
}

constexpr std::uint32_t kRequestPayload = 600;

}  // namespace

TenantScenarioTrace generate_tenant_scenario(
    TenantScenarioKind kind, const TenantScenarioConfig& config) {
  TenantScenarioTrace out;
  out.network.add_prefix(config.subscribers);
  Emitter emitter{config, out};
  Rng root{config.seed};
  const SimTime start = SimTime::origin();
  const SimTime end = start + config.duration;
  const double base = config.exchanges_per_sec;

  switch (kind) {
    case TenantScenarioKind::kFlashCrowd: {
      for (std::uint64_t i = 0; i < config.tenants; ++i) {
        emit_stream(emitter, subscriber_addr(config, i), start, end, base,
                    kRequestPayload, root.fork(i),
                    [&](SimTime) { return base; });
      }
      // The crowd: never-seen subscribers, all active only inside the
      // burst window, each at the steady per-tenant rate.
      const auto crowd = static_cast<std::uint64_t>(
          std::llround(config.flash_tenant_multiple *
                       static_cast<double>(config.tenants)));
      const SimTime burst_start =
          start + config.duration * config.flash_start_frac;
      const SimTime burst_end = start + config.duration * config.flash_end_frac;
      for (std::uint64_t i = 0; i < crowd; ++i) {
        emit_stream(emitter, subscriber_addr(config, config.tenants + i),
                    burst_start, burst_end, base, kRequestPayload,
                    root.fork(config.tenants + i),
                    [&](SimTime) { return base; });
      }
      break;
    }
    case TenantScenarioKind::kDiurnalSwell: {
      // Rate swings sinusoidally between base/swell_ratio and base over
      // one full "day" spanning the trace.
      const double trough = base / std::max(1.0, config.swell_ratio);
      const double span_sec = config.duration.to_sec();
      const auto rate = [&](SimTime t) {
        const double phase = (t - start).to_sec() / span_sec;
        const double wave =
            0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * phase);
        return trough + (base - trough) * wave;
      };
      for (std::uint64_t i = 0; i < config.tenants; ++i) {
        emit_stream(emitter, subscriber_addr(config, i), start, end, base,
                    kRequestPayload, root.fork(i), rate);
      }
      break;
    }
    case TenantScenarioKind::kSwarmJoin: {
      // Tenant 0 ramps linearly to swarm_final_multiple x base with
      // upload-sized payloads; everyone else idles at the steady rate.
      const double peak = base * std::max(1.0, config.swarm_final_multiple);
      const double span_sec = config.duration.to_sec();
      emit_stream(emitter, subscriber_addr(config, 0), start, end, peak,
                  config.swarm_payload, root.fork(0), [&](SimTime t) {
                    return peak * (t - start).to_sec() / span_sec;
                  });
      for (std::uint64_t i = 1; i < config.tenants; ++i) {
        emit_stream(emitter, subscriber_addr(config, i), start, end, base,
                    kRequestPayload, root.fork(i),
                    [&](SimTime) { return base; });
      }
      break;
    }
  }

  std::stable_sort(out.packets.begin(), out.packets.end(),
                   [](const PacketRecord& a, const PacketRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

}  // namespace upbound
