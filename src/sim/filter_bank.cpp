#include "sim/filter_bank.h"

#include <stdexcept>

#include "filter/filter_registry.h"

namespace upbound {

void FilterBank::add_site(std::string name, ClientNetwork network,
                          std::unique_ptr<EdgeRouter> router) {
  if (router == nullptr) {
    throw std::invalid_argument("FilterBank::add_site: null router");
  }
  sites_.push_back(Site{std::move(name), std::move(network),
                        std::move(router)});
}

void FilterBank::add_filter_site(std::string name, ClientNetwork network,
                                 const FilterSpec& spec, double red_low_bps,
                                 double red_high_bps) {
  EdgeRouterConfig config;
  config.network = network;
  auto router = std::make_unique<EdgeRouter>(
      std::move(config), make_state_filter(spec),
      std::make_unique<RedDropPolicy>(red_low_bps, red_high_bps));
  add_site(std::move(name), std::move(network), std::move(router));
}

void FilterBank::add_bitmap_site(std::string name, ClientNetwork network,
                                 const BitmapFilterConfig& filter_config,
                                 double red_low_bps, double red_high_bps) {
  add_filter_site(std::move(name), std::move(network),
                  bitmap_filter_spec(filter_config), red_low_bps,
                  red_high_bps);
}

std::size_t FilterBank::site_of(Ipv4Addr addr) const {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].network.is_internal(addr)) return i;
  }
  return kNoSite;
}

RouterDecision FilterBank::process(const PacketRecord& pkt) {
  RouterDecision decision = RouterDecision::kIgnored;
  process_batch(PacketBatch{&pkt, 1}, std::span<RouterDecision>{&decision, 1});
  return decision;
}

void FilterBank::process_batch(PacketBatch batch,
                               std::span<RouterDecision> decisions) {
  if (decisions.size() < batch.size()) {
    throw std::invalid_argument(
        "FilterBank::process_batch: decisions span smaller than batch");
  }
  // The packet belongs to the site owning either endpoint; outbound
  // packets match on source, inbound on destination. Consecutive packets
  // of the same site form a sub-batch for that site's router.
  const auto site_for = [this](const PacketRecord& pkt) {
    std::size_t site = site_of(pkt.tuple.src_addr);
    if (site == kNoSite) site = site_of(pkt.tuple.dst_addr);
    return site;
  };
  std::size_t i = 0;
  while (i < batch.size()) {
    const std::size_t site = site_for(batch[i]);
    std::size_t j = i + 1;
    while (j < batch.size() && site_for(batch[j]) == site) ++j;
    if (site == kNoSite) {
      unguarded_ += j - i;
      for (std::size_t p = i; p < j; ++p) {
        decisions[p] = RouterDecision::kIgnored;
      }
    } else {
      sites_[site].router->process_batch(batch.subspan(i, j - i),
                                         decisions.subspan(i, j - i));
    }
    i = j;
  }
}

std::size_t FilterBank::total_filter_state_bytes() const {
  std::size_t total = 0;
  for (const Site& site : sites_) {
    total += site.router->filter().storage_bytes();
  }
  return total;
}

}  // namespace upbound
