#include "sim/filter_bank.h"

#include "filter/bitmap_filter.h"

namespace upbound {

void FilterBank::add_site(std::string name, ClientNetwork network,
                          std::unique_ptr<EdgeRouter> router) {
  if (router == nullptr) {
    throw std::invalid_argument("FilterBank::add_site: null router");
  }
  sites_.push_back(Site{std::move(name), std::move(network),
                        std::move(router)});
}

void FilterBank::add_bitmap_site(std::string name, ClientNetwork network,
                                 const BitmapFilterConfig& filter_config,
                                 double red_low_bps, double red_high_bps) {
  EdgeRouterConfig config;
  config.network = network;
  auto router = std::make_unique<EdgeRouter>(
      std::move(config), std::make_unique<BitmapFilter>(filter_config),
      std::make_unique<RedDropPolicy>(red_low_bps, red_high_bps));
  add_site(std::move(name), std::move(network), std::move(router));
}

std::size_t FilterBank::site_of(Ipv4Addr addr) const {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].network.is_internal(addr)) return i;
  }
  return kNoSite;
}

RouterDecision FilterBank::process(const PacketRecord& pkt) {
  // The packet belongs to the site owning either endpoint; outbound
  // packets match on source, inbound on destination.
  std::size_t site = site_of(pkt.tuple.src_addr);
  if (site == kNoSite) site = site_of(pkt.tuple.dst_addr);
  if (site == kNoSite) {
    ++unguarded_;
    return RouterDecision::kIgnored;
  }
  return sites_[site].router->process(pkt);
}

std::size_t FilterBank::total_filter_state_bytes() const {
  std::size_t total = 0;
  for (const Site& site : sites_) {
    total += site.router->filter().storage_bytes();
  }
  return total;
}

}  // namespace upbound
