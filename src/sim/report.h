// Text rendering helpers shared by the bench binaries: aligned tables,
// CDF curves, and side-by-side throughput series in the shape of the
// paper's tables and figures.
#pragma once

#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/stats.h"

namespace upbound::report {

/// Renders a metrics snapshot as an aligned human-readable table: one
/// counters/gauges section and one histogram row per distribution with
/// count, p50/p90/p99, and max. Latency histograms (*_ns) print in
/// microseconds for readability.
std::string metrics_table(const MetricsSnapshot& snapshot);

/// Renders rows as an aligned markdown-style table. The first row is the
/// header. Cells are right-aligned except the first column.
std::string table(const std::vector<std::vector<std::string>>& rows);

/// Renders a CDF as "value  cumulative-fraction" sample points. `points`
/// evenly spaced samples plus the exact P50/P90/P95/P99 markers.
std::string cdf_curve(const CdfBuilder& cdf, const std::string& x_label,
                      std::size_t points = 20);

/// Renders aligned per-bucket Mbps columns for one or more series sharing
/// bucketing. Column vectors must be equally long (pad with 0).
std::string throughput_series(
    const std::vector<std::pair<std::string, const TimeSeries*>>& series,
    std::size_t max_rows = 120);

/// An ASCII sparkline-style bar of width `width` proportional to
/// value/max.
std::string bar(double value, double max, std::size_t width = 40);

/// Formats a double with fixed precision.
std::string num(double value, int decimals = 2);
std::string percent(double fraction, int decimals = 2);

}  // namespace upbound::report
