#include "sim/parallel_replay.h"

#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/rng.h"
#include "util/spsc_ring.h"

namespace upbound {

namespace {

/// Fixed salt so shard placement is stable across runs and processes
/// (changing it would change the decomposition, i.e. the semantics).
constexpr std::uint64_t kShardHashSeed = 0x73686172645f7632ULL;

/// A filled packet buffer in flight between the partitioner and a worker.
struct Chunk {
  PacketRecord* data = nullptr;
  std::size_t size = 0;
};

/// Per-shard hand-off lane: a data ring carrying filled chunks toward the
/// worker and a free ring recycling consumed buffers back, so steady-state
/// replay reuses ring_chunks fixed buffers per shard and never allocates.
struct ShardLane {
  explicit ShardLane(std::size_t ring_chunks, std::size_t chunk_packets)
      : data_ring(ring_chunks), free_ring(ring_chunks) {
    buffers.reserve(ring_chunks);
    for (std::size_t i = 0; i < ring_chunks; ++i) {
      buffers.push_back(std::make_unique<PacketRecord[]>(chunk_packets));
      free_ring.try_push(Chunk{buffers.back().get(), 0});
    }
  }

  SpscRing<Chunk> data_ring;  // partitioner -> worker
  SpscRing<Chunk> free_ring;  // worker -> partitioner
  std::vector<std::unique_ptr<PacketRecord[]>> buffers;
  std::atomic<bool> done{false};

  // Partitioner-side fill state (only the partitioning thread touches it).
  Chunk filling;
  std::size_t fill = 0;
};

/// Copies the replay-relevant fields of a packet; payload bytes are not
/// consulted by any router stage (wire_size uses payload_size), so the
/// copy stays allocation-free.
void copy_for_replay(PacketRecord& dst, const PacketRecord& src) {
  dst.timestamp = src.timestamp;
  dst.tuple = src.tuple;
  dst.flags = src.flags;
  dst.payload_size = src.payload_size;
  dst.payload.clear();
  dst.checksum_valid = src.checksum_valid;
}

ParallelReplayConfig resolve(const ParallelReplayConfig& config) {
  ParallelReplayConfig out = config;
  if (out.shards == 0) out.shards = kDefaultShardCount;
  if (out.threads == 0) out.threads = 1;
  if (out.threads > out.shards) out.threads = out.shards;
  if (out.chunk_packets == 0) out.chunk_packets = 256;
  if (out.ring_chunks < 2) out.ring_chunks = 2;
  return out;
}

std::vector<std::unique_ptr<EdgeRouter>> build_routers(
    const ClientNetwork& network, const ShardRouterFactory& factory,
    std::size_t shards) {
  std::vector<std::unique_ptr<EdgeRouter>> routers;
  routers.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    routers.push_back(factory(network, s));
    if (routers.back() == nullptr) {
      throw std::invalid_argument("parallel_replay: factory returned null");
    }
  }
  return routers;
}

ParallelReplayResult merge_shards(
    const ParallelReplayConfig& config,
    std::vector<ReplayResult>& shard_results,
    std::vector<std::uint64_t>&& shard_packets,
    const std::vector<std::unique_ptr<EdgeRouter>>& routers) {
  ParallelReplayResult out{config.series_bucket};
  out.shards = config.shards;
  out.threads = config.threads;
  out.shard_packets = std::move(shard_packets);
  out.shard_stats.reserve(shard_results.size());
  for (const ReplayResult& result : shard_results) {
    out.shard_stats.push_back(result.stats);
    out.merged.merge(result);
  }
  out.shard_filter_bytes.reserve(routers.size());
  for (const auto& router : routers) {
    out.shard_filter_bytes.push_back(router->filter().storage_bytes());
  }
  if (!routers.empty()) out.filter_name = routers.front()->filter().name();
  return out;
}

}  // namespace

std::size_t shard_of(const FiveTuple& tuple, std::size_t shards) {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(
      tuple_hash(tuple.canonical(), kShardHashSeed) % shards);
}

std::uint64_t shard_seed(std::uint64_t seed, std::size_t shard) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (shard + 1));
  return splitmix64(state);
}

ParallelReplayResult parallel_replay(const Trace& trace,
                                     const ClientNetwork& network,
                                     const ShardRouterFactory& factory,
                                     const ParallelReplayConfig& raw_config) {
  const ParallelReplayConfig config = resolve(raw_config);
  const std::size_t shards = config.shards;
  const std::size_t threads = config.threads;

  // Routers are built on this thread in shard order, so factory-side seed
  // derivation is scheduling-independent.
  std::vector<std::unique_ptr<EdgeRouter>> routers =
      build_routers(network, factory, shards);

  std::vector<std::unique_ptr<ShardLane>> lanes;
  lanes.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    lanes.push_back(
        std::make_unique<ShardLane>(config.ring_chunks, config.chunk_packets));
  }

  std::vector<ReplayResult> shard_results(shards,
                                          ReplayResult{config.series_bucket});
  std::vector<std::uint64_t> shard_packets(shards, 0);
  std::vector<std::exception_ptr> worker_errors(threads);

  // Workers: shard s is owned by worker s % threads; each worker drains its
  // lanes round-robin so one stalled shard cannot starve the others.
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      try {
        std::vector<std::size_t> owned;
        for (std::size_t s = w; s < shards; s += threads) owned.push_back(s);
        std::vector<bool> finished(owned.size(), false);
        std::vector<RouterDecision> decisions(config.chunk_packets);
        std::size_t live = owned.size();

        const auto drain = [&](std::size_t s) {
          ShardLane& lane = *lanes[s];
          Chunk chunk;
          bool any = false;
          while (lane.data_ring.try_pop(chunk)) {
            any = true;
            const PacketBatch batch{chunk.data, chunk.size};
            routers[s]->process_batch(
                batch, std::span<RouterDecision>{decisions.data(), chunk.size});
            account_replay_batch(
                shard_results[s], network, batch,
                std::span<const RouterDecision>{decisions.data(), chunk.size});
            shard_packets[s] += chunk.size;
            chunk.size = 0;
            while (!lane.free_ring.try_push(chunk)) {
              std::this_thread::yield();  // cannot persist: ring holds every
            }                             // buffer
          }
          return any;
        };

        while (live > 0) {
          bool progressed = false;
          for (std::size_t i = 0; i < owned.size(); ++i) {
            if (finished[i]) continue;
            const std::size_t s = owned[i];
            if (drain(s)) progressed = true;
            // done is stored (release) after the final push, so observing it
            // then draining once more catches any chunk that raced the first
            // empty check; after that the lane is provably exhausted.
            if (lanes[s]->done.load(std::memory_order_acquire)) {
              if (drain(s)) progressed = true;
              finished[i] = true;
              --live;
              shard_results[s].stats = routers[s]->stats();
              shard_results[s].metrics = routers[s]->metrics_snapshot();
            }
          }
          if (!progressed && live > 0) std::this_thread::yield();
        }
      } catch (...) {
        worker_errors[w] = std::current_exception();
      }
    });
  }

  // Partition on the calling thread: walk the trace in order, append each
  // packet to its shard's current buffer, hand full buffers to the ring.
  for (const PacketRecord& pkt : trace) {
    const std::size_t s = shard_of(pkt.tuple, shards);
    ShardLane& lane = *lanes[s];
    if (lane.filling.data == nullptr) {
      while (!lane.free_ring.try_pop(lane.filling)) {
        std::this_thread::yield();  // worker is behind; wait for a buffer
      }
      lane.fill = 0;
    }
    copy_for_replay(lane.filling.data[lane.fill], pkt);
    ++lane.fill;
    if (lane.fill == config.chunk_packets) {
      lane.filling.size = lane.fill;
      while (!lane.data_ring.try_push(lane.filling)) {
        std::this_thread::yield();
      }
      lane.filling = Chunk{};
      lane.fill = 0;
    }
  }
  for (std::size_t s = 0; s < shards; ++s) {
    ShardLane& lane = *lanes[s];
    if (lane.filling.data != nullptr && lane.fill > 0) {
      lane.filling.size = lane.fill;
      while (!lane.data_ring.try_push(lane.filling)) {
        std::this_thread::yield();
      }
      lane.filling = Chunk{};
    }
    lane.done.store(true, std::memory_order_release);
  }

  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : worker_errors) {
    if (error) std::rethrow_exception(error);
  }

  return merge_shards(config, shard_results, std::move(shard_packets), routers);
}

ParallelReplayResult sharded_replay_reference(
    const Trace& trace, const ClientNetwork& network,
    const ShardRouterFactory& factory,
    const ParallelReplayConfig& raw_config) {
  const ParallelReplayConfig config = resolve(raw_config);
  const std::size_t shards = config.shards;

  std::vector<Trace> sub_traces(shards);
  for (const PacketRecord& pkt : trace) {
    sub_traces[shard_of(pkt.tuple, shards)].push_back(pkt);
  }

  std::vector<std::unique_ptr<EdgeRouter>> routers =
      build_routers(network, factory, shards);
  std::vector<ReplayResult> shard_results;
  std::vector<std::uint64_t> shard_packets(shards, 0);
  shard_results.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_results.push_back(replay_trace(sub_traces[s], *routers[s], network,
                                         config.series_bucket));
    shard_packets[s] = sub_traces[s].size();
  }
  return merge_shards(config, shard_results, std::move(shard_packets), routers);
}

}  // namespace upbound
