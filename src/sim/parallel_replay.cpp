#include "sim/parallel_replay.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/backoff.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/spsc_ring.h"

namespace upbound {

namespace {

/// Fixed salt so shard placement is stable across runs and processes
/// (changing it would change the decomposition, i.e. the semantics).
constexpr std::uint64_t kShardHashSeed = 0x73686172645f7632ULL;

/// A filled packet buffer in flight between the partitioner and a worker.
struct Chunk {
  PacketRecord* data = nullptr;
  std::size_t size = 0;
};

/// Lane liveness, driven by the worker and the watchdog:
/// live -> condemned (watchdog CAS) -> dead (worker ack at a chunk
/// boundary), or live -> dead directly (injected kill, worker crash).
/// kLaneDead is the ownership hand-off: the worker release-stores it after
/// its last touch of the lane, and the partitioner acquire-loads it before
/// reclaiming the ring and sidecar.
enum LaneState : std::uint32_t {
  kLaneLive = 0,
  kLaneCondemned = 1,
  kLaneDead = 2,
};

/// Per-shard hand-off lane: a data ring carrying filled chunks toward the
/// worker and a free ring recycling consumed buffers back, so steady-state
/// replay reuses ring_chunks fixed buffers per shard and never allocates.
struct ShardLane {
  /// Why a dead lane died (meaningful once state == kLaneDead).
  enum class Death { kNone, kKilled, kCondemned, kCrashed };

  explicit ShardLane(std::size_t ring_chunks, std::size_t chunk_packets)
      : data_ring(ring_chunks), free_ring(ring_chunks) {
    buffers.reserve(ring_chunks);
    for (std::size_t i = 0; i < ring_chunks; ++i) {
      buffers.push_back(std::make_unique<PacketRecord[]>(chunk_packets));
      free_ring.try_push(Chunk{buffers.back().get(), 0});
    }
  }

  SpscRing<Chunk> data_ring;  // partitioner -> worker
  SpscRing<Chunk> free_ring;  // worker -> partitioner
  std::vector<std::unique_ptr<PacketRecord[]>> buffers;
  std::atomic<bool> done{false};

  // Supervision plane.
  std::atomic<std::uint32_t> state{kLaneLive};
  /// Bumped by the worker once per consumed chunk; the watchdog condemns a
  /// live lane whose heartbeat sits still while chunks wait in its ring.
  std::atomic<std::uint64_t> heartbeat{0};
  /// The worker will never touch this lane again (normal completion or
  /// death) -- tells the watchdog to stop monitoring it.
  std::atomic<bool> finished{false};
  /// A dead lane's unprocessed packets, in stream order: the tail of the
  /// in-flight chunk plus the ring residue (appended by the dying worker,
  /// before the kLaneDead release-store), then whatever the partitioner
  /// reclaims and routes here afterwards.
  std::vector<PacketRecord> sidecar;
  Death death = Death::kNone;
  /// In-flight chunk packets discarded when the worker crashed mid-chunk.
  std::uint64_t lost = 0;

  // Partitioner-side fill state (only the partitioning thread touches it).
  Chunk filling;
  std::size_t fill = 0;
};

/// Copies the replay-relevant fields of a packet; payload bytes are not
/// consulted by any router stage (wire_size uses payload_size), so the
/// copy stays allocation-free.
void copy_for_replay(PacketRecord& dst, const PacketRecord& src) {
  dst.timestamp = src.timestamp;
  dst.tuple = src.tuple;
  dst.flags = src.flags;
  dst.payload_size = src.payload_size;
  dst.payload.clear();
  dst.checksum_valid = src.checksum_valid;
}

void sidecar_append(std::vector<PacketRecord>& sidecar,
                    const PacketRecord& src) {
  PacketRecord rec;
  copy_for_replay(rec, src);
  sidecar.push_back(std::move(rec));
}

ParallelReplayConfig resolve(const ParallelReplayConfig& config) {
  ParallelReplayConfig out = config;
  if (out.shards == 0) out.shards = kDefaultShardCount;
  if (out.threads == 0) out.threads = 1;
  if (out.threads > out.shards) out.threads = out.shards;
  if (out.chunk_packets == 0) out.chunk_packets = 256;
  if (out.ring_chunks < 2) out.ring_chunks = 2;
  return out;
}

std::vector<std::unique_ptr<EdgeRouter>> build_routers(
    const ClientNetwork& network, const ShardRouterFactory& factory,
    std::size_t shards) {
  std::vector<std::unique_ptr<EdgeRouter>> routers;
  routers.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    routers.push_back(factory(network, s));
    if (routers.back() == nullptr) {
      throw std::invalid_argument("parallel_replay: factory returned null");
    }
  }
  return routers;
}

ParallelReplayResult merge_shards(
    const ParallelReplayConfig& config,
    std::vector<ReplayResult>& shard_results,
    std::vector<std::uint64_t>&& shard_packets,
    const std::vector<std::unique_ptr<EdgeRouter>>& routers) {
  ParallelReplayResult out{config.series_bucket};
  out.shards = config.shards;
  out.threads = config.threads;
  out.shard_packets = std::move(shard_packets);
  out.shard_stats.reserve(shard_results.size());
  for (const ReplayResult& result : shard_results) {
    out.shard_stats.push_back(result.stats);
    out.merged.merge(result);
  }
  out.shard_filter_bytes.reserve(routers.size());
  for (const auto& router : routers) {
    out.shard_filter_bytes.push_back(router->filter().storage_bytes());
  }
  if (!routers.empty()) out.filter_name = routers.front()->filter().name();
  return out;
}

}  // namespace

std::size_t shard_of(const FiveTuple& tuple, std::size_t shards) {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(
      tuple_hash(tuple.canonical(), kShardHashSeed) % shards);
}

std::uint64_t shard_seed(std::uint64_t seed, std::size_t shard) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (shard + 1));
  return splitmix64(state);
}

ParallelReplayResult parallel_replay(const Trace& trace,
                                     const ClientNetwork& network,
                                     const ShardRouterFactory& factory,
                                     const ParallelReplayConfig& raw_config) {
  const ParallelReplayConfig config = resolve(raw_config);
  const std::size_t shards = config.shards;
  const std::size_t threads = config.threads;

  FaultInjector* injector = nullptr;
  if constexpr (kFaultsCompiled) {
    if (config.fault_injector != nullptr && config.fault_injector->armed()) {
      injector = config.fault_injector;
      injector->bind(shards);
    }
  }

  // Routers are built on this thread in shard order, so factory-side seed
  // derivation is scheduling-independent.
  std::vector<std::unique_ptr<EdgeRouter>> routers =
      build_routers(network, factory, shards);

  std::vector<std::unique_ptr<ShardLane>> lanes;
  lanes.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t ring_chunks =
        injector != nullptr ? injector->ring_chunks_for(s, config.ring_chunks)
                            : config.ring_chunks;
    lanes.push_back(
        std::make_unique<ShardLane>(ring_chunks, config.chunk_packets));
  }

  std::vector<ReplayResult> shard_results(shards,
                                          ReplayResult{config.series_bucket});
  std::vector<std::uint64_t> shard_packets(shards, 0);
  std::vector<std::exception_ptr> worker_errors(threads);
  std::atomic<std::size_t> workers_running{threads};

  // Workers: shard s is owned by worker s % threads; each worker drains its
  // lanes round-robin so one stalled shard cannot starve the others.
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      try {
        std::vector<std::size_t> owned;
        for (std::size_t s = w; s < shards; s += threads) owned.push_back(s);
        std::vector<bool> finished(owned.size(), false);
        std::vector<RouterDecision> decisions(config.chunk_packets);
        std::size_t live = owned.size();

        // Freezes a dying lane: the unprocessed tail of `chunk` (from
        // `pos`) and everything still queued in the ring go to the sidecar
        // in stream order, the shard's results are snapshotted at the
        // death point, and kLaneDead is release-stored, handing the lane
        // to the partitioner.
        const auto die = [&](std::size_t s, const Chunk& chunk,
                             std::size_t pos, ShardLane::Death cause) {
          ShardLane& lane = *lanes[s];
          for (std::size_t i = pos; i < chunk.size; ++i) {
            sidecar_append(lane.sidecar, chunk.data[i]);
          }
          Chunk rest;
          while (lane.data_ring.try_pop(rest)) {
            for (std::size_t i = 0; i < rest.size; ++i) {
              sidecar_append(lane.sidecar, rest.data[i]);
            }
          }
          lane.death = cause;
          shard_results[s].stats = routers[s]->stats();
          shard_results[s].metrics = routers[s]->metrics_snapshot();
          lane.state.store(kLaneDead, std::memory_order_release);
          lane.finished.store(true, std::memory_order_release);
        };

        const auto process_subbatch = [&](std::size_t s, PacketRecord* data,
                                          std::size_t n) {
          const PacketBatch batch{data, n};
          routers[s]->process_batch(
              batch, std::span<RouterDecision>{decisions.data(), n});
          account_replay_batch(
              shard_results[s], network, batch,
              std::span<const RouterDecision>{decisions.data(), n});
          shard_packets[s] += n;
        };

        // Careful path for lanes with scheduled faults: processes the
        // chunk in sub-batches split at exact trigger points, so a kill or
        // flip fires at the same shard-local packet count regardless of
        // how the stream happened to be chunked. Returns true when the
        // lane died inside this chunk.
        const auto run_faulted_chunk = [&](std::size_t s,
                                           const Chunk& chunk) -> bool {
          ShardLane& lane = *lanes[s];
          std::size_t pos = 0;
          for (;;) {
            const std::uint64_t processed = shard_packets[s];
            for (;;) {
              const double ms = injector->take_stall_ms(s, processed);
              if (ms <= 0.0) break;
              std::this_thread::sleep_for(
                  std::chrono::duration<double, std::milli>(ms));
            }
            // Re-checked after any stall: a stalled lane is exactly the
            // one the watchdog condemns, and the ack must precede further
            // processing for the death point to be the condemnation point.
            if (lane.state.load(std::memory_order_acquire) ==
                kLaneCondemned) {
              die(s, chunk, pos, ShardLane::Death::kCondemned);
              return true;
            }
            injector->apply_state_faults(s, processed, routers[s]->filter());
            if (injector->kill_at(s) <= processed) {
              die(s, chunk, pos, ShardLane::Death::kKilled);
              return true;
            }
            if (pos == chunk.size) return false;
            const std::uint64_t next = injector->next_lane_trigger(s,
                                                                   processed);
            std::size_t n = chunk.size - pos;
            if (next != kFaultNever) {
              n = static_cast<std::size_t>(std::min<std::uint64_t>(
                  n, next - processed));
            }
            process_subbatch(s, chunk.data + pos, n);
            pos += n;
          }
        };

        // Drains one lane's ring. Returns true when it made progress;
        // marks the lane finished (and adjusts `live`) when it died.
        const auto drain = [&](std::size_t i, std::size_t s) -> bool {
          ShardLane& lane = *lanes[s];
          const bool faulted =
              injector != nullptr && injector->lane_faulted(s);
          Chunk chunk;
          bool any = false;
          while (lane.data_ring.try_pop(chunk)) {
            any = true;
            if (!faulted && lane.state.load(std::memory_order_acquire) ==
                                kLaneCondemned) {
              die(s, chunk, 0, ShardLane::Death::kCondemned);
              finished[i] = true;
              --live;
              return true;
            }
            bool died = false;
            if (faulted) {
              died = run_faulted_chunk(s, chunk);
            } else {
              try {
                process_subbatch(s, chunk.data, chunk.size);
              } catch (...) {
                // Self-heal: a chunk that blew up mid-application cannot
                // be replayed safely (the router may hold half its
                // effects), so the whole chunk counts as lost and the
                // lane fails over.
                lane.lost += chunk.size;
                die(s, chunk, chunk.size, ShardLane::Death::kCrashed);
                died = true;
              }
            }
            if (died) {
              finished[i] = true;
              --live;
              return true;
            }
            chunk.size = 0;
            while (!lane.free_ring.try_push(chunk)) {
              std::this_thread::yield();  // cannot persist: ring holds every
            }                             // buffer
            lane.heartbeat.fetch_add(1, std::memory_order_relaxed);
          }
          return any;
        };

        while (live > 0) {
          bool progressed = false;
          for (std::size_t i = 0; i < owned.size(); ++i) {
            if (finished[i]) continue;
            const std::size_t s = owned[i];
            if (drain(i, s)) progressed = true;
            if (finished[i]) continue;
            // done is stored (release) after the final push, so observing it
            // then draining once more catches any chunk that raced the first
            // empty check; after that the lane is provably exhausted.
            if (lanes[s]->done.load(std::memory_order_acquire)) {
              if (drain(i, s)) progressed = true;
              if (finished[i]) continue;
              finished[i] = true;
              --live;
              shard_results[s].stats = routers[s]->stats();
              shard_results[s].metrics = routers[s]->metrics_snapshot();
              lanes[s]->finished.store(true, std::memory_order_release);
            }
          }
          if (!progressed && live > 0) std::this_thread::yield();
        }
      } catch (...) {
        worker_errors[w] = std::current_exception();
      }
      workers_running.fetch_sub(1, std::memory_order_release);
    });
  }

  // ---- Partitioner-side supervision state ----
  MetricsRegistry feed_metrics;
  LatencyHistogram* backpressure = nullptr;
  std::uint64_t lanes_condemned = 0;
  std::vector<std::uint8_t> reclaimed(shards, 0);
  const bool watchdog_on = config.watchdog_timeout.count() > 0;
  std::vector<std::uint64_t> hb_seen(shards, 0);
  std::vector<std::chrono::steady_clock::time_point> hb_changed(
      shards, std::chrono::steady_clock::now());

  // Bounded producer wait accounting: the first failed push/pop starts the
  // clock, the histogram gets one sample per completed wait.
  const auto note_backpressure = [&](std::uint64_t t0) {
    if constexpr (kTelemetryCompiled) {
      if (backpressure == nullptr) {
        backpressure = &feed_metrics.histogram("ring.backpressure_ns");
      }
      backpressure->record(telemetry_clock_ns() - t0);
    } else {
      (void)t0;
    }
  };

  const auto lane_dead = [](ShardLane& lane) {
    return lane.state.load(std::memory_order_acquire) == kLaneDead;
  };

  // Condemns a live lane whose heartbeat made no progress for the watchdog
  // timeout while chunks waited in its ring. Idle lanes (empty ring) are
  // exempt -- no pending work means no required progress.
  const auto watchdog_check = [&](std::size_t s) {
    if (!watchdog_on) return;
    ShardLane& lane = *lanes[s];
    if (lane.finished.load(std::memory_order_acquire) ||
        lane.state.load(std::memory_order_acquire) != kLaneLive) {
      return;
    }
    const std::uint64_t hb = lane.heartbeat.load(std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now();
    if (hb != hb_seen[s]) {
      hb_seen[s] = hb;
      hb_changed[s] = now;
      return;
    }
    if (lane.data_ring.empty()) {
      hb_changed[s] = now;
      return;
    }
    if (now - hb_changed[s] < config.watchdog_timeout) return;
    std::uint32_t expected = kLaneLive;
    if (lane.state.compare_exchange_strong(expected, kLaneCondemned,
                                           std::memory_order_acq_rel)) {
      ++lanes_condemned;
      hb_changed[s] = now;  // fresh grace period for the worker's ack
    }
  };

  // First observation of a dead lane: reclaim its queued residue (ring
  // chunks, then the partially filled buffer) into the sidecar. Stream
  // order holds because the dying worker's own drain covered a strict
  // prefix of what sits here, and the ring is FIFO.
  const auto reclaim_dead = [&](std::size_t s) {
    if (reclaimed[s]) return;
    reclaimed[s] = 1;
    ShardLane& lane = *lanes[s];
    Chunk chunk;
    while (lane.data_ring.try_pop(chunk)) {
      for (std::size_t i = 0; i < chunk.size; ++i) {
        sidecar_append(lane.sidecar, chunk.data[i]);
      }
    }
    if (lane.filling.data != nullptr && lane.fill > 0) {
      for (std::size_t i = 0; i < lane.fill; ++i) {
        sidecar_append(lane.sidecar, lane.filling.data[i]);
      }
    }
    lane.filling = Chunk{};
    lane.fill = 0;
  };

  // Seals lane.filling and hands it to the worker, waiting with bounded
  // backoff (running the watchdog) when the ring is full. Returns false
  // when the lane died during the wait -- the chunk went to the sidecar.
  const auto push_filled = [&](std::size_t s) -> bool {
    ShardLane& lane = *lanes[s];
    lane.filling.size = lane.fill;
    if (!lane.data_ring.try_push(lane.filling)) {
      const std::uint64_t t0 = telemetry_clock_ns();
      ExpBackoff backoff;
      for (;;) {
        if (lane_dead(lane)) {
          reclaim_dead(s);  // appends ring residue, then this chunk
          return false;
        }
        watchdog_check(s);
        backoff.pause();
        if (lane.data_ring.try_push(lane.filling)) break;
      }
      note_backpressure(t0);
    }
    lane.filling = Chunk{};
    lane.fill = 0;
    return true;
  };

  // Partition on the calling thread: walk the trace in order, append each
  // packet to its shard's current buffer, hand full buffers to the ring.
  // Feed faults (corrupt, clock) are applied here, keyed by the global
  // trace index, so sharding and replay see the already-perturbed packet.
  PacketRecord scratch;
  std::uint64_t feed_index = 0;
  for (const PacketRecord& src : trace) {
    const PacketRecord* pkt = &src;
    if (kFaultsCompiled && injector != nullptr) {
      copy_for_replay(scratch, src);
      injector->apply_feed(feed_index, scratch);
      pkt = &scratch;
    }
    ++feed_index;
    const std::size_t s = shard_of(pkt->tuple, shards);
    ShardLane& lane = *lanes[s];
    if (reclaimed[s] || lane_dead(lane)) {
      reclaim_dead(s);
      sidecar_append(lane.sidecar, *pkt);
      continue;
    }
    if (lane.filling.data == nullptr) {
      if (!lane.free_ring.try_pop(lane.filling)) {
        const std::uint64_t t0 = telemetry_clock_ns();
        ExpBackoff backoff;
        bool got = false;
        for (;;) {
          if (lane_dead(lane)) break;
          watchdog_check(s);
          backoff.pause();
          if (lane.free_ring.try_pop(lane.filling)) {
            got = true;
            break;
          }
        }
        if (!got) {
          reclaim_dead(s);
          sidecar_append(lane.sidecar, *pkt);
          continue;
        }
        note_backpressure(t0);
      }
      lane.fill = 0;
    }
    copy_for_replay(lane.filling.data[lane.fill], *pkt);
    ++lane.fill;
    if (lane.fill == config.chunk_packets) {
      if (!push_filled(s)) continue;  // died; chunk is in the sidecar
    }
  }
  for (std::size_t s = 0; s < shards; ++s) {
    ShardLane& lane = *lanes[s];
    if (reclaimed[s] || lane_dead(lane)) {
      reclaim_dead(s);
    } else if (lane.filling.data != nullptr && lane.fill > 0) {
      push_filled(s);
    }
    lane.done.store(true, std::memory_order_release);
  }

  // Keep the watchdog running until every worker exits -- a lane can wedge
  // after the feed finished, and condemnation is what unwedges the join.
  if (watchdog_on) {
    ExpBackoff idle;
    while (workers_running.load(std::memory_order_acquire) > 0) {
      for (std::size_t s = 0; s < shards; ++s) watchdog_check(s);
      idle.pause();
    }
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : worker_errors) {
    if (error) std::rethrow_exception(error);
  }

  // ---- Failover re-merge (rule documented in the header) ----
  std::vector<std::size_t> alive_shards;
  std::vector<std::size_t> dead_shards;
  for (std::size_t s = 0; s < shards; ++s) {
    if (lanes[s]->state.load(std::memory_order_acquire) == kLaneDead) {
      dead_shards.push_back(s);
    } else {
      alive_shards.push_back(s);
    }
  }
  std::uint64_t failover_packets = 0;
  std::uint64_t unroutable = 0;
  std::uint64_t lost = 0;
  std::uint64_t lanes_killed = 0;
  std::uint64_t lanes_crashed = 0;
  if (!dead_shards.empty()) {
    for (const std::size_t d : dead_shards) {
      lost += lanes[d]->lost;
      switch (lanes[d]->death) {
        case ShardLane::Death::kKilled: ++lanes_killed; break;
        case ShardLane::Death::kCrashed: ++lanes_crashed; break;
        default: break;
      }
    }
    std::vector<std::vector<PacketRecord>> failover(shards);
    for (const std::size_t d : dead_shards) {
      for (PacketRecord& pkt : lanes[d]->sidecar) {
        if (alive_shards.empty()) {
          ++unroutable;
          continue;
        }
        const std::size_t f = alive_shards[static_cast<std::size_t>(
            tuple_hash(pkt.tuple.canonical(), kShardHashSeed) %
            alive_shards.size())];
        failover[f].push_back(std::move(pkt));
      }
      lanes[d]->sidecar.clear();
    }
    std::vector<RouterDecision> decisions(config.chunk_packets);
    for (const std::size_t f : alive_shards) {
      std::vector<PacketRecord>& stream = failover[f];
      if (stream.empty()) continue;
      for (std::size_t pos = 0; pos < stream.size();
           pos += config.chunk_packets) {
        const std::size_t n =
            std::min(config.chunk_packets, stream.size() - pos);
        const PacketBatch batch{stream.data() + pos, n};
        routers[f]->process_batch(
            batch, std::span<RouterDecision>{decisions.data(), n});
        account_replay_batch(
            shard_results[f], network, batch,
            std::span<const RouterDecision>{decisions.data(), n});
        shard_packets[f] += n;
      }
      failover_packets += stream.size();
      shard_results[f].stats = routers[f]->stats();
      shard_results[f].metrics = routers[f]->metrics_snapshot();
    }
  }

  ParallelReplayResult out =
      merge_shards(config, shard_results, std::move(shard_packets), routers);
  out.shard_failed.assign(shards, 0);
  for (const std::size_t d : dead_shards) out.shard_failed[d] = 1;
  out.failover_packets = failover_packets;
  out.unroutable_packets = unroutable;
  out.lost_packets = lost;
  out.lanes_condemned = lanes_condemned;

  // Deterministic fault/supervision counters are materialized only when
  // something actually happened, so a fault-free run's merged metrics stay
  // byte-identical to a build that never heard of the fault plane.
  // lanes_condemned stays out: watchdog firing is wall-clock dependent.
  if (injector != nullptr || !dead_shards.empty()) {
    if (injector != nullptr) {
      feed_metrics.counter("fault.packets_corrupted")
          .inc(injector->packets_corrupted());
      feed_metrics.counter("fault.clock_faulted_packets")
          .inc(injector->clock_faulted_packets());
      feed_metrics.counter("fault.bits_flipped").inc(injector->bits_flipped());
      feed_metrics.counter("fault.flips_ignored")
          .inc(injector->flips_ignored());
      feed_metrics.counter("fault.stalls_taken").inc(injector->stalls_taken());
      feed_metrics.counter("replay.lanes_killed").inc(lanes_killed);
    }
    feed_metrics.counter("replay.lanes_crashed").inc(lanes_crashed);
    feed_metrics.counter("replay.failover_packets").inc(failover_packets);
    feed_metrics.counter("replay.packets_unroutable").inc(unroutable);
    feed_metrics.counter("replay.packets_lost").inc(lost);
  }
  if (feed_metrics.counters().size() > 0 || feed_metrics.gauge_count() > 0 ||
      feed_metrics.histogram_count() > 0) {
    merge_metrics_snapshot(out.merged.metrics, feed_metrics.snapshot());
  }
  return out;
}

ParallelReplayResult sharded_replay_reference(
    const Trace& trace, const ClientNetwork& network,
    const ShardRouterFactory& factory,
    const ParallelReplayConfig& raw_config) {
  const ParallelReplayConfig config = resolve(raw_config);
  const std::size_t shards = config.shards;
  if constexpr (kFaultsCompiled) {
    // The reference path has no lanes to fault; silently ignoring a spec
    // would make a faulted comparison vacuously pass.
    if (config.fault_injector != nullptr && config.fault_injector->armed()) {
      throw std::invalid_argument(
          "sharded_replay_reference does not support fault injection");
    }
  }

  std::vector<Trace> sub_traces(shards);
  for (const PacketRecord& pkt : trace) {
    sub_traces[shard_of(pkt.tuple, shards)].push_back(pkt);
  }

  std::vector<std::unique_ptr<EdgeRouter>> routers =
      build_routers(network, factory, shards);
  std::vector<ReplayResult> shard_results;
  std::vector<std::uint64_t> shard_packets(shards, 0);
  shard_results.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_results.push_back(replay_trace(sub_traces[s], *routers[s], network,
                                         config.series_bucket));
    shard_packets[s] = sub_traces[s].size();
  }
  return merge_shards(config, shard_results, std::move(shard_packets), routers);
}

}  // namespace upbound
