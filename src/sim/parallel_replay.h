// Sharded multi-threaded trace replay.
//
// The packet stream is partitioned by the canonical (direction-independent)
// five-tuple hash into S shards; each shard owns a full EdgeRouter (its own
// state filter, bandwidth meter, blocklist, rng, and counter registry) and
// consumes its packets, in trace order, from a bounded SPSC ring fed by the
// partitioning thread. Because every per-connection structure -- filter
// marks/lookups, blocklist entries, and the bitmap rotation schedule
// (anchored at SimTime::origin(), identical in every shard) -- is keyed by
// the five-tuple, a shard sees exactly the packets its state depends on:
// sharding preserves per-flow filter semantics, and only cross-flow
// couplings (Bloom false positives from other shards' flows, the shared
// uplink meter) become shard-local. That is the paper's Fig. 6 FilterBank
// deployment applied within one site.
//
// Determinism: the shard decomposition is part of the semantics (fixed
// shard count S, independent of the worker-thread count), each shard's
// computation is a pure function of its packet subsequence, and the merge
// runs in shard-index order. Merged stats, counters, and throughput series
// are therefore byte-identical for any thread count, and equal to driving
// the same S routers through the sequential replay_trace path
// (sharded_replay_reference below) -- the property the determinism tests
// lock in. All series values are integer byte counts stored in doubles, so
// even the floating-point bucket sums are exact and order-independent.
//
// Shared-filter mode: instead of one BitmapFilter per shard, every shard's
// router can drive a single ConcurrentBitmapFilter through a non-owning
// SharedFilterView. That trades per-shard state isolation for one global
// filter (k*N/8 bytes total instead of S times that) at the cost of
// determinism: racing marks and rotations make decisions run-dependent
// within the one-rotation approximation window the concurrent filter
// documents.
//
// Supervision and failover: every shard lane carries a heartbeat the
// worker bumps per chunk; a wall-clock watchdog condemns a lane whose
// worker makes no progress while packets wait, and a condemned (or
// fault-killed, or crashed) lane dies at a chunk boundary. A dead lane's
// unprocessed packets -- the remainder of its in-flight chunk, everything
// queued in its ring, and everything the partitioner routes to it later
// -- accumulate in trace order in the lane's sidecar. After the workers
// join, the failover re-merge rule runs: dead shards are visited in
// ascending shard index; each sidecar packet goes to the surviving shard
// alive[tuple_hash(canonical, shard-salt) % alive_count], and each
// surviving shard processes its failover packets, in that order, after
// its primary stream (timestamp regressions at the seam are clamped and
// counted by the router). Every input to the rule -- the death point of
// an injector-killed lane, sidecar order, the alive set -- is a pure
// function of (trace, spec, seed, S), so a kill-shard run is bitwise
// identical at any thread count. Watchdog condemnations are wall-clock
// triggered and therefore outside that contract: they guarantee the
// replay completes, not that two runs agree.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/fault_injector.h"
#include "filter/state_filter.h"
#include "sim/replay.h"

namespace upbound {

/// Default shard count when ParallelReplayConfig::shards is 0. Fixed and
/// thread-count independent so results never depend on worker scheduling.
inline constexpr std::size_t kDefaultShardCount = 8;

struct ParallelReplayConfig {
  /// Worker threads; clamped to [1, shards]. Thread count affects wall
  /// time only, never results.
  std::size_t threads = 1;
  /// Shard count S (0 = kDefaultShardCount). Part of the semantics: the
  /// same trace replayed with a different S is a different deployment.
  std::size_t shards = 0;
  Duration series_bucket = Duration::sec(1.0);
  /// Packets per chunk pushed through a shard's ring.
  std::size_t chunk_packets = 256;
  /// Chunks buffered per shard ring (bounds in-flight memory).
  std::size_t ring_chunks = 64;
  /// Deterministic fault injector (non-owning; may be nullptr). When armed,
  /// the engine calls bind(shards) before feeding and applies feed faults in
  /// the partitioner and lane faults in the owning worker. Ignored entirely
  /// when the fault plane is compiled out (UPBOUND_FAULTS=OFF).
  FaultInjector* fault_injector = nullptr;
  /// Watchdog: a live lane whose worker bumped no heartbeat for this long
  /// while packets sat in its ring is condemned; the worker acknowledges at
  /// its next chunk boundary and the lane fails over. Zero disables the
  /// watchdog. Wall-clock by nature -- a liveness guarantee, not part of the
  /// determinism contract. Heartbeats are per lane, so when a worker
  /// multiplexes several lanes and wedges, every lane it owns stops
  /// heartbeating and all of them are condemned -- the effective failure
  /// unit is the worker, not just the lane it got stuck in.
  std::chrono::milliseconds watchdog_timeout{10000};
};

struct ParallelReplayResult {
  /// Shard-order merge of every shard's ReplayResult.
  ReplayResult merged;
  /// Per-shard stats, indexed by shard.
  std::vector<EdgeRouterStats> shard_stats;
  /// Packets routed to each shard.
  std::vector<std::uint64_t> shard_packets;
  /// Final filter storage per shard (captured before the routers die).
  std::vector<std::size_t> shard_filter_bytes;
  /// Name reported by shard 0's filter.
  std::string filter_name;
  std::size_t shards = 0;
  std::size_t threads = 0;
  /// 1 for each shard whose lane died (injected kill, watchdog
  /// condemnation, or worker crash); its stats/metrics above are frozen at
  /// the death point.
  std::vector<std::uint8_t> shard_failed;
  /// Packets re-routed from dead lanes into surviving shards by the
  /// failover rule documented at the top of this header.
  std::uint64_t failover_packets = 0;
  /// Sidecar packets with no surviving shard to take them (every lane
  /// died).
  std::uint64_t unroutable_packets = 0;
  /// In-flight chunk packets discarded when a worker crashed mid-chunk (a
  /// partially applied chunk cannot be replayed safely).
  std::uint64_t lost_packets = 0;
  /// Lanes condemned by the wall-clock watchdog. Kept out of
  /// merged.metrics: it is timing-dependent, unlike the injected-fault
  /// counters there.
  std::uint64_t lanes_condemned = 0;

  explicit ParallelReplayResult(Duration bucket) : merged(bucket) {}
};

/// Builds the router guarding one shard. Invoked on the calling thread, in
/// shard order, before any worker starts -- a factory may derive per-shard
/// seeds (see shard_seed) without risking nondeterminism.
using ShardRouterFactory = std::function<std::unique_ptr<EdgeRouter>(
    const ClientNetwork& network, std::size_t shard)>;

/// Shard index for a tuple: canonical-tuple hash, so a connection and its
/// inverse (outbound marks, inbound lookups, blocklist entries) always land
/// in the same shard.
std::size_t shard_of(const FiveTuple& tuple, std::size_t shards);

/// Deterministic per-shard seed derivation (splitmix64 over seed, shard).
std::uint64_t shard_seed(std::uint64_t seed, std::size_t shard);

/// Replays `trace` through S shard routers on `config.threads` workers.
/// Returns the deterministic shard-order merge plus per-shard stats.
ParallelReplayResult parallel_replay(const Trace& trace,
                                     const ClientNetwork& network,
                                     const ShardRouterFactory& factory,
                                     const ParallelReplayConfig& config = {});

/// The sequential reference: partitions `trace` with the same shard_of,
/// drives each shard's sub-trace through the plain replay_trace path on the
/// calling thread, and merges identically. parallel_replay at any thread
/// count must produce a byte-identical result.
ParallelReplayResult sharded_replay_reference(
    const Trace& trace, const ClientNetwork& network,
    const ShardRouterFactory& factory, const ParallelReplayConfig& config = {});

/// Non-owning StateFilter adapter: forwards every call to a shared filter
/// instance, so each shard's EdgeRouter can drive one thread-safe filter
/// (shared-filter mode). The shared filter must outlive every view and be
/// safe for concurrent use (e.g. ConcurrentBitmapFilter).
class SharedFilterView final : public StateFilter {
 public:
  explicit SharedFilterView(StateFilter& shared) : shared_(&shared) {}

  void advance_time(SimTime now) override { shared_->advance_time(now); }
  void record_outbound(const PacketRecord& pkt) override {
    shared_->record_outbound(pkt);
  }
  bool admits_inbound(const PacketRecord& pkt) override {
    return shared_->admits_inbound(pkt);
  }
  void record_outbound_batch(PacketBatch batch) override {
    shared_->record_outbound_batch(batch);
  }
  void admits_inbound_batch(PacketBatch batch,
                            std::span<bool> admits) override {
    shared_->admits_inbound_batch(batch, admits);
  }
  bool inbound_lookup_is_pure() const override {
    return shared_->inbound_lookup_is_pure();
  }
  std::size_t storage_bytes() const override {
    return shared_->storage_bytes();
  }
  std::string name() const override { return shared_->name() + "-shared"; }

 private:
  StateFilter* shared_;
};

}  // namespace upbound
