// Closed-loop simulation: the "real network" counterpart to trace replay.
//
// Paper Section 5.3 admits its replay's key limitation: "the simulation is
// unable to block the outbound connections that may [be] triggered by
// previously blocked inbound requests ... We believe that the filter can
// perform better in a real network environment." This simulator tests that
// belief. Instead of replaying a frozen packet sequence, it owns the
// application-level connection descriptions and lets the filter's
// decisions FEED BACK into what traffic exists:
//
//   - an inbound-initiated connection whose SYN (or first datagram) is
//     dropped retries with exponential backoff, like a real peer;
//   - when every retry is dropped, the connection never establishes --
//     none of its packets (including the upload payload!) are generated;
//   - established connections play out packet-by-packet as in replay.
//
// Comparing carried uplink between replay mode and closed-loop mode on the
// same workload quantifies exactly how much better "live" deployment is.
#pragma once

#include <memory>

#include "sim/edge_router.h"
#include "trace/campus.h"
#include "util/stats.h"

namespace upbound {

struct ClosedLoopConfig {
  /// SYN retries after the initial attempt (TCP's classic 3).
  unsigned max_retries = 3;
  /// First retry delay; doubles per attempt (3 s, 6 s, 12 s...).
  Duration initial_backoff = Duration::sec(3.0);
  /// Packetizer used for materialized connections.
  PacketizerOptions packetizer;
  /// Bucketing for the carried-traffic series.
  Duration series_bucket = Duration::sec(1.0);
};

struct ClosedLoopResult {
  EdgeRouterStats stats;
  /// Bytes actually carried across the edge, by direction.
  TimeSeries carried_outbound;
  TimeSeries carried_inbound;
  /// Connections that never established because every attempt dropped.
  std::uint64_t connections_suppressed = 0;
  std::uint64_t connections_established = 0;
  /// Upload bytes that were never generated (the suppressed connections'
  /// outbound payload) -- traffic replay would have counted as carried or
  /// explicitly dropped.
  std::uint64_t upload_bytes_never_generated = 0;
  std::uint64_t retries_attempted = 0;

  ClosedLoopResult(Duration bucket)
      : carried_outbound(bucket), carried_inbound(bucket) {}
};

/// Runs the workload through the router with feedback.
ClosedLoopResult run_closed_loop(const CampusWorkload& workload,
                                 EdgeRouter& router,
                                 const ClosedLoopConfig& config = {});

}  // namespace upbound
