#include "sim/closed_loop.h"

#include <queue>
#include <span>

#include "net/packet_batch.h"
#include "trace/packetizer.h"

namespace upbound {

namespace {

struct LiveConnection {
  Trace packets;
  std::size_t cursor = 0;
  Duration shift;           // accumulated retry backoff
  unsigned retries_left = 0;
  Duration next_backoff;

  SimTime next_time() const { return packets[cursor].timestamp + shift; }

  PacketRecord next_packet() const {
    PacketRecord pkt = packets[cursor];
    pkt.timestamp = pkt.timestamp + shift;
    return pkt;
  }
};

struct HeapEntry {
  SimTime at;
  std::size_t conn;

  bool operator>(const HeapEntry& other) const { return at > other.at; }
};

}  // namespace

ClosedLoopResult run_closed_loop(const CampusWorkload& workload,
                                 EdgeRouter& router,
                                 const ClosedLoopConfig& config) {
  ClosedLoopResult result{config.series_bucket};

  std::vector<LiveConnection> connections;
  connections.reserve(workload.connections.size());
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;

  for (const ConnectionSpec& spec : workload.connections) {
    LiveConnection live;
    live.packets = packetize(spec, config.packetizer);
    live.retries_left = config.max_retries;
    live.next_backoff = config.initial_backoff;
    if (live.packets.empty()) continue;
    connections.push_back(std::move(live));
    heap.push(HeapEntry{connections.back().next_time(),
                        connections.size() - 1});
  }

  const auto suppressed_upload_bytes = [&](const LiveConnection& live) {
    std::uint64_t bytes = 0;
    for (const PacketRecord& pkt : live.packets) {
      if (workload.network.classify(pkt) == Direction::kOutbound) {
        bytes += pkt.wire_size();
      }
    }
    return bytes;
  };

  const auto apply_feedback = [&](std::size_t conn, const PacketRecord& pkt,
                                  RouterDecision decision) {
    LiveConnection& live = connections[conn];
    const bool dropped = decision == RouterDecision::kDroppedByPolicy ||
                         decision == RouterDecision::kDroppedBlocked;

    if (dropped && live.cursor == 0) {
      // The connection-opening packet was dropped: the initiator backs
      // off and retries, or gives up -- in which case NONE of the
      // connection's traffic ever exists.
      if (live.retries_left > 0) {
        --live.retries_left;
        ++result.retries_attempted;
        live.shift += live.next_backoff;
        live.next_backoff = live.next_backoff * 2.0;
        heap.push(HeapEntry{live.next_time(), conn});
      } else {
        ++result.connections_suppressed;
        result.upload_bytes_never_generated += suppressed_upload_bytes(live);
        live.packets.clear();
        live.packets.shrink_to_fit();
      }
      return;
    }

    if (!dropped) {
      if (decision == RouterDecision::kPassedOutbound) {
        result.carried_outbound.add(pkt.timestamp,
                                    static_cast<double>(pkt.wire_size()));
      } else if (decision == RouterDecision::kPassedInbound) {
        result.carried_inbound.add(pkt.timestamp,
                                   static_cast<double>(pkt.wire_size()));
      }
      if (live.cursor == 0) ++result.connections_established;
    }
    // Mid-connection drops lose the packet but the connection carries on
    // (real stacks retransmit; the byte-level effect is secondary here).

    ++live.cursor;
    if (live.cursor < live.packets.size()) {
      heap.push(HeapEntry{live.next_time(), conn});
    }
  };

  // Earliest event the connection could push back into the heap after its
  // current packet is processed, whatever the router decides: the next
  // packet if it establishes/continues, or the backoff retry if the
  // opening packet drops. Staging is safe for every heap entry strictly
  // before the minimum of these bounds -- the event order (and therefore
  // rng/meter/blocklist state) is identical to popping one at a time.
  const auto earliest_next = [](const LiveConnection& live) {
    SimTime bound = SimTime::infinite();
    if (live.cursor + 1 < live.packets.size()) {
      bound = live.packets[live.cursor + 1].timestamp + live.shift;
    }
    if (live.cursor == 0 && live.retries_left > 0) {
      const SimTime retry = live.next_time() + live.next_backoff;
      if (retry < bound) bound = retry;
    }
    return bound;
  };

  constexpr std::size_t kLoopBatch = 64;
  std::vector<std::size_t> staged_conns;
  Trace staged_pkts;
  std::vector<RouterDecision> decisions;
  staged_conns.reserve(kLoopBatch);
  staged_pkts.reserve(kLoopBatch);
  decisions.reserve(kLoopBatch);

  while (!heap.empty()) {
    staged_conns.clear();
    staged_pkts.clear();
    SimTime bound = SimTime::infinite();
    while (!heap.empty() && staged_conns.size() < kLoopBatch &&
           heap.top().at < bound) {
      const HeapEntry entry = heap.top();
      heap.pop();
      const LiveConnection& live = connections[entry.conn];
      staged_conns.push_back(entry.conn);
      staged_pkts.push_back(live.next_packet());
      const SimTime possible = earliest_next(live);
      if (possible < bound) bound = possible;
    }

    decisions.resize(staged_pkts.size());
    router.process_batch(PacketBatch{staged_pkts},
                         std::span<RouterDecision>{decisions});

    for (std::size_t s = 0; s < staged_conns.size(); ++s) {
      apply_feedback(staged_conns[s], staged_pkts[s], decisions[s]);
    }
  }

  result.stats = router.stats();
  return result;
}

}  // namespace upbound
