#include "sim/closed_loop.h"

#include <queue>

#include "trace/packetizer.h"

namespace upbound {

namespace {

struct LiveConnection {
  Trace packets;
  std::size_t cursor = 0;
  Duration shift;           // accumulated retry backoff
  unsigned retries_left = 0;
  Duration next_backoff;

  SimTime next_time() const { return packets[cursor].timestamp + shift; }

  PacketRecord next_packet() const {
    PacketRecord pkt = packets[cursor];
    pkt.timestamp = pkt.timestamp + shift;
    return pkt;
  }
};

struct HeapEntry {
  SimTime at;
  std::size_t conn;

  bool operator>(const HeapEntry& other) const { return at > other.at; }
};

}  // namespace

ClosedLoopResult run_closed_loop(const CampusWorkload& workload,
                                 EdgeRouter& router,
                                 const ClosedLoopConfig& config) {
  ClosedLoopResult result{config.series_bucket};

  std::vector<LiveConnection> connections;
  connections.reserve(workload.connections.size());
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;

  for (const ConnectionSpec& spec : workload.connections) {
    LiveConnection live;
    live.packets = packetize(spec, config.packetizer);
    live.retries_left = config.max_retries;
    live.next_backoff = config.initial_backoff;
    if (live.packets.empty()) continue;
    connections.push_back(std::move(live));
    heap.push(HeapEntry{connections.back().next_time(),
                        connections.size() - 1});
  }

  const auto suppressed_upload_bytes = [&](const LiveConnection& live) {
    std::uint64_t bytes = 0;
    for (const PacketRecord& pkt : live.packets) {
      if (workload.network.classify(pkt) == Direction::kOutbound) {
        bytes += pkt.wire_size();
      }
    }
    return bytes;
  };

  while (!heap.empty()) {
    const HeapEntry entry = heap.top();
    heap.pop();
    LiveConnection& live = connections[entry.conn];

    const PacketRecord pkt = live.next_packet();
    const RouterDecision decision = router.process(pkt);
    const bool dropped = decision == RouterDecision::kDroppedByPolicy ||
                         decision == RouterDecision::kDroppedBlocked;

    if (dropped && live.cursor == 0) {
      // The connection-opening packet was dropped: the initiator backs
      // off and retries, or gives up -- in which case NONE of the
      // connection's traffic ever exists.
      if (live.retries_left > 0) {
        --live.retries_left;
        ++result.retries_attempted;
        live.shift += live.next_backoff;
        live.next_backoff = live.next_backoff * 2.0;
        heap.push(HeapEntry{live.next_time(), entry.conn});
      } else {
        ++result.connections_suppressed;
        result.upload_bytes_never_generated += suppressed_upload_bytes(live);
        live.packets.clear();
        live.packets.shrink_to_fit();
      }
      continue;
    }

    if (!dropped) {
      if (decision == RouterDecision::kPassedOutbound) {
        result.carried_outbound.add(pkt.timestamp,
                                    static_cast<double>(pkt.wire_size()));
      } else if (decision == RouterDecision::kPassedInbound) {
        result.carried_inbound.add(pkt.timestamp,
                                   static_cast<double>(pkt.wire_size()));
      }
      if (live.cursor == 0) ++result.connections_established;
    }
    // Mid-connection drops lose the packet but the connection carries on
    // (real stacks retransmit; the byte-level effect is secondary here).

    ++live.cursor;
    if (live.cursor < live.packets.size()) {
      heap.push(HeapEntry{live.next_time(), entry.conn});
    }
  }

  result.stats = router.stats();
  return result;
}

}  // namespace upbound
