#include "filter/drop_policy.h"

#include <algorithm>

namespace upbound {

RedDropPolicy::RedDropPolicy(double low_bits_per_sec,
                             double high_bits_per_sec)
    : low_(low_bits_per_sec), high_(high_bits_per_sec) {
  if (!(low_ >= 0.0) || !(high_ > low_)) {
    throw std::invalid_argument("RedDropPolicy: need 0 <= L < H");
  }
}

double RedDropPolicy::drop_probability(double uplink_bits_per_sec) const {
  // Branch-free Eq. 1: the clamp saturates the linear ramp at both rails,
  // with the same values the old threshold branches produced (at b <= L
  // the ratio is <= 0, at b >= H it is >= 1).
  return std::clamp((uplink_bits_per_sec - low_) / (high_ - low_), 0.0, 1.0);
}

ConstantDropPolicy::ConstantDropPolicy(double probability)
    : probability_(probability) {
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument("ConstantDropPolicy: probability in [0,1]");
  }
}

}  // namespace upbound
