#include "filter/naive_filter.h"

#include <stdexcept>

namespace upbound {

NaiveFilter::NaiveFilter(const NaiveFilterConfig& config) : config_(config) {
  if (config.state_timeout <= Duration{}) {
    throw std::invalid_argument("NaiveFilter: timeout must be positive");
  }
}

FiveTuple NaiveFilter::key_of_outbound(FiveTuple t) const {
  if (config_.key_mode == KeyMode::kHolePunching) t.dst_port = 0;
  return t;
}

void NaiveFilter::advance_time(SimTime now) {
  now_ = now;
  while (!queue_.empty() &&
         queue_.front().first + config_.state_timeout <= now) {
    const FiveTuple key = queue_.front().second;
    queue_.pop_front();
    const auto it = expiry_.find(key);
    // Only erase when this queue entry is the live one; refreshed pairs
    // have a later expiry and a newer queue entry still in flight.
    if (it != expiry_.end() && it->second <= now) expiry_.erase(it);
  }
}

void NaiveFilter::record_outbound(const PacketRecord& pkt) {
  const FiveTuple key = key_of_outbound(pkt.tuple);
  const SimTime expires = pkt.timestamp + config_.state_timeout;
  auto [it, inserted] = expiry_.try_emplace(key, expires);
  if (!inserted) it->second = expires;
  queue_.emplace_back(pkt.timestamp, key);
}

bool NaiveFilter::admits_inbound(const PacketRecord& pkt) {
  const auto it = expiry_.find(key_of_outbound(pkt.tuple.inverse()));
  return it != expiry_.end() && pkt.timestamp < it->second;
}

std::size_t NaiveFilter::storage_bytes() const {
  // Approximate live heap usage: hash map nodes plus queue entries.
  constexpr std::size_t kMapNode =
      sizeof(FiveTuple) + sizeof(SimTime) + 2 * sizeof(void*);
  constexpr std::size_t kQueueNode = sizeof(SimTime) + sizeof(FiveTuple);
  return expiry_.size() * kMapNode + queue_.size() * kQueueNode;
}

}  // namespace upbound
