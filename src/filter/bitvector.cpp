#include "filter/bitvector.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace upbound {

BitVector::BitVector(std::size_t size)
    : size_(size), words_((size + 63) / 64, 0) {
  if (size == 0) throw std::invalid_argument("BitVector: size == 0");
}

void BitVector::clear() {
  std::fill(words_.begin(), words_.end(), 0);
}

void BitVector::load_words(std::span<const std::uint64_t> words) {
  if (words.size() != words_.size()) {
    throw std::invalid_argument("BitVector::load_words: size mismatch");
  }
  std::copy(words.begin(), words.end(), words_.begin());
}

std::size_t BitVector::popcount() const {
  std::size_t count = 0;
  for (const std::uint64_t w : words_) {
    count += static_cast<std::size_t>(std::popcount(w));
  }
  return count;
}

}  // namespace upbound
