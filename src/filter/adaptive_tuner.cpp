#include "filter/adaptive_tuner.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "filter/params.h"

namespace upbound {

void TunerConfig::validate() const {
  if (!enabled) return;
  if (!(target_penetration > 0.0) || target_penetration >= 1.0) {
    throw std::invalid_argument(
        "TunerConfig: target_penetration must be in (0, 1)");
  }
  if (sample_batches == 0) {
    throw std::invalid_argument("TunerConfig: sample_batches must be >= 1");
  }
  if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0) {
    throw std::invalid_argument("TunerConfig: ewma_alpha must be in (0, 1]");
  }
  if (geometry.bits == 0 || geometry.hash_count == 0 ||
      geometry.vector_count == 0 || geometry.rotate_interval <= Duration{}) {
    throw std::invalid_argument(
        "TunerConfig: enabled tuner needs the filter geometry");
  }
}

AdaptiveTuner::AdaptiveTuner(const TunerConfig& config) : config_(config) {
  config_.validate();
  rec_.recommended_hash_count = config_.geometry.hash_count;
  rec_.recommended_bits = config_.geometry.bits;
  rec_.recommended_rotate_interval = config_.geometry.rotate_interval;
}

void AdaptiveTuner::observe(double occupancy, std::uint64_t generation) {
  if (current_generation_.has_value() &&
      generation != *current_generation_) {
    fold_and_recompute();
    pending_peak_ = 0.0;
  }
  current_generation_ = generation;
  pending_peak_ = std::max(pending_peak_, occupancy);
  ++rec_.samples;
}

void AdaptiveTuner::fold_and_recompute() {
  ewma_ = ewma_primed_
              ? config_.ewma_alpha * pending_peak_ +
                    (1.0 - config_.ewma_alpha) * ewma_
              : pending_peak_;
  ewma_primed_ = true;
  ++rec_.generations_observed;

  const FilterGeometry& g = config_.geometry;
  const double u = std::clamp(ewma_, 0.0, 1.0);
  rec_.occupancy_peak_ewma = u;
  rec_.penetration_estimate =
      penetration_probability_at_utilization(u, g.hash_count);

  // Invert the Bloom fill equation U = 1 - (1 - 1/N)^(c*m) ~= 1 - e^(-cm/N)
  // for the active connection estimate c. At U -> 1 the inversion blows
  // up; clamp to "one connection per slot", the most the structure can
  // meaningfully attest.
  double c;
  if (u >= 1.0 - 1e-12) {
    c = static_cast<double>(g.bits);
  } else {
    c = -(static_cast<double>(g.bits) * std::log1p(-u)) /
        static_cast<double>(g.hash_count);
  }
  rec_.estimated_connections = c;

  const std::size_t load = static_cast<std::size_t>(std::ceil(c));
  if (load == 0) {
    // Nothing measured yet: keep the live geometry as the recommendation.
    rec_.recommended_hash_count = g.hash_count;
    rec_.recommended_bits = g.bits;
    rec_.recommended_rotate_interval = g.rotate_interval;
    return;
  }

  // Eq. 5: optimal m for the measured load at the LIVE N.
  rec_.recommended_hash_count = optimal_hash_count(g.bits, load);

  // Eq. 6: smallest power-of-two N whose capacity at the target p covers
  // the load. Capped at 2^30 (the config ceiling).
  std::size_t bits = std::size_t{1} << 3;
  while (bits < (std::size_t{1} << 30) &&
         max_connections_for(config_.target_penetration, bits) < load) {
    bits <<= 1;
  }
  rec_.recommended_bits = bits;

  // dt: when the live geometry is over Eq. 6 capacity, shorten the
  // rotation interval proportionally (fewer connections per window) --
  // the one knob that needs no extra memory. Never recommend stretching
  // dt (that only relaxes the expiry guarantee) and never below dt/4.
  const std::size_t capacity =
      max_connections_for(config_.target_penetration, g.bits);
  const double scale = std::clamp(
      static_cast<double>(capacity) / static_cast<double>(load), 0.25, 1.0);
  rec_.recommended_rotate_interval = g.rotate_interval * scale;
}

std::string TunerRecommendation::to_string() const {
  std::ostringstream out;
  out << "tuner: peak-occupancy-ewma=" << occupancy_peak_ewma
      << " est-connections=" << static_cast<std::uint64_t>(
             std::llround(estimated_connections))
      << " est-penetration=" << penetration_estimate
      << " recommend m=" << recommended_hash_count
      << " N=" << recommended_bits
      << " dt=" << recommended_rotate_interval.to_sec() << "s"
      << " (generations=" << generations_observed
      << " samples=" << samples << ")";
  return out.str();
}

}  // namespace upbound
