// The SPI (stateful packet inspection) baseline from paper Sections 2 and
// 5.3: exact per-flow connection tracking in the style of Linux netfilter
// conntrack. Flows are created by outbound packets, refreshed by traffic in
// either direction, closed by TCP FIN/RST, and garbage-collected after an
// idle timeout (the paper uses 240 s, Windows' default TIME_WAIT).
//
// This is the O(n)-storage comparator the bitmap filter is measured
// against in Fig. 8; it drops slightly MORE precisely because it observes
// exact connection close events the bitmap cannot see.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "filter/state_filter.h"
#include "net/five_tuple.h"

namespace upbound {

struct SpiFilterConfig {
  /// Idle timeout after which a tracked flow is deleted.
  Duration idle_timeout = Duration::sec(240.0);
  /// Linger after FIN/RST before the entry is removed (models TIME_WAIT
  /// shortening; zero removes on close).
  Duration close_linger = Duration::sec(0.0);
};

class SpiFilter final : public StateFilter {
 public:
  explicit SpiFilter(const SpiFilterConfig& config);

  void advance_time(SimTime now) override;
  void record_outbound(const PacketRecord& pkt) override;
  bool admits_inbound(const PacketRecord& pkt) override;
  std::size_t storage_bytes() const override;
  std::string name() const override { return "spi"; }

  std::size_t tracked_flows() const { return flows_.size(); }
  std::uint64_t flows_created() const { return flows_created_; }
  std::uint64_t flows_expired() const { return flows_expired_; }

 private:
  struct FlowState {
    SimTime last_active;
    bool closing = false;      // saw FIN/RST
    SimTime remove_at = SimTime::infinite();
  };

  void touch(const FiveTuple& key, const PacketRecord& pkt);

  SpiFilterConfig config_;
  SimTime now_;
  // Keyed by the outbound-direction tuple (flow creator's view).
  std::unordered_map<FiveTuple, FlowState, FiveTupleHash> flows_;
  std::deque<std::pair<SimTime, FiveTuple>> sweep_queue_;
  std::uint64_t flows_created_ = 0;
  std::uint64_t flows_expired_ = 0;
};

}  // namespace upbound
