// The m shared hash functions of the bitmap filter (paper Section 4.2).
//
// Implemented with Kirsch-Mitzenmacher double hashing over one 128-bit
// Murmur3 digest: h_i(x) = h1(x) + i*h2(x) mod N. This preserves Bloom
// false-positive behaviour while hashing the key only once per packet,
// keeping the per-packet cost the paper's O(m * t_h) bound assumes.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "net/five_tuple.h"
#include "net/packet_batch.h"
#include "util/hash.h"

namespace upbound {

/// Which tuple fields feed the hash (paper Section 4.2).
enum class KeyMode {
  /// All five fields; an inbound packet matches only the exact socket pair
  /// the client opened.
  kFullTuple,
  /// The external endpoint's port is omitted, so any inbound connection
  /// from a host the client contacted is admitted -- the paper's
  /// "hole-punching" support for NAT traversal.
  kHolePunching,
};

class BloomHashFamily {
 public:
  /// Key-slot stride of the batch digest paths (== kHashKeyStride): each
  /// serialized key occupies one zero-padded 16-byte slot.
  static constexpr std::size_t kKeyStride = kHashKeyStride;

  /// `bits` is the bit-vector size N (need not be a power of two);
  /// `hash_count` is m >= 1.
  BloomHashFamily(std::size_t bits, unsigned hash_count,
                  std::uint64_t seed = 0x7570626f756e6421ULL);

  unsigned hash_count() const { return hash_count_; }
  std::size_t bits() const { return bits_; }

  /// Key for an outbound packet's socket pair sigma_out.
  /// With kHolePunching the destination (external) port is dropped.
  void outbound_indexes(const FiveTuple& sigma_out, KeyMode mode,
                        std::span<std::size_t> out) const;

  /// Key for an inbound packet's socket pair sigma_in; hashes the inverse
  /// tuple so it lands on the same bits the outbound packet marked.
  /// With kHolePunching the source (external) port is dropped.
  void inbound_indexes(const FiveTuple& sigma_in, KeyMode mode,
                       std::span<std::size_t> out) const;

  /// 128-bit digest of the outbound (resp. inverse-inbound) key. Callers
  /// that want the probe split from the hash -- blocked layouts, batch
  /// paths -- take this and expand with indexes_from_hash.
  Hash128 outbound_hash(const FiveTuple& sigma_out, KeyMode mode) const;
  Hash128 inbound_hash(const FiveTuple& sigma_in, KeyMode mode) const;

  /// Kirsch-Mitzenmacher expansion of a digest into out.size() probe
  /// indexes -- the second half of outbound_indexes/inbound_indexes.
  void indexes_from_hash(const Hash128& h, std::span<std::size_t> out) const;

  /// Batch digests for a packet run, lane-parallel when the SIMD kernel
  /// is enabled. `key_scratch` must hold batch.size() * kKeyStride bytes
  /// (caller-owned so const callers stay thread-safe); `out` holds
  /// batch.size() digests. Bit-identical to per-packet outbound_hash /
  /// inbound_hash.
  void outbound_hash_batch(PacketBatch batch, KeyMode mode,
                           std::span<std::uint8_t> key_scratch,
                           std::span<Hash128> out) const;
  void inbound_hash_batch(PacketBatch batch, KeyMode mode,
                          std::span<std::uint8_t> key_scratch,
                          std::span<Hash128> out) const;

 private:
  void indexes_for_key(std::span<const std::uint8_t> key,
                       std::span<std::size_t> out) const;

  std::size_t bits_;
  unsigned hash_count_;
  std::uint64_t seed_;
  // bits - 1 when bits is a power of two (the default 2^20 always is):
  // index reduction becomes a mask instead of a 64-bit divide. Zero
  // otherwise. x & (2^n - 1) == x % 2^n, so results are bit-identical.
  std::uint64_t mask_ = 0;
};

}  // namespace upbound
