// Retouched bitmap filter, after Donnet, Baynat & Friedman, "Retouched
// Bloom Filters: Allowing Networked Applications to Trade Off Selected
// False Positives Against False Negatives" (CoNEXT 2006), applied to the
// paper's {k x N} rotating bitmap.
//
// A plain Bloom filter never yields false negatives; retouching clears a
// chosen fraction r of bits, deliberately introducing false negatives to
// buy a larger drop in false positives. On the upload-bounding filter the
// trade reads: a retouched bit silently expires a few legitimate
// connections early (they fall back to the drop policy, costing at most
// one RTT of retries) but knocks out the same fraction of ATTACK keys
// probing for Bloom collisions -- the collision-probing evasion strategy
// the attack evaluator exercises degrades by (1-r)^m per probe.
//
// Implementation: composition over BitmapFilter (which stays the
// untouched ground truth) with retouching applied as a LOOKUP-TIME mask.
// A bit is "retouched" for the current rotation epoch when a stateless
// hash of (retouch_seed, epoch, bit index) lands below retouch_fraction;
// lookups treat such bits as zero. Because the mask is a pure function of
// values already tracked by the inner filter -- no extra mutable state --
// the scalar and batch paths stay bit-identical for free, snapshots of
// the inner filter remain exact, and each rotation draws a fresh
// pseudo-random retouch set (the paper's randomized-selection variant).
//
// Expected rates (independence approximation, m hashes, utilization U):
//   false negatives: 1 - (1-r)^m      (zero for r = 0)
//   false positives: (U * (1-r))^m    (vs U^m untouched)
#pragma once

#include <cstdint>
#include <optional>

#include "filter/bitmap_filter.h"
#include "filter/hash_family.h"
#include "filter/state_filter.h"

namespace upbound {

struct RetouchedBitmapConfig {
  BitmapFilterConfig bitmap;
  /// Fraction r of bits treated as cleared at lookup, in [0, 0.5).
  double retouch_fraction = 0.01;
  /// Seed for the per-epoch retouch set; independent of the Bloom seed so
  /// retouching is uncorrelated with index selection.
  std::uint64_t retouch_seed = 0x7265746f75636821ULL;

  /// Throws std::invalid_argument when parameters are out of range.
  void validate() const;
};

class RetouchedBitmapFilter final : public StateFilter {
 public:
  explicit RetouchedBitmapFilter(const RetouchedBitmapConfig& config);

  // Mutation forwards to the inner bitmap unchanged (retouching is a
  // read-side mask), so the inner filter's optimized batch marking is
  // reused as-is.
  void advance_time(SimTime now) override { inner_.advance_time(now); }
  void record_outbound(const PacketRecord& pkt) override {
    inner_.record_outbound(pkt);
  }
  void record_outbound_batch(PacketBatch batch) override {
    inner_.record_outbound_batch(batch);
  }
  bool admits_inbound(const PacketRecord& pkt) override;
  // admits_inbound_batch inherits the default scalar loop: the masked
  // lookup is pure, so the loop is already observably identical to any
  // batched formulation.
  bool inbound_lookup_is_pure() const override { return true; }
  std::optional<double> occupancy_fraction() const override {
    return inner_.occupancy_fraction();
  }
  std::uint64_t expiry_generations() const override {
    return inner_.rotations();
  }
  std::size_t storage_bytes() const override {
    return inner_.storage_bytes();
  }
  std::string name() const override { return "retouched"; }

  /// True when `bit` is masked out of the current retouch epoch. Pure;
  /// exposed for tests to predict exactly which lookups must miss.
  bool retouched(std::uint64_t epoch, std::size_t bit) const;

  const RetouchedBitmapConfig& config() const { return config_; }
  /// The untouched inner bitmap (fault plane flips its words; tests read
  /// its ground truth).
  BitmapFilter& inner() { return inner_; }
  const BitmapFilter& inner() const { return inner_; }

 private:
  RetouchedBitmapConfig config_;
  BitmapFilter inner_;
  BloomHashFamily hashes_;  // same geometry/seed as the inner filter's
  /// retouch_fraction scaled to a 64-bit threshold for branch-free
  /// comparison against the mixed hash.
  std::uint64_t retouch_threshold_;
  std::vector<std::size_t> scratch_;
};

}  // namespace upbound
