// Parameter selection math from paper Sections 4.3 and 5.1.
//
//   Eq. 2: p = U^m               (penetration prob. at utilization U = b/N)
//   Eq. 3: p ~= (c*m/N)^m        (low-collision approximation)
//   Eq. 5: m* = N / (e*c)        (m minimizing p for fixed c, N)
//   Eq. 6: c/N <= -1 / (e*ln p)  (capacity bound to stay under target p)
#pragma once

#include <cstddef>
#include <string>

#include "util/time.h"

namespace upbound {

/// Eq. 2: probability a random inbound socket pair penetrates a vector
/// whose utilization is `utilization`, with `hash_count` hash functions.
double penetration_probability_at_utilization(double utilization,
                                              unsigned hash_count);

/// Eq. 3: approximate penetration probability with `connections` active
/// pairs marked into `bits`-bit vectors using `hash_count` hashes.
double penetration_probability(std::size_t connections, unsigned hash_count,
                               std::size_t bits);

/// Eq. 5: the real-valued optimum m = N/(e*c).
double optimal_hash_count_real(std::size_t bits, std::size_t connections);

/// Eq. 5 rounded to a usable integer (>= 1): the better of floor/ceil.
unsigned optimal_hash_count(std::size_t bits, std::size_t connections);

/// Eq. 6: the maximum number of active connections within T_e that keeps
/// the penetration probability (at the optimal m) below `target_p`.
std::size_t max_connections_for(double target_p, std::size_t bits);

/// A deployment recommendation produced by `advise`.
struct BitmapAdvice {
  std::size_t bits = 0;           // N
  unsigned vector_count = 0;      // k
  Duration rotate_interval;       // dt
  unsigned hash_count = 0;        // m (Eq. 5)
  Duration expiry_timer;          // T_e = k * dt
  std::size_t memory_bytes = 0;   // k * N / 8
  double expected_penetration = 0.0;  // Eq. 3 at the given load

  std::string to_string() const;
};

/// Solves the paper's deployment question: given an expected peak of
/// `connections` active pairs inside T_e and a desired expiry timer,
/// recommend m and report expected penetration probability and memory.
BitmapAdvice advise(std::size_t bits, unsigned vector_count,
                    Duration rotate_interval, std::size_t connections);

}  // namespace upbound
