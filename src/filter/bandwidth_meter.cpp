#include "filter/bandwidth_meter.h"

#include <stdexcept>

namespace upbound {

namespace {

Duration checked_slot_width(Duration window, unsigned slots) {
  if (window <= Duration{} || slots == 0 ||
      window.count_usec() % slots != 0) {
    throw std::invalid_argument(
        "BandwidthMeter: window must be positive and divisible by slots");
  }
  return Duration::usec(window.count_usec() / slots);
}

}  // namespace

BandwidthMeter::BandwidthMeter(Duration window, unsigned slots)
    : window_(window),
      slot_width_(checked_slot_width(window, slots)),
      slots_(slots, 0) {}

void BandwidthMeter::roll_to(SimTime now) {
  const std::int64_t target =
      now.usec() / slot_width_.count_usec();
  if (target <= head_slot_) return;
  const std::int64_t steps = target - head_slot_;
  const std::int64_t n = static_cast<std::int64_t>(slots_.size());
  if (steps >= n) {
    // Entire window expired.
    for (auto& s : slots_) s = 0;
    total_bytes_ = 0;
  } else {
    for (std::int64_t i = 1; i <= steps; ++i) {
      auto& slot = slots_[static_cast<std::size_t>((head_slot_ + i) % n)];
      total_bytes_ -= slot;
      slot = 0;
    }
  }
  head_slot_ = target;
}

void BandwidthMeter::add(SimTime now, std::uint64_t bytes) {
  roll_to(now);
  slots_[static_cast<std::size_t>(head_slot_ % static_cast<std::int64_t>(
                                                   slots_.size()))] += bytes;
  total_bytes_ += bytes;
}

double BandwidthMeter::bits_per_sec(SimTime now) {
  roll_to(now);
  return static_cast<double>(total_bytes_) * 8.0 / window_.to_sec();
}

}  // namespace upbound
