#include "filter/bandwidth_meter.h"

#include <stdexcept>

namespace upbound {

namespace {

/// Floor division: rounds toward negative infinity, unlike C++'s `/`
/// which truncates toward zero. A pre-origin SimTime (negative usec) must
/// map to the slot whose span contains it -- truncation would map e.g.
/// -0.5 slots to slot 0 and make the window appear to roll backward.
std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  return a / b - ((a % b != 0 && (a ^ b) < 0) ? 1 : 0);
}

/// Non-negative remainder in [0, b), valid for negative a.
std::size_t floor_mod(std::int64_t a, std::int64_t b) {
  const std::int64_t m = a % b;
  return static_cast<std::size_t>(m < 0 ? m + b : m);
}

Duration checked_slot_width(Duration window, unsigned slots) {
  if (window <= Duration{} || slots == 0 ||
      window.count_usec() % slots != 0) {
    throw std::invalid_argument(
        "BandwidthMeter: window must be positive and divisible by slots");
  }
  return Duration::usec(window.count_usec() / slots);
}

}  // namespace

BandwidthMeter::BandwidthMeter(Duration window, unsigned slots)
    : window_(window),
      slot_width_(checked_slot_width(window, slots)),
      slots_(slots, 0) {}

void BandwidthMeter::roll_to(SimTime now) {
  const std::int64_t target =
      floor_div(now.usec(), slot_width_.count_usec());
  if (!primed_) {
    primed_ = true;
    head_slot_ = target;
    return;
  }
  if (target <= head_slot_) return;
  const std::int64_t steps = target - head_slot_;
  const std::int64_t n = static_cast<std::int64_t>(slots_.size());
  if (steps >= n) {
    // Entire window expired.
    for (auto& s : slots_) s = 0;
    total_bytes_ = 0;
  } else {
    for (std::int64_t i = 1; i <= steps; ++i) {
      auto& slot = slots_[floor_mod(head_slot_ + i, n)];
      total_bytes_ -= slot;
      slot = 0;
    }
  }
  head_slot_ = target;
}

SimTime BandwidthMeter::observe(SimTime now, bool count_regression) {
  if (primed_ && now < high_water_) {
    if (count_regression) ++clamp_events_;
    return high_water_;
  }
  high_water_ = now;
  return now;
}

void BandwidthMeter::add(SimTime now, std::uint64_t bytes) {
  roll_to(observe(now, /*count_regression=*/true));
  // floor_mod: head_slot_ is negative for pre-origin times, where C++'s
  // `%` would produce a negative (out-of-range) slot index.
  slots_[floor_mod(head_slot_, static_cast<std::int64_t>(slots_.size()))] +=
      bytes;
  total_bytes_ += bytes;
}

double BandwidthMeter::bits_per_sec(SimTime now) {
  roll_to(observe(now, /*count_regression=*/false));
  return static_cast<double>(total_bytes_) * 8.0 / window_.to_sec();
}

void BandwidthMeter::advance(SimTime now) {
  roll_to(observe(now, /*count_regression=*/false));
}

}  // namespace upbound
