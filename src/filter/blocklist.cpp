#include "filter/blocklist.h"

namespace upbound {

BlockList::BlockList(Duration ttl) : ttl_(ttl) {}

void BlockList::sweep(SimTime now) {
  if (ttl_ <= Duration{}) return;
  while (!queue_.empty() && queue_.front().first + ttl_ <= now) {
    const FiveTuple key = queue_.front().second;
    queue_.pop_front();
    const auto it = blocked_.find(key);
    if (it != blocked_.end() && it->second + ttl_ <= now) blocked_.erase(it);
  }
}

void BlockList::block(const FiveTuple& sigma, SimTime now) {
  sweep(now);
  const auto [it, inserted] = blocked_.try_emplace(sigma, now);
  if (!inserted) {
    it->second = now;
  } else {
    ++total_blocked_;
  }
  if (ttl_ > Duration{}) queue_.emplace_back(now, sigma);
}

bool BlockList::is_blocked(const FiveTuple& sigma, SimTime now) {
  sweep(now);
  const auto it = blocked_.find(sigma);
  if (it == blocked_.end()) return false;
  if (ttl_ > Duration{}) {
    it->second = now;  // refresh: active retries keep the block alive
    queue_.emplace_back(now, sigma);
  }
  return true;
}

}  // namespace upbound
