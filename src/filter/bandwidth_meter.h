// Sliding-window throughput estimation -- the "indicator of upload
// bandwidth throughput b" that feeds Eq. 1. A ring of fixed-width slots
// covers the averaging window; expired slots are zeroed lazily as time
// advances, so both add() and bits_per_sec() are O(slots) worst case and
// O(1) amortized.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.h"

namespace upbound {

class BandwidthMeter {
 public:
  /// `window` is the averaging period; `slots` its subdivisions (higher =
  /// smoother decay of old traffic).
  explicit BandwidthMeter(Duration window = Duration::sec(1.0),
                          unsigned slots = 10);

  /// Accounts `bytes` observed at time `now`. A regressed `now` (below
  /// the highest time seen) is clamped to that high-water mark and
  /// counted, mirroring EdgeRouter's rotation-clock clamp: a backwards
  /// step books the bytes into the newest slot instead of corrupting the
  /// window the Eq. 1 P_d input is averaged over.
  void add(SimTime now, std::uint64_t bytes);

  /// Throughput over the window ending at `now`, in bits per second.
  /// Regressed times are clamped to the high-water mark like add(), but
  /// NOT counted: a read never misattributes bytes, so it is not the
  /// clock anomaly the health monitor's clamp signal watches for.
  double bits_per_sec(SimTime now);

  /// Ages the window forward to `now` without booking bytes. The live
  /// datapath's tick timer calls this so traffic decays out of the Eq. 1
  /// input between packets; offline replay never needs it (every add or
  /// read carries a packet timestamp). Regressions clamp, uncounted.
  void advance(SimTime now);

  Duration window() const { return window_; }

  /// add() calls whose `now` regressed and was clamped -- data-bearing
  /// clock anomalies only (reads and advance() clamp silently).
  std::uint64_t clamp_events() const { return clamp_events_; }

 private:
  /// Clamps a regressed `now` to the high-water mark; counts it only when
  /// `count_regression` (the add() path). Forward times always raise the
  /// high-water mark -- even on reads -- because roll_to() advances the
  /// slot head, and head and high-water must move together or a later
  /// add() between the old high-water and this `now` would book bytes
  /// into a slot the ring has already wrapped past.
  SimTime observe(SimTime now, bool count_regression);

  /// Zeroes slots whose time span fell out of the window.
  void roll_to(SimTime now);

  Duration window_;
  Duration slot_width_;
  std::vector<std::uint64_t> slots_;
  std::int64_t head_slot_ = 0;  // absolute slot index of the newest slot
  /// head_slot_ is meaningless until the first event sets it; without the
  /// latch a meter whose first event is pre-origin (negative slot index)
  /// would never roll forward from the default head of 0.
  bool primed_ = false;
  std::uint64_t total_bytes_ = 0;
  /// Highest time seen; regressions are clamped up to it.
  SimTime high_water_;
  std::uint64_t clamp_events_ = 0;
};

}  // namespace upbound
