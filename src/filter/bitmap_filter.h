// The bitmap filter -- the paper's core contribution (Section 4).
//
// A {k x N}-bitmap is k Bloom-filter bit vectors of N = 2^n bits sharing m
// hash functions. Outbound packets mark their m bits in ALL k vectors
// (Algorithm 2, lines 1-5); inbound packets are looked up in the CURRENT
// vector only (lines 6-15); every time unit dt the b.rotate step
// (Algorithm 1) advances the current index and zeroes the vector it lands
// on. A connection's marks therefore survive for at least (k-1)*dt and at
// most k*dt after its last outbound packet: the implicit expiry timer
// T_e = k*dt, in constant space and constant per-packet time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "filter/bitvector.h"
#include "filter/hash_family.h"
#include "filter/rotation_schedule.h"
#include "filter/state_filter.h"

namespace upbound {

struct BitmapFilterConfig {
  unsigned log2_bits = 20;     // n: each vector holds N = 2^n bits
  unsigned vector_count = 4;   // k
  unsigned hash_count = 3;     // m
  Duration rotate_interval = Duration::sec(5.0);  // dt
  KeyMode key_mode = KeyMode::kFullTuple;
  std::uint64_t hash_seed = 0x7570626f756e6421ULL;

  /// N, the per-vector size in bits.
  std::size_t bits() const { return std::size_t{1} << log2_bits; }
  /// T_e = k * dt, the implicit state expiry timer.
  Duration expiry_timer() const {
    return rotate_interval * static_cast<double>(vector_count);
  }
  /// Total bitmap memory (k * N / 8), the paper's "512K bytes" figure for
  /// the default {4 x 2^20} configuration.
  std::size_t memory_bytes() const { return vector_count * bits() / 8; }

  /// Throws std::invalid_argument when parameters are out of range.
  void validate() const;
};

class BitmapFilter final : public StateFilter {
 public:
  explicit BitmapFilter(const BitmapFilterConfig& config);

  // StateFilter:
  void advance_time(SimTime now) override;
  void record_outbound(const PacketRecord& pkt) override;
  bool admits_inbound(const PacketRecord& pkt) override;
  // Real batch path: chunk the batch at rotation boundaries, compute all
  // Kirsch-Mitzenmacher indexes for a chunk first, prefetch the touched
  // bit-vector words, then mark/test in a second pass -- identical
  // decisions to the scalar path, with the dependent cache misses
  // overlapped instead of serialized.
  void record_outbound_batch(PacketBatch batch) override;
  void admits_inbound_batch(PacketBatch batch,
                            std::span<bool> admits) override;
  bool inbound_lookup_is_pure() const override { return true; }
  std::optional<double> occupancy_fraction() const override {
    return current_utilization();
  }
  std::uint64_t expiry_generations() const override { return rotations_; }
  /// Runtime dt retune: re-anchors next_rotation_ to the last completed
  /// boundary plus the new interval, so shrinking dt takes effect at the
  /// next advance_time (one rotation per new-schedule boundary, catch-up
  /// included) and growing dt stretches the current generation.
  bool set_rotate_interval(Duration dt) override;
  std::size_t storage_bytes() const override;
  std::string name() const override { return "bitmap"; }

  /// Algorithm 1 (b.rotate): advance idx and clear the vector it reaches.
  /// Exposed for direct driving in tests and microbenchmarks;
  /// advance_time() invokes it on schedule.
  void rotate();

  const BitmapFilterConfig& config() const { return config_; }
  std::size_t current_index() const { return idx_; }

  // --- Snapshot support (filter/snapshot.h) ---
  std::span<const std::uint64_t> vector_words(std::size_t v) const {
    return vectors_.at(v).words();
  }
  void load_vector_words(std::size_t v,
                         std::span<const std::uint64_t> words) {
    vectors_.at(v).load_words(words);
  }
  /// Restores rotation phase; used when deserializing a snapshot.
  void restore_rotation_state(std::size_t idx, SimTime next_rotation,
                              std::uint64_t rotations);
  SimTime next_rotation() const { return schedule_.next_boundary(); }
  /// Utilization U = b/N of the current bit vector (paper Eq. 2 input).
  double current_utilization() const { return vectors_[idx_].utilization(); }
  /// Set-bit fraction of every vector, indexed by vector position; the
  /// entry at current_index() equals current_utilization(). Capacity
  /// planning and the saturation-attack evaluation read this.
  std::vector<double> occupancy() const;
  std::uint64_t rotations() const { return rotations_; }

 private:
  /// Packets per prefetch window. 64 packets x m=3 hashes keeps the
  /// outstanding lines within L1 reach while giving the memory system a
  /// deep enough queue to overlap the misses.
  static constexpr std::size_t kBatchChunk = 64;

  /// Marks/tests one rotation-free chunk (all timestamps strictly before
  /// next_rotation_) with the two-pass hash+prefetch-then-touch scheme.
  void mark_chunk(PacketBatch chunk);
  void test_chunk(PacketBatch chunk, std::span<bool> admits);

  BitmapFilterConfig config_;
  BloomHashFamily hashes_;
  std::vector<BitVector> vectors_;
  std::size_t idx_ = 0;
  RotationSchedule schedule_;
  std::uint64_t rotations_ = 0;
  std::vector<std::size_t> scratch_;        // per-packet hash indexes
  std::vector<std::size_t> batch_scratch_;  // per-chunk hash indexes
  std::vector<Hash128> hash_scratch_;       // per-chunk key digests
  std::vector<std::uint8_t> key_scratch_;   // per-chunk serialized keys
};

}  // namespace upbound
