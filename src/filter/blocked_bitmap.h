// Cache-resident variant of the paper's {k x N} rotating bitmap.
//
// Same Algorithm 1/2 semantics as BitmapFilter -- outbound marks all k
// vectors, inbound looks up the current one, rotation clears the oldest --
// but the k vectors are the columns of one BlockedBitVector: a key's low
// hash half selects one 512-bit block and all m probes stay inside it,
// stepping by an odd stride derived from the high half (odd => the m
// offsets are distinct mod 512). Per packet that is one cache line per
// vector (k lines marked, 1 line looked up) instead of m*k / m scattered
// lines -- and the block-major column interleaving makes the k marked
// lines ADJACENT, so an outbound packet costs one 256-byte streak instead
// of k scattered misses. That is what pushes the datapath from
// memory-latency-bound toward the roofline. Bits land at different
// positions than BitmapFilter's, so the two are not snapshot-compatible;
// verdict distributions differ only through the block-local
// false-positive rate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "filter/bitmap_filter.h"  // BitmapFilterConfig
#include "filter/blocked_bitvector.h"
#include "filter/hash_family.h"
#include "filter/rotation_schedule.h"
#include "filter/state_filter.h"

namespace upbound {

/// Shares BitmapFilterConfig (same N, k, m, dt knobs); requires
/// log2_bits >= 9 so each vector holds at least one whole block.
class BlockedBitmapFilter final : public StateFilter {
 public:
  explicit BlockedBitmapFilter(const BitmapFilterConfig& config);

  // StateFilter:
  void advance_time(SimTime now) override;
  void record_outbound(const PacketRecord& pkt) override;
  bool admits_inbound(const PacketRecord& pkt) override;
  // Same chunk-at-rotation-boundaries scheme as BitmapFilter: batch-digest
  // the chunk's keys (lane-parallel when the SIMD kernel is enabled),
  // prefetch one block per packet per vector, then mark/test.
  void record_outbound_batch(PacketBatch batch) override;
  void admits_inbound_batch(PacketBatch batch,
                            std::span<bool> admits) override;
  bool inbound_lookup_is_pure() const override { return true; }
  std::optional<double> occupancy_fraction() const override {
    return bits_.utilization(idx_);
  }
  std::uint64_t expiry_generations() const override { return rotations_; }
  bool set_rotate_interval(Duration dt) override;
  std::size_t storage_bytes() const override;
  std::string name() const override { return "bitmap-blocked"; }

  /// Algorithm 1 (b.rotate); advance_time() invokes it on schedule.
  void rotate();

  const BitmapFilterConfig& config() const { return config_; }
  std::size_t current_index() const { return idx_; }
  std::uint64_t rotations() const { return rotations_; }

 private:
  static constexpr std::size_t kBatchChunk = 256;
  /// Keys of lookahead in the chunk pipelines: far enough to cover L3
  /// latency at line rate, small enough to stay within the prefetch
  /// queue's reach.
  static constexpr std::size_t kPrefetchDistance = 16;
  /// At this many probes and above, build the key's 512-bit mask once and
  /// OR/compare whole lines (cost independent of m); below it, targeted
  /// per-bit ops are cheaper.
  static constexpr unsigned kDenseProbeThreshold = 6;
  static constexpr std::uint64_t kOffsetMask =
      BlockedBitVector::kBlockBits - 1;

  std::size_t block_of(const Hash128& h) const {
    return static_cast<std::size_t>(h.lo & block_mask_);
  }
  /// Builds the 512-bit probe mask of `h` (all m probes as a line image).
  void line_mask_of(const Hash128& h, std::uint64_t line[8]) const;
  /// Marks all m probes of `h` in every vector (outbound arm); mark_with
  /// dispatches on kDenseProbeThreshold.
  void mark_dense(const Hash128& h);
  void mark_sparse(const Hash128& h);
  void mark_with(const Hash128& h);
  /// Tests all m probes of `h` in the current vector (inbound arm).
  bool test_dense(const Hash128& h) const;
  bool test_sparse(const Hash128& h) const;
  bool test_with(const Hash128& h) const;

  void mark_chunk(PacketBatch chunk);
  void test_chunk(PacketBatch chunk, std::span<bool> admits);

  BitmapFilterConfig config_;
  BloomHashFamily hashes_;
  BlockedBitVector bits_;  // k columns, block-major interleaved
  std::size_t idx_ = 0;
  RotationSchedule schedule_;
  std::uint64_t rotations_ = 0;
  std::uint64_t block_mask_ = 0;           // block_count - 1 (power of two)
  std::vector<Hash128> hash_scratch_;      // per-chunk key digests
  std::vector<std::uint8_t> key_scratch_;  // per-chunk serialized keys
};

}  // namespace upbound
