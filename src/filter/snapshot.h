// Bitmap filter state snapshots: serialize the full {k x N} state (bits,
// current index, rotation phase) so an edge device can restart without a
// cold-start window in which every inbound packet of established
// connections would be dropped. Format (v2): versioned little-endian
// header ending in a CRC-32 over every other byte, then raw vector words;
// a few hundred KB writes in microseconds. The CRC turns silent bit rot
// into a typed corrupt-crc rejection, and save_snapshot_file() makes the
// on-disk write crash-consistent (temp file + fsync + atomic rename), so
// a restart mid-save finds either the old snapshot or the new one, never
// a torn hybrid.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "filter/bitmap_filter.h"

namespace upbound {

/// Serializes the filter's complete state. The snapshot embeds the
/// configuration, so restore validates compatibility by construction.
std::vector<std::uint8_t> snapshot_bitmap_filter(const BitmapFilter& filter,
                                                 SimTime now);

struct RestoredBitmapFilter {
  BitmapFilter filter;
  /// The time the snapshot was taken; the caller decides whether the gap
  /// since then exceeds Te (in which case restoring is pointless).
  SimTime snapshot_time;
};

/// Why a snapshot could not be restored. Snapshots cross a trust
/// boundary (files on disk survive truncation, bit rot, and tampering),
/// so every failure is a typed reason, never UB or a crash.
enum class SnapshotRestoreError {
  kNone,              // restored successfully
  kTruncated,         // ran out of bytes mid-header or mid-vector
  kBadMagic,          // not a UBMF snapshot
  kBadVersion,        // format version this build does not read
  kBadConfig,         // embedded configuration fails validate()
  kBadRotationIndex,  // current index >= vector count
  kBadRotationTime,   // next-rotation stamp implausibly far from the
                      // snapshot time (a forged value would make the
                      // first advance_time() spin one rotate per dt
                      // across the whole gap)
  kTrailingBytes,     // extra bytes after the last vector word
  kStale,             // gap since snapshot_time exceeds T_e: every mark
                      // would have rotated out, restoring is pointless
  kCorruptCrc,        // structurally sound but the CRC-32 over header and
                      // payload mismatches: bit rot or tampering
};

const char* snapshot_restore_error_name(SnapshotRestoreError error);

struct BitmapRestoreResult {
  /// Populated iff error == kNone.
  std::optional<RestoredBitmapFilter> restored;
  SnapshotRestoreError error = SnapshotRestoreError::kNone;
  /// For kStale: how far `now` lies past the snapshot time (> T_e).
  Duration staleness{};

  bool ok() const { return error == SnapshotRestoreError::kNone; }
};

/// Rebuilds a filter from a snapshot with a typed failure reason. When
/// `now` is provided, a snapshot older than the configuration's T_e is
/// rejected as kStale -- all its marks would have expired anyway, so
/// restoring would only fake a warm start.
BitmapRestoreResult restore_bitmap_filter_checked(
    std::span<const std::uint8_t> snapshot,
    std::optional<SimTime> now = std::nullopt);

/// Rebuilds a filter from a snapshot. Returns nullopt for malformed or
/// version-incompatible snapshots (no staleness check; wrapper over
/// restore_bitmap_filter_checked).
std::optional<RestoredBitmapFilter> restore_bitmap_filter(
    std::span<const std::uint8_t> snapshot);

/// Moves a restored filter onto the heap in the StateFilter form the
/// replay engines consume.
std::unique_ptr<StateFilter> take_restored_filter(
    RestoredBitmapFilter&& restored);

/// Crash-consistent snapshot write: the bytes go to `path` + ".tmp",
/// are flushed and fsync'd, then atomically renamed over `path`. A crash
/// at any point leaves either the previous snapshot or the complete new
/// one -- never a torn file. Throws std::runtime_error on I/O failure
/// (the temp file is removed best-effort).
void save_snapshot_file(const std::string& path,
                        std::span<const std::uint8_t> bytes);

}  // namespace upbound
