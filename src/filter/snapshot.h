// Bitmap filter state snapshots: serialize the full {k x N} state (bits,
// current index, rotation phase) so an edge device can restart without a
// cold-start window in which every inbound packet of established
// connections would be dropped. Format: versioned little-endian header +
// raw vector words; a few hundred KB writes in microseconds.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "filter/bitmap_filter.h"

namespace upbound {

/// Serializes the filter's complete state. The snapshot embeds the
/// configuration, so restore validates compatibility by construction.
std::vector<std::uint8_t> snapshot_bitmap_filter(const BitmapFilter& filter,
                                                 SimTime now);

struct RestoredBitmapFilter {
  BitmapFilter filter;
  /// The time the snapshot was taken; the caller decides whether the gap
  /// since then exceeds Te (in which case restoring is pointless).
  SimTime snapshot_time;
};

/// Rebuilds a filter from a snapshot. Returns nullopt for malformed or
/// version-incompatible snapshots.
std::optional<RestoredBitmapFilter> restore_bitmap_filter(
    std::span<const std::uint8_t> snapshot);

}  // namespace upbound
