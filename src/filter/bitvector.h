// Fixed-size bit vector backing one Bloom filter column of the bitmap.
// Sized in whole 64-bit words; clear() is a single memset-like pass, which
// is what makes the paper's b.rotate cheap (Section 5.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/prefetch.h"

namespace upbound {

class BitVector {
 public:
  /// Creates a vector of `size` bits, all zero. Requires size > 0.
  explicit BitVector(std::size_t size);

  std::size_t size() const { return size_; }

  void set(std::size_t i) {
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Cache hints for the word holding bit `i`; the batched datapath
  /// issues these for a whole chunk before touching any word.
  void prefetch_for_test(std::size_t i) const {
    prefetch_read(words_.data() + (i >> 6));
  }
  void prefetch_for_set(std::size_t i) const {
    prefetch_write(words_.data() + (i >> 6));
  }

  /// Zeroes every bit; O(size/64) sequential word stores.
  void clear();

  /// Number of set bits (the `b` in the paper's utilization U = b/N).
  std::size_t popcount() const;

  /// Fraction of set bits.
  double utilization() const {
    return static_cast<double>(popcount()) / static_cast<double>(size_);
  }

  /// Heap footprint in bytes.
  std::size_t storage_bytes() const { return words_.size() * 8; }

  /// Raw word access for snapshot serialization.
  std::span<const std::uint64_t> words() const { return words_; }
  /// Restores raw words; `words` must match the vector's word count.
  void load_words(std::span<const std::uint64_t> words);

 private:
  std::size_t size_;
  std::vector<std::uint64_t> words_;
};

}  // namespace upbound
