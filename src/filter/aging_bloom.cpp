#include "filter/aging_bloom.h"

#include <algorithm>
#include <stdexcept>

namespace upbound {

void AgingBloomConfig::validate() const {
  if (cells < 16 || (cells & 1) != 0) {
    throw std::invalid_argument(
        "AgingBloomConfig: cells must be >= 16 and even");
  }
  if (hash_count == 0 || hash_count > 64) {
    throw std::invalid_argument("AgingBloomConfig: hash_count out of range");
  }
  if (epoch <= Duration{}) {
    throw std::invalid_argument("AgingBloomConfig: epoch must be positive");
  }
  if (valid_epochs == 0 || valid_epochs > 13) {
    throw std::invalid_argument(
        "AgingBloomConfig: valid_epochs must be in 1..13");
  }
}

AgingBloomFilter::AgingBloomFilter(const AgingBloomConfig& config)
    : config_(config),
      hashes_((config.validate(), config.cells), config.hash_count,
              config.hash_seed),
      cells_(config.cells / 2, 0),
      epoch_start_(SimTime::origin()),
      scratch_(config.hash_count) {}

std::uint8_t AgingBloomFilter::get_cell(std::size_t i) const {
  const std::uint8_t byte = cells_[i >> 1];
  return (i & 1) ? (byte >> 4) : (byte & 0x0f);
}

void AgingBloomFilter::set_cell(std::size_t i, std::uint8_t value) {
  std::uint8_t& byte = cells_[i >> 1];
  if (i & 1) {
    byte = static_cast<std::uint8_t>((byte & 0x0f) | (value << 4));
  } else {
    byte = static_cast<std::uint8_t>((byte & 0xf0) | value);
  }
}

std::uint8_t AgingBloomFilter::ring_of(std::uint64_t epoch) const {
  return static_cast<std::uint8_t>(epoch % 15 + 1);  // 1..15; 0 = empty
}

bool AgingBloomFilter::stamp_fresh(std::uint8_t stamp) const {
  if (stamp == kEmpty) return false;
  const std::uint8_t now_ring = ring_of(epoch_);
  // Ring distance from stamp forward to now, over the 15-value ring.
  const unsigned age = (now_ring + 15u - stamp) % 15u;
  return age < config_.valid_epochs;
}

void AgingBloomFilter::advance_time(SimTime now) {
  // Count elapsed epochs by division, not one loop turn per epoch: a
  // clock-step fault or sparse trace gap would otherwise spin
  // O(elapsed/dt). advanced * epoch <= elapsed, so the product cannot
  // overflow the int64 microsecond range `elapsed` already fits.
  const std::int64_t elapsed = (now - epoch_start_).count_usec();
  const std::int64_t ep = config_.epoch.count_usec();
  if (elapsed < ep) return;
  const std::uint64_t advanced = static_cast<std::uint64_t>(elapsed / ep);
  epoch_start_ +=
      Duration::usec(static_cast<std::int64_t>(advanced) * ep);

  // The sweep retires stamps that fell out of the window, keeping the
  // invariant "every stored stamp has true age < valid_epochs". Ring
  // arithmetic stays unambiguous only while true ages fit in the
  // 15-value ring; large jumps need special handling.
  if (advanced >= config_.valid_epochs) {
    // Everything stored is stale: wipe wholesale.
    epoch_ += advanced;
    std::fill(cells_.begin(), cells_.end(), 0);
    return;
  }
  if (config_.valid_epochs + advanced <= 15) {
    epoch_ += advanced;
    sweep();
    return;
  }
  // Rare corner (valid_epochs close to 13 plus a multi-epoch jump):
  // step one epoch at a time so ring ages never exceed 15. Bounded at
  // valid_epochs - 1 < 13 turns; larger jumps took the wipe path above.
  for (std::uint64_t left = advanced; left > 0; --left) {
    ++epoch_;
    sweep();
  }
}

void AgingBloomFilter::sweep() {
  for (std::size_t i = 0; i < cells_.size() * 2; ++i) {
    const std::uint8_t stamp = get_cell(i);
    if (stamp != kEmpty && !stamp_fresh(stamp)) set_cell(i, kEmpty);
  }
}

void AgingBloomFilter::record_outbound(const PacketRecord& pkt) {
  hashes_.outbound_indexes(pkt.tuple, config_.key_mode, scratch_);
  const std::uint8_t stamp = ring_of(epoch_);
  for (const std::size_t i : scratch_) set_cell(i, stamp);
}

bool AgingBloomFilter::admits_inbound(const PacketRecord& pkt) {
  hashes_.inbound_indexes(pkt.tuple, config_.key_mode, scratch_);
  for (const std::size_t i : scratch_) {
    if (!stamp_fresh(get_cell(i))) return false;
  }
  return true;
}

std::size_t AgingBloomFilter::storage_bytes() const { return cells_.size(); }

}  // namespace upbound
