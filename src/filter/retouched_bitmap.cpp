#include "filter/retouched_bitmap.h"

#include <cmath>
#include <stdexcept>

#include "util/hash.h"

namespace upbound {

void RetouchedBitmapConfig::validate() const {
  bitmap.validate();
  if (!(retouch_fraction >= 0.0) || retouch_fraction >= 0.5) {
    throw std::invalid_argument(
        "RetouchedBitmapConfig: retouch_fraction must be in [0, 0.5)");
  }
}

namespace {

std::uint64_t threshold_for(double fraction) {
  // fraction < 0.5 (validated), so the scaled value is < 2^63 and the
  // cast is exact-range. fraction == 0 yields threshold 0, and the strict
  // `<` comparison then retouches nothing.
  return static_cast<std::uint64_t>(std::ldexp(fraction, 64));
}

}  // namespace

RetouchedBitmapFilter::RetouchedBitmapFilter(
    const RetouchedBitmapConfig& config)
    : config_((config.validate(), config)),
      inner_(config.bitmap),
      hashes_(config.bitmap.bits(), config.bitmap.hash_count,
              config.bitmap.hash_seed),
      retouch_threshold_(threshold_for(config.retouch_fraction)),
      scratch_(config.bitmap.hash_count) {}

bool RetouchedBitmapFilter::retouched(std::uint64_t epoch,
                                      std::size_t bit) const {
  const std::uint64_t h = mix64(
      config_.retouch_seed ^
      hash_combine(epoch, static_cast<std::uint64_t>(bit)));
  return h < retouch_threshold_;
}

bool RetouchedBitmapFilter::admits_inbound(const PacketRecord& pkt) {
  hashes_.inbound_indexes(pkt.tuple, config_.bitmap.key_mode,
                          std::span<std::size_t>{scratch_});
  const std::span<const std::uint64_t> words =
      inner_.vector_words(inner_.current_index());
  const std::uint64_t epoch = inner_.rotations();
  for (const std::size_t bit : scratch_) {
    const bool set = (words[bit >> 6] >> (bit & 63)) & 1;
    if (!set || retouched(epoch, bit)) return false;
  }
  return true;
}

}  // namespace upbound
