// Thread-safe bitmap filter for multi-queue packet paths.
//
// A production edge device services several NIC RX queues concurrently;
// the paper's algorithm is embarrassingly friendly to that: marking is
// idempotent bit-OR, lookup is read-only, and the only mutation that needs
// coordination is the periodic rotation. This variant uses atomic words
// for the bit vectors (lock-free mark/lookup from any number of threads)
// and a mutex held only by rotate().
//
// Approximation note: a mark racing with the concurrent clearing of one
// vector can be partially erased from THAT vector only. Because marks go
// to all k vectors and lookups consult one, the worst case is a
// connection's expiry landing up to one rotation earlier -- within the
// [(k-1)dt, k*dt] window the data structure already quotes.
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "filter/bitmap_filter.h"
#include "filter/rotation_schedule.h"
#include "filter/state_filter.h"

namespace upbound {

class ConcurrentBitmapFilter final : public StateFilter {
 public:
  explicit ConcurrentBitmapFilter(const BitmapFilterConfig& config);

  /// Thread-safe. advance_time serializes rotations internally; marking
  /// and lookup never block.
  void advance_time(SimTime now) override;
  void record_outbound(const PacketRecord& pkt) override;
  bool admits_inbound(const PacketRecord& pkt) override;
  // Batch paths mirror BitmapFilter's hash-then-prefetch-then-touch
  // pipeline over the atomic words. Thread-safe like the scalar ops;
  // scratch lives on the stack so concurrent batch calls never share
  // state. Under single-threaded driving the decisions are bit-identical
  // to the scalar path; under concurrent rotation the usual one-rotation
  // approximation window applies.
  void record_outbound_batch(PacketBatch batch) override;
  void admits_inbound_batch(PacketBatch batch,
                            std::span<bool> admits) override;
  bool inbound_lookup_is_pure() const override { return true; }
  /// Relaxed popcount scan of the current vector; approximate under
  /// concurrent writers, exact when quiescent.
  std::optional<double> occupancy_fraction() const override;
  std::uint64_t expiry_generations() const override { return rotations(); }
  std::size_t storage_bytes() const override;
  std::string name() const override { return "bitmap-concurrent"; }

  std::uint64_t rotations() const {
    return rotations_.load(std::memory_order_relaxed);
  }
  const BitmapFilterConfig& config() const { return config_; }

 private:
  static constexpr std::size_t kBatchChunk = 64;

  // One flat allocation: vector v's word w at words_[v * words_per_vector_
  // + w].
  void set_bit(std::size_t vector, std::size_t bit);
  bool test_bit(std::size_t vector, std::size_t bit) const;

  void rotate_locked();

  BitmapFilterConfig config_;
  BloomHashFamily hashes_;
  std::size_t words_per_vector_;
  std::vector<std::atomic<std::uint64_t>> words_;
  std::atomic<std::size_t> idx_{0};
  std::atomic<std::uint64_t> rotations_{0};

  std::mutex rotate_mutex_;
  RotationSchedule schedule_;  // guarded by rotate_mutex_
  // Lock-free mirror of the next boundary so batch chunking can stop at
  // the rotation edge without taking the mutex per chunk.
  std::atomic<std::int64_t> next_rotation_usec_;
};

}  // namespace upbound
