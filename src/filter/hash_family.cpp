#include "filter/hash_family.h"

#include <cstring>
#include <stdexcept>

namespace upbound {

namespace {

// Serializes the hole-punching key {protocol, internal-address,
// internal-port, external-address}: identical bytes whether derived from
// the outbound tuple or the inverse of the inbound tuple.
constexpr std::size_t kHolePunchKeySize = 11;

void encode_hole_punch_key(const FiveTuple& outbound_view,
                           std::span<std::uint8_t, kHolePunchKeySize> out) {
  out[0] = static_cast<std::uint8_t>(outbound_view.protocol);
  const std::uint32_t s = outbound_view.src_addr.value();
  const std::uint32_t d = outbound_view.dst_addr.value();
  out[1] = static_cast<std::uint8_t>(s >> 24);
  out[2] = static_cast<std::uint8_t>(s >> 16);
  out[3] = static_cast<std::uint8_t>(s >> 8);
  out[4] = static_cast<std::uint8_t>(s);
  out[5] = static_cast<std::uint8_t>(outbound_view.src_port >> 8);
  out[6] = static_cast<std::uint8_t>(outbound_view.src_port);
  out[7] = static_cast<std::uint8_t>(d >> 24);
  out[8] = static_cast<std::uint8_t>(d >> 16);
  out[9] = static_cast<std::uint8_t>(d >> 8);
  out[10] = static_cast<std::uint8_t>(d);
}

// Both key forms must fit one zero-padded 16-byte slot (no murmur body
// blocks) for the batch hasher's short-key kernel to be exact.
static_assert(kTupleKeySize <= 15);
static_assert(kHolePunchKeySize <= 15);

/// Serializes the outbound-view key for `mode` into `slot` and returns
/// its length. `slot` must hold at least kHashKeyStride bytes.
std::size_t encode_key(const FiveTuple& outbound_view, KeyMode mode,
                       std::uint8_t* slot) {
  if (mode == KeyMode::kFullTuple) {
    encode_tuple_key(outbound_view,
                     std::span<std::uint8_t, kTupleKeySize>{
                         slot, kTupleKeySize});
    return kTupleKeySize;
  }
  encode_hole_punch_key(outbound_view,
                        std::span<std::uint8_t, kHolePunchKeySize>{
                            slot, kHolePunchKeySize});
  return kHolePunchKeySize;
}

}  // namespace

BloomHashFamily::BloomHashFamily(std::size_t bits, unsigned hash_count,
                                 std::uint64_t seed)
    : bits_(bits), hash_count_(hash_count), seed_(seed) {
  if (bits == 0) throw std::invalid_argument("BloomHashFamily: bits == 0");
  if (hash_count == 0) {
    throw std::invalid_argument("BloomHashFamily: hash_count == 0");
  }
  if ((bits & (bits - 1)) == 0) mask_ = bits - 1;
}

void BloomHashFamily::indexes_from_hash(const Hash128& h,
                                        std::span<std::size_t> out) const {
  // Force h2 odd so successive probes cycle through distinct offsets even
  // for power-of-two table sizes.
  const std::uint64_t h2 = h.hi | 1;
  std::uint64_t acc = h.lo;
  if (mask_ != 0) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<std::size_t>(acc & mask_);
      acc += h2;
    }
  } else {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<std::size_t>(acc % bits_);
      acc += h2;
    }
  }
}

void BloomHashFamily::indexes_for_key(std::span<const std::uint8_t> key,
                                      std::span<std::size_t> out) const {
  indexes_from_hash(murmur3_x64_128(key, seed_), out);
}

Hash128 BloomHashFamily::outbound_hash(const FiveTuple& sigma_out,
                                       KeyMode mode) const {
  std::uint8_t key[kHashKeyStride];
  const std::size_t len = encode_key(sigma_out, mode, key);
  return murmur3_x64_128(std::span<const std::uint8_t>{key, len}, seed_);
}

Hash128 BloomHashFamily::inbound_hash(const FiveTuple& sigma_in,
                                      KeyMode mode) const {
  return outbound_hash(sigma_in.inverse(), mode);
}

void BloomHashFamily::outbound_hash_batch(PacketBatch batch, KeyMode mode,
                                          std::span<std::uint8_t> key_scratch,
                                          std::span<Hash128> out) const {
  const std::size_t n = batch.size();
  const std::size_t len =
      mode == KeyMode::kFullTuple ? kTupleKeySize : kHolePunchKeySize;
  // Zero the pad bytes once; the short-key kernel loads whole words.
  std::memset(key_scratch.data(), 0, n * kKeyStride);
  for (std::size_t i = 0; i < n; ++i) {
    encode_key(batch[i].tuple, mode, key_scratch.data() + i * kKeyStride);
  }
  murmur3_x64_128_short_batch(key_scratch.data(), len, n, seed_, out.data());
}

void BloomHashFamily::inbound_hash_batch(PacketBatch batch, KeyMode mode,
                                         std::span<std::uint8_t> key_scratch,
                                         std::span<Hash128> out) const {
  const std::size_t n = batch.size();
  const std::size_t len =
      mode == KeyMode::kFullTuple ? kTupleKeySize : kHolePunchKeySize;
  std::memset(key_scratch.data(), 0, n * kKeyStride);
  for (std::size_t i = 0; i < n; ++i) {
    // The inverse of sigma_in is the outbound view of the same connection.
    encode_key(batch[i].tuple.inverse(), mode,
               key_scratch.data() + i * kKeyStride);
  }
  murmur3_x64_128_short_batch(key_scratch.data(), len, n, seed_, out.data());
}

void BloomHashFamily::outbound_indexes(const FiveTuple& sigma_out,
                                       KeyMode mode,
                                       std::span<std::size_t> out) const {
  indexes_from_hash(outbound_hash(sigma_out, mode), out);
}

void BloomHashFamily::inbound_indexes(const FiveTuple& sigma_in, KeyMode mode,
                                      std::span<std::size_t> out) const {
  // The inverse of sigma_in is the outbound view of the same connection.
  outbound_indexes(sigma_in.inverse(), mode, out);
}

}  // namespace upbound
