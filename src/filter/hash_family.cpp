#include "filter/hash_family.h"

#include <stdexcept>

namespace upbound {

namespace {

// Serializes the hole-punching key {protocol, internal-address,
// internal-port, external-address}: identical bytes whether derived from
// the outbound tuple or the inverse of the inbound tuple.
constexpr std::size_t kHolePunchKeySize = 11;

void encode_hole_punch_key(const FiveTuple& outbound_view,
                           std::span<std::uint8_t, kHolePunchKeySize> out) {
  out[0] = static_cast<std::uint8_t>(outbound_view.protocol);
  const std::uint32_t s = outbound_view.src_addr.value();
  const std::uint32_t d = outbound_view.dst_addr.value();
  out[1] = static_cast<std::uint8_t>(s >> 24);
  out[2] = static_cast<std::uint8_t>(s >> 16);
  out[3] = static_cast<std::uint8_t>(s >> 8);
  out[4] = static_cast<std::uint8_t>(s);
  out[5] = static_cast<std::uint8_t>(outbound_view.src_port >> 8);
  out[6] = static_cast<std::uint8_t>(outbound_view.src_port);
  out[7] = static_cast<std::uint8_t>(d >> 24);
  out[8] = static_cast<std::uint8_t>(d >> 16);
  out[9] = static_cast<std::uint8_t>(d >> 8);
  out[10] = static_cast<std::uint8_t>(d);
}

}  // namespace

BloomHashFamily::BloomHashFamily(std::size_t bits, unsigned hash_count,
                                 std::uint64_t seed)
    : bits_(bits), hash_count_(hash_count), seed_(seed) {
  if (bits == 0) throw std::invalid_argument("BloomHashFamily: bits == 0");
  if (hash_count == 0) {
    throw std::invalid_argument("BloomHashFamily: hash_count == 0");
  }
  if ((bits & (bits - 1)) == 0) mask_ = bits - 1;
}

void BloomHashFamily::indexes_for_key(std::span<const std::uint8_t> key,
                                      std::span<std::size_t> out) const {
  const Hash128 h = murmur3_x64_128(key, seed_);
  // Force h2 odd so successive probes cycle through distinct offsets even
  // for power-of-two table sizes.
  const std::uint64_t h2 = h.hi | 1;
  std::uint64_t acc = h.lo;
  if (mask_ != 0) {
    for (unsigned i = 0; i < hash_count_; ++i) {
      out[i] = static_cast<std::size_t>(acc & mask_);
      acc += h2;
    }
  } else {
    for (unsigned i = 0; i < hash_count_; ++i) {
      out[i] = static_cast<std::size_t>(acc % bits_);
      acc += h2;
    }
  }
}

void BloomHashFamily::outbound_indexes(const FiveTuple& sigma_out,
                                       KeyMode mode,
                                       std::span<std::size_t> out) const {
  if (mode == KeyMode::kFullTuple) {
    std::uint8_t key[kTupleKeySize];
    encode_tuple_key(sigma_out, key);
    indexes_for_key(std::span<const std::uint8_t>{key, sizeof(key)}, out);
  } else {
    std::uint8_t key[kHolePunchKeySize];
    encode_hole_punch_key(sigma_out, key);
    indexes_for_key(std::span<const std::uint8_t>{key, sizeof(key)}, out);
  }
}

void BloomHashFamily::inbound_indexes(const FiveTuple& sigma_in, KeyMode mode,
                                      std::span<std::size_t> out) const {
  // The inverse of sigma_in is the outbound view of the same connection.
  outbound_indexes(sigma_in.inverse(), mode, out);
}

}  // namespace upbound
