// Common interface for the three connection-state trackers compared in the
// paper's evaluation: the bitmap filter (the contribution), the naive
// exact-timer solution (Section 4.2's strawman), and the SPI baseline
// (Section 5.3). Each answers one question on the inbound path -- "did an
// inner client recently talk to this socket pair?" -- and differs only in
// state representation and expiry semantics.
#pragma once

#include <cstddef>
#include <string>

#include "net/packet.h"
#include "util/time.h"

namespace upbound {

class StateFilter {
 public:
  virtual ~StateFilter() = default;

  /// Advances internal timers to `now`. Must be called with non-decreasing
  /// times; packet callbacks assume timers are current.
  virtual void advance_time(SimTime now) = 0;

  /// Records state for an outbound packet (tuple written sender-first,
  /// i.e. source is the internal client). Outbound packets always pass.
  virtual void record_outbound(const PacketRecord& pkt) = 0;

  /// True if state exists admitting this inbound packet (tuple written
  /// sender-first, i.e. destination is the internal client). Inbound
  /// packets without state are subject to the drop policy.
  virtual bool admits_inbound(const PacketRecord& pkt) = 0;

  /// Current heap footprint of the connection state, in bytes.
  virtual std::size_t storage_bytes() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace upbound
