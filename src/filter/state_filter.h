// Common interface for the three connection-state trackers compared in the
// paper's evaluation: the bitmap filter (the contribution), the naive
// exact-timer solution (Section 4.2's strawman), and the SPI baseline
// (Section 5.3). Each answers one question on the inbound path -- "did an
// inner client recently talk to this socket pair?" -- and differs only in
// state representation and expiry semantics.
//
// The scalar methods are the semantic ground truth. The *_batch methods
// exist so hot implementations can amortize virtual dispatch, hash once
// per packet, and overlap bit-vector cache misses; their contract is that
// a batch call is observably identical to the per-packet sequence
// {advance_time(pkt.timestamp); <op>(pkt)} in batch order. The defaults
// below implement exactly that loop, so new filters are batch-correct for
// free and the fast paths can be differential-tested against them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "net/packet.h"
#include "net/packet_batch.h"
#include "util/time.h"

namespace upbound {

class StateFilter {
 public:
  virtual ~StateFilter() = default;

  /// Advances internal timers to `now`. Must be called with non-decreasing
  /// times; packet callbacks assume timers are current.
  virtual void advance_time(SimTime now) = 0;

  /// Records state for an outbound packet (tuple written sender-first,
  /// i.e. source is the internal client). Outbound packets always pass.
  virtual void record_outbound(const PacketRecord& pkt) = 0;

  /// True if state exists admitting this inbound packet (tuple written
  /// sender-first, i.e. destination is the internal client). Inbound
  /// packets without state are subject to the drop policy.
  virtual bool admits_inbound(const PacketRecord& pkt) = 0;

  /// Records a time-sorted batch of outbound packets. Equivalent to
  /// {advance_time(pkt.timestamp); record_outbound(pkt)} per packet in
  /// batch order; overrides may reorder internally only where the result
  /// is indistinguishable (e.g. commuting idempotent bit marks between
  /// rotations).
  virtual void record_outbound_batch(PacketBatch batch) {
    for (const PacketRecord& pkt : batch) {
      advance_time(pkt.timestamp);
      record_outbound(pkt);
    }
  }

  /// Looks up a time-sorted batch of inbound packets; writes one verdict
  /// per packet into `admits` (which must be at least batch.size() long).
  /// Equivalent to {advance_time(pkt.timestamp); admits_inbound(pkt)} per
  /// packet in batch order.
  virtual void admits_inbound_batch(PacketBatch batch,
                                    std::span<bool> admits) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      advance_time(batch[i].timestamp);
      admits[i] = admits_inbound(batch[i]);
    }
  }

  /// True when admits_inbound is a pure lookup: no observable state
  /// change, so callers may evaluate it speculatively for packets whose
  /// verdict ends up unused (the batched edge router relies on this to
  /// look up a whole inbound run before consulting the blocklist).
  /// Conservative default: false.
  virtual bool inbound_lookup_is_pure() const { return false; }

  /// Set-cell fraction U of the structure consulted by admits_inbound
  /// (the current Bloom vector / counter generation). Paper Eq. 2's input
  /// and the health monitor's saturation signal. std::nullopt when the
  /// backend has no meaningful occupancy (exact-state filters); the
  /// registry's occupancy capability bit mirrors this.
  virtual std::optional<double> occupancy_fraction() const {
    return std::nullopt;
  }

  /// Number of expiry generations completed so far (bitmap rotations,
  /// aging epochs, counting-generation clears). 0 for filters whose
  /// expiry is continuous rather than generational; the adaptive tuner
  /// uses transitions of this value to fold occupancy peaks.
  virtual std::uint64_t expiry_generations() const { return 0; }

  /// Retunes the generational expiry interval dt at runtime (live-mode
  /// `set dt` reconfiguration). Returns false when the backend has no
  /// runtime-adjustable rotation schedule (the registry's
  /// kCapRotateInterval bit mirrors this); throws std::invalid_argument
  /// on a non-positive interval. Implementations re-anchor the next
  /// boundary to the last completed one so already-accumulated state ages
  /// on the new schedule without a partial-interval glitch.
  virtual bool set_rotate_interval(Duration /*dt*/) { return false; }

  /// Current heap footprint of the connection state, in bytes.
  virtual std::size_t storage_bytes() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace upbound
