#include "filter/filter_registry.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "tenant/hierarchical_filter.h"

namespace upbound {

namespace {

double parse_double(const std::string& key, const std::string& raw) {
  try {
    std::size_t used = 0;
    const double value = std::stod(raw, &used);
    if (used != raw.size()) throw std::invalid_argument(raw);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + ": not a number: '" + raw +
                                "'");
  }
}

std::uint64_t parse_u64(const std::string& key, const std::string& raw) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(raw, &used, 0);
    if (used != raw.size()) throw std::invalid_argument(raw);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + ": not an integer: '" + raw +
                                "'");
  }
}

}  // namespace

double FilterArgs::get_double(const std::string& key, double fallback) const {
  const std::optional<std::string> raw = value(key);
  return raw.has_value() ? parse_double(key, *raw) : fallback;
}

std::uint64_t FilterArgs::get_u64(const std::string& key,
                                  std::uint64_t fallback) const {
  const std::optional<std::string> raw = value(key);
  return raw.has_value() ? parse_u64(key, *raw) : fallback;
}

unsigned FilterArgs::get_unsigned(const std::string& key,
                                  unsigned fallback) const {
  return static_cast<unsigned>(get_u64(key, fallback));
}

const std::string& FilterSpec::kind() const {
  if (backend == nullptr) {
    throw std::logic_error("FilterSpec: empty spec has no kind");
  }
  return backend->name;
}

namespace {

template <typename Config>
FilterSpec spec_of(const std::string& backend_name, Config config) {
  FilterSpec spec;
  spec.backend = &FilterRegistry::instance().at(backend_name);
  spec.config = std::make_shared<const Config>(std::move(config));
  spec.config_type = &typeid(Config);
  return spec;
}

/// Shared {bits, k, m, dt, hole-punching} block of the bitmap-geometry
/// backends; the paper's Section 5.1 defaults.
BitmapFilterConfig bitmap_config_from(const FilterArgs& args) {
  BitmapFilterConfig config;
  config.log2_bits = args.get_unsigned("bits", 20);
  config.vector_count = args.get_unsigned("k", 4);
  config.hash_count = args.get_unsigned("m", 3);
  config.rotate_interval = Duration::sec(args.get_double("dt", 5.0));
  if (args.flag("hole-punching")) config.key_mode = KeyMode::kHolePunching;
  config.validate();
  return config;
}

Duration generational_window(unsigned generations, Duration interval) {
  return interval * static_cast<double>(generations - 1);
}

unsigned ceil_log2(std::uint64_t n) {
  unsigned bits = 0;
  while ((std::uint64_t{1} << bits) < n) ++bits;
  return bits;
}

/// The `hierarchical` backend's argument block. The fine tier reuses the
/// chosen backend's own argument names (bits/k/m/dt/timeout/...); the
/// front tier is derived so its no-false-negative window covers the fine
/// tier's maximum admission window exactly -- the condition that makes
/// the front short-circuit verdict-exact.
HierarchicalFilterConfig hierarchical_config_from(const FilterArgs& args) {
  HierarchicalFilterConfig config;

  const std::string mode_text =
      args.value("tenant-mode").value_or("subscriber");
  const std::optional<TenantMode> mode = parse_tenant_mode(mode_text);
  if (!mode.has_value()) {
    throw std::invalid_argument(
        "--tenant-mode: expected 'subscriber' or 'prefix24', got '" +
        mode_text + "'");
  }
  config.table.mode = *mode;

  const std::string fine_name = args.value("fine").value_or("bitmap");
  if (fine_name == "hierarchical") {
    throw std::invalid_argument("--fine: hierarchical filters cannot nest");
  }
  config.fine = FilterRegistry::instance().at(fine_name).parse(args);
  config.fine_window = filter_spec_max_window(config.fine);

  // --tenants is a sizing hint: it widens the default front filter and
  // LRU cap so the shared tier absorbs the aggregate without saturating.
  const std::uint64_t tenants_hint = args.get_u64("tenants", 0);
  config.fine_cap = args.get_u64(
      "tenant-cap",
      tenants_hint > 0 ? std::max<std::uint64_t>(1, 2 * tenants_hint)
                       : 1024);

  const std::string front_name =
      args.value("front").value_or("bitmap-blocked");
  BitmapFilterConfig front;
  const unsigned fine_bits = args.get_unsigned("bits", 20);
  front.log2_bits = args.get_unsigned(
      "front-bits",
      std::clamp(fine_bits + (tenants_hint > 0 ? ceil_log2(tenants_hint)
                                               : 2u),
                 9u, 26u));
  front.vector_count = args.get_unsigned("front-k", 5);
  front.hash_count = args.get_unsigned("front-m", 3);
  if (front.vector_count < 2) {
    throw std::invalid_argument("--front-k: must be >= 2");
  }
  if (const std::optional<std::string> dt = args.value("front-dt")) {
    front.rotate_interval = Duration::sec(args.get_double("front-dt", 0.0));
  } else {
    // Ceiling division in microseconds: (front-k - 1) * dt >= fine
    // window with no floating-point rounding shortfall.
    const std::int64_t per =
        (config.fine_window.count_usec() + front.vector_count - 2) /
        (front.vector_count - 1);
    front.rotate_interval = Duration::usec(per);
  }
  if (args.flag("hole-punching")) front.key_mode = KeyMode::kHolePunching;
  if (front_name == "bitmap") {
    config.front = bitmap_filter_spec(front);
  } else if (front_name == "bitmap-blocked") {
    config.front = blocked_bitmap_filter_spec(front);
  } else if (front_name == "bitmap-mt") {
    config.front = concurrent_bitmap_filter_spec(front);
  } else {
    throw std::invalid_argument(
        "--front: expected bitmap|bitmap-blocked|bitmap-mt, got '" +
        front_name + "'");
  }

  if (!args.flag("no-digest")) {
    StateDigestConfig digest;
    digest.log2_bits = args.get_unsigned("digest-bits", 12);
    digest.hash_count = args.get_unsigned("digest-m", 4);
    if (args.flag("hole-punching")) {
      digest.key_mode = KeyMode::kHolePunching;
    }
    digest.validate();
    config.digest = digest;
  }

  config.validate();
  return config;
}

std::vector<BackendDescriptor> build_backends() {
  std::vector<BackendDescriptor> backends;

  {
    BackendDescriptor d;
    d.name = "bitmap";
    d.summary = "the paper's {k x N} rotating bitmap (Section 4)";
    d.capabilities = kCapOccupancy | kCapSnapshot | kCapSharedView |
                     kCapPureLookup | kCapNoFalseNegative |
                     kCapRotateInterval | kCapSimdBatch;
    d.parse = [](const FilterArgs& args) {
      return spec_of("bitmap", bitmap_config_from(args));
    };
    d.make = [](const FilterSpec& spec) -> std::unique_ptr<StateFilter> {
      return std::make_unique<BitmapFilter>(
          spec.config_as<BitmapFilterConfig>());
    };
    d.geometry = [](const FilterSpec& spec) -> std::optional<FilterGeometry> {
      const auto& c = spec.config_as<BitmapFilterConfig>();
      return FilterGeometry{c.bits(), c.hash_count, c.vector_count,
                            c.rotate_interval};
    };
    d.guaranteed_window = [](const FilterSpec& spec) {
      const auto& c = spec.config_as<BitmapFilterConfig>();
      return generational_window(c.vector_count, c.rotate_interval);
    };
    backends.push_back(std::move(d));
  }

  {
    BackendDescriptor d;
    d.name = "bitmap-mt";
    d.summary = "lock-free concurrent bitmap for multi-queue datapaths";
    d.capabilities = kCapOccupancy | kCapSharedView | kCapPureLookup |
                     kCapNoFalseNegative;
    d.parse = [](const FilterArgs& args) {
      return spec_of("bitmap-mt", bitmap_config_from(args));
    };
    d.make = [](const FilterSpec& spec) -> std::unique_ptr<StateFilter> {
      return std::make_unique<ConcurrentBitmapFilter>(
          spec.config_as<BitmapFilterConfig>());
    };
    d.geometry = [](const FilterSpec& spec) -> std::optional<FilterGeometry> {
      const auto& c = spec.config_as<BitmapFilterConfig>();
      return FilterGeometry{c.bits(), c.hash_count, c.vector_count,
                            c.rotate_interval};
    };
    d.guaranteed_window = [](const FilterSpec& spec) {
      const auto& c = spec.config_as<BitmapFilterConfig>();
      return generational_window(c.vector_count, c.rotate_interval);
    };
    backends.push_back(std::move(d));
  }

  {
    BackendDescriptor d;
    d.name = "bitmap-blocked";
    d.summary =
        "cache-resident bitmap: all m probes of a key in one 512-bit block";
    // Same semantics and knobs as bitmap, different bit placement: no
    // snapshot compatibility (kCapSnapshot is bitmap-only by design) and
    // no shared-view (plain, unsynchronized stores).
    d.capabilities = kCapOccupancy | kCapPureLookup | kCapNoFalseNegative |
                     kCapRotateInterval | kCapSimdBatch;
    d.parse = [](const FilterArgs& args) {
      const BitmapFilterConfig config = bitmap_config_from(args);
      if (config.log2_bits < 9) {
        throw std::invalid_argument(
            "--bits: bitmap-blocked needs >= 9 (one 512-bit block per "
            "vector)");
      }
      return spec_of("bitmap-blocked", config);
    };
    d.make = [](const FilterSpec& spec) -> std::unique_ptr<StateFilter> {
      return std::make_unique<BlockedBitmapFilter>(
          spec.config_as<BitmapFilterConfig>());
    };
    d.geometry = [](const FilterSpec& spec) -> std::optional<FilterGeometry> {
      const auto& c = spec.config_as<BitmapFilterConfig>();
      return FilterGeometry{c.bits(), c.hash_count, c.vector_count,
                            c.rotate_interval};
    };
    d.guaranteed_window = [](const FilterSpec& spec) {
      const auto& c = spec.config_as<BitmapFilterConfig>();
      return generational_window(c.vector_count, c.rotate_interval);
    };
    backends.push_back(std::move(d));
  }

  {
    BackendDescriptor d;
    d.name = "aging";
    d.summary = "4-bit age-stamp cells, programmable expiry at fixed memory";
    // No kCapOccupancy: a set-cell fraction over 13 ring values is not
    // the Eq. 2 utilization input (the health monitor reports occupancy
    // as unsupported for this backend).
    d.capabilities = kCapPureLookup | kCapNoFalseNegative;
    d.parse = [](const FilterArgs& args) {
      AgingBloomConfig config;
      config.cells = std::size_t{1} << args.get_unsigned("bits", 20);
      config.hash_count = args.get_unsigned("m", 3);
      config.epoch = Duration::sec(args.get_double("dt", 5.0));
      config.valid_epochs = args.get_unsigned("k", 4);
      if (args.flag("hole-punching")) {
        config.key_mode = KeyMode::kHolePunching;
      }
      config.validate();
      return spec_of("aging", config);
    };
    d.make = [](const FilterSpec& spec) -> std::unique_ptr<StateFilter> {
      return std::make_unique<AgingBloomFilter>(
          spec.config_as<AgingBloomConfig>());
    };
    d.geometry = [](const FilterSpec& spec) -> std::optional<FilterGeometry> {
      const auto& c = spec.config_as<AgingBloomConfig>();
      return FilterGeometry{c.cells, c.hash_count, c.valid_epochs, c.epoch};
    };
    d.guaranteed_window = [](const FilterSpec& spec) {
      const auto& c = spec.config_as<AgingBloomConfig>();
      return generational_window(c.valid_epochs, c.epoch);
    };
    backends.push_back(std::move(d));
  }

  {
    BackendDescriptor d;
    d.name = "spi";
    d.summary = "exact per-flow conntrack baseline (Section 5.3)";
    // Lookups refresh flow timers (not pure); exact state has no Bloom
    // occupancy; no snapshot format.
    d.capabilities = kCapNoFalseNegative;
    d.parse = [](const FilterArgs& args) {
      SpiFilterConfig config;
      config.idle_timeout =
          Duration::sec(args.get_double("timeout", 240.0));
      return spec_of("spi", config);
    };
    d.make = [](const FilterSpec& spec) -> std::unique_ptr<StateFilter> {
      return std::make_unique<SpiFilter>(spec.config_as<SpiFilterConfig>());
    };
    d.geometry = [](const FilterSpec&) -> std::optional<FilterGeometry> {
      return std::nullopt;
    };
    d.guaranteed_window = [](const FilterSpec& spec) {
      // Conservative: refreshes (including inbound ones) only extend the
      // window past the idle timeout.
      return spec.config_as<SpiFilterConfig>().idle_timeout;
    };
    backends.push_back(std::move(d));
  }

  {
    BackendDescriptor d;
    d.name = "naive";
    d.summary = "exact per-pair timers, the Section 4.2 strawman";
    d.capabilities = kCapPureLookup | kCapNoFalseNegative;
    d.parse = [](const FilterArgs& args) {
      NaiveFilterConfig config;
      config.state_timeout =
          Duration::sec(args.get_double("timeout", 20.0));
      if (args.flag("hole-punching")) {
        config.key_mode = KeyMode::kHolePunching;
      }
      return spec_of("naive", config);
    };
    d.make = [](const FilterSpec& spec) -> std::unique_ptr<StateFilter> {
      return std::make_unique<NaiveFilter>(
          spec.config_as<NaiveFilterConfig>());
    };
    d.geometry = [](const FilterSpec&) -> std::optional<FilterGeometry> {
      return std::nullopt;
    };
    d.guaranteed_window = [](const FilterSpec& spec) {
      return spec.config_as<NaiveFilterConfig>().state_timeout;
    };
    backends.push_back(std::move(d));
  }

  {
    BackendDescriptor d;
    d.name = "retouched";
    d.summary =
        "bitmap with a per-epoch retouch mask: trades selected false "
        "positives for false negatives (Donnet et al.)";
    // Deliberately NOT kCapNoFalseNegative (that is the whole trade) and
    // not kCapSnapshot (the mask is epoch-local; restoring the inner
    // bitmap alone would change verdicts silently).
    d.capabilities = kCapOccupancy | kCapPureLookup;
    d.parse = [](const FilterArgs& args) {
      RetouchedBitmapConfig config;
      config.bitmap = bitmap_config_from(args);
      config.retouch_fraction = args.get_double("retouch-fraction", 0.01);
      config.retouch_seed =
          args.get_u64("retouch-seed", config.retouch_seed);
      config.validate();
      return spec_of("retouched", config);
    };
    d.make = [](const FilterSpec& spec) -> std::unique_ptr<StateFilter> {
      return std::make_unique<RetouchedBitmapFilter>(
          spec.config_as<RetouchedBitmapConfig>());
    };
    d.geometry = [](const FilterSpec& spec) -> std::optional<FilterGeometry> {
      const auto& c = spec.config_as<RetouchedBitmapConfig>().bitmap;
      return FilterGeometry{c.bits(), c.hash_count, c.vector_count,
                            c.rotate_interval};
    };
    d.guaranteed_window = [](const FilterSpec& spec) {
      const auto& c = spec.config_as<RetouchedBitmapConfig>().bitmap;
      return generational_window(c.vector_count, c.rotate_interval);
    };
    backends.push_back(std::move(d));
  }

  {
    BackendDescriptor d;
    d.name = "counting";
    d.summary =
        "4-bit counting generations with per-tuple deletion on TCP close";
    d.capabilities = kCapOccupancy | kCapDeletion | kCapPureLookup |
                     kCapNoFalseNegative;
    d.parse = [](const FilterArgs& args) {
      CountingFilterConfig config;
      config.log2_cells = args.get_unsigned("bits", 20);
      config.generation_count = args.get_unsigned("k", 4);
      config.hash_count = args.get_unsigned("m", 3);
      config.rotate_interval = Duration::sec(args.get_double("dt", 5.0));
      if (args.flag("hole-punching")) {
        config.key_mode = KeyMode::kHolePunching;
      }
      if (args.flag("no-close-delete")) config.delete_on_close = false;
      config.validate();
      return spec_of("counting", config);
    };
    d.make = [](const FilterSpec& spec) -> std::unique_ptr<StateFilter> {
      return std::make_unique<CountingFilter>(
          spec.config_as<CountingFilterConfig>());
    };
    d.geometry = [](const FilterSpec& spec) -> std::optional<FilterGeometry> {
      const auto& c = spec.config_as<CountingFilterConfig>();
      return FilterGeometry{c.cells(), c.hash_count, c.generation_count,
                            c.rotate_interval};
    };
    d.guaranteed_window = [](const FilterSpec& spec) {
      const auto& c = spec.config_as<CountingFilterConfig>();
      return generational_window(c.generation_count, c.rotate_interval);
    };
    backends.push_back(std::move(d));
  }

  {
    BackendDescriptor d;
    d.name = "hierarchical";
    d.summary =
        "two-level multi-tenant: shared front tier + per-subscriber fine "
        "filters (any backend) with digest exchange";
    // kCapNoFalseNegative describes the default configuration (bitmap
    // fine tier, front window covering it, LRU cap unsaturated); a
    // retouched fine tier or cap pressure carries that tier's trade
    // through, exactly as the flat deployment would. Lookups touch LRU
    // recency, so no kCapPureLookup.
    d.capabilities = kCapOccupancy | kCapNoFalseNegative | kCapTenancy;
    d.parse = [](const FilterArgs& args) {
      return spec_of("hierarchical", hierarchical_config_from(args));
    };
    d.make = [](const FilterSpec& spec) -> std::unique_ptr<StateFilter> {
      return std::make_unique<HierarchicalFilter>(
          spec.config_as<HierarchicalFilterConfig>());
    };
    d.geometry = [](const FilterSpec& spec) -> std::optional<FilterGeometry> {
      // The shared front tier's geometry: the occupancy signal the tuner
      // folds comes from there.
      const auto& c = spec.config_as<HierarchicalFilterConfig>();
      return c.front.backend->geometry(c.front);
    };
    d.guaranteed_window = [](const FilterSpec& spec) {
      // The fine tier decides admissions, so its window is the binding
      // one (the front is constructed to cover it).
      const auto& c = spec.config_as<HierarchicalFilterConfig>();
      return c.fine.backend->guaranteed_window(c.fine);
    };
    backends.push_back(std::move(d));
  }

  return backends;
}

}  // namespace

FilterRegistry::FilterRegistry() : backends_(build_backends()) {}

const FilterRegistry& FilterRegistry::instance() {
  static const FilterRegistry registry;
  return registry;
}

const BackendDescriptor* FilterRegistry::find(const std::string& name) const {
  for (const BackendDescriptor& backend : backends_) {
    if (backend.name == name) return &backend;
  }
  return nullptr;
}

const BackendDescriptor& FilterRegistry::at(const std::string& name) const {
  const BackendDescriptor* backend = find(name);
  if (backend == nullptr) {
    throw std::invalid_argument("unknown filter backend '" + name + "' (" +
                                names_joined("|") + ")");
  }
  return *backend;
}

std::vector<std::string> FilterRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const BackendDescriptor& backend : backends_) {
    out.push_back(backend.name);
  }
  return out;
}

std::string FilterRegistry::names_joined(const std::string& sep) const {
  std::ostringstream out;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (i != 0) out << sep;
    out << backends_[i].name;
  }
  return out.str();
}

FilterSpec FilterRegistry::parse(const std::string& name,
                                 const FilterArgs& args) const {
  return at(name).parse(args);
}

std::unique_ptr<StateFilter> make_state_filter(const FilterSpec& spec) {
  if (spec.backend == nullptr) {
    throw std::logic_error("make_state_filter: empty spec");
  }
  return spec.backend->make(spec);
}

FilterSpec bitmap_filter_spec(const BitmapFilterConfig& config) {
  config.validate();
  return spec_of("bitmap", config);
}

FilterSpec concurrent_bitmap_filter_spec(const BitmapFilterConfig& config) {
  config.validate();
  return spec_of("bitmap-mt", config);
}

FilterSpec blocked_bitmap_filter_spec(const BitmapFilterConfig& config) {
  config.validate();
  if (config.log2_bits < 9) {
    throw std::invalid_argument(
        "blocked_bitmap_filter_spec: log2_bits must be >= 9");
  }
  return spec_of("bitmap-blocked", config);
}

FilterSpec aging_filter_spec(const AgingBloomConfig& config) {
  config.validate();
  return spec_of("aging", config);
}

FilterSpec spi_filter_spec(const SpiFilterConfig& config) {
  return spec_of("spi", config);
}

FilterSpec naive_filter_spec(const NaiveFilterConfig& config) {
  return spec_of("naive", config);
}

FilterSpec retouched_filter_spec(const RetouchedBitmapConfig& config) {
  config.validate();
  return spec_of("retouched", config);
}

FilterSpec counting_filter_spec(const CountingFilterConfig& config) {
  config.validate();
  return spec_of("counting", config);
}

}  // namespace upbound
