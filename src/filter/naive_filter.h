// The naive exact solution the paper sketches at the start of Section 4.2:
// associate a timer of initial value T with each outbound socket pair,
// reset it on every outbound packet, delete the pair when it expires. It is
// the ground truth the bitmap filter approximates -- zero false positives
// and zero false negatives within timer granularity -- at O(active
// connections) storage, which is exactly why the paper replaces it.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "filter/hash_family.h"
#include "filter/state_filter.h"
#include "net/five_tuple.h"

namespace upbound {

struct NaiveFilterConfig {
  /// The timer initial value T (equals the bitmap's T_e for comparisons).
  Duration state_timeout = Duration::sec(20.0);
  /// Hash key fields; kHolePunching ignores the external port like the
  /// bitmap filter's hole-punching mode.
  KeyMode key_mode = KeyMode::kFullTuple;
};

class NaiveFilter final : public StateFilter {
 public:
  explicit NaiveFilter(const NaiveFilterConfig& config);

  void advance_time(SimTime now) override;
  void record_outbound(const PacketRecord& pkt) override;
  bool admits_inbound(const PacketRecord& pkt) override;
  // admits_inbound is a pure map lookup (expiry is handled by
  // advance_time), so speculative batch evaluation is safe.
  bool inbound_lookup_is_pure() const override { return true; }
  std::size_t storage_bytes() const override;
  std::string name() const override { return "naive"; }

  std::size_t active_pairs() const { return expiry_.size(); }

 private:
  /// Key seen from the outbound direction; external port zeroed in
  /// hole-punching mode so it compares equal for any peer port.
  FiveTuple key_of_outbound(FiveTuple t) const;

  NaiveFilterConfig config_;
  SimTime now_;
  std::unordered_map<FiveTuple, SimTime, FiveTupleHash> expiry_;
  // FIFO of (refresh time, key) for amortized O(1) expiry sweeps; stale
  // entries (superseded by a later refresh) are skipped on pop.
  std::deque<std::pair<SimTime, FiveTuple>> queue_;
};

}  // namespace upbound
