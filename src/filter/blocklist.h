// Blocked-connection store implementing the Section 5.3 simulation rule:
// when an inbound packet is dropped by the filter, its socket pair sigma is
// stored and every future packet matching sigma or its inverse is dropped
// without consulting the bitmap -- modelling a connection that never got
// established.
//
// Entries carry an optional TTL so long replays cannot grow the store
// unboundedly (a blocked peer that stays silent for the TTL is forgotten,
// exactly like a real endpoint giving up on retries).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "net/five_tuple.h"
#include "net/packet.h"
#include "util/time.h"

namespace upbound {

class BlockList {
 public:
  /// `ttl` <= 0 means entries never expire.
  explicit BlockList(Duration ttl = Duration{});

  /// Records sigma as blocked at time `now`.
  void block(const FiveTuple& sigma, SimTime now);

  /// True when sigma or its inverse was blocked (and not expired).
  /// Refreshes the entry's TTL: continued retries keep the block alive.
  bool is_blocked(const FiveTuple& sigma, SimTime now);

  std::size_t size() const { return blocked_.size(); }
  std::uint64_t total_blocked() const { return total_blocked_; }

 private:
  void sweep(SimTime now);

  Duration ttl_;
  // Keyed by the canonical (direction-independent) tuple.
  std::unordered_map<FiveTuple, SimTime, CanonicalTupleHash, CanonicalTupleEq>
      blocked_;
  std::deque<std::pair<SimTime, FiveTuple>> queue_;
  std::uint64_t total_blocked_ = 0;
};

}  // namespace upbound
