#include "filter/params.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace upbound {

double penetration_probability_at_utilization(double utilization,
                                              unsigned hash_count) {
  if (utilization < 0.0 || utilization > 1.0) {
    throw std::invalid_argument("utilization must be in [0, 1]");
  }
  if (hash_count == 0) throw std::invalid_argument("hash_count == 0");
  return std::pow(utilization, static_cast<double>(hash_count));
}

double penetration_probability(std::size_t connections, unsigned hash_count,
                               std::size_t bits) {
  if (bits == 0) throw std::invalid_argument("bits == 0");
  const double u = static_cast<double>(connections) *
                   static_cast<double>(hash_count) /
                   static_cast<double>(bits);
  return penetration_probability_at_utilization(std::min(u, 1.0), hash_count);
}

double optimal_hash_count_real(std::size_t bits, std::size_t connections) {
  if (bits == 0 || connections == 0) {
    throw std::invalid_argument("bits and connections must be positive");
  }
  return static_cast<double>(bits) /
         (std::exp(1.0) * static_cast<double>(connections));
}

unsigned optimal_hash_count(std::size_t bits, std::size_t connections) {
  const double m = optimal_hash_count_real(bits, connections);
  if (m <= 1.0) return 1;
  const unsigned lo = static_cast<unsigned>(std::floor(m));
  const unsigned hi = lo + 1;
  // Pick whichever integer neighbour yields the lower Eq. 3 probability.
  const double p_lo = penetration_probability(connections, lo, bits);
  const double p_hi = penetration_probability(connections, hi, bits);
  return p_lo <= p_hi ? lo : hi;
}

std::size_t max_connections_for(double target_p, std::size_t bits) {
  if (!(target_p > 0.0) || !(target_p < 1.0)) {
    throw std::invalid_argument("target_p must be in (0, 1)");
  }
  if (bits == 0) throw std::invalid_argument("bits == 0");
  // Eq. 6: c <= -N / (e * ln p).
  const double c = -static_cast<double>(bits) /
                   (std::exp(1.0) * std::log(target_p));
  return static_cast<std::size_t>(c);
}

std::string BitmapAdvice::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{N=%zu bits, k=%u, dt=%s, m=%u, Te=%s, memory=%zu bytes, "
                "expected p=%.4g}",
                bits, vector_count, rotate_interval.to_string().c_str(),
                hash_count, expiry_timer.to_string().c_str(), memory_bytes,
                expected_penetration);
  return buf;
}

BitmapAdvice advise(std::size_t bits, unsigned vector_count,
                    Duration rotate_interval, std::size_t connections) {
  if (vector_count == 0 || rotate_interval <= Duration{}) {
    throw std::invalid_argument("advise: bad k or dt");
  }
  BitmapAdvice advice;
  advice.bits = bits;
  advice.vector_count = vector_count;
  advice.rotate_interval = rotate_interval;
  advice.hash_count = optimal_hash_count(bits, connections);
  advice.expiry_timer = rotate_interval * static_cast<double>(vector_count);
  advice.memory_bytes = vector_count * bits / 8;
  advice.expected_penetration =
      penetration_probability(connections, advice.hash_count, bits);
  return advice;
}

}  // namespace upbound
