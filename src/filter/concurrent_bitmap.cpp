#include "filter/concurrent_bitmap.h"

#include <bit>

#include "util/prefetch.h"

namespace upbound {

ConcurrentBitmapFilter::ConcurrentBitmapFilter(
    const BitmapFilterConfig& config)
    : config_((config.validate(), config)),
      hashes_(config.bits(), config.hash_count, config.hash_seed),
      words_per_vector_((config.bits() + 63) / 64),
      words_(words_per_vector_ * config.vector_count),
      schedule_(SimTime::origin() + config.rotate_interval,
                config.rotate_interval),
      next_rotation_usec_(schedule_.next_boundary().usec()) {
  for (auto& word : words_) word.store(0, std::memory_order_relaxed);
}

void ConcurrentBitmapFilter::set_bit(std::size_t vector, std::size_t bit) {
  words_[vector * words_per_vector_ + (bit >> 6)].fetch_or(
      std::uint64_t{1} << (bit & 63), std::memory_order_release);
}

bool ConcurrentBitmapFilter::test_bit(std::size_t vector,
                                      std::size_t bit) const {
  return (words_[vector * words_per_vector_ + (bit >> 6)].load(
              std::memory_order_acquire) >>
          (bit & 63)) &
         1;
}

void ConcurrentBitmapFilter::rotate_locked() {
  const std::size_t last = idx_.load(std::memory_order_relaxed);
  const std::size_t next = (last + 1) % config_.vector_count;
  // Publish the new index BEFORE clearing the old vector: the next
  // current vector already carries every live mark (marks go to all k
  // vectors), so lookups never observe a half-cleared vector. Stragglers
  // still reading `last` during the clear can only see bits disappear --
  // a one-rotation-early expiry, never a resurrection.
  idx_.store(next, std::memory_order_release);
  for (std::size_t w = 0; w < words_per_vector_; ++w) {
    words_[last * words_per_vector_ + w].store(0, std::memory_order_relaxed);
  }
  rotations_.fetch_add(1, std::memory_order_relaxed);
}

void ConcurrentBitmapFilter::advance_time(SimTime now) {
  // Fast path without the lock: most calls are not at a rotation edge.
  if (now < SimTime::from_usec(
                next_rotation_usec_.load(std::memory_order_acquire))) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock{rotate_mutex_};
    const std::uint64_t due = schedule_.advance(now);
    if (due >= config_.vector_count) {
      // k or more boundaries at once (clock-step fault): every vector was
      // cleared at least once along the way, so catch up with one full
      // wipe in O(k) instead of one rotate per missed interval. Publish
      // the final index first, as in rotate_locked(): stragglers can only
      // see bits disappear early, never resurrect.
      const std::size_t last = idx_.load(std::memory_order_relaxed);
      idx_.store((last + due) % config_.vector_count,
                 std::memory_order_release);
      for (auto& word : words_) word.store(0, std::memory_order_relaxed);
      rotations_.fetch_add(due, std::memory_order_relaxed);
    } else {
      for (std::uint64_t i = 0; i < due; ++i) rotate_locked();
    }
    next_rotation_usec_.store(schedule_.next_boundary().usec(),
                              std::memory_order_release);
  }
}

void ConcurrentBitmapFilter::record_outbound(const PacketRecord& pkt) {
  std::size_t indexes[64];
  std::span<std::size_t> scratch{indexes, config_.hash_count};
  hashes_.outbound_indexes(pkt.tuple, config_.key_mode, scratch);
  for (std::size_t v = 0; v < config_.vector_count; ++v) {
    for (const std::size_t bit : scratch) set_bit(v, bit);
  }
}

bool ConcurrentBitmapFilter::admits_inbound(const PacketRecord& pkt) {
  std::size_t indexes[64];
  std::span<std::size_t> scratch{indexes, config_.hash_count};
  hashes_.inbound_indexes(pkt.tuple, config_.key_mode, scratch);
  const std::size_t current = idx_.load(std::memory_order_acquire);
  for (const std::size_t bit : scratch) {
    if (!test_bit(current, bit)) return false;
  }
  return true;
}

void ConcurrentBitmapFilter::record_outbound_batch(PacketBatch batch) {
  // Stack scratch: concurrent batch calls from different threads must not
  // share state. hash_count is capped at 64 by config validation.
  std::size_t slots[kBatchChunk * 64];
  const std::size_t m = config_.hash_count;
  std::size_t i = 0;
  while (i < batch.size()) {
    advance_time(batch[i].timestamp);
    const SimTime edge = SimTime::from_usec(
        next_rotation_usec_.load(std::memory_order_acquire));
    std::size_t j = i + 1;
    while (j < batch.size() && j - i < kBatchChunk &&
           batch[j].timestamp < edge) {
      ++j;
    }
    const PacketBatch chunk = batch.subspan(i, j - i);
    for (std::size_t p = 0; p < chunk.size(); ++p) {
      const std::span<std::size_t> out{slots + p * m, m};
      hashes_.outbound_indexes(chunk[p].tuple, config_.key_mode, out);
      for (const std::size_t bit : out) {
        for (std::size_t v = 0; v < config_.vector_count; ++v) {
          prefetch_write(&words_[v * words_per_vector_ + (bit >> 6)]);
        }
      }
    }
    for (std::size_t v = 0; v < config_.vector_count; ++v) {
      for (std::size_t s = 0; s < chunk.size() * m; ++s) {
        set_bit(v, slots[s]);
      }
    }
    i = j;
  }
}

void ConcurrentBitmapFilter::admits_inbound_batch(PacketBatch batch,
                                                  std::span<bool> admits) {
  std::size_t slots[kBatchChunk * 64];
  const std::size_t m = config_.hash_count;
  std::size_t i = 0;
  while (i < batch.size()) {
    advance_time(batch[i].timestamp);
    const SimTime edge = SimTime::from_usec(
        next_rotation_usec_.load(std::memory_order_acquire));
    std::size_t j = i + 1;
    while (j < batch.size() && j - i < kBatchChunk &&
           batch[j].timestamp < edge) {
      ++j;
    }
    const PacketBatch chunk = batch.subspan(i, j - i);
    const std::size_t current = idx_.load(std::memory_order_acquire);
    for (std::size_t p = 0; p < chunk.size(); ++p) {
      const std::span<std::size_t> out{slots + p * m, m};
      hashes_.inbound_indexes(chunk[p].tuple, config_.key_mode, out);
      for (const std::size_t bit : out) {
        prefetch_read(&words_[current * words_per_vector_ + (bit >> 6)]);
      }
    }
    for (std::size_t p = 0; p < chunk.size(); ++p) {
      bool admit = true;
      for (std::size_t h = 0; h < m; ++h) {
        if (!test_bit(current, slots[p * m + h])) {
          admit = false;
          break;
        }
      }
      admits[i + p] = admit;
    }
    i = j;
  }
}

std::optional<double> ConcurrentBitmapFilter::occupancy_fraction() const {
  const std::size_t current = idx_.load(std::memory_order_acquire);
  std::uint64_t set = 0;
  for (std::size_t w = 0; w < words_per_vector_; ++w) {
    set += static_cast<std::uint64_t>(std::popcount(
        words_[current * words_per_vector_ + w].load(
            std::memory_order_relaxed)));
  }
  return static_cast<double>(set) / static_cast<double>(config_.bits());
}

std::size_t ConcurrentBitmapFilter::storage_bytes() const {
  return words_.size() * sizeof(std::uint64_t);
}

}  // namespace upbound
