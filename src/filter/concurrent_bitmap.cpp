#include "filter/concurrent_bitmap.h"

namespace upbound {

ConcurrentBitmapFilter::ConcurrentBitmapFilter(
    const BitmapFilterConfig& config)
    : config_((config.validate(), config)),
      hashes_(config.bits(), config.hash_count, config.hash_seed),
      words_per_vector_((config.bits() + 63) / 64),
      words_(words_per_vector_ * config.vector_count),
      next_rotation_(SimTime::origin() + config.rotate_interval) {
  for (auto& word : words_) word.store(0, std::memory_order_relaxed);
}

void ConcurrentBitmapFilter::set_bit(std::size_t vector, std::size_t bit) {
  words_[vector * words_per_vector_ + (bit >> 6)].fetch_or(
      std::uint64_t{1} << (bit & 63), std::memory_order_release);
}

bool ConcurrentBitmapFilter::test_bit(std::size_t vector,
                                      std::size_t bit) const {
  return (words_[vector * words_per_vector_ + (bit >> 6)].load(
              std::memory_order_acquire) >>
          (bit & 63)) &
         1;
}

void ConcurrentBitmapFilter::rotate_locked() {
  const std::size_t last = idx_.load(std::memory_order_relaxed);
  const std::size_t next = (last + 1) % config_.vector_count;
  // Publish the new index BEFORE clearing the old vector: the next
  // current vector already carries every live mark (marks go to all k
  // vectors), so lookups never observe a half-cleared vector. Stragglers
  // still reading `last` during the clear can only see bits disappear --
  // a one-rotation-early expiry, never a resurrection.
  idx_.store(next, std::memory_order_release);
  for (std::size_t w = 0; w < words_per_vector_; ++w) {
    words_[last * words_per_vector_ + w].store(0, std::memory_order_relaxed);
  }
  rotations_.fetch_add(1, std::memory_order_relaxed);
}

void ConcurrentBitmapFilter::advance_time(SimTime now) {
  // Fast path without the lock: most calls are not at a rotation edge.
  {
    std::lock_guard<std::mutex> lock{rotate_mutex_};
    while (now >= next_rotation_) {
      rotate_locked();
      next_rotation_ += config_.rotate_interval;
    }
  }
}

void ConcurrentBitmapFilter::record_outbound(const PacketRecord& pkt) {
  std::size_t indexes[64];
  std::span<std::size_t> scratch{indexes, config_.hash_count};
  hashes_.outbound_indexes(pkt.tuple, config_.key_mode, scratch);
  for (std::size_t v = 0; v < config_.vector_count; ++v) {
    for (const std::size_t bit : scratch) set_bit(v, bit);
  }
}

bool ConcurrentBitmapFilter::admits_inbound(const PacketRecord& pkt) {
  std::size_t indexes[64];
  std::span<std::size_t> scratch{indexes, config_.hash_count};
  hashes_.inbound_indexes(pkt.tuple, config_.key_mode, scratch);
  const std::size_t current = idx_.load(std::memory_order_acquire);
  for (const std::size_t bit : scratch) {
    if (!test_bit(current, bit)) return false;
  }
  return true;
}

std::size_t ConcurrentBitmapFilter::storage_bytes() const {
  return words_.size() * sizeof(std::uint64_t);
}

}  // namespace upbound
