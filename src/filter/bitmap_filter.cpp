#include "filter/bitmap_filter.h"

#include <stdexcept>

namespace upbound {

void BitmapFilterConfig::validate() const {
  if (log2_bits < 3 || log2_bits > 30) {
    throw std::invalid_argument("BitmapFilterConfig: log2_bits out of range");
  }
  if (vector_count < 2) {
    // With k = 1 every rotation wipes all state and nothing survives.
    throw std::invalid_argument("BitmapFilterConfig: need >= 2 bit vectors");
  }
  if (hash_count == 0 || hash_count > 64) {
    throw std::invalid_argument("BitmapFilterConfig: hash_count out of range");
  }
  if (rotate_interval <= Duration{}) {
    throw std::invalid_argument(
        "BitmapFilterConfig: rotate_interval must be positive");
  }
}

BitmapFilter::BitmapFilter(const BitmapFilterConfig& config)
    : config_(config),
      hashes_((config.validate(), config.bits()), config.hash_count,
              config.hash_seed),
      schedule_(SimTime::origin() + config.rotate_interval,
                config.rotate_interval),
      scratch_(config.hash_count) {
  vectors_.reserve(config_.vector_count);
  for (unsigned i = 0; i < config_.vector_count; ++i) {
    vectors_.emplace_back(config_.bits());
  }
}

void BitmapFilter::rotate() {
  // Algorithm 1: last = idx; idx = (idx + 1) mod k; clear bit-vector[last].
  //
  // Note the ordering subtlety: after the paper's three steps, the vector
  // just cleared is the OLDEST data holder ("last" position behind the new
  // idx), and the new current vector still carries everything marked during
  // the previous k-1 intervals -- marks go to all vectors, so lookups in
  // the new current vector see any connection active in the last k-1
  // rotations.
  const std::size_t last = idx_;
  idx_ = (idx_ + 1) % vectors_.size();
  vectors_[last].clear();
  ++rotations_;
}

void BitmapFilter::advance_time(SimTime now) {
  const std::uint64_t due = schedule_.advance(now);
  if (due == 0) return;
  if (due < vectors_.size()) {
    for (std::uint64_t i = 0; i < due; ++i) rotate();
  } else {
    // k or more boundaries elapsed at once (clock-step fault, sparse trace
    // gap): every vector was cleared at least once along the way, so the
    // catch-up collapses to a full wipe plus index/counter arithmetic --
    // O(k) instead of one rotate() per missed interval.
    for (auto& vector : vectors_) vector.clear();
    idx_ = (idx_ + due) % vectors_.size();
    rotations_ += due;
  }
}

bool BitmapFilter::set_rotate_interval(Duration dt) {
  schedule_.set_interval(dt);
  config_.rotate_interval = dt;
  return true;
}

void BitmapFilter::record_outbound(const PacketRecord& pkt) {
  // Algorithm 2, outbound arm: mark the j-th bit in ALL bit vectors.
  hashes_.outbound_indexes(pkt.tuple, config_.key_mode, scratch_);
  for (auto& vector : vectors_) {
    for (const std::size_t j : scratch_) vector.set(j);
  }
}

bool BitmapFilter::admits_inbound(const PacketRecord& pkt) {
  // Algorithm 2, inbound arm: check the j-th bit in the CURRENT vector.
  hashes_.inbound_indexes(pkt.tuple, config_.key_mode, scratch_);
  const BitVector& current = vectors_[idx_];
  for (const std::size_t j : scratch_) {
    if (!current.test(j)) return false;
  }
  return true;
}

void BitmapFilter::record_outbound_batch(PacketBatch batch) {
  std::size_t i = 0;
  while (i < batch.size()) {
    advance_time(batch[i].timestamp);
    // Extend the chunk while no rotation interleaves: inside it, marks
    // commute (idempotent bit-ORs with no clears between), so hashing and
    // touching in two passes is indistinguishable from the scalar order.
    std::size_t j = i + 1;
    while (j < batch.size() && j - i < kBatchChunk &&
           batch[j].timestamp < schedule_.next_boundary()) {
      ++j;
    }
    mark_chunk(batch.subspan(i, j - i));
    i = j;
  }
}

void BitmapFilter::mark_chunk(PacketBatch chunk) {
  const std::size_t m = config_.hash_count;
  batch_scratch_.resize(chunk.size() * m);
  hash_scratch_.resize(chunk.size());
  key_scratch_.resize(chunk.size() * BloomHashFamily::kKeyStride);
  // Digest the whole chunk lane-parallel first, then expand probes.
  hashes_.outbound_hash_batch(chunk, config_.key_mode, key_scratch_,
                              hash_scratch_);
  // Stagger prefetches one vector ahead of the stores instead of issuing
  // chunk*m*k up front: hardware tracks a limited number of outstanding
  // prefetches, and over-issuing drops the late ones -- exactly the lines
  // the last vectors need.
  for (std::size_t p = 0; p < chunk.size(); ++p) {
    const std::span<std::size_t> slots{batch_scratch_.data() + p * m, m};
    hashes_.indexes_from_hash(hash_scratch_[p], slots);
    for (const std::size_t bit : slots) vectors_[0].prefetch_for_set(bit);
  }
  for (std::size_t v = 0; v < vectors_.size(); ++v) {
    BitVector& vector = vectors_[v];
    BitVector* next = v + 1 < vectors_.size() ? &vectors_[v + 1] : nullptr;
    for (const std::size_t bit : batch_scratch_) {
      if (next != nullptr) next->prefetch_for_set(bit);
      vector.set(bit);
    }
  }
}

void BitmapFilter::admits_inbound_batch(PacketBatch batch,
                                        std::span<bool> admits) {
  std::size_t i = 0;
  while (i < batch.size()) {
    advance_time(batch[i].timestamp);
    std::size_t j = i + 1;
    while (j < batch.size() && j - i < kBatchChunk &&
           batch[j].timestamp < schedule_.next_boundary()) {
      ++j;
    }
    test_chunk(batch.subspan(i, j - i), admits.subspan(i));
    i = j;
  }
}

void BitmapFilter::test_chunk(PacketBatch chunk, std::span<bool> admits) {
  const std::size_t m = config_.hash_count;
  batch_scratch_.resize(chunk.size() * m);
  hash_scratch_.resize(chunk.size());
  key_scratch_.resize(chunk.size() * BloomHashFamily::kKeyStride);
  hashes_.inbound_hash_batch(chunk, config_.key_mode, key_scratch_,
                             hash_scratch_);
  // Lookups touch the current vector only; no rotation happens inside the
  // chunk, so idx_ is stable and the lookups are pure.
  const BitVector& current = vectors_[idx_];
  for (std::size_t p = 0; p < chunk.size(); ++p) {
    const std::span<std::size_t> slots{batch_scratch_.data() + p * m, m};
    hashes_.indexes_from_hash(hash_scratch_[p], slots);
    for (const std::size_t bit : slots) current.prefetch_for_test(bit);
  }
  for (std::size_t p = 0; p < chunk.size(); ++p) {
    // Branchless all-bits-set: every word is prefetched, so testing all m
    // is cheaper than an early-exit branch that mispredicts half the time.
    bool admit = true;
    for (std::size_t h = 0; h < m; ++h) {
      admit &= current.test(batch_scratch_[p * m + h]);
    }
    admits[p] = admit;
  }
}

void BitmapFilter::restore_rotation_state(std::size_t idx,
                                          SimTime next_rotation,
                                          std::uint64_t rotations) {
  if (idx >= vectors_.size()) {
    throw std::invalid_argument("restore_rotation_state: bad index");
  }
  idx_ = idx;
  // The restored filter may live on a different clock than the one that
  // produced the snapshot; restore() drops the high-water mark with it.
  schedule_.restore(next_rotation);
  rotations_ = rotations;
}

std::size_t BitmapFilter::storage_bytes() const {
  std::size_t total = 0;
  for (const auto& vector : vectors_) total += vector.storage_bytes();
  return total;
}

std::vector<double> BitmapFilter::occupancy() const {
  std::vector<double> out;
  out.reserve(vectors_.size());
  for (const auto& vector : vectors_) out.push_back(vector.utilization());
  return out;
}

}  // namespace upbound
