// The single seam between "a filter backend exists" and everything that
// constructs or interrogates one. Each backend registers ONE
// BackendDescriptor -- name, capability bits, argument parser, factory,
// geometry and expiry-window reporters -- and the CLI, the filter bank,
// parallel replay shard factories, the attack evaluator, snapshot
// dispatch, the health monitor's occupancy signal, and the
// registry-driven test/bench enumerations all consume that descriptor
// instead of hard-coding concrete types. Adding a backend is one
// registration in filter_registry.cpp; nothing outside src/filter/
// names a concrete filter class to build one.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <typeinfo>
#include <vector>

#include "filter/adaptive_tuner.h"  // FilterGeometry
#include "filter/aging_bloom.h"
#include "filter/bitmap_filter.h"
#include "filter/blocked_bitmap.h"
#include "filter/concurrent_bitmap.h"
#include "filter/counting_filter.h"
#include "filter/naive_filter.h"
#include "filter/retouched_bitmap.h"
#include "filter/spi_filter.h"
#include "filter/state_filter.h"

namespace upbound {

/// What a backend can do, beyond the base StateFilter contract. Callers
/// branch on these bits instead of dynamic_cast'ing to concrete types.
enum FilterCapability : std::uint32_t {
  /// occupancy_fraction() returns a value (health monitor, tuner,
  /// state.occupancy gauge, attack occupancy trajectories).
  kCapOccupancy = 1u << 0,
  /// Supports per-tuple deletion before generational expiry.
  kCapDeletion = 1u << 1,
  /// Supports the snapshot save/restore format (filter/snapshot.h).
  kCapSnapshot = 1u << 2,
  /// Safe to share one instance across parallel replay shards
  /// (--shard-mode shared).
  kCapSharedView = 1u << 3,
  /// inbound_lookup_is_pure() is true: the router may batch lookups
  /// speculatively.
  kCapPureLookup = 1u << 4,
  /// No false negatives within the backend's guaranteed window (the
  /// paper's core property; deliberately absent for retouched).
  kCapNoFalseNegative = 1u << 5,
  /// set_rotate_interval() retunes dt at runtime (live `set dt`
  /// reconfiguration over the control socket).
  kCapRotateInterval = 1u << 6,
  /// Batch paths digest keys through the lane-parallel murmur3 kernel
  /// when it is enabled (util/hash.h set_simd_hash_enabled); verdicts are
  /// bit-identical with the kernel on or off.
  kCapSimdBatch = 1u << 7,
  /// Multi-tenant backend: per-subscriber fine state behind a shared
  /// front tier, per-tenant telemetry/introspection, and the
  /// inter-router digest exchange path (gates the control socket's
  /// `stats tenants` and the per-tenant attack report).
  kCapTenancy = 1u << 8,
};

/// Abstract key-value view of backend arguments. Decouples the parsers
/// in this library from cli::Args (the filter library cannot link the
/// cli layer); adapters exist for the CLI and for plain maps.
class FilterArgs {
 public:
  virtual ~FilterArgs() = default;

  /// The raw value of `key`, or nullopt when absent.
  virtual std::optional<std::string> value(const std::string& key) const = 0;
  /// True when the boolean flag `key` is set.
  virtual bool flag(const std::string& key) const = 0;

  // Typed accessors; throw std::invalid_argument on unparsable values.
  double get_double(const std::string& key, double fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  unsigned get_unsigned(const std::string& key, unsigned fallback) const;
};

/// FilterArgs over an explicit map -- for the attack evaluator, tests,
/// and anywhere arguments are assembled programmatically.
class MapFilterArgs final : public FilterArgs {
 public:
  MapFilterArgs() = default;

  MapFilterArgs& set(const std::string& key, const std::string& value) {
    values_[key] = value;
    return *this;
  }
  MapFilterArgs& set_flag(const std::string& key) {
    flags_.insert(key);
    return *this;
  }

  std::optional<std::string> value(const std::string& key) const override {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  bool flag(const std::string& key) const override {
    return flags_.count(key) != 0;
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
};

struct BackendDescriptor;

/// A parsed, validated backend configuration: the descriptor it belongs
/// to plus its type-erased config struct. Cheap to copy; the factory
/// turns it into fresh filter instances (one per replay shard).
struct FilterSpec {
  const BackendDescriptor* backend = nullptr;
  std::shared_ptr<const void> config;
  const std::type_info* config_type = nullptr;

  const std::string& kind() const;

  /// Checked downcast to the backend's config struct.
  template <typename Config>
  const Config& config_as() const {
    if (config_type == nullptr || *config_type != typeid(Config)) {
      throw std::logic_error("FilterSpec: config type mismatch");
    }
    return *static_cast<const Config*>(config.get());
  }
};

/// Everything the rest of the system needs to know about one backend.
struct BackendDescriptor {
  std::string name;
  std::string summary;  // one line for --help and the compare table
  std::uint32_t capabilities = 0;

  /// Parses backend arguments into a validated FilterSpec. Throws
  /// std::invalid_argument on bad values.
  std::function<FilterSpec(const FilterArgs&)> parse;
  /// Builds a fresh filter from a spec parsed by this backend.
  std::function<std::unique_ptr<StateFilter>(const FilterSpec&)> make;
  /// Bloom-side geometry {N, m, k, dt} when the backend has one (tuner
  /// input), else nullopt.
  std::function<std::optional<FilterGeometry>(const FilterSpec&)> geometry;
  /// Conservative no-false-negative window: a tuple marked at tm is
  /// admitted at any t with t - tm < window (exact-state backends: the
  /// configured timeout; generational backends: (k-1)*dt). Meaningful
  /// only with kCapNoFalseNegative.
  std::function<Duration(const FilterSpec&)> guaranteed_window;

  bool has(FilterCapability cap) const {
    return (capabilities & cap) != 0;
  }
};

/// Process-wide registry of filter backends, populated once at static
/// init in filter_registry.cpp (registration order is the presentation
/// order used by --help, compare tables, and test enumeration).
class FilterRegistry {
 public:
  static const FilterRegistry& instance();

  /// The descriptor for `name`, or nullptr when unknown.
  const BackendDescriptor* find(const std::string& name) const;
  /// The descriptor for `name`; throws std::invalid_argument listing the
  /// registered names when unknown.
  const BackendDescriptor& at(const std::string& name) const;

  /// Registered backend names, in registration order.
  std::vector<std::string> names() const;
  /// The names joined with `sep` -- usage strings and error messages.
  std::string names_joined(const std::string& sep) const;

  /// Convenience: at(name).parse(args).
  FilterSpec parse(const std::string& name, const FilterArgs& args) const;

  const std::vector<BackendDescriptor>& descriptors() const {
    return backends_;
  }

 private:
  FilterRegistry();
  std::vector<BackendDescriptor> backends_;
};

/// spec.backend->make(spec), with a clear error on an empty spec.
std::unique_ptr<StateFilter> make_state_filter(const FilterSpec& spec);

// Typed spec builders for callers that already hold a config struct
// (tests, benches, examples, the filter bank). Each is exactly
// registry.parse() would produce for the same parameters.
FilterSpec bitmap_filter_spec(const BitmapFilterConfig& config = {});
FilterSpec concurrent_bitmap_filter_spec(
    const BitmapFilterConfig& config = {});
FilterSpec blocked_bitmap_filter_spec(const BitmapFilterConfig& config = {});
FilterSpec aging_filter_spec(const AgingBloomConfig& config = {});
FilterSpec spi_filter_spec(const SpiFilterConfig& config = {});
FilterSpec naive_filter_spec(const NaiveFilterConfig& config = {});
FilterSpec retouched_filter_spec(const RetouchedBitmapConfig& config = {});
FilterSpec counting_filter_spec(const CountingFilterConfig& config = {});

}  // namespace upbound
