#include "filter/counting_filter.h"

#include <algorithm>
#include <stdexcept>

namespace upbound {

void CountingFilterConfig::validate() const {
  if (log2_cells < 3 || log2_cells > 30) {
    throw std::invalid_argument(
        "CountingFilterConfig: log2_cells out of range");
  }
  if (generation_count < 2) {
    // With k = 1 every rotation wipes all state and nothing survives.
    throw std::invalid_argument(
        "CountingFilterConfig: need >= 2 generations");
  }
  if (hash_count == 0 || hash_count > 64) {
    throw std::invalid_argument(
        "CountingFilterConfig: hash_count out of range");
  }
  if (rotate_interval <= Duration{}) {
    throw std::invalid_argument(
        "CountingFilterConfig: rotate_interval must be positive");
  }
}

CountingFilter::CountingFilter(const CountingFilterConfig& config)
    : config_(config),
      hashes_((config.validate(), config.cells()), config.hash_count,
              config.hash_seed),
      bytes_(config.memory_bytes(), 0),
      schedule_(SimTime::origin() + config.rotate_interval,
                config.rotate_interval),
      scratch_(config.hash_count) {}

std::uint8_t CountingFilter::get_cell(std::size_t generation,
                                      std::size_t cell) const {
  const std::size_t flat = generation * config_.cells() + cell;
  const std::uint8_t byte = bytes_[flat >> 1];
  return (flat & 1) ? (byte >> 4) : (byte & 0x0f);
}

void CountingFilter::set_cell(std::size_t generation, std::size_t cell,
                              std::uint8_t value) {
  const std::size_t flat = generation * config_.cells() + cell;
  std::uint8_t& byte = bytes_[flat >> 1];
  if (flat & 1) {
    byte = static_cast<std::uint8_t>((byte & 0x0f) | (value << 4));
  } else {
    byte = static_cast<std::uint8_t>((byte & 0xf0) | (value & 0x0f));
  }
}

bool CountingFilter::present_in(std::size_t generation) const {
  for (const std::size_t cell : scratch_) {
    if (get_cell(generation, cell) == 0) return false;
  }
  return true;
}

void CountingFilter::rotate() {
  // Algorithm 1 on counter tables: advance the current generation and
  // zero the one it reaches (the oldest data holder).
  const std::size_t last = idx_;
  idx_ = (idx_ + 1) % config_.generation_count;
  const std::size_t bytes_per_generation = config_.cells() / 2;
  std::fill_n(bytes_.begin() +
                  static_cast<std::ptrdiff_t>(last * bytes_per_generation),
              bytes_per_generation, std::uint8_t{0});
  ++rotations_;
}

void CountingFilter::advance_time(SimTime now) {
  const std::uint64_t due = schedule_.advance(now);
  if (due == 0) return;
  if (due < config_.generation_count) {
    for (std::uint64_t i = 0; i < due; ++i) rotate();
  } else {
    // k or more boundaries at once: every generation was cleared at least
    // once along the way, so catch up with a full wipe in O(k) work.
    std::fill(bytes_.begin(), bytes_.end(), std::uint8_t{0});
    idx_ = (idx_ + due) % config_.generation_count;
    rotations_ += due;
  }
}

void CountingFilter::record_outbound(const PacketRecord& pkt) {
  if (config_.delete_on_close && pkt.is_tcp() &&
      (pkt.flags.fin || pkt.flags.rst)) {
    erase_connection(pkt.tuple);
    return;
  }
  hashes_.outbound_indexes(pkt.tuple, config_.key_mode, scratch_);
  for (std::size_t g = 0; g < config_.generation_count; ++g) {
    // Insert-if-absent: a generation already holding the tuple (all m
    // cells nonzero) is left untouched, so one connection costs exactly
    // one increment per generation per residency and one delete undoes it.
    if (present_in(g)) continue;
    for (const std::size_t cell : scratch_) {
      const std::uint8_t value = get_cell(g, cell);
      if (value < kSaturated) {
        set_cell(g, cell, static_cast<std::uint8_t>(value + 1));
      }
    }
  }
}

bool CountingFilter::admits_inbound(const PacketRecord& pkt) {
  hashes_.inbound_indexes(pkt.tuple, config_.key_mode, scratch_);
  return present_in(idx_);
}

void CountingFilter::erase_connection(const FiveTuple& outbound_tuple) {
  hashes_.outbound_indexes(outbound_tuple, config_.key_mode, scratch_);
  bool touched = false;
  for (std::size_t g = 0; g < config_.generation_count; ++g) {
    if (!present_in(g)) continue;  // never decrement through zero
    for (const std::size_t cell : scratch_) {
      const std::uint8_t value = get_cell(g, cell);
      // A saturated counter has lost its count and must stay put.
      if (value != kSaturated) {
        set_cell(g, cell, static_cast<std::uint8_t>(value - 1));
      }
    }
    touched = true;
  }
  if (touched) ++deletes_applied_;
}

void CountingFilter::corrupt_cell(std::uint64_t flat_index) {
  const std::size_t total =
      config_.cells() * config_.generation_count;
  const std::size_t flat = static_cast<std::size_t>(flat_index % total);
  const std::size_t generation = flat / config_.cells();
  const std::size_t cell = flat % config_.cells();
  set_cell(generation, cell,
           static_cast<std::uint8_t>(get_cell(generation, cell) ^ 1));
}

std::optional<double> CountingFilter::occupancy_fraction() const {
  const std::size_t bytes_per_generation = config_.cells() / 2;
  const std::size_t base = idx_ * bytes_per_generation;
  std::size_t nonzero = 0;
  for (std::size_t b = 0; b < bytes_per_generation; ++b) {
    const std::uint8_t byte = bytes_[base + b];
    nonzero += (byte & 0x0f) != 0;
    nonzero += (byte >> 4) != 0;
  }
  return static_cast<double>(nonzero) /
         static_cast<double>(config_.cells());
}

std::size_t CountingFilter::storage_bytes() const { return bytes_.size(); }

}  // namespace upbound
