// Drop-probability policies for stateless inbound packets.
//
// The paper generates P_d RED-style from the measured uplink throughput b
// between a low threshold L and a high threshold H (Eq. 1):
//
//        P_d = 0                 if b <= L
//        P_d = (b - L) / (H - L) if L < b < H
//        P_d = 1                 if b >= H
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

namespace upbound {

class DropPolicy {
 public:
  virtual ~DropPolicy() = default;

  /// Probability in [0, 1] of dropping a stateless inbound packet given
  /// the current uplink throughput (bits per second).
  virtual double drop_probability(double uplink_bits_per_sec) const = 0;

  virtual std::string name() const = 0;
};

/// Eq. 1: linear ramp between thresholds L and H (bits per second).
class RedDropPolicy final : public DropPolicy {
 public:
  RedDropPolicy(double low_bits_per_sec, double high_bits_per_sec);

  double drop_probability(double uplink_bits_per_sec) const override;
  std::string name() const override { return "red"; }

  double low() const { return low_; }
  double high() const { return high_; }

 private:
  double low_;
  double high_;
};

/// Fixed P_d regardless of throughput; P_d = 1 reproduces the Fig. 8
/// "drop all inbound packets without states" configuration.
class ConstantDropPolicy final : public DropPolicy {
 public:
  explicit ConstantDropPolicy(double probability);

  double drop_probability(double) const override { return probability_; }
  std::string name() const override { return "constant"; }

 private:
  double probability_;
};

}  // namespace upbound
