// Generational expiry schedule shared by the rotating backends (bitmap,
// blocked bitmap, concurrent bitmap, counting generations): exact boundary
// arithmetic on the original grid, O(1) catch-up accounting for
// arbitrarily large clock steps, and runtime dt retuning that never
// schedules a boundary in the past.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "util/time.h"

namespace upbound {

class RotationSchedule {
 public:
  RotationSchedule(SimTime first_boundary, Duration interval)
      : interval_(interval), next_(first_boundary) {}

  SimTime next_boundary() const { return next_; }
  Duration interval() const { return interval_; }
  SimTime high_water() const { return last_advance_; }

  /// Advances the clock high-water mark and returns how many boundaries
  /// elapsed at `now` (0 when none), moving the schedule to the first
  /// boundary strictly after `now` on the exact original grid. The
  /// remainder form avoids the due*dt product an O(elapsed/dt) loop --
  /// or a naive multiply -- would overflow on a clock-step fault.
  std::uint64_t advance(SimTime now) {
    if (now > last_advance_) last_advance_ = now;
    if (now < next_) return 0;
    const std::int64_t dt = interval_.count_usec();
    const std::int64_t late = (now - next_).count_usec();
    next_ = now + Duration::usec(dt - late % dt);
    return 1 + static_cast<std::uint64_t>(late / dt);
  }

  /// Retunes dt: re-anchors on the last completed boundary, clamping the
  /// first new-schedule boundary strictly after the clock's high-water
  /// mark. Without the clamp, a mid-interval shrink schedules boundaries
  /// in the past and the next advance() reports a spurious catch-up burst
  /// that wipes state which should have survived (k-1)*dt.
  void set_interval(Duration dt) {
    if (dt <= Duration{}) {
      throw std::invalid_argument(
          "RotationSchedule::set_interval: dt must be positive");
    }
    const SimTime anchor = next_ - interval_;
    SimTime next = anchor + dt;
    if (next <= last_advance_) {
      const std::int64_t behind = (last_advance_ - anchor).count_usec();
      const std::int64_t steps = behind / dt.count_usec() + 1;
      next = anchor + Duration::usec(steps * dt.count_usec());
    }
    next_ = next;
    interval_ = dt;
  }

  /// Snapshot restore: adopts a boundary from another run's clock and
  /// drops the high-water mark with it.
  void restore(SimTime next_boundary) {
    next_ = next_boundary;
    last_advance_ = SimTime::origin();
  }

 private:
  Duration interval_;
  SimTime next_;
  SimTime last_advance_;  // default-constructed SimTime == origin
};

}  // namespace upbound
