// Design-space alternative to the {k x N} bitmap: a single table of 4-bit
// "age stamp" cells (a time-decaying Bloom filter). Marking stamps the
// current epoch ring value into each hashed cell; lookup accepts cells
// stamped within the last `valid_epochs` epochs; an O(cells) sweep per
// epoch retires stale stamps (same maintenance class as b.rotate).
//
// Trade-off vs the paper's design (exercised in tests):
//   + marking touches m cells once (the bitmap writes m bits x k vectors)
//   + the expiry window is programmable 1..13 epochs at FIXED memory,
//     where the bitmap must add whole N-bit vectors to grow k
//   - at equal memory the cell table has 1/4 as many slots as one bit
//     vector has bits, so false positives are higher under load
//   - epoch wrap-around needs the sweep; the bitmap's clear is cheaper
//     per byte (pure stores, no read-modify-write)
#pragma once

#include <cstdint>
#include <vector>

#include "filter/hash_family.h"
#include "filter/state_filter.h"

namespace upbound {

struct AgingBloomConfig {
  /// Number of cells (4 bits each). Memory = cells / 2 bytes.
  std::size_t cells = 1u << 20;
  unsigned hash_count = 3;
  /// Epoch length (the dt analogue).
  Duration epoch = Duration::sec(5.0);
  /// Marks stay valid for `valid_epochs` epochs: Te = valid_epochs * epoch.
  /// Must be <= 13 (4-bit cells reserve one value for "empty" and need
  /// headroom to disambiguate wrap-around).
  unsigned valid_epochs = 4;
  KeyMode key_mode = KeyMode::kFullTuple;
  std::uint64_t hash_seed = 0x7570626f756e6421ULL;

  Duration expiry_timer() const {
    return epoch * static_cast<double>(valid_epochs);
  }
  std::size_t memory_bytes() const { return cells / 2; }

  void validate() const;
};

class AgingBloomFilter final : public StateFilter {
 public:
  explicit AgingBloomFilter(const AgingBloomConfig& config);

  void advance_time(SimTime now) override;
  void record_outbound(const PacketRecord& pkt) override;
  bool admits_inbound(const PacketRecord& pkt) override;
  // Lookup only reads cell stamps; aging happens in advance_time's sweep.
  bool inbound_lookup_is_pure() const override { return true; }
  // occupancy_fraction() stays std::nullopt on purpose: cells age through
  // 13 ring values, so a set-cell fraction is not the Eq. 2 utilization
  // input. This backend is the health monitor's "occupancy unsupported"
  // path.
  std::uint64_t expiry_generations() const override { return epoch_; }
  std::size_t storage_bytes() const override;
  std::string name() const override { return "aging-bloom"; }

  std::uint64_t current_epoch() const { return epoch_; }

 private:
  static constexpr std::uint8_t kEmpty = 0;

  std::uint8_t get_cell(std::size_t i) const;
  void set_cell(std::size_t i, std::uint8_t value);

  /// True when stamp (a 1..15 ring value) is within valid_epochs of the
  /// current epoch's ring position.
  bool stamp_fresh(std::uint8_t stamp) const;
  std::uint8_t ring_of(std::uint64_t epoch) const;
  void sweep();

  AgingBloomConfig config_;
  BloomHashFamily hashes_;
  std::vector<std::uint8_t> cells_;  // two 4-bit cells per byte
  std::uint64_t epoch_ = 0;
  SimTime epoch_start_;
  std::vector<std::size_t> scratch_;
};

}  // namespace upbound
