#include "filter/spi_filter.h"

#include <stdexcept>

namespace upbound {

SpiFilter::SpiFilter(const SpiFilterConfig& config) : config_(config) {
  if (config.idle_timeout <= Duration{}) {
    throw std::invalid_argument("SpiFilter: idle_timeout must be positive");
  }
  if (config.close_linger < Duration{}) {
    throw std::invalid_argument("SpiFilter: close_linger must be >= 0");
  }
}

void SpiFilter::advance_time(SimTime now) {
  now_ = now;
  while (!sweep_queue_.empty() &&
         sweep_queue_.front().first + config_.idle_timeout <= now) {
    const FiveTuple key = sweep_queue_.front().second;
    sweep_queue_.pop_front();
    const auto it = flows_.find(key);
    if (it == flows_.end()) continue;
    const SimTime idle_deadline = it->second.last_active + config_.idle_timeout;
    if (idle_deadline <= now || it->second.remove_at <= now) {
      flows_.erase(it);
      ++flows_expired_;
    }
  }
}

void SpiFilter::touch(const FiveTuple& key, const PacketRecord& pkt) {
  auto it = flows_.find(key);
  if (it == flows_.end()) return;
  FlowState& state = it->second;
  state.last_active = pkt.timestamp;
  sweep_queue_.emplace_back(pkt.timestamp, key);
  if (pkt.is_tcp() && (pkt.flags.fin || pkt.flags.rst)) {
    state.closing = true;
    state.remove_at = pkt.timestamp + config_.close_linger;
    if (config_.close_linger.is_zero()) {
      flows_.erase(it);
      ++flows_expired_;
    }
  }
}

void SpiFilter::record_outbound(const PacketRecord& pkt) {
  const FiveTuple key = pkt.tuple;
  auto it = flows_.find(key);
  if (it == flows_.end()) {
    // New flow created by the inner client. A closing packet that opens no
    // usable state (stray FIN/RST) is not tracked.
    if (pkt.is_tcp() && (pkt.flags.fin || pkt.flags.rst)) return;
    flows_.emplace(key, FlowState{pkt.timestamp, false, SimTime::infinite()});
    sweep_queue_.emplace_back(pkt.timestamp, key);
    ++flows_created_;
    return;
  }
  touch(key, pkt);
}

bool SpiFilter::admits_inbound(const PacketRecord& pkt) {
  // The flow was created by the outbound direction: key by the inverse.
  const FiveTuple key = pkt.tuple.inverse();
  auto it = flows_.find(key);
  if (it == flows_.end()) return false;
  FlowState& state = it->second;
  if (state.remove_at <= pkt.timestamp) return false;
  if (state.last_active + config_.idle_timeout <= pkt.timestamp) {
    // Expired but not yet swept: treat as gone.
    flows_.erase(it);
    ++flows_expired_;
    return false;
  }
  touch(key, pkt);
  return true;
}

std::size_t SpiFilter::storage_bytes() const {
  constexpr std::size_t kMapNode =
      sizeof(FiveTuple) + sizeof(FlowState) + 2 * sizeof(void*);
  constexpr std::size_t kQueueNode = sizeof(SimTime) + sizeof(FiveTuple);
  return flows_.size() * kMapNode + sweep_queue_.size() * kQueueNode;
}

}  // namespace upbound
