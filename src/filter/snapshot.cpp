#include "filter/snapshot.h"

#include <unistd.h>

#include <cstdio>
#include <stdexcept>

#include "util/byte_io.h"
#include "util/hash.h"

namespace upbound {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x55424d46;  // "UBMF"
// v2 appends a CRC-32 to the v1 header (offset 68; all field offsets
// before it are unchanged), covering every byte except the CRC itself.
constexpr std::uint32_t kSnapshotVersion = 2;
constexpr std::size_t kCrcOffset = 68;

/// CRC over the whole image minus the 4 CRC bytes at kCrcOffset.
std::uint32_t image_crc(std::span<const std::uint8_t> image) {
  const std::uint32_t head = crc32(image.subspan(0, kCrcOffset));
  return crc32(image.subspan(kCrcOffset + 4), head);
}

void write_u64le(ByteWriter& w, std::uint64_t v) {
  w.u32le(static_cast<std::uint32_t>(v));
  w.u32le(static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t read_u64le(ByteReader& r) {
  const std::uint64_t lo = r.u32le();
  const std::uint64_t hi = r.u32le();
  return lo | (hi << 32);
}

}  // namespace

std::vector<std::uint8_t> snapshot_bitmap_filter(const BitmapFilter& filter,
                                                 SimTime now) {
  const BitmapFilterConfig& config = filter.config();
  std::vector<std::uint8_t> out;
  const std::size_t words_per_vector = (config.bits() + 63) / 64;
  out.reserve(64 + config.vector_count * words_per_vector * 8);
  ByteWriter w{out};

  w.u32le(kSnapshotMagic);
  w.u32le(kSnapshotVersion);
  w.u32le(config.log2_bits);
  w.u32le(config.vector_count);
  w.u32le(config.hash_count);
  write_u64le(w, static_cast<std::uint64_t>(
                     config.rotate_interval.count_usec()));
  w.u32le(config.key_mode == KeyMode::kHolePunching ? 1 : 0);
  write_u64le(w, config.hash_seed);
  w.u32le(static_cast<std::uint32_t>(filter.current_index()));
  write_u64le(w, static_cast<std::uint64_t>(filter.next_rotation().usec()));
  write_u64le(w, filter.rotations());
  write_u64le(w, static_cast<std::uint64_t>(now.usec()));
  w.u32le(0);  // CRC placeholder, patched below

  for (unsigned v = 0; v < config.vector_count; ++v) {
    for (const std::uint64_t word : filter.vector_words(v)) {
      write_u64le(w, word);
    }
  }

  const std::uint32_t crc = image_crc(out);
  out[kCrcOffset + 0] = static_cast<std::uint8_t>(crc);
  out[kCrcOffset + 1] = static_cast<std::uint8_t>(crc >> 8);
  out[kCrcOffset + 2] = static_cast<std::uint8_t>(crc >> 16);
  out[kCrcOffset + 3] = static_cast<std::uint8_t>(crc >> 24);
  return out;
}

const char* snapshot_restore_error_name(SnapshotRestoreError error) {
  switch (error) {
    case SnapshotRestoreError::kNone:
      return "none";
    case SnapshotRestoreError::kTruncated:
      return "truncated";
    case SnapshotRestoreError::kBadMagic:
      return "bad magic";
    case SnapshotRestoreError::kBadVersion:
      return "unsupported version";
    case SnapshotRestoreError::kBadConfig:
      return "invalid embedded configuration";
    case SnapshotRestoreError::kBadRotationIndex:
      return "rotation index out of range";
    case SnapshotRestoreError::kBadRotationTime:
      return "rotation schedule out of range";
    case SnapshotRestoreError::kTrailingBytes:
      return "trailing bytes";
    case SnapshotRestoreError::kStale:
      return "stale (older than T_e)";
    case SnapshotRestoreError::kCorruptCrc:
      return "corrupt-crc";
  }
  return "unknown";
}

BitmapRestoreResult restore_bitmap_filter_checked(
    std::span<const std::uint8_t> snapshot, std::optional<SimTime> now) {
  BitmapRestoreResult result;
  const auto fail = [&result](SnapshotRestoreError error) {
    result.error = error;
    return result;
  };
  try {
    ByteReader r{snapshot};
    if (r.u32le() != kSnapshotMagic) {
      return fail(SnapshotRestoreError::kBadMagic);
    }
    if (r.u32le() != kSnapshotVersion) {
      return fail(SnapshotRestoreError::kBadVersion);
    }

    BitmapFilterConfig config;
    config.log2_bits = r.u32le();
    config.vector_count = r.u32le();
    config.hash_count = r.u32le();
    config.rotate_interval =
        Duration::usec(static_cast<std::int64_t>(read_u64le(r)));
    config.key_mode =
        r.u32le() == 1 ? KeyMode::kHolePunching : KeyMode::kFullTuple;
    config.hash_seed = read_u64le(r);
    try {
      config.validate();
    } catch (const std::invalid_argument&) {
      return fail(SnapshotRestoreError::kBadConfig);
    }

    const std::uint32_t idx = r.u32le();
    if (idx >= config.vector_count) {
      return fail(SnapshotRestoreError::kBadRotationIndex);
    }
    const SimTime next_rotation =
        SimTime::from_usec(static_cast<std::int64_t>(read_u64le(r)));
    const std::uint64_t rotations = read_u64le(r);
    const SimTime snapshot_time =
        SimTime::from_usec(static_cast<std::int64_t>(read_u64le(r)));
    const std::uint32_t stored_crc = r.u32le();
    // A healthy snapshot has its next rotation within one expiry cycle of
    // the snapshot time; anything further off is corruption, and a value
    // far in the past would wedge the first advance_time() in a
    // one-rotate-per-dt loop across the whole gap.
    if (next_rotation < snapshot_time - config.expiry_timer() ||
        next_rotation > snapshot_time + config.expiry_timer()) {
      return fail(SnapshotRestoreError::kBadRotationTime);
    }
    if (now.has_value() && *now - snapshot_time > config.expiry_timer()) {
      // Restoring would only fake a warm start: every mark the snapshot
      // holds has already rotated out of its survival window.
      result.staleness = *now - snapshot_time;
      return fail(SnapshotRestoreError::kStale);
    }

    // Size-check the payload before touching the allocator: a bit-flipped
    // log2_bits must not make us reserve gigabytes only to underflow.
    const std::size_t words_per_vector = (config.bits() + 63) / 64;
    const std::size_t payload_bytes =
        config.vector_count * words_per_vector * 8;
    if (r.remaining() < payload_bytes) {
      return fail(SnapshotRestoreError::kTruncated);
    }
    if (r.remaining() > payload_bytes) {
      return fail(SnapshotRestoreError::kTrailingBytes);
    }
    // CRC last, once the structure is known sound: semantically invalid
    // fields keep their pointed reasons above; the CRC catches the rest
    // (payload bit rot, damage the field checks cannot see).
    if (stored_crc != image_crc(snapshot)) {
      return fail(SnapshotRestoreError::kCorruptCrc);
    }

    BitmapFilter filter{config};
    std::vector<std::uint64_t> words(words_per_vector);
    for (unsigned v = 0; v < config.vector_count; ++v) {
      for (auto& word : words) word = read_u64le(r);
      filter.load_vector_words(v, words);
    }
    filter.restore_rotation_state(idx, next_rotation, rotations);
    result.restored = RestoredBitmapFilter{std::move(filter), snapshot_time};
    return result;
  } catch (const ByteUnderflow&) {
    return fail(SnapshotRestoreError::kTruncated);
  }
}

std::optional<RestoredBitmapFilter> restore_bitmap_filter(
    std::span<const std::uint8_t> snapshot) {
  return restore_bitmap_filter_checked(snapshot).restored;
}

std::unique_ptr<StateFilter> take_restored_filter(
    RestoredBitmapFilter&& restored) {
  return std::make_unique<BitmapFilter>(std::move(restored.filter));
}

void save_snapshot_file(const std::string& path,
                        std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("save_snapshot_file: cannot open " + tmp);
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
      std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_snapshot_file: write failed for " + tmp);
  }
  // rename(2) is atomic within a filesystem: readers see the old file or
  // the new one, never a prefix.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_snapshot_file: cannot rename " + tmp +
                             " to " + path);
  }
}

}  // namespace upbound
