#include "filter/snapshot.h"

#include "util/byte_io.h"

namespace upbound {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x55424d46;  // "UBMF"
constexpr std::uint32_t kSnapshotVersion = 1;

void write_u64le(ByteWriter& w, std::uint64_t v) {
  w.u32le(static_cast<std::uint32_t>(v));
  w.u32le(static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t read_u64le(ByteReader& r) {
  const std::uint64_t lo = r.u32le();
  const std::uint64_t hi = r.u32le();
  return lo | (hi << 32);
}

}  // namespace

std::vector<std::uint8_t> snapshot_bitmap_filter(const BitmapFilter& filter,
                                                 SimTime now) {
  const BitmapFilterConfig& config = filter.config();
  std::vector<std::uint8_t> out;
  const std::size_t words_per_vector = (config.bits() + 63) / 64;
  out.reserve(64 + config.vector_count * words_per_vector * 8);
  ByteWriter w{out};

  w.u32le(kSnapshotMagic);
  w.u32le(kSnapshotVersion);
  w.u32le(config.log2_bits);
  w.u32le(config.vector_count);
  w.u32le(config.hash_count);
  write_u64le(w, static_cast<std::uint64_t>(
                     config.rotate_interval.count_usec()));
  w.u32le(config.key_mode == KeyMode::kHolePunching ? 1 : 0);
  write_u64le(w, config.hash_seed);
  w.u32le(static_cast<std::uint32_t>(filter.current_index()));
  write_u64le(w, static_cast<std::uint64_t>(filter.next_rotation().usec()));
  write_u64le(w, filter.rotations());
  write_u64le(w, static_cast<std::uint64_t>(now.usec()));

  for (unsigned v = 0; v < config.vector_count; ++v) {
    for (const std::uint64_t word : filter.vector_words(v)) {
      write_u64le(w, word);
    }
  }
  return out;
}

std::optional<RestoredBitmapFilter> restore_bitmap_filter(
    std::span<const std::uint8_t> snapshot) {
  try {
    ByteReader r{snapshot};
    if (r.u32le() != kSnapshotMagic) return std::nullopt;
    if (r.u32le() != kSnapshotVersion) return std::nullopt;

    BitmapFilterConfig config;
    config.log2_bits = r.u32le();
    config.vector_count = r.u32le();
    config.hash_count = r.u32le();
    config.rotate_interval =
        Duration::usec(static_cast<std::int64_t>(read_u64le(r)));
    config.key_mode =
        r.u32le() == 1 ? KeyMode::kHolePunching : KeyMode::kFullTuple;
    config.hash_seed = read_u64le(r);
    try {
      config.validate();
    } catch (const std::invalid_argument&) {
      return std::nullopt;
    }

    const std::uint32_t idx = r.u32le();
    if (idx >= config.vector_count) return std::nullopt;
    const SimTime next_rotation =
        SimTime::from_usec(static_cast<std::int64_t>(read_u64le(r)));
    const std::uint64_t rotations = read_u64le(r);
    const SimTime snapshot_time =
        SimTime::from_usec(static_cast<std::int64_t>(read_u64le(r)));

    BitmapFilter filter{config};
    const std::size_t words_per_vector = (config.bits() + 63) / 64;
    std::vector<std::uint64_t> words(words_per_vector);
    for (unsigned v = 0; v < config.vector_count; ++v) {
      for (auto& word : words) word = read_u64le(r);
      filter.load_vector_words(v, words);
    }
    if (!r.empty()) return std::nullopt;  // trailing garbage

    filter.restore_rotation_state(idx, next_rotation, rotations);
    return RestoredBitmapFilter{std::move(filter), snapshot_time};
  } catch (const ByteUnderflow&) {
    return std::nullopt;
  }
}

}  // namespace upbound
