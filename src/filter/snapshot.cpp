#include "filter/snapshot.h"

#include "util/byte_io.h"

namespace upbound {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x55424d46;  // "UBMF"
constexpr std::uint32_t kSnapshotVersion = 1;

void write_u64le(ByteWriter& w, std::uint64_t v) {
  w.u32le(static_cast<std::uint32_t>(v));
  w.u32le(static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t read_u64le(ByteReader& r) {
  const std::uint64_t lo = r.u32le();
  const std::uint64_t hi = r.u32le();
  return lo | (hi << 32);
}

}  // namespace

std::vector<std::uint8_t> snapshot_bitmap_filter(const BitmapFilter& filter,
                                                 SimTime now) {
  const BitmapFilterConfig& config = filter.config();
  std::vector<std::uint8_t> out;
  const std::size_t words_per_vector = (config.bits() + 63) / 64;
  out.reserve(64 + config.vector_count * words_per_vector * 8);
  ByteWriter w{out};

  w.u32le(kSnapshotMagic);
  w.u32le(kSnapshotVersion);
  w.u32le(config.log2_bits);
  w.u32le(config.vector_count);
  w.u32le(config.hash_count);
  write_u64le(w, static_cast<std::uint64_t>(
                     config.rotate_interval.count_usec()));
  w.u32le(config.key_mode == KeyMode::kHolePunching ? 1 : 0);
  write_u64le(w, config.hash_seed);
  w.u32le(static_cast<std::uint32_t>(filter.current_index()));
  write_u64le(w, static_cast<std::uint64_t>(filter.next_rotation().usec()));
  write_u64le(w, filter.rotations());
  write_u64le(w, static_cast<std::uint64_t>(now.usec()));

  for (unsigned v = 0; v < config.vector_count; ++v) {
    for (const std::uint64_t word : filter.vector_words(v)) {
      write_u64le(w, word);
    }
  }
  return out;
}

const char* snapshot_restore_error_name(SnapshotRestoreError error) {
  switch (error) {
    case SnapshotRestoreError::kNone:
      return "none";
    case SnapshotRestoreError::kTruncated:
      return "truncated";
    case SnapshotRestoreError::kBadMagic:
      return "bad magic";
    case SnapshotRestoreError::kBadVersion:
      return "unsupported version";
    case SnapshotRestoreError::kBadConfig:
      return "invalid embedded configuration";
    case SnapshotRestoreError::kBadRotationIndex:
      return "rotation index out of range";
    case SnapshotRestoreError::kBadRotationTime:
      return "rotation schedule out of range";
    case SnapshotRestoreError::kTrailingBytes:
      return "trailing bytes";
    case SnapshotRestoreError::kStale:
      return "stale (older than T_e)";
  }
  return "unknown";
}

BitmapRestoreResult restore_bitmap_filter_checked(
    std::span<const std::uint8_t> snapshot, std::optional<SimTime> now) {
  BitmapRestoreResult result;
  const auto fail = [&result](SnapshotRestoreError error) {
    result.error = error;
    return result;
  };
  try {
    ByteReader r{snapshot};
    if (r.u32le() != kSnapshotMagic) {
      return fail(SnapshotRestoreError::kBadMagic);
    }
    if (r.u32le() != kSnapshotVersion) {
      return fail(SnapshotRestoreError::kBadVersion);
    }

    BitmapFilterConfig config;
    config.log2_bits = r.u32le();
    config.vector_count = r.u32le();
    config.hash_count = r.u32le();
    config.rotate_interval =
        Duration::usec(static_cast<std::int64_t>(read_u64le(r)));
    config.key_mode =
        r.u32le() == 1 ? KeyMode::kHolePunching : KeyMode::kFullTuple;
    config.hash_seed = read_u64le(r);
    try {
      config.validate();
    } catch (const std::invalid_argument&) {
      return fail(SnapshotRestoreError::kBadConfig);
    }

    const std::uint32_t idx = r.u32le();
    if (idx >= config.vector_count) {
      return fail(SnapshotRestoreError::kBadRotationIndex);
    }
    const SimTime next_rotation =
        SimTime::from_usec(static_cast<std::int64_t>(read_u64le(r)));
    const std::uint64_t rotations = read_u64le(r);
    const SimTime snapshot_time =
        SimTime::from_usec(static_cast<std::int64_t>(read_u64le(r)));
    // A healthy snapshot has its next rotation within one expiry cycle of
    // the snapshot time; anything further off is corruption, and a value
    // far in the past would wedge the first advance_time() in a
    // one-rotate-per-dt loop across the whole gap.
    if (next_rotation < snapshot_time - config.expiry_timer() ||
        next_rotation > snapshot_time + config.expiry_timer()) {
      return fail(SnapshotRestoreError::kBadRotationTime);
    }
    if (now.has_value() && *now - snapshot_time > config.expiry_timer()) {
      // Restoring would only fake a warm start: every mark the snapshot
      // holds has already rotated out of its survival window.
      result.staleness = *now - snapshot_time;
      return fail(SnapshotRestoreError::kStale);
    }

    // Size-check the payload before touching the allocator: a bit-flipped
    // log2_bits must not make us reserve gigabytes only to underflow.
    const std::size_t words_per_vector = (config.bits() + 63) / 64;
    const std::size_t payload_bytes =
        config.vector_count * words_per_vector * 8;
    if (r.remaining() < payload_bytes) {
      return fail(SnapshotRestoreError::kTruncated);
    }
    if (r.remaining() > payload_bytes) {
      return fail(SnapshotRestoreError::kTrailingBytes);
    }

    BitmapFilter filter{config};
    std::vector<std::uint64_t> words(words_per_vector);
    for (unsigned v = 0; v < config.vector_count; ++v) {
      for (auto& word : words) word = read_u64le(r);
      filter.load_vector_words(v, words);
    }
    filter.restore_rotation_state(idx, next_rotation, rotations);
    result.restored = RestoredBitmapFilter{std::move(filter), snapshot_time};
    return result;
  } catch (const ByteUnderflow&) {
    return fail(SnapshotRestoreError::kTruncated);
  }
}

std::optional<RestoredBitmapFilter> restore_bitmap_filter(
    std::span<const std::uint8_t> snapshot) {
  return restore_bitmap_filter_checked(snapshot).restored;
}

}  // namespace upbound
