// Online {k, N, dt} re-tuning from measured occupancy (ROADMAP "filter
// backend zoo + auto-tuning"; parameter math from paper Sections 4.3/5.1).
//
// The deployment question Section 5.1 answers offline -- "how big must N
// be, and what m, for the peak connection load?" -- is answered online
// here: the router samples the filter's occupancy U every few batches,
// the tuner folds the per-generation PEAK occupancy into an EWMA at each
// rotation boundary (the only instant the paper's model is clean: the
// current vector then holds exactly the last (k-1)*dt of state), inverts
// the Bloom fill equation to estimate the active connection count
//
//     c  =  -N * ln(1 - U) / m,
//
// and recomputes a recommendation: Eq. 5's optimal m for the measured
// load, the smallest power-of-two N whose Eq. 6 capacity covers it at
// the target penetration probability, and a dt scale-down when the
// current geometry is over capacity (shorter windows hold fewer
// concurrent connections).
//
// Policy: RECOMMEND ONLY. The tuner never resizes the live filter --
// an in-place geometry change would rehash every mark (impossible: the
// originals are gone) or clear state (a self-inflicted fault), and would
// break replay determinism and the no-false-negative window mid-run.
// Recommendations surface as tuner.* gauges and through the CLI at end
// of run; operators apply them at restart/rotation-epoch boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/time.h"

namespace upbound {

/// The Bloom-side geometry of a registered backend, as consumed by the
/// tuner and reported by the registry's geometry() capability hook.
struct FilterGeometry {
  std::size_t bits = 0;      // N: slots (bits or counter cells) per vector
  unsigned hash_count = 0;   // m
  unsigned vector_count = 0;  // k
  Duration rotate_interval;  // dt
};

struct TunerConfig {
  bool enabled = false;
  /// Target penetration probability p for the Eq. 6 capacity check.
  double target_penetration = 0.01;
  /// Occupancy sampling cadence, in router batches.
  unsigned sample_batches = 64;
  /// EWMA smoothing of per-generation occupancy peaks, in (0, 1]; 1
  /// means "last generation only".
  double ewma_alpha = 0.3;
  /// Geometry of the live filter (from the registry descriptor).
  FilterGeometry geometry;

  /// Throws std::invalid_argument when enabled with bad parameters.
  void validate() const;
};

struct TunerRecommendation {
  double occupancy_peak_ewma = 0.0;   // smoothed per-generation peak U
  double estimated_connections = 0.0;  // c from the fill inversion
  double penetration_estimate = 0.0;   // Eq. 2 at the smoothed peak
  unsigned recommended_hash_count = 0;  // Eq. 5 at the estimated load
  std::size_t recommended_bits = 0;     // smallest 2^n meeting Eq. 6
  Duration recommended_rotate_interval;  // dt, scaled down if over capacity
  std::uint64_t generations_observed = 0;
  std::uint64_t samples = 0;

  std::string to_string() const;
};

class AdaptiveTuner {
 public:
  explicit AdaptiveTuner(const TunerConfig& config);

  /// Feeds one occupancy sample taken while `generation` was current.
  /// Samples within a generation keep its running peak; the first sample
  /// of a NEW generation folds the finished generation's peak into the
  /// EWMA and recomputes the recommendation (rotation-boundary policy).
  void observe(double occupancy, std::uint64_t generation);

  const TunerRecommendation& recommendation() const { return rec_; }
  const TunerConfig& config() const { return config_; }

 private:
  void fold_and_recompute();

  TunerConfig config_;
  std::optional<std::uint64_t> current_generation_;
  double pending_peak_ = 0.0;
  double ewma_ = 0.0;
  bool ewma_primed_ = false;
  TunerRecommendation rec_;
};

}  // namespace upbound
