// Bloom columns in 512-bit cache-line blocks (Putze et al.'s blocked
// Bloom layout): all m probes of a key land inside the single 64-byte
// block its first hash selects, so a mark or lookup costs one cache line
// instead of m scattered ones. The price is a slightly higher false
// positive rate at equal memory (probes collide within 512 bits instead
// of N); the blocked-layout FP-rate bound test pins it.
//
// Multiple rotating columns are stored block-major interleaved: block b
// of column c lives at blocks_[b * columns + c], so a key marked into
// every column touches `columns` ADJACENT cache lines -- one prefetch
// stream and one TLB page instead of `columns` scattered allocations.
// Clearing a column walks a strided slice; that cost lands on rotation
// (rare), not on the per-packet path.
#pragma once

#include <cstdint>
#include <vector>

#include "util/prefetch.h"

namespace upbound {

class BlockedBitVector {
 public:
  /// Bits per block: one 64-byte cache line.
  static constexpr std::size_t kBlockBits = 512;

  /// Creates `columns` columns of `size` bits each, all zero. `size` must
  /// be a positive multiple of kBlockBits (any 2^n with n >= 9 is);
  /// `columns` must be positive.
  explicit BlockedBitVector(std::size_t size, std::size_t columns = 1);

  /// Bits per column.
  std::size_t size() const { return size_; }
  std::size_t columns() const { return columns_; }
  /// Blocks per column.
  std::size_t block_count() const { return blocks_.size() / columns_; }

  void set_in(std::size_t block, std::size_t column, std::size_t offset) {
    blocks_[block * columns_ + column].w[offset >> 6] |=
        std::uint64_t{1} << (offset & 63);
  }
  bool test_in(std::size_t block, std::size_t column,
               std::size_t offset) const {
    return (blocks_[block * columns_ + column].w[offset >> 6] >>
            (offset & 63)) &
           1;
  }

  /// ORs a prebuilt 512-bit mask into `block` of EVERY column: eight
  /// unconditional word ORs per column (the compiler vectorizes them),
  /// cost independent of how many probes built the mask, and the
  /// interleaving keeps all columns in one adjacent-line streak.
  void or_line(std::size_t block, const std::uint64_t line[8]) {
    Block* b = &blocks_[block * columns_];
    for (std::size_t c = 0; c < columns_; ++c) {
      for (int w = 0; w < 8; ++w) b[c].w[w] |= line[w];
    }
  }

  /// True when every bit of the prebuilt mask is set in `block` of
  /// `column`. Branch-free: empty mask words compare trivially equal.
  bool contains_line(std::size_t block, std::size_t column,
                     const std::uint64_t line[8]) const {
    const Block& b = blocks_[block * columns_ + column];
    bool ok = true;
    for (int w = 0; w < 8; ++w) ok &= (b.w[w] & line[w]) == line[w];
    return ok;
  }

  /// Cache hints. One line covers every probe of a key within a column --
  /// which is the point of the layout -- and the interleaving makes the
  /// all-columns span of a block contiguous.
  void prefetch_block_for_test(std::size_t block,
                               std::size_t column) const {
    prefetch_read(&blocks_[block * columns_ + column]);
  }
  void prefetch_block_for_set_all(std::size_t block) const {
    for (std::size_t c = 0; c < columns_; ++c) {
      prefetch_write(&blocks_[block * columns_ + c]);
    }
  }

  /// Zeroes one column; O(size/64) word stores, strided by the
  /// interleaving.
  void clear(std::size_t column);
  /// Zeroes every column; one contiguous wipe.
  void clear_all();

  /// Number of set bits in one column (the `b` in U = b/N).
  std::size_t popcount(std::size_t column) const;

  /// Fraction of set bits in one column.
  double utilization(std::size_t column) const {
    return static_cast<double>(popcount(column)) /
           static_cast<double>(size_);
  }

  /// Heap footprint in bytes (all columns).
  std::size_t storage_bytes() const {
    return blocks_.size() * sizeof(Block);
  }

 private:
  struct alignas(64) Block {
    std::uint64_t w[8];
  };

  std::size_t size_;
  std::size_t columns_;
  std::vector<Block> blocks_;
};

}  // namespace upbound
