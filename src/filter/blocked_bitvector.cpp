#include "filter/blocked_bitvector.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace upbound {

BlockedBitVector::BlockedBitVector(std::size_t size, std::size_t columns)
    : size_(size), columns_(columns) {
  if (size == 0 || size % kBlockBits != 0) {
    throw std::invalid_argument(
        "BlockedBitVector: size must be a positive multiple of 512");
  }
  if (columns == 0) {
    throw std::invalid_argument(
        "BlockedBitVector: columns must be positive");
  }
  // value-initialized: all zero
  blocks_.resize(size / kBlockBits * columns);
}

void BlockedBitVector::clear(std::size_t column) {
  const std::size_t count = block_count();
  for (std::size_t b = 0; b < count; ++b) {
    std::memset(&blocks_[b * columns_ + column], 0, sizeof(Block));
  }
}

void BlockedBitVector::clear_all() {
  std::memset(blocks_.data(), 0, blocks_.size() * sizeof(Block));
}

std::size_t BlockedBitVector::popcount(std::size_t column) const {
  std::size_t total = 0;
  const std::size_t count = block_count();
  for (std::size_t b = 0; b < count; ++b) {
    for (const std::uint64_t w : blocks_[b * columns_ + column].w) {
      total += std::popcount(w);
    }
  }
  return total;
}

}  // namespace upbound
