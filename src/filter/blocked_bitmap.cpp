#include "filter/blocked_bitmap.h"

#include <stdexcept>

namespace upbound {

namespace {
std::size_t checked_bits(const BitmapFilterConfig& config) {
  config.validate();
  if (config.log2_bits < 9) {
    throw std::invalid_argument(
        "BlockedBitmapFilter: log2_bits must be >= 9 (one 512-bit block "
        "per vector)");
  }
  return config.bits();
}
}  // namespace

BlockedBitmapFilter::BlockedBitmapFilter(const BitmapFilterConfig& config)
    : config_(config),
      hashes_(checked_bits(config), config.hash_count, config.hash_seed),
      bits_(config.bits(), config.vector_count),
      schedule_(SimTime::origin() + config.rotate_interval,
                config.rotate_interval) {
  block_mask_ = bits_.block_count() - 1;
}

void BlockedBitmapFilter::rotate() {
  const std::size_t last = idx_;
  idx_ = (idx_ + 1) % bits_.columns();
  bits_.clear(last);
  ++rotations_;
}

void BlockedBitmapFilter::advance_time(SimTime now) {
  const std::uint64_t due = schedule_.advance(now);
  if (due == 0) return;
  if (due < bits_.columns()) {
    for (std::uint64_t i = 0; i < due; ++i) rotate();
  } else {
    // k or more boundaries at once: every vector was cleared at least once
    // along the way, so catch up with a full wipe in O(k).
    bits_.clear_all();
    idx_ = (idx_ + due) % bits_.columns();
    rotations_ += due;
  }
}

bool BlockedBitmapFilter::set_rotate_interval(Duration dt) {
  schedule_.set_interval(dt);
  config_.rotate_interval = dt;
  return true;
}

// Builds the 512-bit probe mask of `h` in `line`: m bits starting at
// h.hi, stepping by an odd stride (odd => the m offsets are pairwise
// distinct mod 512; the config caps m at 64). Pure register ALU -- the
// memory side is a whole-line OR or compare, so its cost does not scale
// with m.
void BlockedBitmapFilter::line_mask_of(const Hash128& h,
                                       std::uint64_t line[8]) const {
  for (int w = 0; w < 8; ++w) line[w] = 0;
  const std::uint64_t step = (h.hi >> 32) | 1;
  std::uint64_t off = h.hi;
  for (unsigned i = 0; i < config_.hash_count; ++i) {
    line[(off & kOffsetMask) >> 6] |= std::uint64_t{1} << (off & 63);
    off += step;
  }
}

void BlockedBitmapFilter::mark_dense(const Hash128& h) {
  // Dense masks: whole-line OR per column, cost independent of m.
  std::uint64_t line[8];
  line_mask_of(h, line);
  bits_.or_line(block_of(h), line);
}

void BlockedBitmapFilter::mark_sparse(const Hash128& h) {
  // Sparse masks: m targeted sets per column beat 8 unconditional word
  // ORs while the working set is cache-resident.
  const std::size_t block = block_of(h);
  const std::uint64_t step = (h.hi >> 32) | 1;
  const std::size_t k = bits_.columns();
  std::uint64_t off = h.hi;
  for (unsigned i = 0; i < config_.hash_count; ++i) {
    const auto offset = static_cast<std::size_t>(off & kOffsetMask);
    for (std::size_t c = 0; c < k; ++c) {
      bits_.set_in(block, c, offset);
    }
    off += step;
  }
}

void BlockedBitmapFilter::mark_with(const Hash128& h) {
  if (config_.hash_count >= kDenseProbeThreshold) {
    mark_dense(h);
  } else {
    mark_sparse(h);
  }
}

bool BlockedBitmapFilter::test_dense(const Hash128& h) const {
  std::uint64_t line[8];
  line_mask_of(h, line);
  return bits_.contains_line(block_of(h), idx_, line);
}

bool BlockedBitmapFilter::test_sparse(const Hash128& h) const {
  const std::size_t block = block_of(h);
  const std::uint64_t step = (h.hi >> 32) | 1;
  std::uint64_t off = h.hi;
  // Branchless all-bits-set: the block is one cache line, so testing all
  // m probes is cheaper than an early-exit branch.
  bool admit = true;
  for (unsigned i = 0; i < config_.hash_count; ++i) {
    admit &= bits_.test_in(block, idx_,
                           static_cast<std::size_t>(off & kOffsetMask));
    off += step;
  }
  return admit;
}

bool BlockedBitmapFilter::test_with(const Hash128& h) const {
  return config_.hash_count >= kDenseProbeThreshold ? test_dense(h)
                                                    : test_sparse(h);
}

void BlockedBitmapFilter::record_outbound(const PacketRecord& pkt) {
  mark_with(hashes_.outbound_hash(pkt.tuple, config_.key_mode));
}

bool BlockedBitmapFilter::admits_inbound(const PacketRecord& pkt) {
  return test_with(hashes_.inbound_hash(pkt.tuple, config_.key_mode));
}

void BlockedBitmapFilter::record_outbound_batch(PacketBatch batch) {
  std::size_t i = 0;
  while (i < batch.size()) {
    advance_time(batch[i].timestamp);
    // Marks commute between rotations (idempotent bit-ORs), so hashing and
    // touching in separate passes matches the scalar order observably.
    std::size_t j = i + 1;
    while (j < batch.size() && j - i < kBatchChunk &&
           batch[j].timestamp < schedule_.next_boundary()) {
      ++j;
    }
    mark_chunk(batch.subspan(i, j - i));
    i = j;
  }
}

void BlockedBitmapFilter::mark_chunk(PacketBatch chunk) {
  hash_scratch_.resize(chunk.size());
  key_scratch_.resize(chunk.size() * BloomHashFamily::kKeyStride);
  hashes_.outbound_hash_batch(chunk, config_.key_mode, key_scratch_,
                              hash_scratch_);
  // Fixed-distance software pipeline: prefetch the whole adjacent-line
  // streak of key p+D while marking key p, so a bounded window of misses
  // is in flight instead of one up-front burst that outruns the prefetch
  // queue (and, for large chunks, the L1).
  const std::size_t n = chunk.size();
  const std::size_t lead = std::min<std::size_t>(kPrefetchDistance, n);
  for (std::size_t p = 0; p < lead; ++p) {
    bits_.prefetch_block_for_set_all(block_of(hash_scratch_[p]));
  }
  // Dense/sparse dispatch hoisted out of the loop so the per-key body
  // stays small enough to inline.
  const bool dense = config_.hash_count >= kDenseProbeThreshold;
  for (std::size_t p = 0; p < n; ++p) {
    if (p + kPrefetchDistance < n) {
      bits_.prefetch_block_for_set_all(
          block_of(hash_scratch_[p + kPrefetchDistance]));
    }
    if (dense) {
      mark_dense(hash_scratch_[p]);
    } else {
      mark_sparse(hash_scratch_[p]);
    }
  }
}

void BlockedBitmapFilter::admits_inbound_batch(PacketBatch batch,
                                               std::span<bool> admits) {
  std::size_t i = 0;
  while (i < batch.size()) {
    advance_time(batch[i].timestamp);
    std::size_t j = i + 1;
    while (j < batch.size() && j - i < kBatchChunk &&
           batch[j].timestamp < schedule_.next_boundary()) {
      ++j;
    }
    test_chunk(batch.subspan(i, j - i), admits.subspan(i));
    i = j;
  }
}

void BlockedBitmapFilter::test_chunk(PacketBatch chunk,
                                     std::span<bool> admits) {
  hash_scratch_.resize(chunk.size());
  key_scratch_.resize(chunk.size() * BloomHashFamily::kKeyStride);
  hashes_.inbound_hash_batch(chunk, config_.key_mode, key_scratch_,
                             hash_scratch_);
  // No rotation inside the chunk, so idx_ is stable and lookups are pure.
  // Same fixed-distance pipeline as mark_chunk, one line per key.
  const std::size_t n = chunk.size();
  const std::size_t lead = std::min<std::size_t>(kPrefetchDistance, n);
  for (std::size_t p = 0; p < lead; ++p) {
    bits_.prefetch_block_for_test(block_of(hash_scratch_[p]), idx_);
  }
  const bool dense = config_.hash_count >= kDenseProbeThreshold;
  for (std::size_t p = 0; p < n; ++p) {
    if (p + kPrefetchDistance < n) {
      bits_.prefetch_block_for_test(
          block_of(hash_scratch_[p + kPrefetchDistance]), idx_);
    }
    admits[p] = dense ? test_dense(hash_scratch_[p])
                      : test_sparse(hash_scratch_[p]);
  }
}

std::size_t BlockedBitmapFilter::storage_bytes() const {
  return bits_.storage_bytes();
}

}  // namespace upbound
