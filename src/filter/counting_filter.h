// Counting-Bloom variant of the {k x N} bitmap with per-tuple deletion.
//
// Same generational layout as the paper's filter -- k generations rotated
// every dt, outbound traffic inserted into ALL generations, inbound looked
// up in the CURRENT generation only, so the [(k-1)dt, k*dt] expiry window
// carries over unchanged -- but each generation is a table of 4-bit
// saturating counters instead of bits. That buys the one operation the
// bitmap fundamentally cannot do: deleting a single tuple's state before
// rotation retires it. Outbound TCP FIN/RST removes the connection
// immediately (configurable), so closed connections stop admitting inbound
// traffic without waiting up to k*dt.
//
// Deletion-safety rules (standard counting-Bloom discipline):
//   - insert-if-absent: an insert increments the m hashed cells of a
//     generation only when the tuple looks absent there (some cell == 0),
//     so repeated packets of one connection cost one increment and one
//     delete removes them exactly;
//   - counters saturate at 15 and a saturated cell is never decremented
//     (it can no longer prove how many tuples share it), trading a stuck
//     cell (a lingering false positive) for the impossibility of
//     delete-induced false negatives on OTHER tuples;
//   - a delete only decrements generations where the tuple looks present.
// A Bloom false positive at insert time can still skip a needed increment
// (the tuple LOOKED present); a later delete of the colliding tuple then
// expires this one early. That residual risk is the documented price of
// deletion and is bounded by the same Eq. 3 collision probability as
// lookup false positives.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "filter/hash_family.h"
#include "filter/rotation_schedule.h"
#include "filter/state_filter.h"

namespace upbound {

struct CountingFilterConfig {
  unsigned log2_cells = 20;    // each generation holds 2^log2_cells counters
  unsigned generation_count = 4;  // k
  unsigned hash_count = 3;        // m
  Duration rotate_interval = Duration::sec(5.0);  // dt
  /// Delete a connection's state when an outbound TCP FIN or RST is seen.
  bool delete_on_close = true;
  KeyMode key_mode = KeyMode::kFullTuple;
  std::uint64_t hash_seed = 0x7570626f756e6421ULL;

  std::size_t cells() const { return std::size_t{1} << log2_cells; }
  /// T_e = k * dt, as for the bitmap.
  Duration expiry_timer() const {
    return rotate_interval * static_cast<double>(generation_count);
  }
  /// Two 4-bit counters per byte, k generations.
  std::size_t memory_bytes() const { return generation_count * cells() / 2; }

  /// Throws std::invalid_argument when parameters are out of range.
  void validate() const;
};

class CountingFilter final : public StateFilter {
 public:
  explicit CountingFilter(const CountingFilterConfig& config);

  // StateFilter. The inherited default batch loops make the batch path
  // trivially bit-identical to the scalar one (including FIN/RST deletes,
  // which do not commute with inserts and so cannot be reordered).
  void advance_time(SimTime now) override;
  void record_outbound(const PacketRecord& pkt) override;
  bool admits_inbound(const PacketRecord& pkt) override;
  bool inbound_lookup_is_pure() const override { return true; }
  std::optional<double> occupancy_fraction() const override;
  std::uint64_t expiry_generations() const override { return rotations_; }
  std::size_t storage_bytes() const override;
  std::string name() const override { return "counting"; }

  /// Advance the current generation and clear the one it reaches
  /// (Algorithm 1's b.rotate, on counter tables).
  void rotate();

  /// Deletes one connection's state from every generation where it looks
  /// present (see deletion-safety rules above). Public so operators and
  /// tests can expire state out of band; record_outbound calls it on
  /// outbound TCP FIN/RST when delete_on_close is set.
  void erase_connection(const FiveTuple& outbound_tuple);

  /// Fault-plane hook: XOR the low bit of one 4-bit cell, addressed by a
  /// flat index over all generations (mirrors bit flips on the bitmap).
  void corrupt_cell(std::uint64_t flat_index);

  const CountingFilterConfig& config() const { return config_; }
  std::uint64_t rotations() const { return rotations_; }
  std::size_t current_index() const { return idx_; }
  std::uint64_t deletes_applied() const { return deletes_applied_; }

 private:
  static constexpr std::uint8_t kSaturated = 15;

  std::uint8_t get_cell(std::size_t generation, std::size_t cell) const;
  void set_cell(std::size_t generation, std::size_t cell,
                std::uint8_t value);
  /// True when all m hashed cells of `generation` are nonzero.
  bool present_in(std::size_t generation) const;  // reads scratch_

  CountingFilterConfig config_;
  BloomHashFamily hashes_;
  std::vector<std::uint8_t> bytes_;  // two cells per byte, flat over k gens
  std::size_t idx_ = 0;
  RotationSchedule schedule_;
  std::uint64_t rotations_ = 0;
  std::uint64_t deletes_applied_ = 0;
  std::vector<std::size_t> scratch_;
};

}  // namespace upbound
