#include "tenant/hierarchical_filter.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace upbound {

void HierarchicalFilterConfig::validate() const {
  if (front.backend == nullptr || fine.backend == nullptr) {
    throw std::invalid_argument(
        "HierarchicalFilterConfig: front and fine specs required");
  }
  if (fine_cap < 1) {
    throw std::invalid_argument(
        "HierarchicalFilterConfig: fine_cap must be >= 1");
  }
  if (fine_window <= Duration{}) {
    throw std::invalid_argument(
        "HierarchicalFilterConfig: fine_window must be positive");
  }
  if (digest.has_value()) digest->validate();
}

Duration filter_spec_max_window(const FilterSpec& spec) {
  if (spec.backend == nullptr) {
    throw std::logic_error("filter_spec_max_window: empty spec");
  }
  if (const std::optional<FilterGeometry> g = spec.backend->geometry(spec)) {
    return g->rotate_interval * static_cast<double>(g->vector_count);
  }
  return spec.backend->guaranteed_window(spec);
}

HierarchicalFilter::HierarchicalFilter(const HierarchicalFilterConfig& config)
    : config_(config),
      table_(config.table),
      front_(make_state_filter(config.front)),
      clock_(SimTime::from_usec(std::numeric_limits<std::int64_t>::min())) {
  config_.validate();
  // The short-circuit is exact only when (a) the fine tier's lookups are
  // pure, so skipping them on a front miss has no side effects to
  // preserve, and (b) the front's no-false-negative window covers every
  // age the fine tier can still admit, so a front miss proves a fine
  // miss. Anything else falls back to fine-only verdicts.
  const bool fine_pure = config_.fine.backend->has(kCapPureLookup);
  const bool front_no_fn = config_.front.backend->has(kCapNoFalseNegative);
  const bool covered =
      front_no_fn &&
      config_.front.backend->guaranteed_window(config_.front) >=
          config_.fine_window;
  short_circuit_ = fine_pure && covered;
}

std::uint64_t HierarchicalFilter::epoch_of(SimTime now) const {
  const std::int64_t t = (now - SimTime::origin()).count_usec();
  if (t <= 0) return 0;
  return static_cast<std::uint64_t>(t / config_.fine_window.count_usec());
}

void HierarchicalFilter::advance_time(SimTime now) {
  if (now > clock_) clock_ = now;
  front_->advance_time(now);
  // Fine filters advance lazily on access: every generational backend
  // anchors its schedule on the absolute origin, so a catch-up advance at
  // access time lands the same phase as per-packet advances would.
}

HierarchicalFilter::TenantEntry* HierarchicalFilter::live_entry(
    TenantId tenant) {
  const auto it = entries_.find(tenant);
  if (it == entries_.end()) return nullptr;
  TenantEntry& entry = it->second;
  entry.fine->advance_time(clock_);
  if (entry.lru != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, entry.lru);
  }
  return &entry;
}

HierarchicalFilter::TenantEntry& HierarchicalFilter::entry_for(
    TenantId tenant) {
  if (TenantEntry* live = live_entry(tenant)) return *live;
  if (entries_.size() >= config_.fine_cap) {
    const TenantId victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++evictions_;
  }
  lru_.push_front(tenant);
  TenantEntry& entry = entries_[tenant];
  entry.fine = make_state_filter(config_.fine);
  entry.fine->advance_time(clock_);
  entry.lru = lru_.begin();
  ++instantiations_;
  return entry;
}

void HierarchicalFilter::record_outbound(const PacketRecord& pkt) {
  const TenantId tenant = table_.tenant_of_outbound(pkt.tuple);
  seen_.insert(tenant);
  if (short_circuit_) front_->record_outbound(pkt);
  TenantEntry& entry = entry_for(tenant);
  entry.fine->record_outbound(pkt);
  if (config_.digest.has_value()) {
    const std::uint64_t epoch = epoch_of(clock_);
    if (!entry.digest.has_value()) {
      entry.digest.emplace(tenant, epoch, *config_.digest);
    } else if (entry.digest->epoch() != epoch) {
      entry.digest->clear(epoch);
    }
    entry.digest->insert_outbound(pkt.tuple);
  }
}

bool HierarchicalFilter::admits_inbound(const PacketRecord& pkt) {
  const TenantId tenant = table_.tenant_of_inbound(pkt.tuple);
  bool verdict = false;
  if (short_circuit_ && !front_->admits_inbound(pkt)) {
    ++front_absorbed_;
  } else if (TenantEntry* entry = live_entry(tenant)) {
    verdict = entry->fine->admits_inbound(pkt);
  }
  if (!verdict && !remote_.empty()) {
    const auto it = remote_.find(tenant);
    if (it != remote_.end() &&
        it->second.epoch() + 1 >= epoch_of(clock_) &&
        it->second.contains_inbound(pkt.tuple)) {
      ++digest_admits_;
      verdict = true;
    }
  }
  return verdict;
}

std::size_t HierarchicalFilter::storage_bytes() const {
  std::size_t total = front_->storage_bytes();
  for (const auto& [tenant, entry] : entries_) {
    total += entry.fine->storage_bytes();
    if (entry.digest.has_value()) {
      total += entry.digest->config().words() * 8;
    }
  }
  for (const auto& [tenant, digest] : remote_) {
    total += digest.config().words() * 8;
  }
  return total;
}

std::vector<std::pair<TenantId, double>>
HierarchicalFilter::tenant_occupancies() const {
  std::vector<std::pair<TenantId, double>> out;
  out.reserve(entries_.size());
  for (const auto& [tenant, entry] : entries_) {
    if (const std::optional<double> occ = entry.fine->occupancy_fraction()) {
      out.emplace_back(tenant, *occ);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<StateDigest> HierarchicalFilter::local_digest(
    TenantId tenant) const {
  const auto it = entries_.find(tenant);
  if (it == entries_.end() || !it->second.digest.has_value()) {
    return std::nullopt;
  }
  if (it->second.digest->epoch() != epoch_of(clock_)) return std::nullopt;
  return *it->second.digest;
}

std::optional<StateDigest> HierarchicalFilter::combined_digest(
    TenantId tenant) const {
  std::optional<StateDigest> out = local_digest(tenant);
  const auto it = remote_.find(tenant);
  if (it != remote_.end() && it->second.epoch() == epoch_of(clock_)) {
    if (out.has_value()) {
      out->merge(it->second);
    } else {
      out = it->second;
    }
  }
  return out;
}

DigestError HierarchicalFilter::apply_digest(const StateDigest& remote) {
  if (!config_.digest.has_value() || remote.config() != *config_.digest) {
    return DigestError::kConfigMismatch;
  }
  if (remote.epoch() + 1 < epoch_of(clock_)) {
    return DigestError::kEpochMismatch;
  }
  const auto it = remote_.find(remote.tenant());
  if (it == remote_.end()) {
    remote_.emplace(remote.tenant(), remote);
    return DigestError::kNone;
  }
  if (it->second.epoch() == remote.epoch()) {
    return it->second.try_merge(remote);
  }
  if (remote.epoch() > it->second.epoch()) it->second = remote;
  return DigestError::kNone;
}

FilterSpec hierarchical_filter_spec(const HierarchicalFilterConfig& config) {
  config.validate();
  FilterSpec spec;
  spec.backend = &FilterRegistry::instance().at("hierarchical");
  spec.config = std::make_shared<const HierarchicalFilterConfig>(config);
  spec.config_type = &typeid(HierarchicalFilterConfig);
  return spec;
}

}  // namespace upbound
