#include "tenant/state_digest.h"

#include <array>
#include <bit>
#include <stdexcept>

#include "util/byte_io.h"
#include "util/hash.h"

namespace upbound {

namespace {

constexpr std::uint32_t kMagic = 0x55505444;  // "UPTD"
constexpr std::uint16_t kVersion = 1;

void write_u64(ByteWriter& w, std::uint64_t v) {
  w.u32le(static_cast<std::uint32_t>(v));
  w.u32le(static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t read_u64(ByteReader& r) {
  const std::uint64_t lo = r.u32le();
  const std::uint64_t hi = r.u32le();
  return lo | (hi << 32);
}

}  // namespace

void StateDigestConfig::validate() const {
  if (log2_bits < 6 || log2_bits > 24) {
    throw std::invalid_argument(
        "StateDigestConfig: log2_bits must be in [6, 24]");
  }
  if (hash_count < 1 || hash_count > 16) {
    throw std::invalid_argument(
        "StateDigestConfig: hash_count must be in [1, 16]");
  }
}

const char* digest_error_name(DigestError error) {
  switch (error) {
    case DigestError::kNone:
      return "none";
    case DigestError::kTruncated:
      return "truncated";
    case DigestError::kBadMagic:
      return "bad-magic";
    case DigestError::kBadVersion:
      return "bad-version";
    case DigestError::kBadConfig:
      return "bad-config";
    case DigestError::kBadCrc:
      return "bad-crc";
    case DigestError::kTrailingBytes:
      return "trailing-bytes";
    case DigestError::kConfigMismatch:
      return "config-mismatch";
    case DigestError::kTenantMismatch:
      return "tenant-mismatch";
    case DigestError::kEpochMismatch:
      return "epoch-mismatch";
  }
  return "?";
}

StateDigest::StateDigest(TenantId tenant, std::uint64_t epoch,
                         const StateDigestConfig& config)
    : config_(config),
      tenant_(tenant),
      epoch_(epoch),
      hashes_(config.bits(), config.hash_count, config.hash_seed),
      words_(config.words(), 0) {
  config.validate();
}

void StateDigest::insert_outbound(const FiveTuple& sigma_out) {
  std::array<std::size_t, 16> idx;
  const std::span<std::size_t> probes{idx.data(), config_.hash_count};
  hashes_.outbound_indexes(sigma_out, config_.key_mode, probes);
  for (const std::size_t bit : probes) {
    words_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
}

bool StateDigest::contains_inbound(const FiveTuple& sigma_in) const {
  std::array<std::size_t, 16> idx;
  const std::span<std::size_t> probes{idx.data(), config_.hash_count};
  hashes_.inbound_indexes(sigma_in, config_.key_mode, probes);
  for (const std::size_t bit : probes) {
    if ((words_[bit >> 6] & (std::uint64_t{1} << (bit & 63))) == 0) {
      return false;
    }
  }
  return true;
}

std::size_t StateDigest::set_bits() const {
  std::size_t count = 0;
  for (const std::uint64_t word : words_) count += std::popcount(word);
  return count;
}

void StateDigest::clear(std::uint64_t epoch) {
  epoch_ = epoch;
  words_.assign(words_.size(), 0);
}

DigestError StateDigest::try_merge(const StateDigest& other) {
  if (config_ != other.config_) return DigestError::kConfigMismatch;
  if (tenant_ != other.tenant_) return DigestError::kTenantMismatch;
  if (epoch_ != other.epoch_) return DigestError::kEpochMismatch;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
  return DigestError::kNone;
}

void StateDigest::merge(const StateDigest& other) {
  const DigestError error = try_merge(other);
  if (error != DigestError::kNone) {
    throw std::invalid_argument(std::string("StateDigest::merge: ") +
                                digest_error_name(error));
  }
}

std::vector<std::uint8_t> StateDigest::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(32 + words_.size() * 8);
  ByteWriter w(out);
  w.u32le(kMagic);
  w.u16le(kVersion);
  w.u8(static_cast<std::uint8_t>(config_.log2_bits));
  w.u8(static_cast<std::uint8_t>(config_.hash_count));
  w.u8(config_.key_mode == KeyMode::kHolePunching ? 1 : 0);
  w.u8(0);  // reserved
  write_u64(w, config_.hash_seed);
  w.u32le(tenant_);
  write_u64(w, epoch_);
  for (const std::uint64_t word : words_) write_u64(w, word);
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>{out.data(), out.size()});
  w.u32le(crc);
  return out;
}

DigestParseResult StateDigest::parse(
    std::span<const std::uint8_t> data) {
  DigestParseResult result;
  ByteReader r(data);
  try {
    if (r.u32le() != kMagic) {
      result.error = DigestError::kBadMagic;
      return result;
    }
    if (r.u16le() != kVersion) {
      result.error = DigestError::kBadVersion;
      return result;
    }
    StateDigestConfig config;
    config.log2_bits = r.u8();
    config.hash_count = r.u8();
    const std::uint8_t mode = r.u8();
    r.skip(1);  // reserved
    if (config.log2_bits < 6 || config.log2_bits > 24 ||
        config.hash_count < 1 || config.hash_count > 16 || mode > 1) {
      result.error = DigestError::kBadConfig;
      return result;
    }
    config.key_mode =
        mode == 1 ? KeyMode::kHolePunching : KeyMode::kFullTuple;
    config.hash_seed = read_u64(r);
    const TenantId tenant = r.u32le();
    const std::uint64_t epoch = read_u64(r);
    // Geometry is validated above, so the allocation is bounded (2 MiB at
    // log2_bits = 24) before any word is read.
    StateDigest digest(tenant, epoch, config);
    for (std::uint64_t& word : digest.words_) word = read_u64(r);
    // CRC covers everything before it; check after the full layout is
    // consumed so a truncated body reports kTruncated, not kBadCrc.
    const std::size_t payload_end = r.position();
    const std::uint32_t crc = r.u32le();
    if (crc != crc32(data.subspan(0, payload_end))) {
      result.error = DigestError::kBadCrc;
      return result;
    }
    if (!r.empty()) {
      result.error = DigestError::kTrailingBytes;
      return result;
    }
    result.digest = std::move(digest);
    return result;
  } catch (const ByteUnderflow&) {
    result.error = DigestError::kTruncated;
    return result;
  }
}

}  // namespace upbound
