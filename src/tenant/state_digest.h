// Compact per-tenant state digest for inter-router exchange, in the style
// of in-packet Bloom filters (Rothenberg et al.): a small Bloom bitmap of
// the socket-pair keys a tenant marked during the current digest epoch.
// Edge routers serialize digests, ship them to peers, and merge/apply
// received ones so a roaming client's state converges on every router
// that serves it. The wire format is versioned, CRC-checked, and parses
// with typed errors (never throws on malformed input; fuzz-tested).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "filter/hash_family.h"
#include "tenant/tenant_table.h"
#include "util/time.h"

namespace upbound {

struct StateDigestConfig {
  /// Digest size: 2^log2_bits Bloom bits. Must be in [6, 24]; the default
  /// 2^12 bits = 512 bytes per tenant digest.
  unsigned log2_bits = 12;
  /// Probes per key. Must be in [1, 16].
  unsigned hash_count = 4;
  /// Must match the fine tier's key mode so inbound lookups land on the
  /// bits outbound marks set.
  KeyMode key_mode = KeyMode::kFullTuple;
  std::uint64_t hash_seed = 0x7464696765737421ULL;

  std::size_t bits() const { return std::size_t{1} << log2_bits; }
  std::size_t words() const { return (bits() + 63) / 64; }

  /// Throws std::invalid_argument on out-of-range geometry.
  void validate() const;

  bool operator==(const StateDigestConfig&) const = default;
};

/// Parse/merge failure reasons. Stable names (digest_error_name) surface
/// in CLI and control-socket errors.
enum class DigestError {
  kNone,
  kTruncated,        // shorter than the declared layout
  kBadMagic,
  kBadVersion,
  kBadConfig,        // geometry outside StateDigestConfig bounds
  kBadCrc,
  kTrailingBytes,    // well-formed digest followed by garbage
  kConfigMismatch,   // merge/apply: geometry or key mode differs
  kTenantMismatch,   // merge: digests describe different tenants
  kEpochMismatch,    // merge: digests cover different epochs
};

const char* digest_error_name(DigestError error);

class StateDigest {
 public:
  StateDigest(TenantId tenant, std::uint64_t epoch,
              const StateDigestConfig& config);

  TenantId tenant() const { return tenant_; }
  std::uint64_t epoch() const { return epoch_; }
  const StateDigestConfig& config() const { return config_; }

  /// Marks the key of an outbound packet's tuple (source = internal
  /// client).
  void insert_outbound(const FiveTuple& sigma_out);
  /// Tests the key of an inbound packet's tuple (destination = internal
  /// client); hashes the inverse so it lands on the outbound-marked bits.
  bool contains_inbound(const FiveTuple& sigma_in) const;

  /// Number of set bits (diagnostics; drives the density report).
  std::size_t set_bits() const;

  /// Clears all bits and adopts a new epoch.
  void clear(std::uint64_t epoch);

  /// Unions `other` into this digest. Returns kNone on success; the
  /// digests must agree on tenant, epoch, and configuration.
  DigestError try_merge(const StateDigest& other);
  /// try_merge, throwing std::invalid_argument on mismatch.
  void merge(const StateDigest& other);

  /// Canonical wire encoding (magic, version, config, tenant, epoch,
  /// bit words, CRC-32). Byte-identical for equal digests.
  std::vector<std::uint8_t> serialize() const;

  /// Decodes a serialized digest. Never throws on malformed input; the
  /// result's error field names the first defect found.
  static struct DigestParseResult parse(std::span<const std::uint8_t> data);

  /// Value equality: config, tenant, epoch, and bit contents.
  bool operator==(const StateDigest& other) const {
    return config_ == other.config_ && tenant_ == other.tenant_ &&
           epoch_ == other.epoch_ && words_ == other.words_;
  }

 private:
  StateDigestConfig config_;
  TenantId tenant_ = 0;
  std::uint64_t epoch_ = 0;
  BloomHashFamily hashes_;
  std::vector<std::uint64_t> words_;
};

struct DigestParseResult {
  std::optional<StateDigest> digest;
  DigestError error = DigestError::kNone;
};

}  // namespace upbound
