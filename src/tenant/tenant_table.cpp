#include "tenant/tenant_table.h"

namespace upbound {

const char* tenant_mode_name(TenantMode mode) {
  switch (mode) {
    case TenantMode::kPerSubscriber:
      return "subscriber";
    case TenantMode::kPerPrefix24:
      return "prefix24";
  }
  return "?";
}

std::optional<TenantMode> parse_tenant_mode(std::string_view text) {
  if (text == "subscriber") return TenantMode::kPerSubscriber;
  if (text == "prefix24") return TenantMode::kPerPrefix24;
  return std::nullopt;
}

std::string TenantTable::label(TenantId tenant) const {
  const std::string addr = Ipv4Addr{tenant}.to_string();
  return config_.mode == TenantMode::kPerPrefix24 ? addr + "/24" : addr;
}

}  // namespace upbound
