// Tenant keying for the multi-tenant edge subsystem: maps the client-side
// (internal) address of a five-tuple to a stable tenant identifier. Two
// granularities model an ISP edge: one tenant per subscriber address, or
// one per /24 customer prefix. The mapping is a pure function of the
// address, so tenant identity is identical on every shard and every
// router -- the property the sharded replay merge and the inter-router
// digest exchange both rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/five_tuple.h"
#include "net/ip.h"

namespace upbound {

/// Stable tenant identifier: the subscriber's IPv4 address (host order),
/// or the /24 network address in prefix mode. Never a dense index -- a
/// dense first-seen numbering would diverge across shards and routers.
using TenantId = std::uint32_t;

enum class TenantMode {
  kPerSubscriber,  // one tenant per client address
  kPerPrefix24,    // one tenant per /24 customer prefix
};

const char* tenant_mode_name(TenantMode mode);
/// Parses "subscriber" | "prefix24"; nullopt on anything else.
std::optional<TenantMode> parse_tenant_mode(std::string_view text);

struct TenantTableConfig {
  TenantMode mode = TenantMode::kPerSubscriber;

  bool operator==(const TenantTableConfig&) const = default;
};

class TenantTable {
 public:
  TenantTable() = default;
  explicit TenantTable(TenantTableConfig config) : config_(config) {}

  const TenantTableConfig& config() const { return config_; }

  /// The tenant owning a client (internal) address.
  TenantId tenant_of(Ipv4Addr client) const {
    return config_.mode == TenantMode::kPerPrefix24
               ? (client.value() & 0xffffff00u)
               : client.value();
  }

  /// Tenant of an outbound packet's tuple (source is the internal client).
  TenantId tenant_of_outbound(const FiveTuple& t) const {
    return tenant_of(t.src_addr);
  }
  /// Tenant of an inbound packet's tuple (destination is the internal
  /// client).
  TenantId tenant_of_inbound(const FiveTuple& t) const {
    return tenant_of(t.dst_addr);
  }

  /// Human-readable label for reports: "a.b.c.d" or "a.b.c.0/24".
  std::string label(TenantId tenant) const;

 private:
  TenantTableConfig config_;
};

}  // namespace upbound
