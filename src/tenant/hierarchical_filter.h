// Two-level multi-tenant filter: a shared coarse front filter (default
// bitmap-blocked) absorbs the common-case inbound miss, and per-tenant
// fine filters -- lazily instantiated through the FilterRegistry, so any
// registered backend works as the fine tier -- give per-subscriber
// verdicts and isolation. Live fine filters are LRU-capped; optional
// per-tenant StateDigests support the inter-router exchange path.
//
// Verdict semantics (the differential contract tested against a flat
// one-filter-per-tenant oracle):
//   outbound:  mark the tenant's fine filter (and the front filter when
//              the short-circuit is active).
//   inbound:   with the short-circuit active, a front-filter miss denies
//              without consulting (or instantiating) the fine tier; on a
//              front hit the tenant's fine filter decides. The
//              short-circuit is enabled only when it is provably exact:
//              the fine tier's lookups are pure (kCapPureLookup) and the
//              front's guaranteed no-false-negative window covers the
//              fine tier's maximum admission window, so the front admits
//              every key the fine tier would. Otherwise the fine filter
//              alone decides. Either way the verdict equals the flat
//              per-tenant oracle's; evicting a fine filter under the LRU
//              cap is the one (counted) source of false negatives.
//   digests:   after a local deny, a fresh applied remote digest may
//              admit (the roaming-client path); counted separately and
//              never consulted unless a peer digest was applied.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "filter/filter_registry.h"
#include "filter/state_filter.h"
#include "tenant/state_digest.h"
#include "tenant/tenant_table.h"

namespace upbound {

struct HierarchicalFilterConfig {
  TenantTableConfig table;
  /// Shared coarse tier; must be a no-false-negative backend for the
  /// front short-circuit to engage.
  FilterSpec front;
  /// Per-tenant template: one fresh instance per live tenant.
  FilterSpec fine;
  /// LRU cap on live fine filters (>= 1). Evictions lose that tenant's
  /// marks (counted; sized generously in any exactness test).
  std::size_t fine_cap = 1024;
  /// The fine tier's maximum admission window: generational backends
  /// retain a mark at most k*dt, exact-state backends their timeout.
  /// Drives the front-coverage check and the digest epoch length.
  Duration fine_window = Duration::sec(20.0);
  /// Per-tenant digest building for the inter-router exchange path.
  std::optional<StateDigestConfig> digest;

  /// Throws std::invalid_argument on empty specs or degenerate values.
  void validate() const;
};

/// The fine tier's maximum admission window for a registered backend
/// spec: k*dt from the Bloom geometry when the backend has one, else its
/// guaranteed window (exact-state timeouts).
Duration filter_spec_max_window(const FilterSpec& spec);

class HierarchicalFilter final : public StateFilter {
 public:
  explicit HierarchicalFilter(const HierarchicalFilterConfig& config);

  void advance_time(SimTime now) override;
  void record_outbound(const PacketRecord& pkt) override;
  bool admits_inbound(const PacketRecord& pkt) override;
  /// Lookups touch LRU recency (and may short-circuit on the front), so
  /// they are not pure; the router uses the exact scalar interleaving.
  bool inbound_lookup_is_pure() const override { return false; }
  /// The shared front tier's occupancy -- the saturation signal the
  /// health monitor and tuner watch.
  std::optional<double> occupancy_fraction() const override {
    return front_->occupancy_fraction();
  }
  std::uint64_t expiry_generations() const override {
    return front_->expiry_generations();
  }
  std::size_t storage_bytes() const override;
  std::string name() const override { return "hierarchical"; }

  const TenantTable& tenant_table() const { return table_; }
  bool front_short_circuit() const { return short_circuit_; }

  // Tenancy introspection (telemetry gauges, control socket).
  std::size_t tenant_count() const { return seen_.size(); }
  std::size_t live_fine_filters() const { return entries_.size(); }
  std::uint64_t fine_instantiations() const { return instantiations_; }
  std::uint64_t fine_evictions() const { return evictions_; }
  std::uint64_t front_absorbed() const { return front_absorbed_; }
  std::uint64_t digest_admits() const { return digest_admits_; }
  /// (tenant, occupancy) for live fine filters reporting one, sorted by
  /// tenant id (deterministic regardless of map order).
  std::vector<std::pair<TenantId, double>> tenant_occupancies() const;

  // Inter-router digest exchange. Epochs advance every fine_window so
  // exchanged digests age out with the state they summarize.
  bool digests_enabled() const { return config_.digest.has_value(); }
  std::uint64_t digest_epoch() const { return epoch_of(clock_); }
  /// This router's own marks for `tenant` in the current epoch.
  std::optional<StateDigest> local_digest(TenantId tenant) const;
  /// Local marks unioned with applied peer digests of the current epoch
  /// -- the value routers gossip; two peers that exchange and re-export
  /// converge byte-identically.
  std::optional<StateDigest> combined_digest(TenantId tenant) const;
  /// Applies a peer's digest. Returns kNone on success, kConfigMismatch
  /// when digests are disabled or geometry differs, kEpochMismatch when
  /// the digest is older than the previous epoch.
  DigestError apply_digest(const StateDigest& remote);

 private:
  struct TenantEntry {
    std::unique_ptr<StateFilter> fine;
    std::optional<StateDigest> digest;
    std::list<TenantId>::iterator lru;  // position in lru_
  };

  std::uint64_t epoch_of(SimTime now) const;
  /// Looks up a live entry, advancing its fine filter to the clock and
  /// refreshing LRU recency. nullptr when the tenant has none.
  TenantEntry* live_entry(TenantId tenant);
  /// live_entry, instantiating (and evicting at the cap) when absent.
  TenantEntry& entry_for(TenantId tenant);

  HierarchicalFilterConfig config_;
  TenantTable table_;
  std::unique_ptr<StateFilter> front_;
  bool short_circuit_ = false;
  std::unordered_map<TenantId, TenantEntry> entries_;
  std::list<TenantId> lru_;  // front = most recently used
  std::unordered_map<TenantId, StateDigest> remote_;
  std::unordered_set<TenantId> seen_;
  SimTime clock_;
  std::uint64_t instantiations_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t front_absorbed_ = 0;
  std::uint64_t digest_admits_ = 0;
};

/// Typed spec builder: exactly what the registry's `hierarchical` parse
/// produces for the same configuration.
FilterSpec hierarchical_filter_spec(const HierarchicalFilterConfig& config);

}  // namespace upbound
