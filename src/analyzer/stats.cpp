#include "analyzer/stats.h"

#include <cstdio>
#include <stdexcept>

namespace upbound {

const char* port_class_name(PortClass c) {
  switch (c) {
    case PortClass::kAll: return "ALL";
    case PortClass::kP2p: return "P2P";
    case PortClass::kNonP2p: return "Non-P2P";
    case PortClass::kUnknown: return "UNKNOWN";
  }
  return "?";
}

PortClass port_class_of(AppProtocol app) {
  if (is_p2p(app)) return PortClass::kP2p;
  if (app == AppProtocol::kUnknown) return PortClass::kUnknown;
  return PortClass::kNonP2p;
}

const ProtocolShare& AnalyzerReport::share_of(AppProtocol app) const {
  for (const auto& share : protocol_distribution) {
    if (share.app == app) return share;
  }
  throw std::out_of_range("AnalyzerReport: no share for app");
}

std::string AnalyzerReport::protocol_table() const {
  std::string out;
  out += "| Protocol   | Connections | Utilization |\n";
  out += "|------------|-------------|-------------|\n";
  char line[96];
  for (const auto& share : protocol_distribution) {
    std::snprintf(line, sizeof(line), "| %-10s | %10.2f%% | %10.2f%% |\n",
                  app_protocol_name(share.app),
                  share.connection_fraction * 100.0,
                  share.byte_fraction * 100.0);
    out += line;
  }
  return out;
}

}  // namespace upbound
