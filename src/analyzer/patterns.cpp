#include "analyzer/patterns.h"

namespace upbound {

namespace {

rex::Regex icase(const char* pattern) {
  return rex::Regex{pattern, {.ignore_case = true}};
}

}  // namespace

PatternSet::PatternSet() {
  // Order matters: specific P2P signatures must win over the generic HTTP
  // request pattern (tracker scrapes and Gnutella GETs are HTTP-shaped).
  patterns_.push_back(AppPattern{
      AppProtocol::kBitTorrent, "bittorrent",
      icase("^(\\x13bittorrent protocol|d1:ad2:id20:|azver\\x01$"
            "|get /scrape\\?info_hash=)")});
  patterns_.push_back(AppPattern{
      AppProtocol::kEdonkey, "edonkey",
      // Marker byte, optionally a 4-byte little-endian length, then a
      // known opcode (the Table 1 opcode class, abbreviated).
      rex::Regex{"^[\\xc5\\xd4\\xe3-\\xe5](....)?"
                 "[\\x01\\x02\\x05\\x14-\\x16\\x18-\\x1c\\x20\\x21"
                 "\\x32-\\x36\\x38\\x40-\\x43\\x46-\\x58\\x60\\x81\\x82"
                 "\\x90-\\x9e\\xa0-\\xa4]"}});
  patterns_.push_back(AppPattern{
      AppProtocol::kGnutella, "gnutella",
      icase("^(gnutella connect/[012]\\.[0-9]\\x0d\\x0a"
            "|gnutella/[012]\\.[0-9] [1-5][0-9][0-9]"
            "|gnd[\\x01\\x02]?.?.?\\x01"
            "|get /uri-res/n2r\\?urn:sha1:"
            "|giv [0-9]*:[0-9a-f]+"
            "|get /get/[0-9]*/)")});
  patterns_.push_back(AppPattern{
      // FastTrack signatures from Table 1; kOther because Table 2 does not
      // track it separately (none observed in the paper's campus trace).
      AppProtocol::kOther, "fasttrack",
      icase("^get (/\\.hash=[0-9a-f]*|/\\.supernode|/\\.status"
            "|/\\.network[ -~]*|/\\.files) http/1\\.1")});
  patterns_.push_back(AppPattern{
      AppProtocol::kHttp, "http",
      icase("^(http/(0\\.9|1\\.0|1\\.1) [1-5][0-9][0-9]"
            "|(get|post|head|options|put|delete) [\\x09-\\x0d -~]* "
            "http/(0\\.9|1\\.0|1\\.1))")});
  patterns_.push_back(AppPattern{
      AppProtocol::kFtp, "ftp", icase("^220[\\x09-\\x0d -~]*ftp")});
}

std::optional<AppProtocol> PatternSet::match(
    std::span<const std::uint8_t> stream) const {
  if (stream.empty()) return std::nullopt;
  for (const AppPattern& pattern : patterns_) {
    if (pattern.regex.search(stream)) return pattern.app;
  }
  return std::nullopt;
}

std::optional<AppProtocol> app_for_port(Protocol protocol,
                                        std::uint16_t dst_port) {
  switch (dst_port) {
    case 80:
    case 8080:
    case 3128:
      return protocol == Protocol::kTcp ? std::optional(AppProtocol::kHttp)
                                        : std::nullopt;
    case 21:
      return protocol == Protocol::kTcp ? std::optional(AppProtocol::kFtp)
                                        : std::nullopt;
    case 53:
      return AppProtocol::kDns;
    case 4662:
      return AppProtocol::kEdonkey;  // TCP default
    case 4661:
    case 4665:
    case 4672:
      return protocol == Protocol::kUdp
                 ? std::optional(AppProtocol::kEdonkey)
                 : std::nullopt;
    case 6881:
    case 6882:
    case 6883:
    case 6884:
    case 6885:
    case 6886:
    case 6887:
    case 6888:
    case 6889:
      return AppProtocol::kBitTorrent;
    case 6346:
    case 6347:
      return AppProtocol::kGnutella;
    case 22:
    case 25:
    case 110:
    case 143:
    case 443:
    case 993:
      return protocol == Protocol::kTcp ? std::optional(AppProtocol::kOther)
                                        : std::nullopt;
    default:
      return std::nullopt;
  }
}

}  // namespace upbound
