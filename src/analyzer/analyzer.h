// The traffic analyzer facade (paper Section 3.2): feeds packets through
// direction classification, connection tracking, application
// identification, and the statistics collectors, then produces the
// Section 3.3 measurement report.
//
//   TrafficAnalyzer analyzer{{.network = campus_network}};
//   for (const PacketRecord& pkt : trace) analyzer.process(pkt);
//   AnalyzerReport report = analyzer.finish();
#pragma once

#include "analyzer/classifier.h"
#include "analyzer/conn_table.h"
#include "analyzer/out_in_delay.h"
#include "analyzer/stats.h"
#include "net/direction.h"

namespace upbound {

struct AnalyzerConfig {
  ClientNetwork network;
  ClassifierConfig classifier;
  /// Expiry timer for the out-in delay measurement (paper uses 600 s to
  /// expose the port-reuse peaks).
  Duration out_in_expiry = Duration::sec(600.0);
};

class TrafficAnalyzer {
 public:
  explicit TrafficAnalyzer(AnalyzerConfig config);
  /// Convenience: default configuration over the given client network.
  explicit TrafficAnalyzer(ClientNetwork network);

  /// Processes one packet. Timestamps must be non-decreasing.
  void process(const PacketRecord& pkt);

  /// Finalizes open classifications and builds the report. The analyzer
  /// remains usable (further packets extend the same state).
  AnalyzerReport finish();

  const ConnTable& connections() const { return table_; }
  const Classifier& classifier() const { return classifier_; }
  std::uint64_t packets_processed() const { return packets_; }
  /// Packets whose direction was local/transit (not analyzed).
  std::uint64_t packets_skipped() const { return skipped_; }

 private:
  AnalyzerConfig config_;
  ConnTable table_;
  Classifier classifier_;
  OutInDelayTracker out_in_;
  std::uint64_t packets_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t outbound_bytes_ = 0;
  std::uint64_t inbound_bytes_ = 0;
};

}  // namespace upbound
