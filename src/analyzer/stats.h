// Aggregated measurement products of the traffic analyzer, mapping onto
// the paper's evaluation artifacts: Table 2 (protocol distribution),
// Figs. 2-3 (port CDFs by class), Fig. 4 (lifetimes), and the throughput
// time series behind Figs. 8-9.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/app_protocol.h"
#include "util/stats.h"

namespace upbound {

/// The paper's four port classes (Section 3.3, Figs. 2-3).
enum class PortClass { kAll, kP2p, kNonP2p, kUnknown };

const char* port_class_name(PortClass c);

PortClass port_class_of(AppProtocol app);

/// Table 2 row.
struct ProtocolShare {
  AppProtocol app = AppProtocol::kUnknown;
  std::uint64_t connections = 0;
  std::uint64_t bytes = 0;
  double connection_fraction = 0.0;
  double byte_fraction = 0.0;
};

struct AnalyzerReport {
  // --- Table 2 ---
  std::vector<ProtocolShare> protocol_distribution;
  std::uint64_t total_connections = 0;
  std::uint64_t total_bytes = 0;

  // --- Figs. 2 & 3: service-port samples per class ---
  // TCP: SYN destination ports; UDP: both ports of each connection.
  std::map<PortClass, CdfBuilder> tcp_port_cdf;
  std::map<PortClass, CdfBuilder> udp_port_cdf;

  // --- Fig. 4: TCP connection lifetimes (seconds; SYN..FIN/RST only) ---
  CdfBuilder lifetimes;
  SummaryStats lifetime_summary;

  // --- Fig. 5: out-in packet delays (seconds) ---
  CdfBuilder out_in_delays;

  // --- Aggregate throughput ---
  std::uint64_t outbound_bytes = 0;
  std::uint64_t inbound_bytes = 0;
  std::uint64_t tcp_bytes = 0;
  std::uint64_t udp_bytes = 0;
  std::uint64_t tcp_connections = 0;
  std::uint64_t udp_connections = 0;

  double upload_fraction() const {
    const double total =
        static_cast<double>(outbound_bytes + inbound_bytes);
    return total == 0.0 ? 0.0 : static_cast<double>(outbound_bytes) / total;
  }

  const ProtocolShare& share_of(AppProtocol app) const;

  /// Formats the Table 2 analogue as an aligned ASCII table.
  std::string protocol_table() const;
};

}  // namespace upbound
