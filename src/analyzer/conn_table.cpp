#include "analyzer/conn_table.h"

namespace upbound {

ConnectionRecord& ConnTable::update(const PacketRecord& pkt, Direction dir) {
  auto [it, inserted] = table_.try_emplace(pkt.tuple);
  ConnectionRecord& rec = it->second;
  if (inserted) {
    rec.tuple = pkt.tuple;
    rec.first_direction = dir;
    rec.first_packet_time = pkt.timestamp;
    rec.saw_syn = pkt.is_syn_only();
  }
  rec.last_packet_time = pkt.timestamp;

  const bool from_initiator = pkt.tuple == rec.tuple;
  if (from_initiator) {
    ++rec.packets_from_initiator;
    rec.bytes_from_initiator += pkt.wire_size();
  } else {
    ++rec.packets_to_initiator;
    rec.bytes_to_initiator += pkt.wire_size();
  }

  if (pkt.is_tcp() && !rec.closed && (pkt.flags.fin || pkt.flags.rst)) {
    rec.closed = true;
    rec.close_time = pkt.timestamp;
  }
  return rec;
}

const ConnectionRecord* ConnTable::find(const FiveTuple& tuple) const {
  const auto it = table_.find(tuple);
  return it == table_.end() ? nullptr : &it->second;
}

void ConnTable::for_each(
    const std::function<void(const ConnectionRecord&)>& fn) const {
  for (const auto& [tuple, rec] : table_) fn(rec);
}

void ConnTable::for_each_mutable(
    const std::function<void(ConnectionRecord&)>& fn) {
  for (auto& [tuple, rec] : table_) fn(rec);
}

}  // namespace upbound
