#include "analyzer/netflow.h"

#include "util/byte_io.h"

namespace upbound {

namespace {

std::uint32_t to_ms(SimTime t) {
  const std::int64_t ms = t.usec() / 1000;
  return static_cast<std::uint32_t>(ms < 0 ? 0 : ms);
}

std::uint32_t clamp_u32(std::uint64_t v) {
  return v > 0xffffffffULL ? 0xffffffffu : static_cast<std::uint32_t>(v);
}

}  // namespace

std::vector<FlowRecordV5> flows_of(const ConnectionRecord& rec) {
  std::vector<FlowRecordV5> out;
  const std::uint8_t proto = static_cast<std::uint8_t>(rec.tuple.protocol);
  const std::uint32_t first = to_ms(rec.first_packet_time);
  const std::uint32_t last = to_ms(rec.last_packet_time);

  if (rec.packets_from_initiator > 0) {
    FlowRecordV5 flow;
    flow.src_addr = rec.tuple.src_addr;
    flow.dst_addr = rec.tuple.dst_addr;
    flow.src_port = rec.tuple.src_port;
    flow.dst_port = rec.tuple.dst_port;
    flow.packets = clamp_u32(rec.packets_from_initiator);
    flow.octets = clamp_u32(rec.bytes_from_initiator);
    flow.first_ms = first;
    flow.last_ms = last;
    flow.protocol = proto;
    flow.tcp_flags = rec.saw_syn ? 0x02 : 0x00;
    if (rec.closed) flow.tcp_flags |= 0x01;
    out.push_back(flow);
  }
  if (rec.packets_to_initiator > 0) {
    FlowRecordV5 flow;
    flow.src_addr = rec.tuple.dst_addr;
    flow.dst_addr = rec.tuple.src_addr;
    flow.src_port = rec.tuple.dst_port;
    flow.dst_port = rec.tuple.src_port;
    flow.packets = clamp_u32(rec.packets_to_initiator);
    flow.octets = clamp_u32(rec.bytes_to_initiator);
    flow.first_ms = first;
    flow.last_ms = last;
    flow.protocol = proto;
    out.push_back(flow);
  }
  return out;
}

std::vector<std::uint8_t> encode_netflow_v5(
    std::span<const FlowRecordV5> records, std::uint32_t sequence) {
  if (records.size() > kNetflowV5MaxRecordsPerPacket) {
    throw std::invalid_argument("encode_netflow_v5: > 30 records");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kNetflowV5HeaderSize + records.size() * kNetflowV5RecordSize);
  ByteWriter w{out};

  // Header.
  w.u16be(5);  // version
  w.u16be(static_cast<std::uint16_t>(records.size()));
  std::uint32_t uptime = 0;
  for (const auto& record : records) {
    uptime = std::max(uptime, record.last_ms);
  }
  w.u32be(uptime);     // sysUptime
  w.u32be(0);          // unix_secs (trace-relative export)
  w.u32be(0);          // unix_nsecs
  w.u32be(sequence);   // flow_sequence
  w.u8(0);             // engine_type
  w.u8(0);             // engine_id
  w.u16be(0);          // sampling_interval

  for (const FlowRecordV5& record : records) {
    w.u32be(record.src_addr.value());
    w.u32be(record.dst_addr.value());
    w.u32be(0);  // nexthop
    w.u16be(0);  // input ifindex
    w.u16be(0);  // output ifindex
    w.u32be(record.packets);
    w.u32be(record.octets);
    w.u32be(record.first_ms);
    w.u32be(record.last_ms);
    w.u16be(record.src_port);
    w.u16be(record.dst_port);
    w.u8(0);  // pad1
    w.u8(record.tcp_flags);
    w.u8(record.protocol);
    w.u8(0);     // tos
    w.u16be(0);  // src_as
    w.u16be(0);  // dst_as
    w.u8(0);     // src_mask
    w.u8(0);     // dst_mask
    w.u16be(0);  // pad2
  }
  return out;
}

std::optional<NetflowV5Packet> decode_netflow_v5(
    std::span<const std::uint8_t> payload) {
  try {
    ByteReader r{payload};
    if (r.u16be() != 5) return std::nullopt;
    const std::uint16_t count = r.u16be();
    if (count > kNetflowV5MaxRecordsPerPacket) return std::nullopt;
    r.skip(4 + 4 + 4);  // uptime, unix secs/nsecs
    NetflowV5Packet packet;
    packet.sequence = r.u32be();
    r.skip(1 + 1 + 2);  // engine, sampling

    packet.records.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      FlowRecordV5 record;
      record.src_addr = Ipv4Addr{r.u32be()};
      record.dst_addr = Ipv4Addr{r.u32be()};
      r.skip(4 + 2 + 2);  // nexthop, ifindexes
      record.packets = r.u32be();
      record.octets = r.u32be();
      record.first_ms = r.u32be();
      record.last_ms = r.u32be();
      record.src_port = r.u16be();
      record.dst_port = r.u16be();
      r.skip(1);  // pad1
      record.tcp_flags = r.u8();
      record.protocol = r.u8();
      r.skip(1 + 2 + 2 + 1 + 1 + 2);  // tos, AS, masks, pad2
      packet.records.push_back(record);
    }
    if (!r.empty()) return std::nullopt;  // trailing garbage
    return packet;
  } catch (const ByteUnderflow&) {
    return std::nullopt;
  }
}

std::vector<std::vector<std::uint8_t>> export_netflow_v5(
    const ConnTable& table) {
  std::vector<FlowRecordV5> pending;
  std::vector<std::vector<std::uint8_t>> packets;
  std::uint32_t sequence = 0;

  const auto flush = [&] {
    if (pending.empty()) return;
    packets.push_back(encode_netflow_v5(pending, sequence));
    sequence += static_cast<std::uint32_t>(pending.size());
    pending.clear();
  };

  table.for_each([&](const ConnectionRecord& rec) {
    for (FlowRecordV5& flow : flows_of(rec)) {
      pending.push_back(flow);
      if (pending.size() == kNetflowV5MaxRecordsPerPacket) flush();
    }
  });
  flush();
  return packets;
}

}  // namespace upbound
