// NetFlow v5 export of analyzer connection records, on the real wire
// format (24-byte header + 48-byte records, big-endian) so exports are
// consumable by standard collectors (nfdump, flow-tools). The paper's
// related work ([2], Sen & Wang) analyzes P2P traffic from exactly this
// kind of flow-level data; this module closes the loop from our analyzer
// to that ecosystem.
//
// One ConnectionRecord becomes up to two unidirectional flow records
// (NetFlow flows are one-way): initiator->responder and, when traffic
// flowed back, responder->initiator.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "analyzer/conn_table.h"
#include "util/time.h"

namespace upbound {

/// One unidirectional flow in NetFlow v5 terms.
struct FlowRecordV5 {
  Ipv4Addr src_addr;
  Ipv4Addr dst_addr;
  std::uint32_t packets = 0;
  std::uint32_t octets = 0;
  /// Flow start/end as sysUptime milliseconds (trace-relative here).
  std::uint32_t first_ms = 0;
  std::uint32_t last_ms = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t tcp_flags = 0;
  std::uint8_t protocol = 6;

  bool operator==(const FlowRecordV5&) const = default;
};

constexpr std::size_t kNetflowV5HeaderSize = 24;
constexpr std::size_t kNetflowV5RecordSize = 48;
constexpr std::size_t kNetflowV5MaxRecordsPerPacket = 30;

/// Converts a connection record to its unidirectional flows.
std::vector<FlowRecordV5> flows_of(const ConnectionRecord& rec);

/// Serializes up to 30 records as one NetFlow v5 export packet payload.
/// `sequence` is the cumulative flow count before this packet.
std::vector<std::uint8_t> encode_netflow_v5(
    std::span<const FlowRecordV5> records, std::uint32_t sequence);

/// Parses a NetFlow v5 export packet payload. Returns nullopt on
/// malformed input (bad version, truncated records).
struct NetflowV5Packet {
  std::uint32_t sequence = 0;
  std::vector<FlowRecordV5> records;
};
std::optional<NetflowV5Packet> decode_netflow_v5(
    std::span<const std::uint8_t> payload);

/// Exports an entire connection table as a series of v5 packets.
std::vector<std::vector<std::uint8_t>> export_netflow_v5(
    const ConnTable& table);

}  // namespace upbound
