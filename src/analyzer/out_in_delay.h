// The out-in packet delay measurement of paper Section 3.3 (Fig. 5):
//
//   1. An outbound packet's socket pair is timestamped (insert or refresh).
//   2. An inbound packet whose inverse socket pair is recorded yields a
//      delay sample t - t0.
//   3. An expiry timer T_e deletes pairs when t - t0 > T_e, limiting the
//      port-reuse artifacts the paper observes as peaks at 60 s multiples.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "net/direction.h"
#include "net/five_tuple.h"
#include "net/packet.h"
#include "util/stats.h"
#include "util/time.h"

namespace upbound {

class OutInDelayTracker {
 public:
  explicit OutInDelayTracker(Duration expiry_timer = Duration::sec(600.0));

  void on_packet(const PacketRecord& pkt, Direction dir);

  /// Collected delay samples in seconds.
  const CdfBuilder& delays() const { return delays_; }

  std::size_t tracked_pairs() const { return last_out_.size(); }
  std::uint64_t expired_pairs() const { return expired_; }
  Duration expiry_timer() const { return expiry_; }

 private:
  void sweep(SimTime now);

  Duration expiry_;
  std::unordered_map<FiveTuple, SimTime, FiveTupleHash> last_out_;
  std::deque<std::pair<SimTime, FiveTuple>> queue_;
  CdfBuilder delays_;
  std::uint64_t expired_ = 0;
};

}  // namespace upbound
