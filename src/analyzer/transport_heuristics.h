// Transport-layer P2P identification, after Karagiannis et al., "Transport
// Layer Identification of P2P Traffic" (IMC'04) -- the payload-free
// identification approach the paper discusses in related work (its [4]).
// Two heuristics, simplified:
//
//   1. TCP+UDP pair: an {addr, addr} pair that concurrently uses both TCP
//      and UDP is almost certainly a P2P overlay link (legitimate
//      dual-protocol services -- DNS, NetBIOS, IRC-with-DCC... -- are
//      excluded by port).
//
//   2. {IP, port} spread: at a P2P service endpoint each connected peer
//      typically opens ONE connection from a fresh ephemeral port, so the
//      number of distinct peer IPs tracks the number of distinct peer
//      ports. Client-server endpoints see multiple parallel connections
//      per client (ports >> IPs).
//
// The paper positions this as accurate but stateful ("a table to record
// flow states... may be not suitable to operate in a real-time and
// large-scale environment") -- which is exactly the storage contrast the
// bitmap filter draws. This implementation exists to quantify both the
// identification quality and that storage cost on the synthetic campus
// trace.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "net/direction.h"
#include "net/five_tuple.h"
#include "net/packet.h"

namespace upbound {

struct TransportHeuristicsConfig {
  /// Minimum peers observed at an endpoint before the IP/port-spread
  /// heuristic votes.
  std::size_t min_peers = 4;
  /// |distinct IPs| / |distinct ports| must be at least this for a P2P
  /// verdict (1.0 would demand exact equality; PTP uses a small band).
  double ip_port_ratio_threshold = 0.6;
};

class TransportHeuristics {
 public:
  explicit TransportHeuristics(TransportHeuristicsConfig config = {});

  /// Feeds one packet (any direction).
  void observe(const PacketRecord& pkt);

  /// Verdict for a connection: true when either heuristic flags it.
  bool is_p2p(const FiveTuple& tuple) const;

  /// Heuristic-1 hit for the address pair.
  bool pair_uses_both_protocols(Ipv4Addr a, Ipv4Addr b) const;

  /// Heuristic-2 hit for the service endpoint {addr, port}.
  bool endpoint_looks_p2p(Ipv4Addr addr, std::uint16_t port,
                          Protocol protocol) const;

  /// Approximate state footprint in bytes -- the cost the paper says
  /// rules this approach out at ISP scale.
  std::size_t storage_bytes() const;

  std::size_t tracked_pairs() const { return pair_protocols_.size(); }
  std::size_t tracked_endpoints() const { return endpoints_.size(); }

 private:
  struct AddrPairHash {
    std::size_t operator()(const std::pair<std::uint32_t, std::uint32_t>& p)
        const;
  };
  struct EndpointKey {
    std::uint32_t addr;
    std::uint32_t port_and_proto;  // port | proto << 16

    bool operator==(const EndpointKey&) const = default;
  };
  struct EndpointHash {
    std::size_t operator()(const EndpointKey& k) const;
  };
  struct EndpointStats {
    std::unordered_set<std::uint32_t> peer_addrs;
    std::unordered_set<std::uint16_t> peer_ports;
  };

  static std::pair<std::uint32_t, std::uint32_t> pair_key(Ipv4Addr a,
                                                          Ipv4Addr b);
  static bool is_dual_protocol_service_port(std::uint16_t port);

  TransportHeuristicsConfig config_;
  // Bit 0: pair seen over TCP; bit 1: over UDP.
  std::unordered_map<std::pair<std::uint32_t, std::uint32_t>, std::uint8_t,
                     AddrPairHash>
      pair_protocols_;
  std::unordered_map<EndpointKey, EndpointStats, EndpointHash> endpoints_;
};

}  // namespace upbound
