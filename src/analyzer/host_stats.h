// Per-internal-host accounting: which client hosts upload how much, open
// how many connections, and accept how many inbound ones. This is the view
// a network operator reaches for right before deploying the paper's filter
// ("who is seeding?"), and the denominator for judging its effect
// afterwards.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/direction.h"
#include "net/packet.h"

namespace upbound {

struct HostRecord {
  Ipv4Addr addr;
  std::uint64_t upload_bytes = 0;
  std::uint64_t download_bytes = 0;
  std::uint64_t upload_packets = 0;
  std::uint64_t download_packets = 0;
  /// TCP connections this host initiated (outbound SYNs).
  std::uint64_t connections_initiated = 0;
  /// Inbound TCP connection attempts to this host (inbound SYNs) -- the
  /// upload triggers the bitmap filter exists to police.
  std::uint64_t connections_accepted = 0;

  std::uint64_t total_bytes() const { return upload_bytes + download_bytes; }
  double upload_fraction() const {
    const std::uint64_t total = total_bytes();
    return total == 0 ? 0.0
                      : static_cast<double>(upload_bytes) /
                            static_cast<double>(total);
  }
};

class HostAccounting {
 public:
  explicit HostAccounting(ClientNetwork network);

  /// Attributes one packet to the internal host involved. Local/transit
  /// packets are ignored.
  void observe(const PacketRecord& pkt);

  std::size_t host_count() const { return hosts_.size(); }
  const HostRecord* find(Ipv4Addr addr) const;

  /// Hosts ordered by upload bytes, largest first, at most `n`.
  std::vector<HostRecord> top_uploaders(std::size_t n) const;
  /// Hosts ordered by accepted inbound connections, largest first.
  std::vector<HostRecord> top_accepting(std::size_t n) const;

 private:
  struct AddrHash {
    std::size_t operator()(const Ipv4Addr& a) const {
      return std::hash<std::uint32_t>{}(a.value());
    }
  };

  ClientNetwork network_;
  std::unordered_map<Ipv4Addr, HostRecord, AddrHash> hosts_;
};

}  // namespace upbound
