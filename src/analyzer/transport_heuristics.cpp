#include "analyzer/transport_heuristics.h"

#include "util/hash.h"

namespace upbound {

std::size_t TransportHeuristics::AddrPairHash::operator()(
    const std::pair<std::uint32_t, std::uint32_t>& p) const {
  return static_cast<std::size_t>(
      hash_combine(p.first, p.second));
}

std::size_t TransportHeuristics::EndpointHash::operator()(
    const EndpointKey& k) const {
  return static_cast<std::size_t>(
      hash_combine(k.addr, k.port_and_proto));
}

TransportHeuristics::TransportHeuristics(TransportHeuristicsConfig config)
    : config_(config) {}

std::pair<std::uint32_t, std::uint32_t> TransportHeuristics::pair_key(
    Ipv4Addr a, Ipv4Addr b) {
  return a.value() <= b.value()
             ? std::make_pair(a.value(), b.value())
             : std::make_pair(b.value(), a.value());
}

bool TransportHeuristics::is_dual_protocol_service_port(std::uint16_t port) {
  // PTP's exclusion list: services legitimately speaking TCP and UDP.
  switch (port) {
    case 53:    // DNS
    case 135:   // msrpc
    case 137:
    case 138:
    case 139:   // NetBIOS
    case 445:   // SMB
    case 500:   // IKE
    case 554:   // RTSP
    case 1723:  // PPTP
      return true;
    default:
      return false;
  }
}

void TransportHeuristics::observe(const PacketRecord& pkt) {
  const FiveTuple& t = pkt.tuple;

  // Heuristic 1 bookkeeping: protocols used per address pair, excluding
  // known dual-protocol service ports.
  if (!is_dual_protocol_service_port(t.src_port) &&
      !is_dual_protocol_service_port(t.dst_port)) {
    auto& bits = pair_protocols_[pair_key(t.src_addr, t.dst_addr)];
    bits |= t.protocol == Protocol::kTcp ? 0x1 : 0x2;
  }

  // Heuristic 2 bookkeeping: peer spread at the destination endpoint
  // (the service side of this packet).
  const EndpointKey key{t.dst_addr.value(),
                        static_cast<std::uint32_t>(t.dst_port) |
                            (static_cast<std::uint32_t>(t.protocol) << 16)};
  EndpointStats& stats = endpoints_[key];
  stats.peer_addrs.insert(t.src_addr.value());
  stats.peer_ports.insert(t.src_port);
}

bool TransportHeuristics::pair_uses_both_protocols(Ipv4Addr a,
                                                   Ipv4Addr b) const {
  const auto it = pair_protocols_.find(pair_key(a, b));
  return it != pair_protocols_.end() && it->second == 0x3;
}

bool TransportHeuristics::endpoint_looks_p2p(Ipv4Addr addr,
                                             std::uint16_t port,
                                             Protocol protocol) const {
  if (is_dual_protocol_service_port(port)) return false;
  const EndpointKey key{addr.value(),
                        static_cast<std::uint32_t>(port) |
                            (static_cast<std::uint32_t>(protocol) << 16)};
  const auto it = endpoints_.find(key);
  if (it == endpoints_.end()) return false;
  const EndpointStats& stats = it->second;
  if (stats.peer_addrs.size() < config_.min_peers) return false;
  const double ratio = static_cast<double>(stats.peer_addrs.size()) /
                       static_cast<double>(stats.peer_ports.size());
  return ratio >= config_.ip_port_ratio_threshold;
}

bool TransportHeuristics::is_p2p(const FiveTuple& tuple) const {
  if (pair_uses_both_protocols(tuple.src_addr, tuple.dst_addr)) return true;
  return endpoint_looks_p2p(tuple.dst_addr, tuple.dst_port,
                            tuple.protocol) ||
         endpoint_looks_p2p(tuple.src_addr, tuple.src_port, tuple.protocol);
}

std::size_t TransportHeuristics::storage_bytes() const {
  std::size_t total =
      pair_protocols_.size() * (sizeof(std::uint64_t) + sizeof(std::uint8_t) +
                                2 * sizeof(void*));
  for (const auto& [key, stats] : endpoints_) {
    total += sizeof(EndpointKey) + 2 * sizeof(void*);
    total += stats.peer_addrs.size() * (4 + 2 * sizeof(void*));
    total += stats.peer_ports.size() * (2 + 2 * sizeof(void*));
  }
  return total;
}

}  // namespace upbound
