#include "analyzer/connection.h"

#include <cstdio>

namespace upbound {

const char* classify_method_name(ClassifyMethod method) {
  switch (method) {
    case ClassifyMethod::kNone: return "none";
    case ClassifyMethod::kPattern: return "pattern";
    case ClassifyMethod::kPort: return "port";
    case ClassifyMethod::kEndpointMemo: return "endpoint-memo";
    case ClassifyMethod::kFtpData: return "ftp-data";
  }
  return "?";
}

std::string ConnectionRecord::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s app=%s(%s) pkts=%llu/%llu bytes=%llu/%llu",
                tuple.to_string().c_str(), app_protocol_name(app),
                classify_method_name(method),
                static_cast<unsigned long long>(packets_from_initiator),
                static_cast<unsigned long long>(packets_to_initiator),
                static_cast<unsigned long long>(bytes_from_initiator),
                static_cast<unsigned long long>(bytes_to_initiator));
  return buf;
}

}  // namespace upbound
