#include "analyzer/host_stats.h"

#include <algorithm>

namespace upbound {

HostAccounting::HostAccounting(ClientNetwork network)
    : network_(std::move(network)) {}

void HostAccounting::observe(const PacketRecord& pkt) {
  const Direction dir = network_.classify(pkt);
  if (dir == Direction::kOutbound) {
    HostRecord& host = hosts_[pkt.tuple.src_addr];
    host.addr = pkt.tuple.src_addr;
    host.upload_bytes += pkt.wire_size();
    ++host.upload_packets;
    if (pkt.is_syn_only()) ++host.connections_initiated;
  } else if (dir == Direction::kInbound) {
    HostRecord& host = hosts_[pkt.tuple.dst_addr];
    host.addr = pkt.tuple.dst_addr;
    host.download_bytes += pkt.wire_size();
    ++host.download_packets;
    if (pkt.is_syn_only()) ++host.connections_accepted;
  }
}

const HostRecord* HostAccounting::find(Ipv4Addr addr) const {
  const auto it = hosts_.find(addr);
  return it == hosts_.end() ? nullptr : &it->second;
}

std::vector<HostRecord> HostAccounting::top_uploaders(std::size_t n) const {
  std::vector<HostRecord> out;
  out.reserve(hosts_.size());
  for (const auto& [addr, host] : hosts_) out.push_back(host);
  std::sort(out.begin(), out.end(),
            [](const HostRecord& a, const HostRecord& b) {
              return a.upload_bytes > b.upload_bytes;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<HostRecord> HostAccounting::top_accepting(std::size_t n) const {
  std::vector<HostRecord> out;
  out.reserve(hosts_.size());
  for (const auto& [addr, host] : hosts_) out.push_back(host);
  std::sort(out.begin(), out.end(),
            [](const HostRecord& a, const HostRecord& b) {
              return a.connections_accepted > b.connections_accepted;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace upbound
