#include "analyzer/classifier.h"

#include <cctype>
#include <string>

#include "util/hash.h"

namespace upbound {

namespace {

// Parses "h1,h2,h3,h4,p1,p2" starting at text[pos]; returns the endpoint
// or nullopt. Used for both PORT commands and 227 PASV replies.
std::optional<std::pair<Ipv4Addr, std::uint16_t>> parse_comma_quad(
    const std::string& text, std::size_t pos) {
  unsigned values[6];
  for (int i = 0; i < 6; ++i) {
    if (pos >= text.size() ||
        std::isdigit(static_cast<unsigned char>(text[pos])) == 0) {
      return std::nullopt;
    }
    unsigned v = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
      v = v * 10 + static_cast<unsigned>(text[pos] - '0');
      if (v > 255) return std::nullopt;
      ++pos;
    }
    values[i] = v;
    if (i < 5) {
      if (pos >= text.size() || text[pos] != ',') return std::nullopt;
      ++pos;
    }
  }
  const Ipv4Addr addr{static_cast<std::uint8_t>(values[0]),
                      static_cast<std::uint8_t>(values[1]),
                      static_cast<std::uint8_t>(values[2]),
                      static_cast<std::uint8_t>(values[3])};
  const std::uint16_t port =
      static_cast<std::uint16_t>(values[4] * 256 + values[5]);
  return std::make_pair(addr, port);
}

}  // namespace

std::size_t Classifier::EndpointHash::operator()(const Endpoint& e) const {
  return static_cast<std::size_t>(
      hash_combine(hash_combine(static_cast<std::uint64_t>(e.protocol),
                                e.addr.value()),
                   e.port));
}

Classifier::Classifier(ClassifierConfig config) : config_(config) {}

void Classifier::expire_ftp(SimTime now) {
  while (!ftp_expiry_queue_.empty() &&
         ftp_expiry_queue_.front().first + config_.ftp_expect_ttl <= now) {
    const Endpoint endpoint = ftp_expiry_queue_.front().second;
    ftp_expiry_queue_.pop_front();
    const auto it = ftp_expected_.find(endpoint);
    if (it != ftp_expected_.end() &&
        it->second + config_.ftp_expect_ttl <= now) {
      ftp_expected_.erase(it);
    }
  }
}

void Classifier::remember_p2p_endpoint(const ConnectionRecord& rec) {
  if (!config_.enable_endpoint_memo || !is_p2p(rec.app)) return;
  // Paper strategy 1: c = {A:x -> B:y} identified => future connections to
  // B:y are the same application. B:y is the target of the initiator.
  //
  // Restricted to TCP identifications: single-datagram UDP matches are
  // noisy (the eDonkey marker byte hits ~1% of random payloads), and one
  // false positive on a busy endpoint would cascade through the memo to
  // every later connection there.
  if (rec.tuple.protocol != Protocol::kTcp) return;
  p2p_endpoints_.insert_or_assign(
      Endpoint{rec.tuple.protocol, rec.tuple.dst_addr, rec.tuple.dst_port},
      rec.app);
}

void Classifier::scan_ftp_control(ConnectionRecord& rec,
                                  const PacketRecord& pkt) {
  if (pkt.payload.empty() || !pkt.checksum_valid) return;
  const std::string text(pkt.payload.begin(), pkt.payload.end());

  std::size_t quad_pos = std::string::npos;
  if (text.rfind("PORT ", 0) == 0) {
    quad_pos = 5;
  } else if (text.rfind("227", 0) == 0) {
    const std::size_t open = text.find('(');
    if (open != std::string::npos) quad_pos = open + 1;
  }
  if (quad_pos == std::string::npos) return;

  if (const auto endpoint = parse_comma_quad(text, quad_pos)) {
    const Endpoint key{Protocol::kTcp, endpoint->first, endpoint->second};
    ftp_expected_.insert_or_assign(key, pkt.timestamp);
    ftp_expiry_queue_.emplace_back(pkt.timestamp, key);
  }
  (void)rec;
}

void Classifier::apply_port_fallback(ConnectionRecord& rec) {
  if (!config_.enable_port_fallback) return;
  // TCP: the service port is the SYN's destination; without a captured
  // SYN the orientation is a guess, so try the initiator view's dst first
  // and the src second. UDP: the paper counts both ports.
  std::optional<AppProtocol> app =
      app_for_port(rec.tuple.protocol, rec.tuple.dst_port);
  if (!app && (!rec.saw_syn || rec.tuple.protocol == Protocol::kUdp)) {
    app = app_for_port(rec.tuple.protocol, rec.tuple.src_port);
  }
  if (app) {
    rec.app = *app;
    rec.method = ClassifyMethod::kPort;
  }
}

void Classifier::try_patterns(ConnectionRecord& rec, const PacketRecord& pkt) {
  if (!config_.enable_patterns) {
    rec.classification_final = true;
    apply_port_fallback(rec);
    return;
  }

  std::optional<AppProtocol> app;
  if (pkt.is_udp()) {
    // Each datagram is matched on its own (no stream to reassemble).
    app = patterns_.match(pkt.payload);
    ++rec.pattern_packets;
  } else {
    rec.stream.append(pkt.payload);
    ++rec.pattern_packets;
    app = patterns_.match(rec.stream.bytes());
  }

  if (app) {
    rec.app = *app;
    rec.method = ClassifyMethod::kPattern;
    rec.classification_final = true;
    rec.stream.discard();
    remember_p2p_endpoint(rec);
    return;
  }
  if (rec.pattern_packets >= config_.max_pattern_packets ||
      rec.stream.at_capacity()) {
    // Pattern budget exhausted: fall back to ports and stop examining.
    rec.classification_final = true;
    rec.stream.discard();
    apply_port_fallback(rec);
  }
}

void Classifier::finalize(ConnectionRecord& rec) {
  if (rec.classification_final || rec.method != ClassifyMethod::kNone) return;
  rec.classification_final = true;
  rec.stream.discard();
  apply_port_fallback(rec);
}

void Classifier::observe(ConnectionRecord& rec, const PacketRecord& pkt) {
  expire_ftp(pkt.timestamp);

  // FTP control connections keep being scanned for data-channel
  // announcements even after classification (paper strategy 2).
  if (config_.enable_ftp_tracking && rec.app == AppProtocol::kFtp &&
      rec.tuple.protocol == Protocol::kTcp) {
    scan_ftp_control(rec, pkt);
  }

  if (rec.classification_final) return;

  // First chance: was this connection's target announced on an FTP
  // control channel?
  if (config_.enable_ftp_tracking && rec.total_packets() <= 1) {
    const Endpoint target{rec.tuple.protocol, rec.tuple.dst_addr,
                          rec.tuple.dst_port};
    const auto it = ftp_expected_.find(target);
    if (it != ftp_expected_.end()) {
      rec.app = AppProtocol::kFtp;
      rec.method = ClassifyMethod::kFtpData;
      rec.classification_final = true;
      ++ftp_data_hits_;
      return;
    }
  }

  // Second chance: known P2P service endpoint.
  if (config_.enable_endpoint_memo && rec.method == ClassifyMethod::kNone) {
    const Endpoint target{rec.tuple.protocol, rec.tuple.dst_addr,
                          rec.tuple.dst_port};
    const auto it = p2p_endpoints_.find(target);
    if (it != p2p_endpoints_.end()) {
      rec.app = it->second;
      rec.method = ClassifyMethod::kEndpointMemo;
      rec.classification_final = true;
      ++memo_hits_;
      return;
    }
  }

  // Payload signatures. The paper only examines TCP connections whose SYN
  // was captured (guaranteeing the stream start); UDP datagrams are always
  // examined; corrupted packets never are.
  if (pkt.payload_size > 0 && !pkt.payload.empty() && pkt.checksum_valid) {
    if (pkt.is_udp() || rec.saw_syn) {
      try_patterns(rec, pkt);
    } else if (pkt.is_tcp()) {
      // Mid-stream capture: patterns unreliable, ports only.
      rec.classification_final = true;
      apply_port_fallback(rec);
    }
  }
}

}  // namespace upbound
