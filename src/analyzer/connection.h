// Per-connection record maintained by the traffic analyzer (paper Section
// 3.2): identity, direction, per-direction byte/packet counters, lifetime
// endpoints, and the application classification with the method that
// produced it.
#pragma once

#include <cstdint>
#include <string>

#include "analyzer/stream_buf.h"
#include "net/app_protocol.h"
#include "net/direction.h"
#include "net/packet.h"
#include "util/time.h"

namespace upbound {

/// How a connection's application label was determined.
enum class ClassifyMethod {
  kNone,          // still UNKNOWN
  kPattern,       // payload signature match (Table 1 regular expressions)
  kPort,          // well-known port fallback
  kEndpointMemo,  // prior P2P identification of the same service endpoint
  kFtpData,       // data connection announced on an FTP control channel
};

const char* classify_method_name(ClassifyMethod method);

struct ConnectionRecord {
  /// Tuple as seen from the connection's first packet (initiator first
  /// when the capture contains the opening packet).
  FiveTuple tuple;
  Direction first_direction = Direction::kOutbound;

  SimTime first_packet_time;
  SimTime last_packet_time;
  /// TCP close observed (valid FIN or RST); lifetime measurement endpoint.
  SimTime close_time;
  bool saw_syn = false;   // explicit TCP-SYN observed (stream is complete)
  bool closed = false;

  std::uint64_t packets_from_initiator = 0;
  std::uint64_t packets_to_initiator = 0;
  std::uint64_t bytes_from_initiator = 0;  // wire bytes
  std::uint64_t bytes_to_initiator = 0;

  AppProtocol app = AppProtocol::kUnknown;
  ClassifyMethod method = ClassifyMethod::kNone;
  /// Set when the classifier will not examine further payloads (already
  /// identified, or the pattern-packet budget is exhausted).
  bool classification_final = false;

  /// Reassembled early payload bytes for pattern matching.
  StreamBuf stream;
  /// Data packets fed to the pattern matcher so far.
  unsigned pattern_packets = 0;

  std::uint64_t total_bytes() const {
    return bytes_from_initiator + bytes_to_initiator;
  }
  std::uint64_t total_packets() const {
    return packets_from_initiator + packets_to_initiator;
  }

  /// Lifetime per the paper's Fig. 4 definition: SYN to valid FIN/RST.
  /// Only meaningful when saw_syn && closed.
  Duration lifetime() const { return close_time - first_packet_time; }

  std::string to_string() const;
};

}  // namespace upbound
