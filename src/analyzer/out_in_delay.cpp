#include "analyzer/out_in_delay.h"

#include <stdexcept>

namespace upbound {

OutInDelayTracker::OutInDelayTracker(Duration expiry_timer)
    : expiry_(expiry_timer) {
  if (expiry_ <= Duration{}) {
    throw std::invalid_argument("OutInDelayTracker: expiry must be positive");
  }
}

void OutInDelayTracker::sweep(SimTime now) {
  while (!queue_.empty() && queue_.front().first + expiry_ <= now) {
    const FiveTuple key = queue_.front().second;
    queue_.pop_front();
    const auto it = last_out_.find(key);
    if (it != last_out_.end() && it->second + expiry_ <= now) {
      last_out_.erase(it);
      ++expired_;
    }
  }
}

void OutInDelayTracker::on_packet(const PacketRecord& pkt, Direction dir) {
  sweep(pkt.timestamp);
  if (dir == Direction::kOutbound) {
    // Step 1: record or refresh sigma_out's timestamp.
    const auto [it, inserted] =
        last_out_.try_emplace(pkt.tuple, pkt.timestamp);
    if (!inserted) it->second = pkt.timestamp;
    queue_.emplace_back(pkt.timestamp, pkt.tuple);
  } else if (dir == Direction::kInbound) {
    // Step 2: look up the inverse socket pair.
    const auto it = last_out_.find(pkt.tuple.inverse());
    if (it == last_out_.end()) return;
    const Duration delay = pkt.timestamp - it->second;
    if (delay > expiry_) {
      // Step 3: stale pair (port reuse); drop it instead of sampling.
      last_out_.erase(it);
      ++expired_;
      return;
    }
    delays_.add(delay.to_sec());
  }
}

}  // namespace upbound
