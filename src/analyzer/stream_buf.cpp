#include "analyzer/stream_buf.h"

#include <algorithm>

namespace upbound {

std::size_t StreamBuf::append(std::span<const std::uint8_t> payload) {
  const std::size_t room = cap_ > data_.size() ? cap_ - data_.size() : 0;
  const std::size_t take = std::min(room, payload.size());
  data_.insert(data_.end(), payload.begin(),
               payload.begin() + static_cast<std::ptrdiff_t>(take));
  return take;
}

void StreamBuf::discard() {
  data_.clear();
  data_.shrink_to_fit();
}

}  // namespace upbound
