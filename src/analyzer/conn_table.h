// Connection table: canonical-tuple keyed map of ConnectionRecords, the
// five-tuple classification step of the paper's traffic analyzer.
#pragma once

#include <functional>
#include <unordered_map>

#include "analyzer/connection.h"

namespace upbound {

class ConnTable {
 public:
  /// Finds or creates the record for the packet's connection, updating
  /// counters, lifetime endpoints, and TCP open/close state. The returned
  /// reference is valid until the next lookup.
  ConnectionRecord& update(const PacketRecord& pkt, Direction dir);

  const ConnectionRecord* find(const FiveTuple& tuple) const;

  std::size_t size() const { return table_.size(); }

  /// Iterates all records (unspecified order).
  void for_each(const std::function<void(const ConnectionRecord&)>& fn) const;
  void for_each_mutable(const std::function<void(ConnectionRecord&)>& fn);

 private:
  std::unordered_map<FiveTuple, ConnectionRecord, CanonicalTupleHash,
                     CanonicalTupleEq>
      table_;
};

}  // namespace upbound
