// The application signature set of paper Table 1: payload regular
// expressions (adapted from the L7-filter project) plus well-known port
// fallbacks. Patterns are matched case-insensitively against raw payload
// bytes in priority order -- P2P signatures before the generic HTTP one,
// since BitTorrent trackers and Gnutella transfers speak HTTP-shaped text.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "net/app_protocol.h"
#include "net/five_tuple.h"
#include "rex/regex.h"

namespace upbound {

/// One payload signature.
struct AppPattern {
  AppProtocol app;
  const char* name;
  rex::Regex regex;
};

class PatternSet {
 public:
  /// Builds the Table 1 signature set.
  PatternSet();

  /// First matching application for the byte stream, or nullopt.
  std::optional<AppProtocol> match(
      std::span<const std::uint8_t> stream) const;

  const std::vector<AppPattern>& patterns() const { return patterns_; }

 private:
  std::vector<AppPattern> patterns_;
};

/// Port-based fallback (Table 1 "Ports" column plus the standard service
/// ports counted under Table 2's "Others"). `dst_port` is the service-side
/// port: the SYN destination for TCP, either port for UDP.
std::optional<AppProtocol> app_for_port(Protocol protocol,
                                        std::uint16_t dst_port);

}  // namespace upbound
