// Two-phase connection classifier (paper Section 3.2):
//
//   1. Payload signatures: every UDP datagram is examined; TCP connections
//      are examined only when their SYN was captured, concatenating the
//      first few data packets into a short stream before matching.
//   2. Well-known-port fallback when patterns fail.
//
// Plus the paper's two file-sharing refinements:
//   - P2P endpoint memo: once {A:x -> B:y} is identified as a P2P
//     application, every future connection to B:y inherits the label.
//   - FTP tracking: PASV/PORT endpoints parsed from identified FTP control
//     connections pre-label the matching data connections.
#pragma once

#include <deque>
#include <unordered_map>

#include "analyzer/connection.h"
#include "analyzer/patterns.h"

namespace upbound {

struct ClassifierConfig {
  /// Data packets fed to the pattern matcher per TCP connection (paper
  /// footnote 1: at most four).
  unsigned max_pattern_packets = 4;
  /// Reassembly cap per connection.
  std::size_t max_stream_bytes = StreamBuf::kDefaultCapBytes;
  /// How long a PASV/PORT-announced endpoint stays valid.
  Duration ftp_expect_ttl = Duration::sec(120.0);
  /// Toggles for ablation studies.
  bool enable_patterns = true;
  bool enable_port_fallback = true;
  bool enable_endpoint_memo = true;
  bool enable_ftp_tracking = true;
};

class Classifier {
 public:
  explicit Classifier(ClassifierConfig config = {});

  /// Updates `rec`'s classification given one more packet of its
  /// connection. Call after ConnTable::update.
  void observe(ConnectionRecord& rec, const PacketRecord& pkt);

  /// End-of-trace pass: connections whose pattern budget never ran out
  /// (short flows) get the port fallback.
  void finalize(ConnectionRecord& rec);

  /// Statistics.
  std::uint64_t memo_hits() const { return memo_hits_; }
  std::uint64_t ftp_data_hits() const { return ftp_data_hits_; }
  std::size_t memo_size() const { return p2p_endpoints_.size(); }

 private:
  struct Endpoint {
    Protocol protocol;
    Ipv4Addr addr;
    std::uint16_t port;

    bool operator==(const Endpoint&) const = default;
  };
  struct EndpointHash {
    std::size_t operator()(const Endpoint& e) const;
  };

  void try_patterns(ConnectionRecord& rec, const PacketRecord& pkt);
  void apply_port_fallback(ConnectionRecord& rec);
  void remember_p2p_endpoint(const ConnectionRecord& rec);
  void scan_ftp_control(ConnectionRecord& rec, const PacketRecord& pkt);
  void expire_ftp(SimTime now);

  ClassifierConfig config_;
  PatternSet patterns_;

  /// Strategy 1: service endpoints known to speak a P2P protocol.
  std::unordered_map<Endpoint, AppProtocol, EndpointHash> p2p_endpoints_;
  /// Strategy 2: endpoints announced by FTP PASV/PORT exchanges.
  std::unordered_map<Endpoint, SimTime, EndpointHash> ftp_expected_;
  std::deque<std::pair<SimTime, Endpoint>> ftp_expiry_queue_;

  std::uint64_t memo_hits_ = 0;
  std::uint64_t ftp_data_hits_ = 0;
};

}  // namespace upbound
