#include "analyzer/analyzer.h"

#include <algorithm>

namespace upbound {

TrafficAnalyzer::TrafficAnalyzer(AnalyzerConfig config)
    : config_(std::move(config)),
      classifier_(config_.classifier),
      out_in_(config_.out_in_expiry) {}

namespace {
AnalyzerConfig config_for(ClientNetwork network) {
  AnalyzerConfig config;
  config.network = std::move(network);
  return config;
}
}  // namespace

TrafficAnalyzer::TrafficAnalyzer(ClientNetwork network)
    : TrafficAnalyzer(config_for(std::move(network))) {}

void TrafficAnalyzer::process(const PacketRecord& pkt) {
  const Direction dir = config_.network.classify(pkt);
  if (dir != Direction::kOutbound && dir != Direction::kInbound) {
    ++skipped_;
    return;
  }
  ++packets_;
  if (dir == Direction::kOutbound) {
    outbound_bytes_ += pkt.wire_size();
  } else {
    inbound_bytes_ += pkt.wire_size();
  }

  ConnectionRecord& rec = table_.update(pkt, dir);
  classifier_.observe(rec, pkt);
  out_in_.on_packet(pkt, dir);
}

AnalyzerReport TrafficAnalyzer::finish() {
  AnalyzerReport report;
  report.outbound_bytes = outbound_bytes_;
  report.inbound_bytes = inbound_bytes_;

  // Accumulators per application.
  struct Acc {
    std::uint64_t connections = 0;
    std::uint64_t bytes = 0;
  };
  std::map<AppProtocol, Acc> acc;

  table_.for_each_mutable([&](ConnectionRecord& rec) {
    classifier_.finalize(rec);

    auto& entry = acc[rec.app];
    ++entry.connections;
    entry.bytes += rec.total_bytes();

    ++report.total_connections;
    report.total_bytes += rec.total_bytes();

    if (rec.tuple.protocol == Protocol::kTcp) {
      ++report.tcp_connections;
      report.tcp_bytes += rec.total_bytes();
    } else {
      ++report.udp_connections;
      report.udp_bytes += rec.total_bytes();
    }

    // Port class samples (Figs. 2-3). TCP needs the captured SYN so the
    // service side is unambiguous; UDP counts both ports.
    const PortClass cls = port_class_of(rec.app);
    if (rec.tuple.protocol == Protocol::kTcp) {
      if (rec.saw_syn) {
        const double port = rec.tuple.dst_port;
        report.tcp_port_cdf[PortClass::kAll].add(port);
        report.tcp_port_cdf[cls].add(port);
      }
    } else {
      for (const double port :
           {static_cast<double>(rec.tuple.src_port),
            static_cast<double>(rec.tuple.dst_port)}) {
        report.udp_port_cdf[PortClass::kAll].add(port);
        report.udp_port_cdf[cls].add(port);
      }
    }

    // Lifetimes (Fig. 4): SYN to valid FIN/RST.
    if (rec.tuple.protocol == Protocol::kTcp && rec.saw_syn && rec.closed) {
      const double life = rec.lifetime().to_sec();
      report.lifetimes.add(life);
      report.lifetime_summary.add(life);
    }
  });

  for (const auto& [app, entry] : acc) {
    ProtocolShare share;
    share.app = app;
    share.connections = entry.connections;
    share.bytes = entry.bytes;
    share.connection_fraction =
        report.total_connections == 0
            ? 0.0
            : static_cast<double>(entry.connections) /
                  static_cast<double>(report.total_connections);
    share.byte_fraction =
        report.total_bytes == 0
            ? 0.0
            : static_cast<double>(entry.bytes) /
                  static_cast<double>(report.total_bytes);
    report.protocol_distribution.push_back(share);
  }
  std::sort(report.protocol_distribution.begin(),
            report.protocol_distribution.end(),
            [](const ProtocolShare& a, const ProtocolShare& b) {
              return a.bytes > b.bytes;
            });

  // Fig. 5 samples.
  for (const double d : out_in_.delays().sorted()) {
    report.out_in_delays.add(d);
  }

  return report;
}

}  // namespace upbound
