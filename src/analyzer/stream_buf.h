// Early-payload reassembly for TCP pattern matching.
//
// Paper Section 3.2: "we concatenate payloads of several very first data
// packets to form a short TCP stream" (at most four packets, since the
// signatures are short). This buffer keeps that concatenation with a hard
// byte cap so per-connection memory stays bounded.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace upbound {

class StreamBuf {
 public:
  static constexpr std::size_t kDefaultCapBytes = 512;

  explicit StreamBuf(std::size_t cap_bytes = kDefaultCapBytes)
      : cap_(cap_bytes) {}

  /// Appends a packet's captured payload; bytes beyond the cap are
  /// silently discarded. Returns the number of bytes actually kept.
  std::size_t append(std::span<const std::uint8_t> payload);

  std::span<const std::uint8_t> bytes() const { return data_; }
  std::size_t size() const { return data_.size(); }
  bool at_capacity() const { return data_.size() >= cap_; }

  /// Releases the buffer once classification is final.
  void discard();

 private:
  std::size_t cap_;
  std::vector<std::uint8_t> data_;
};

}  // namespace upbound
