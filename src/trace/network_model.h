// Address and port allocation for the synthetic client network and the
// external Internet it talks to. Reproduces the spatial structure the
// paper's Figures 2-3 measure: well-known service ports, P2P listen ports
// concentrated in 10000-40000 plus the protocol defaults, and uniformly
// random ephemeral source ports.
#pragma once

#include <cstdint>
#include <vector>

#include "net/direction.h"
#include "net/ip.h"
#include "util/rng.h"

namespace upbound {

struct NetworkModelConfig {
  Cidr client_prefix = *Cidr::parse("140.112.30.0/24");
  unsigned client_hosts = 200;  // active hosts inside the prefix
  std::uint64_t seed = 1;
};

class NetworkModel {
 public:
  explicit NetworkModel(const NetworkModelConfig& config);

  const ClientNetwork& client_network() const { return network_; }

  /// A client host address (index < config.client_hosts).
  Ipv4Addr client_host(std::size_t index) const;
  std::size_t client_host_count() const { return hosts_.size(); }
  /// A uniformly random client host.
  Ipv4Addr random_client_host(Rng& rng) const;

  /// A random public (non-client) address; excludes the client prefix and
  /// obvious reserved space so direction classification stays unambiguous.
  Ipv4Addr random_external_host(Rng& rng) const;

  /// Random ephemeral source port (32768-61000, the classic Linux range).
  std::uint16_t ephemeral_port(Rng& rng) const;

  /// A P2P listen port: the paper observes defaults (6881, 4662, 6346...)
  /// plus a heavy spread of random ports in 10000-40000.
  std::uint16_t p2p_listen_port(Rng& rng, std::uint16_t default_port) const;

  /// A fully random port in 1024-65535 (the UNKNOWN/encrypted spread).
  std::uint16_t random_high_port(Rng& rng) const;

 private:
  NetworkModelConfig config_;
  ClientNetwork network_;
  std::vector<Ipv4Addr> hosts_;
};

}  // namespace upbound
