// Application session models: each produces the ConnectionSpecs one user
// action (a page fetch, an FTP download, a period of P2P activity) creates.
// Together they reproduce the structure paper Section 3.3 measures --
// client-server sessions are outbound and download-heavy, peer-to-peer
// sessions accept inbound connections whose payload flows outbound (the
// uploads the bitmap filter exists to bound).
#pragma once

#include <vector>

#include "net/app_protocol.h"
#include "trace/network_model.h"
#include "trace/packetizer.h"

namespace upbound {

/// Samples an external round-trip time; log-normal with ~60 ms median and
/// a sub-second p99, matching the Fig. 5 out-in delay shape.
Duration sample_rtt(Rng& rng);

/// Samples a connection duration with the heavy-tailed Fig. 4 shape,
/// scaled to the given mean. Clamped to [5 ms, 6 h].
Duration sample_lifetime(Rng& rng, Duration mean);

/// Appends alternating request/response message chunks that transfer
/// `from_initiator` / `to_initiator` bytes spread over roughly `duration`.
void add_transfer_messages(std::vector<MessageSpec>& messages, Rng& rng,
                           std::uint64_t from_initiator,
                           std::uint64_t to_initiator, Duration duration);

// ---------------------------------------------------------------------
// Client-server sessions (outbound, download-heavy).
// ---------------------------------------------------------------------

struct HttpParams {
  double mean_body_bytes = 24e3;
  unsigned max_requests = 4;
};

/// A browser fetching 1..max_requests objects over one keep-alive
/// connection to an external web server.
std::vector<ConnectionSpec> make_http_session(const NetworkModel& net,
                                              Rng& rng, SimTime start,
                                              const HttpParams& params = {});

struct DnsParams {
  unsigned max_queries = 3;
};

/// UDP DNS lookups to an external resolver.
std::vector<ConnectionSpec> make_dns_session(const NetworkModel& net,
                                             Rng& rng, SimTime start,
                                             const DnsParams& params = {});

struct FtpParams {
  double mean_file_bytes = 400e3;
  unsigned max_files = 2;
};

/// An FTP control connection plus one passive-mode data connection per
/// retrieved file. The PASV reply in the control stream names the data
/// port, which the analyzer's FTP tracker must parse (paper Section 3.2,
/// second strategy).
std::vector<ConnectionSpec> make_ftp_session(const NetworkModel& net,
                                             Rng& rng, SimTime start,
                                             const FtpParams& params = {});

struct OtherServiceParams {
  double mean_bytes = 30e3;
};

/// A catch-all well-known-port service session (SSH/SMTP/IMAP-style):
/// identified by port, counted as "Others" in Table 2.
std::vector<ConnectionSpec> make_other_service_session(
    const NetworkModel& net, Rng& rng, SimTime start,
    const OtherServiceParams& params = {});

// ---------------------------------------------------------------------
// Peer-to-peer sessions.
// ---------------------------------------------------------------------

struct P2pPeerParams {
  AppProtocol app = AppProtocol::kBitTorrent;
  /// Connections this peer initiates to external peers (downloads).
  unsigned outbound_conns = 2;
  /// Connections external peers initiate to this peer (uploads!).
  unsigned inbound_conns = 3;
  /// Small UDP exchanges (DHT / server pings / overlay chatter).
  unsigned udp_exchanges = 8;
  double mean_download_bytes = 120e3;
  double mean_upload_bytes = 400e3;
  Duration mean_conn_duration = Duration::sec(50.0);
  /// Hard upper bound on a single connection's lifetime; keeps short
  /// generated traces from being stretched by one heavy-tail draw.
  Duration lifetime_cap = Duration::sec(600.0);
  /// Probability that a TCP peer connection contains one long mid-stream
  /// idle period (choke/unchoke pauses); exercises state-expiry behaviour.
  double idle_gap_probability = 0.15;
  /// Probability that an inbound connection comes from a peer this host
  /// contacted earlier (a P2P call-back) rather than a stranger -- the
  /// NAT hole-punching scenario of paper Section 4.2.
  double callback_probability = 0.3;
  /// Probability that an outbound connection originates from the host's
  /// listen port (socket reuse, the hole-punch enabler).
  double listen_port_reuse_probability = 0.5;
};

/// One internal host's P2P activity window: a mix of outbound and inbound
/// TCP peer connections plus UDP overlay chatter. For
/// AppProtocol::kUnknown the payloads are protocol-encrypted (random
/// bytes) on random ports -- the traffic class the paper cannot identify
/// but the bitmap filter still bounds.
std::vector<ConnectionSpec> make_p2p_peer_session(const NetworkModel& net,
                                                  Rng& rng, SimTime start,
                                                  const P2pPeerParams& params);

}  // namespace upbound
