#include "trace/trace_builder.h"

#include <algorithm>

namespace upbound {

double GeneratedTrace::average_bits_per_sec() const {
  const double sec = span().to_sec();
  if (sec <= 0.0) return 0.0;
  return static_cast<double>(outbound_bytes + inbound_bytes) * 8.0 / sec;
}

TraceBuilder::TraceBuilder(ClientNetwork network, PacketizerOptions options)
    : network_(std::move(network)), options_(options) {
  result_.network = network_;
}

void TraceBuilder::add(const ConnectionSpec& spec) {
  const std::size_t before = result_.packets.size();
  packetize(spec, options_, result_.packets);
  for (std::size_t i = before; i < result_.packets.size(); ++i) {
    const PacketRecord& pkt = result_.packets[i];
    switch (network_.classify(pkt)) {
      case Direction::kOutbound:
        result_.outbound_bytes += pkt.wire_size();
        break;
      case Direction::kInbound:
        result_.inbound_bytes += pkt.wire_size();
        break;
      default:
        break;
    }
  }
  result_.truth[spec.tuple.canonical()] = spec.app;
  ++connections_;
}

void TraceBuilder::add_all(const std::vector<ConnectionSpec>& specs) {
  for (const auto& spec : specs) add(spec);
}

GeneratedTrace TraceBuilder::build() {
  std::stable_sort(result_.packets.begin(), result_.packets.end(),
                   [](const PacketRecord& a, const PacketRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  result_.connection_count = connections_;
  GeneratedTrace out = std::move(result_);
  result_ = GeneratedTrace{};
  result_.network = network_;
  connections_ = 0;
  return out;
}

}  // namespace upbound
