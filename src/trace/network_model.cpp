#include "trace/network_model.h"

#include <stdexcept>

namespace upbound {

NetworkModel::NetworkModel(const NetworkModelConfig& config)
    : config_(config), network_({config.client_prefix}) {
  // Skip network (.0) and broadcast-ish tail addresses.
  const std::uint64_t usable =
      config.client_prefix.size() > 2 ? config.client_prefix.size() - 2 : 1;
  if (config.client_hosts == 0) {
    throw std::invalid_argument("NetworkModel: need at least one host");
  }
  const std::uint64_t count =
      std::min<std::uint64_t>(config.client_hosts, usable);
  hosts_.reserve(count);
  for (std::uint64_t i = 1; i <= count; ++i) {
    hosts_.push_back(config.client_prefix.host(i));
  }
}

Ipv4Addr NetworkModel::client_host(std::size_t index) const {
  return hosts_.at(index);
}

Ipv4Addr NetworkModel::random_client_host(Rng& rng) const {
  return hosts_[rng.next_below(hosts_.size())];
}

Ipv4Addr NetworkModel::random_external_host(Rng& rng) const {
  for (;;) {
    // Public-looking /8s: 1..223 excluding 10 (private) and 127 (loopback).
    const std::uint8_t first =
        static_cast<std::uint8_t>(1 + rng.next_below(223));
    if (first == 10 || first == 127 || first == 172 || first == 192) continue;
    const Ipv4Addr addr{
        static_cast<std::uint32_t>(first) << 24 |
        static_cast<std::uint32_t>(rng.next_below(1u << 24))};
    if (!network_.is_internal(addr)) return addr;
  }
}

std::uint16_t NetworkModel::ephemeral_port(Rng& rng) const {
  return static_cast<std::uint16_t>(rng.next_range(32768, 61000));
}

std::uint16_t NetworkModel::p2p_listen_port(Rng& rng,
                                            std::uint16_t default_port) const {
  // Fig. 2: a noticeable mass on the protocol default, the rest spread
  // over 10000-40000.
  if (rng.next_bool(0.25)) return default_port;
  return static_cast<std::uint16_t>(rng.next_range(10000, 40000));
}

std::uint16_t NetworkModel::random_high_port(Rng& rng) const {
  return static_cast<std::uint16_t>(rng.next_range(1024, 65535));
}

}  // namespace upbound
