// Protocol-realistic payload synthesis for the first packets of generated
// connections. Every synthesizer produces bytes that the corresponding
// Table 1 pattern matches, so the analyzer classifies generated traffic the
// same way it would classify real captures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ip.h"
#include "util/rng.h"

namespace upbound::payloads {

using Bytes = std::vector<std::uint8_t>;

Bytes from_string(const std::string& s);

/// \x13"BitTorrent protocol" + reserved + info_hash + peer_id (68 bytes).
Bytes bittorrent_handshake(Rng& rng);

/// BitTorrent tracker scrape over HTTP.
Bytes bittorrent_scrape_request(Rng& rng);

/// eDonkey TCP hello: 0xe3 marker, LE length, opcode 0x01.
Bytes edonkey_hello(Rng& rng);

/// eDonkey UDP server status request: 0xe3 marker + opcode.
Bytes edonkey_udp_ping(Rng& rng);

/// "GNUTELLA CONNECT/0.6" handshake opener.
Bytes gnutella_connect();

/// "GNUTELLA/0.6 200 OK" handshake reply.
Bytes gnutella_ok();

/// HTTP/1.1 GET request for `path` on `host`.
Bytes http_get(const std::string& host, const std::string& path);

/// HTTP/1.1 response header announcing `content_length` body bytes.
Bytes http_response(int status, std::uint64_t content_length);

/// "220 ... FTP ..." service banner.
Bytes ftp_banner();

/// FTP client commands.
Bytes ftp_command(const std::string& verb, const std::string& arg = "");

/// "227 Entering Passive Mode (h1,h2,h3,h4,p1,p2)" reply.
Bytes ftp_pasv_response(Ipv4Addr addr, std::uint16_t port);

/// "PORT h1,h2,h3,h4,p1,p2" active-mode command.
Bytes ftp_port_command(Ipv4Addr addr, std::uint16_t port);

/// Minimal DNS query / response datagrams for a random name.
Bytes dns_query(Rng& rng);
Bytes dns_response(Rng& rng);

/// Uniformly random bytes: models protocol-encrypted (PE/MSE/PHE) P2P
/// traffic that defeats payload inspection.
Bytes random_bytes(Rng& rng, std::size_t n);

}  // namespace upbound::payloads
