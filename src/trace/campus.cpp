#include "trace/campus.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace upbound {

std::vector<CampusMixEntry> paper_table2_mix() {
  return {
      {AppProtocol::kBitTorrent, 0.4790, 0.18},
      {AppProtocol::kEdonkey, 0.2200, 0.21},
      {AppProtocol::kGnutella, 0.0756, 0.16},
      {AppProtocol::kUnknown, 0.1755, 0.35},
      {AppProtocol::kHttp, 0.0217, 0.05},
      // Table 2's "Others" row (2.82% / 5%) split into constituents:
      {AppProtocol::kDns, 0.0150, 0.002},
      {AppProtocol::kFtp, 0.0052, 0.018},
      {AppProtocol::kOther, 0.0080, 0.030},
  };
}

std::vector<CampusMixEntry> enterprise_mix() {
  return {
      {AppProtocol::kHttp, 0.4000, 0.62},
      {AppProtocol::kDns, 0.4200, 0.01},
      {AppProtocol::kFtp, 0.0300, 0.12},
      {AppProtocol::kOther, 0.1000, 0.20},
      // A couple of stragglers running P2P clients anyway.
      {AppProtocol::kBitTorrent, 0.0300, 0.03},
      {AppProtocol::kUnknown, 0.0200, 0.02},
  };
}

namespace {

// Average connections produced per session of each kind; must track the
// session generators in sessions.cpp.
double connections_per_session(AppProtocol app, const P2pPeerParams& p2p) {
  switch (app) {
    case AppProtocol::kHttp:
    case AppProtocol::kOther:
      return 1.0;
    case AppProtocol::kDns:
      return 2.0;  // 1 + uniform{0,1,2}
    case AppProtocol::kFtp:
      return 2.5;  // control + 1.5 data connections
    default:
      return static_cast<double>(p2p.outbound_conns + p2p.inbound_conns +
                                 p2p.udp_exchanges);
  }
}

void append(std::vector<ConnectionSpec>& out,
            std::vector<ConnectionSpec> more) {
  out.insert(out.end(), std::make_move_iterator(more.begin()),
             std::make_move_iterator(more.end()));
}

}  // namespace

CampusWorkload generate_campus_workload(const CampusTraceConfig& config) {
  if (config.duration <= Duration{} || config.connections_per_sec <= 0.0 ||
      config.bandwidth_bps <= 0.0) {
    throw std::invalid_argument("generate_campus_trace: bad scale parameters");
  }

  NetworkModelConfig net_config = config.network;
  net_config.seed = config.seed;
  NetworkModel net{net_config};
  Rng rng{config.seed};

  const double duration_sec = config.duration.to_sec();
  const double total_connections =
      config.connections_per_sec * duration_sec;
  const double total_bytes = config.bandwidth_bps * duration_sec / 8.0;

  // Base shape of every P2P session: 2 outbound + 3 inbound TCP peer
  // connections and 12 UDP overlay exchanges (the UDP-heavy connection mix
  // of Section 3.3).
  P2pPeerParams p2p_shape;
  p2p_shape.outbound_conns = 2;
  p2p_shape.inbound_conns = 3;
  p2p_shape.udp_exchanges = 12;

  CampusWorkload workload;
  workload.network = net.client_network();
  auto& builder = workload.connections;

  for (const CampusMixEntry& entry : config.mix) {
    const double cps = connections_per_session(entry.app, p2p_shape);
    const double session_count_real =
        entry.conn_fraction * total_connections / cps;
    const std::size_t session_count = static_cast<std::size_t>(
        std::max(1.0, std::round(session_count_real)));
    const double bytes_per_session =
        entry.byte_fraction * total_bytes / static_cast<double>(session_count);

    Rng app_rng = rng.fork(static_cast<std::uint64_t>(entry.app) + 100);

    for (std::size_t s = 0; s < session_count; ++s) {
      const SimTime start =
          SimTime::from_sec(app_rng.next_double() * duration_sec);
      switch (entry.app) {
        case AppProtocol::kHttp: {
          HttpParams params;
          // ~2.5 requests per session on average.
          params.mean_body_bytes = bytes_per_session / 2.5;
          append(builder, make_http_session(net, app_rng, start, params));
          break;
        }
        case AppProtocol::kDns:
          append(builder, make_dns_session(net, app_rng, start));
          break;
        case AppProtocol::kFtp: {
          FtpParams params;
          params.mean_file_bytes = bytes_per_session / 1.5;
          append(builder, make_ftp_session(net, app_rng, start, params));
          break;
        }
        case AppProtocol::kOther: {
          OtherServiceParams params;
          params.mean_bytes = bytes_per_session;
          append(builder,
                 make_other_service_session(net, app_rng, start, params));
          break;
        }
        default: {
          P2pPeerParams params = p2p_shape;
          params.app = entry.app;
          // Split session bytes: p2p_upload_share of TCP bytes go out on
          // the inbound connections, the rest come in on outbound ones.
          params.mean_upload_bytes =
              config.p2p_upload_share * bytes_per_session /
              static_cast<double>(params.inbound_conns);
          params.mean_download_bytes =
              (1.0 - config.p2p_upload_share) * bytes_per_session /
              static_cast<double>(params.outbound_conns);
          params.mean_conn_duration = Duration::sec(50.0);
          params.lifetime_cap =
              config.lifetime_cap > Duration{}
                  ? config.lifetime_cap
                  : std::max(config.duration * 2.0, Duration::sec(120.0));
          append(builder, make_p2p_peer_session(net, app_rng, start, params));
          break;
        }
      }
    }
  }

  std::sort(workload.connections.begin(), workload.connections.end(),
            [](const ConnectionSpec& a, const ConnectionSpec& b) {
              return a.start < b.start;
            });
  return workload;
}

GeneratedTrace generate_campus_trace(const CampusTraceConfig& config) {
  CampusWorkload workload = generate_campus_workload(config);
  TraceBuilder builder{workload.network, config.packetizer};
  for (const ConnectionSpec& spec : workload.connections) builder.add(spec);
  return builder.build();
}

}  // namespace upbound
