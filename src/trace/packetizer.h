// Turns an application-level connection description into a timestamped
// packet sequence as observed at the client network's edge.
//
// Timestamps model what the paper's traffic monitor sees (Fig. 1): the
// reply to an outbound packet appears one external round-trip later, which
// is exactly the "out-in packet delay" of Section 3.3. TCP connections get
// a SYN / SYN-ACK / ACK opening, MSS-segmented data with sparse ACKs, and a
// FIN or RST close; UDP connections are message exchanges.
#pragma once

#include <cstdint>
#include <vector>

#include "net/app_protocol.h"
#include "net/packet.h"
#include "util/rng.h"
#include "util/time.h"

namespace upbound {

/// One application message inside a connection.
struct MessageSpec {
  bool from_initiator = true;
  /// Bytes placed in the first segment's payload (classifier-visible).
  std::vector<std::uint8_t> prefix;
  /// Total application bytes of the message (>= prefix size).
  std::uint64_t total_bytes = 0;
  /// Think time between the previous message's end and this message.
  Duration gap_before;
};

enum class CloseKind {
  kFin,   // graceful close by the initiator
  kRst,   // abortive close
  kNone,  // connection left dangling (lifetime measured to last packet)
};

/// Full description of one connection. The tuple is written from the
/// initiator's perspective (initiator == tuple source).
struct ConnectionSpec {
  FiveTuple tuple;
  SimTime start;
  /// True when the initiating endpoint sits inside the client network
  /// (outbound connection); false for inbound peer connections -- the ones
  /// that trigger P2P upload traffic.
  bool initiator_internal = true;
  /// External round-trip time: gap between a packet crossing the edge
  /// outward and its answer crossing back in.
  Duration rtt = Duration::msec(50);
  std::vector<MessageSpec> messages;
  CloseKind close = CloseKind::kFin;
  /// Idle time between the last message and the close exchange.
  Duration linger = Duration{};
  /// Ground-truth application (for classifier evaluation).
  AppProtocol app = AppProtocol::kUnknown;
};

struct PacketizerOptions {
  std::uint32_t mss = 1448;
  /// Captured payload prefix per packet (paper header traces strip
  /// payloads; the classifier needs only the first bytes).
  std::uint32_t capture_bytes = 96;
  /// Receiver acknowledges every ack_every-th data segment.
  std::uint32_t ack_every = 2;
  /// Gap between back-to-back segments from the same sender.
  Duration serialization_gap = Duration::usec(120);
};

/// Expands `spec` into packets, appending to `out`. Packets are emitted in
/// non-decreasing timestamp order.
void packetize(const ConnectionSpec& spec, const PacketizerOptions& options,
               Trace& out);

/// Convenience wrapper returning a fresh trace.
Trace packetize(const ConnectionSpec& spec,
                const PacketizerOptions& options = {});

}  // namespace upbound
