// Assembles ConnectionSpecs into a single time-sorted trace with ground
// truth labels for classifier evaluation.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/direction.h"
#include "trace/packetizer.h"

namespace upbound {

/// A synthetic trace plus everything needed to evaluate against it.
struct GeneratedTrace {
  Trace packets;
  ClientNetwork network;
  /// Ground truth application per connection (canonical-tuple keyed).
  std::unordered_map<FiveTuple, AppProtocol, CanonicalTupleHash,
                     CanonicalTupleEq>
      truth;
  std::size_t connection_count = 0;

  /// Total bytes crossing the edge, by direction.
  std::uint64_t outbound_bytes = 0;
  std::uint64_t inbound_bytes = 0;

  SimTime first_packet_time() const {
    return packets.empty() ? SimTime::origin() : packets.front().timestamp;
  }
  SimTime last_packet_time() const {
    return packets.empty() ? SimTime::origin() : packets.back().timestamp;
  }
  Duration span() const { return last_packet_time() - first_packet_time(); }

  /// Average offered load over the trace span, in bits per second.
  double average_bits_per_sec() const;
};

class TraceBuilder {
 public:
  explicit TraceBuilder(ClientNetwork network, PacketizerOptions options = {});

  void add(const ConnectionSpec& spec);
  void add_all(const std::vector<ConnectionSpec>& specs);

  std::size_t connection_count() const { return connections_; }

  /// Sorts and finalizes; the builder is left empty.
  GeneratedTrace build();

 private:
  ClientNetwork network_;
  PacketizerOptions options_;
  GeneratedTrace result_;
  std::size_t connections_ = 0;
};

}  // namespace upbound
