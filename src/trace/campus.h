// The calibrated "campus trace" generator: a synthetic stand-in for the
// paper's 7.5-hour capture, reproducing its reported aggregates --
//
//   Table 2   protocol mix (connection % and byte %)
//   Section 3.3   ~250 connections/s, 70% UDP connections but ~99.5% of
//                 bytes on TCP, ~90% of bytes flowing upload, 80% of
//                 outbound bytes on inbound-initiated connections
//   Fig. 4    heavy-tailed connection lifetimes (mean ~46 s)
//   Fig. 5    short out-in packet delays (99% < 2.8 s)
//
// Scale (duration, offered load, connection rate) is configurable; defaults
// keep test and bench runs laptop-sized while preserving every ratio.
#pragma once

#include <vector>

#include "trace/network_model.h"
#include "trace/sessions.h"
#include "trace/trace_builder.h"

namespace upbound {

/// One row of the target mixture.
struct CampusMixEntry {
  AppProtocol app;
  double conn_fraction;  // share of connections (Table 2 column 2)
  double byte_fraction;  // share of bytes (Table 2 column 3)
};

/// The paper's Table 2 mixture. "Others" (2.82%/5%) is split into its DNS,
/// FTP, and miscellaneous-service constituents.
std::vector<CampusMixEntry> paper_table2_mix();

/// A contrast workload: an enterprise client network with almost no P2P
/// (web/DNS/mail-dominated). Used to show the filter is harmless where
/// there is nothing to bound.
std::vector<CampusMixEntry> enterprise_mix();

struct CampusTraceConfig {
  Duration duration = Duration::sec(60.0);
  /// Target aggregate connection arrival rate (paper: ~250/s).
  double connections_per_sec = 120.0;
  /// Target average offered load in bits/s (paper: 146.7 Mbps; scaled
  /// down by default to keep default runs small).
  double bandwidth_bps = 40e6;
  std::uint64_t seed = 42;
  NetworkModelConfig network;
  PacketizerOptions packetizer;
  std::vector<CampusMixEntry> mix = paper_table2_mix();
  /// Fraction of P2P TCP bytes flowing in the upload direction.
  double p2p_upload_share = 0.985;
  /// Cap on single-connection lifetimes, 0 = derive from duration. The
  /// Fig. 4 benches pass an explicit large cap to keep the lifetime tail.
  Duration lifetime_cap = Duration{};
};

/// The pre-packetization form of a campus workload: every connection's
/// application-level description plus the client network. The closed-loop
/// simulator consumes this directly (it decides per connection whether
/// traffic materializes); generate_campus_trace() packetizes it into the
/// fixed replayable trace.
struct CampusWorkload {
  std::vector<ConnectionSpec> connections;  // sorted by start time
  ClientNetwork network;
};

/// Generates the calibrated workload without packetizing.
CampusWorkload generate_campus_workload(const CampusTraceConfig& config = {});

/// Generates the full calibrated trace.
GeneratedTrace generate_campus_trace(const CampusTraceConfig& config = {});

}  // namespace upbound
