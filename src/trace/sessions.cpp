#include "trace/sessions.h"

#include <algorithm>
#include <cmath>

#include "trace/payloads.h"

namespace upbound {

Duration sample_rtt(Rng& rng) {
  const double sec = rng.lognormal(std::log(0.06), 0.9);
  return Duration::sec(std::clamp(sec, 0.005, 2.5));
}

Duration sample_lifetime(Rng& rng, Duration mean) {
  // Log-normal, solving mu for the requested mean (= exp(mu + sigma^2/2)).
  // sigma = 2.57 reproduces the Fig. 4 percentile shape: with a ~46 s mean
  // it gives P90 ~ 45 s, P95 well under 4 min and < 1% above 810 s.
  const double sigma = 2.57;
  const double mu = std::log(mean.to_sec()) - sigma * sigma / 2.0;
  const double sec = rng.lognormal(mu, sigma);
  return Duration::sec(std::clamp(sec, 0.005, 6.0 * 3600.0));
}

void add_transfer_messages(std::vector<MessageSpec>& messages, Rng& rng,
                           std::uint64_t from_initiator,
                           std::uint64_t to_initiator, Duration duration) {
  // Chunk the transfer so throughput is spread over the lifetime instead
  // of bursting at connection start. Roughly one chunk per second keeps
  // inter-chunk think times well under the Fig. 5 out-in delay bound.
  const int chunks = static_cast<int>(
      std::clamp(duration.to_sec() + 1.0, 1.0, 48.0));
  const Duration gap_unit = duration / (2 * chunks);
  for (int i = 0; i < chunks; ++i) {
    const std::uint64_t init_part = from_initiator / chunks;
    const std::uint64_t resp_part = to_initiator / chunks;
    const double jitter = 0.5 + rng.next_double();
    if (init_part > 0 || i == 0) {
      MessageSpec msg;
      msg.from_initiator = true;
      msg.total_bytes = init_part;
      msg.gap_before = gap_unit * jitter;
      messages.push_back(std::move(msg));
    }
    if (resp_part > 0) {
      MessageSpec msg;
      msg.from_initiator = false;
      msg.total_bytes = resp_part;
      msg.gap_before = gap_unit * (0.5 + rng.next_double());
      messages.push_back(std::move(msg));
    }
  }
}

namespace {

std::uint64_t heavy_tailed_bytes(Rng& rng, double mean) {
  // Pareto with alpha = 1.5 has mean 3*xm; heavy upper tail like real
  // transfer sizes. The cap keeps one infinite-variance draw from
  // dominating a short trace's byte mix.
  const double xm = mean / 3.0;
  return static_cast<std::uint64_t>(
      std::min(rng.pareto(std::max(xm, 16.0), 1.5), mean * 15.0));
}

}  // namespace

std::vector<ConnectionSpec> make_http_session(const NetworkModel& net,
                                              Rng& rng, SimTime start,
                                              const HttpParams& params) {
  ConnectionSpec conn;
  conn.app = AppProtocol::kHttp;
  conn.initiator_internal = true;
  conn.rtt = sample_rtt(rng);
  conn.start = start;
  const std::uint16_t server_port =
      rng.next_bool(0.85) ? 80
                          : (rng.next_bool(0.5) ? 8080 : 3128);
  conn.tuple = FiveTuple{Protocol::kTcp, net.random_client_host(rng),
                         net.ephemeral_port(rng),
                         net.random_external_host(rng), server_port};

  const unsigned requests = 1 + static_cast<unsigned>(rng.next_below(
                                    params.max_requests));
  for (unsigned i = 0; i < requests; ++i) {
    const std::uint64_t body = heavy_tailed_bytes(rng, params.mean_body_bytes);
    MessageSpec request;
    request.from_initiator = true;
    request.prefix = payloads::http_get(
        "www" + std::to_string(rng.next_below(100)) + ".example.com",
        "/obj" + std::to_string(rng.next_below(1000)));
    request.total_bytes = request.prefix.size();
    request.gap_before = i == 0 ? Duration::msec(5)
                                : Duration::sec(rng.exponential(1.2));
    conn.messages.push_back(std::move(request));

    MessageSpec response;
    response.from_initiator = false;
    response.prefix = payloads::http_response(
        rng.next_bool(0.9) ? 200 : 404, body);
    response.total_bytes = response.prefix.size() + body;
    conn.messages.push_back(std::move(response));
  }
  conn.close = rng.next_bool(0.9) ? CloseKind::kFin : CloseKind::kRst;
  conn.linger = Duration::sec(rng.exponential(0.8));
  return {std::move(conn)};
}

std::vector<ConnectionSpec> make_dns_session(const NetworkModel& net,
                                             Rng& rng, SimTime start,
                                             const DnsParams& params) {
  std::vector<ConnectionSpec> out;
  const Ipv4Addr client = net.random_client_host(rng);
  const Ipv4Addr resolver = net.random_external_host(rng);
  const unsigned queries =
      1 + static_cast<unsigned>(rng.next_below(params.max_queries));
  SimTime t = start;
  for (unsigned i = 0; i < queries; ++i) {
    ConnectionSpec conn;
    conn.app = AppProtocol::kDns;
    conn.initiator_internal = true;
    conn.rtt = sample_rtt(rng);
    conn.start = t;
    conn.tuple = FiveTuple{Protocol::kUdp, client, net.ephemeral_port(rng),
                           resolver, 53};
    MessageSpec query;
    query.from_initiator = true;
    query.prefix = payloads::dns_query(rng);
    query.total_bytes = query.prefix.size();
    conn.messages.push_back(std::move(query));
    MessageSpec answer;
    answer.from_initiator = false;
    answer.prefix = payloads::dns_response(rng);
    answer.total_bytes = answer.prefix.size();
    conn.messages.push_back(std::move(answer));
    conn.close = CloseKind::kNone;
    out.push_back(std::move(conn));
    t += Duration::sec(rng.exponential(0.3));
  }
  return out;
}

std::vector<ConnectionSpec> make_ftp_session(const NetworkModel& net,
                                             Rng& rng, SimTime start,
                                             const FtpParams& params) {
  std::vector<ConnectionSpec> out;
  const Ipv4Addr client = net.random_client_host(rng);
  const Ipv4Addr server = net.random_external_host(rng);
  const Duration rtt = sample_rtt(rng);

  ConnectionSpec control;
  control.app = AppProtocol::kFtp;
  control.initiator_internal = true;
  control.rtt = rtt;
  control.start = start;
  control.tuple = FiveTuple{Protocol::kTcp, client, net.ephemeral_port(rng),
                            server, 21};

  auto server_says = [&](payloads::Bytes text, Duration gap) {
    MessageSpec msg;
    msg.from_initiator = false;
    msg.prefix = std::move(text);
    msg.total_bytes = msg.prefix.size();
    msg.gap_before = gap;
    control.messages.push_back(std::move(msg));
  };
  auto client_says = [&](payloads::Bytes text, Duration gap) {
    MessageSpec msg;
    msg.from_initiator = true;
    msg.prefix = std::move(text);
    msg.total_bytes = msg.prefix.size();
    msg.gap_before = gap;
    control.messages.push_back(std::move(msg));
  };

  server_says(payloads::ftp_banner(), Duration::msec(10));
  client_says(payloads::ftp_command("USER", "anonymous"), Duration::msec(400));
  server_says(payloads::from_string("331 Guest login ok.\r\n"),
              Duration::msec(5));
  client_says(payloads::ftp_command("PASS", "guest@"), Duration::msec(300));
  server_says(payloads::from_string("230 Login successful.\r\n"),
              Duration::msec(5));

  const unsigned files =
      1 + static_cast<unsigned>(rng.next_below(params.max_files));
  SimTime data_start = start + Duration::sec(2.0);
  for (unsigned i = 0; i < files; ++i) {
    const std::uint16_t data_port =
        static_cast<std::uint16_t>(rng.next_range(20000, 60000));
    client_says(payloads::ftp_command("PASV"), Duration::msec(600));
    server_says(payloads::ftp_pasv_response(server, data_port),
                Duration::msec(5));
    client_says(payloads::ftp_command(
                    "RETR", "file" + std::to_string(rng.next_below(100))),
                Duration::msec(150));
    server_says(payloads::from_string("150 Opening BINARY connection.\r\n"),
                Duration::msec(5));

    ConnectionSpec data;
    data.app = AppProtocol::kFtp;
    data.initiator_internal = true;
    data.rtt = rtt;
    data.start = data_start;
    data.tuple = FiveTuple{Protocol::kTcp, client, net.ephemeral_port(rng),
                           server, data_port};
    const std::uint64_t bytes = heavy_tailed_bytes(rng, params.mean_file_bytes);
    MessageSpec body;
    body.from_initiator = false;
    body.total_bytes = bytes;
    body.gap_before = Duration::msec(50);
    data.messages.push_back(std::move(body));
    data.close = CloseKind::kFin;
    out.push_back(std::move(data));

    const Duration transfer_time =
        Duration::sec(static_cast<double>(bytes) / 2e6);  // ~16 Mbps
    server_says(payloads::from_string("226 Transfer complete.\r\n"),
                transfer_time + Duration::msec(200));
    data_start += transfer_time + Duration::sec(1.0 + rng.exponential(1.0));
  }
  client_says(payloads::ftp_command("QUIT"), Duration::msec(800));
  server_says(payloads::from_string("221 Goodbye.\r\n"), Duration::msec(5));
  control.close = CloseKind::kFin;
  out.insert(out.begin(), std::move(control));
  return out;
}

std::vector<ConnectionSpec> make_other_service_session(
    const NetworkModel& net, Rng& rng, SimTime start,
    const OtherServiceParams& params) {
  static constexpr std::uint16_t kPorts[] = {22, 25, 110, 143, 443, 993};
  ConnectionSpec conn;
  conn.app = AppProtocol::kOther;
  conn.initiator_internal = true;
  conn.rtt = sample_rtt(rng);
  conn.start = start;
  conn.tuple = FiveTuple{Protocol::kTcp, net.random_client_host(rng),
                         net.ephemeral_port(rng),
                         net.random_external_host(rng),
                         kPorts[rng.next_below(std::size(kPorts))]};
  // Opaque service bytes: identified by port, not payload.
  MessageSpec hello;
  hello.from_initiator = false;
  hello.prefix = payloads::random_bytes(rng, 32);
  hello.total_bytes = 32;
  hello.gap_before = Duration::msec(10);
  conn.messages.push_back(std::move(hello));
  const Duration life =
      std::min(sample_lifetime(rng, Duration::sec(30.0)),
               Duration::sec(120.0));
  add_transfer_messages(conn.messages, rng,
                        heavy_tailed_bytes(rng, params.mean_bytes * 0.4),
                        heavy_tailed_bytes(rng, params.mean_bytes), life);
  conn.close = CloseKind::kFin;
  return {std::move(conn)};
}

namespace {

// First-packet payloads for a P2P connection: what the initiator sends
// first and what the responder answers.
struct P2pHandshake {
  payloads::Bytes initiator;
  payloads::Bytes responder;
  std::uint16_t default_port;
};

P2pHandshake p2p_handshake(AppProtocol app, Rng& rng) {
  switch (app) {
    case AppProtocol::kBitTorrent:
      return {payloads::bittorrent_handshake(rng),
              payloads::bittorrent_handshake(rng), 6881};
    case AppProtocol::kEdonkey:
      return {payloads::edonkey_hello(rng), payloads::edonkey_hello(rng),
              4662};
    case AppProtocol::kGnutella:
      return {payloads::gnutella_connect(), payloads::gnutella_ok(), 6346};
    default:
      // Protocol-encrypted: nothing recognizable on the wire.
      return {payloads::random_bytes(rng, 64), payloads::random_bytes(rng, 64),
              0};
  }
}

payloads::Bytes p2p_udp_payload(AppProtocol app, Rng& rng, bool query) {
  switch (app) {
    case AppProtocol::kBitTorrent: {
      // Mainline DHT bencoded query/response; matches the Table 1
      // "d1:ad2:id20:" signature.
      payloads::Bytes out = payloads::from_string(
          query ? "d1:ad2:id20:" : "d1:rd2:id20:");
      const payloads::Bytes id = payloads::random_bytes(rng, 20);
      out.insert(out.end(), id.begin(), id.end());
      const payloads::Bytes tail = payloads::from_string(
          query ? "e1:q4:ping1:t2:aa1:y1:qe" : "e1:t2:aa1:y1:re");
      out.insert(out.end(), tail.begin(), tail.end());
      return out;
    }
    case AppProtocol::kEdonkey:
      return payloads::edonkey_udp_ping(rng);
    case AppProtocol::kGnutella: {
      // GND (Gnutella UDP) framing: "GND", two header bytes, 0x01.
      payloads::Bytes out = payloads::from_string("GND");
      out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      out.push_back(0x01);
      const payloads::Bytes body = payloads::random_bytes(rng, 16);
      out.insert(out.end(), body.begin(), body.end());
      return out;
    }
    default:
      return payloads::random_bytes(rng, 24 + rng.next_below(80));
  }
}

}  // namespace

std::vector<ConnectionSpec> make_p2p_peer_session(const NetworkModel& net,
                                                  Rng& rng, SimTime start,
                                                  const P2pPeerParams& params) {
  std::vector<ConnectionSpec> out;
  const Ipv4Addr host = net.random_client_host(rng);
  const P2pHandshake proto_probe = p2p_handshake(params.app, rng);
  const std::uint16_t listen_port =
      proto_probe.default_port != 0
          ? net.p2p_listen_port(rng, proto_probe.default_port)
          : net.random_high_port(rng);

  std::vector<Ipv4Addr> contacted_peers;

  auto make_tcp_conn = [&](bool outbound, SimTime t) {
    ConnectionSpec conn;
    conn.app = params.app;
    conn.initiator_internal = outbound;
    conn.rtt = sample_rtt(rng);
    conn.start = t;
    if (outbound) {
      const Ipv4Addr peer = net.random_external_host(rng);
      const std::uint16_t peer_port =
          proto_probe.default_port != 0
              ? net.p2p_listen_port(rng, proto_probe.default_port)
              : net.random_high_port(rng);
      // P2P clients often reuse their listen socket for outgoing
      // connections; that reuse is what makes hole-punching keys match.
      const std::uint16_t src_port =
          rng.next_bool(params.listen_port_reuse_probability)
              ? listen_port
              : net.ephemeral_port(rng);
      conn.tuple = FiveTuple{Protocol::kTcp, host, src_port, peer, peer_port};
      contacted_peers.push_back(peer);
    } else {
      // Some inbound connections are call-backs from peers this host
      // already contacted (from a fresh source port), the rest strangers.
      const Ipv4Addr peer =
          !contacted_peers.empty() &&
                  rng.next_bool(params.callback_probability)
              ? contacted_peers[rng.next_below(contacted_peers.size())]
              : net.random_external_host(rng);
      conn.tuple = FiveTuple{Protocol::kTcp, peer, net.ephemeral_port(rng),
                             host, listen_port};
    }

    P2pHandshake hs = p2p_handshake(params.app, rng);
    MessageSpec hello;
    hello.from_initiator = true;
    hello.prefix = std::move(hs.initiator);
    hello.total_bytes = hello.prefix.size();
    hello.gap_before = Duration::msec(5);
    conn.messages.push_back(std::move(hello));
    MessageSpec reply;
    reply.from_initiator = false;
    reply.prefix = std::move(hs.responder);
    reply.total_bytes = reply.prefix.size();
    conn.messages.push_back(std::move(reply));

    // Payload flow: on outbound connections the inner peer mostly
    // downloads; on inbound connections the external peer mostly
    // downloads FROM us -- i.e. we upload.
    const std::uint64_t download =
        heavy_tailed_bytes(rng, params.mean_download_bytes);
    const std::uint64_t upload =
        heavy_tailed_bytes(rng, params.mean_upload_bytes);
    const Duration life =
        std::min(sample_lifetime(rng, params.mean_conn_duration),
                 params.lifetime_cap);
    if (outbound) {
      // from_initiator = inner host: small requests out, download in.
      add_transfer_messages(conn.messages, rng, download / 80, download, life);
    } else {
      // from_initiator = external peer: requests in, upload out.
      add_transfer_messages(conn.messages, rng, upload / 80, upload, life);
    }
    // Occasional long mid-stream idle (a choked peer waiting to be
    // unchoked): the traffic pattern that distinguishes expiry timers.
    if (conn.messages.size() > 3 &&
        rng.next_bool(params.idle_gap_probability)) {
      const std::size_t victim =
          3 + rng.next_below(conn.messages.size() - 3);
      conn.messages[victim].gap_before +=
          Duration::sec(std::min(rng.exponential(15.0), 80.0));
    }
    conn.close = rng.next_bool(0.8) ? CloseKind::kFin : CloseKind::kRst;
    return conn;
  };

  SimTime t = start;
  for (unsigned i = 0; i < params.outbound_conns; ++i) {
    out.push_back(make_tcp_conn(true, t));
    t += Duration::sec(rng.exponential(3.0));
  }
  t = start + Duration::sec(rng.exponential(2.0));
  for (unsigned i = 0; i < params.inbound_conns; ++i) {
    out.push_back(make_tcp_conn(false, t));
    t += Duration::sec(rng.exponential(5.0));
  }

  // UDP overlay chatter: mixed initiative, small payloads, random ports.
  t = start;
  for (unsigned i = 0; i < params.udp_exchanges; ++i) {
    ConnectionSpec conn;
    conn.app = params.app;
    conn.initiator_internal = rng.next_bool(0.55);
    conn.rtt = sample_rtt(rng);
    conn.start = t;
    const Ipv4Addr peer = net.random_external_host(rng);
    const std::uint16_t peer_port =
        params.app == AppProtocol::kEdonkey && rng.next_bool(0.4)
            ? (rng.next_bool(0.5) ? 4672 : 4661)
            : net.random_high_port(rng);
    if (conn.initiator_internal) {
      conn.tuple = FiveTuple{Protocol::kUdp, host,
                             conn.app == AppProtocol::kUnknown
                                 ? net.random_high_port(rng)
                                 : listen_port,
                             peer, peer_port};
    } else {
      conn.tuple =
          FiveTuple{Protocol::kUdp, peer, peer_port, host, listen_port};
    }
    MessageSpec query;
    query.from_initiator = true;
    query.prefix = p2p_udp_payload(params.app, rng, true);
    query.total_bytes = query.prefix.size();
    conn.messages.push_back(std::move(query));
    if (rng.next_bool(0.8)) {  // some queries go unanswered
      MessageSpec answer;
      answer.from_initiator = false;
      answer.prefix = p2p_udp_payload(params.app, rng, false);
      answer.total_bytes = answer.prefix.size();
      conn.messages.push_back(std::move(answer));
    }
    conn.close = CloseKind::kNone;
    out.push_back(std::move(conn));
    t += Duration::sec(rng.exponential(1.5));
  }

  return out;
}

}  // namespace upbound
