#include "trace/payloads.h"

#include <cstdio>

namespace upbound::payloads {

Bytes from_string(const std::string& s) {
  return Bytes{s.begin(), s.end()};
}

Bytes bittorrent_handshake(Rng& rng) {
  Bytes out;
  out.reserve(68);
  out.push_back(0x13);
  const std::string proto = "BitTorrent protocol";
  out.insert(out.end(), proto.begin(), proto.end());
  for (int i = 0; i < 8; ++i) out.push_back(0);  // reserved
  for (int i = 0; i < 20; ++i) {                 // info_hash
    out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
  }
  const std::string client = "-UB0100-";          // peer_id prefix
  out.insert(out.end(), client.begin(), client.end());
  for (int i = 0; i < 12; ++i) {
    out.push_back(static_cast<std::uint8_t>('0' + rng.next_below(10)));
  }
  return out;
}

Bytes bittorrent_scrape_request(Rng& rng) {
  std::string hash;
  for (int i = 0; i < 8; ++i) {
    char buf[4];
    std::snprintf(buf, sizeof(buf), "%02x",
                  static_cast<unsigned>(rng.next_below(256)));
    hash += buf;
  }
  return from_string("GET /scrape?info_hash=" + hash +
                     " HTTP/1.0\r\nHost: tracker\r\n\r\n");
}

Bytes edonkey_hello(Rng& rng) {
  Bytes out;
  out.push_back(0xe3);  // eDonkey protocol marker
  // Little-endian payload length (opcode + hash + id + port + tags).
  const std::uint32_t len = 41;
  out.push_back(static_cast<std::uint8_t>(len));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.push_back(0x01);  // OP_HELLO
  out.push_back(16);    // hash size
  for (int i = 0; i < 16; ++i) {
    out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
  }
  for (int i = 0; i < 23; ++i) out.push_back(0);
  return out;
}

Bytes edonkey_udp_ping(Rng& rng) {
  Bytes out;
  out.push_back(0xe3);
  out.push_back(0x96);  // OP_GLOBGETSOURCES-ish
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
  }
  return out;
}

Bytes gnutella_connect() {
  return from_string(
      "GNUTELLA CONNECT/0.6\r\n"
      "User-Agent: LimeWire/4.12\r\n"
      "X-Ultrapeer: False\r\n\r\n");
}

Bytes gnutella_ok() {
  return from_string(
      "GNUTELLA/0.6 200 OK\r\n"
      "User-Agent: gtk-gnutella/0.96\r\n\r\n");
}

Bytes http_get(const std::string& host, const std::string& path) {
  return from_string("GET " + path +
                     " HTTP/1.1\r\n"
                     "Host: " +
                     host +
                     "\r\n"
                     "User-Agent: Mozilla/5.0\r\n"
                     "Accept: */*\r\n\r\n");
}

Bytes http_response(int status, std::uint64_t content_length) {
  const char* reason = status == 200   ? "OK"
                       : status == 304 ? "Not Modified"
                       : status == 404 ? "Not Found"
                                       : "Other";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "HTTP/1.1 %d %s\r\n"
                "Server: Apache/2.2\r\n"
                "Content-Length: %llu\r\n"
                "Content-Type: application/octet-stream\r\n\r\n",
                status, reason, static_cast<unsigned long long>(content_length));
  return from_string(buf);
}

Bytes ftp_banner() {
  return from_string("220 upbound.example.edu FTP server ready.\r\n");
}

Bytes ftp_command(const std::string& verb, const std::string& arg) {
  return from_string(arg.empty() ? verb + "\r\n" : verb + " " + arg + "\r\n");
}

namespace {

std::string comma_quad_port(Ipv4Addr addr, std::uint16_t port) {
  char buf[48];
  const std::uint32_t v = addr.value();
  std::snprintf(buf, sizeof(buf), "%u,%u,%u,%u,%u,%u", (v >> 24) & 0xff,
                (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff, port >> 8,
                port & 0xff);
  return buf;
}

}  // namespace

Bytes ftp_pasv_response(Ipv4Addr addr, std::uint16_t port) {
  return from_string("227 Entering Passive Mode (" +
                     comma_quad_port(addr, port) + ").\r\n");
}

Bytes ftp_port_command(Ipv4Addr addr, std::uint16_t port) {
  return from_string("PORT " + comma_quad_port(addr, port) + "\r\n");
}

Bytes dns_query(Rng& rng) {
  Bytes out;
  // Transaction id.
  out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
  out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
  out.push_back(0x01);  // RD
  out.push_back(0x00);
  out.push_back(0x00); out.push_back(0x01);  // QDCOUNT = 1
  for (int i = 0; i < 6; ++i) out.push_back(0);  // AN/NS/AR counts
  // QNAME: <5 random letters>.example.com
  out.push_back(5);
  for (int i = 0; i < 5; ++i) {
    out.push_back(static_cast<std::uint8_t>('a' + rng.next_below(26)));
  }
  const std::string rest = "example";
  out.push_back(static_cast<std::uint8_t>(rest.size()));
  out.insert(out.end(), rest.begin(), rest.end());
  out.push_back(3);
  out.push_back('c'); out.push_back('o'); out.push_back('m');
  out.push_back(0);
  out.push_back(0x00); out.push_back(0x01);  // QTYPE A
  out.push_back(0x00); out.push_back(0x01);  // QCLASS IN
  return out;
}

Bytes dns_response(Rng& rng) {
  Bytes out = dns_query(rng);
  out[2] = 0x81;  // QR + RD
  out[3] = 0x80;  // RA
  out[7] = 0x01;  // ANCOUNT = 1
  // Answer: pointer to name, type A, class IN, TTL, RDLENGTH 4, address.
  const std::uint8_t answer[] = {0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01,
                                 0x00, 0x00, 0x0e, 0x10, 0x00, 0x04};
  out.insert(out.end(), answer, answer + sizeof(answer));
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
  }
  return out;
}

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

}  // namespace upbound::payloads
