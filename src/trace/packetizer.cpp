#include "trace/packetizer.h"

#include <algorithm>

namespace upbound {

namespace {

struct Builder {
  const ConnectionSpec& spec;
  const PacketizerOptions& opt;
  Trace local;

  // Delay before a causal response from the given side becomes visible at
  // the edge. The internal host sits next to the monitor and answers in
  // about a millisecond; a response from the external peer takes a full
  // external round trip -- which is exactly what the Section 3.3 out-in
  // packet delay measures.
  bool from_internal(bool from_initiator) const {
    return from_initiator == spec.initiator_internal;
  }
  Duration response_delay(bool from_initiator) const {
    return from_internal(from_initiator) ? Duration::msec(1) : spec.rtt;
  }

  void emit(bool from_initiator, SimTime at, TcpFlags flags,
            std::uint32_t payload_size,
            std::vector<std::uint8_t> captured = {}) {
    PacketRecord pkt;
    pkt.timestamp = at;
    pkt.tuple = from_initiator ? spec.tuple : spec.tuple.inverse();
    pkt.flags = flags;
    pkt.payload_size = payload_size;
    pkt.payload = std::move(captured);
    local.push_back(std::move(pkt));
  }

  // Emits one message's data segments starting at `t`; returns the time of
  // the last data segment.
  SimTime emit_message(const MessageSpec& msg, SimTime t) {
    const std::uint64_t total =
        std::max<std::uint64_t>(msg.total_bytes, msg.prefix.size());
    std::uint64_t sent = 0;
    std::uint32_t segment_index = 0;
    SimTime last = t;
    bool last_segment_acked = false;
    const bool tcp = spec.tuple.protocol == Protocol::kTcp;
    while (sent < total || (total == 0 && segment_index == 0)) {
      const std::uint32_t chunk = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(opt.mss, total - sent));
      std::vector<std::uint8_t> captured;
      if (segment_index == 0 && !msg.prefix.empty()) {
        const std::size_t keep =
            std::min<std::size_t>({msg.prefix.size(), opt.capture_bytes,
                                   std::max<std::uint32_t>(chunk, 1)});
        captured.assign(msg.prefix.begin(),
                        msg.prefix.begin() + static_cast<std::ptrdiff_t>(keep));
      }
      TcpFlags flags;
      if (tcp) {
        flags.ack = true;
        flags.psh = sent + chunk >= total;
      }
      emit(msg.from_initiator, last, flags, chunk, std::move(captured));

      // Sparse ACKs from the receiving side (TCP only).
      last_segment_acked = tcp && opt.ack_every > 0 &&
                           segment_index % opt.ack_every == opt.ack_every - 1;
      if (last_segment_acked) {
        emit(!msg.from_initiator, last + response_delay(!msg.from_initiator),
             TcpFlags{.ack = true}, 0);
      }

      sent += chunk;
      ++segment_index;
      if (sent < total) last += opt.serialization_gap;
      if (total == 0) break;
    }
    // Delayed ACK: TCP receivers acknowledge the tail of every message even
    // when the sparse cadence missed it -- otherwise single-segment
    // messages would never refresh the reverse direction and out-in delay
    // samples would accumulate whole message gaps.
    if (tcp && !last_segment_acked) {
      emit(!msg.from_initiator, last + response_delay(!msg.from_initiator),
           TcpFlags{.ack = true}, 0);
    }
    return last;
  }

  void run() {
    SimTime t = spec.start;
    const bool tcp = spec.tuple.protocol == Protocol::kTcp;
    bool last_sender_initiator = true;

    if (tcp) {
      emit(true, t, TcpFlags{.syn = true}, 0);
      t += response_delay(false);
      emit(false, t, TcpFlags{.syn = true, .ack = true}, 0);
      t += response_delay(true);
      emit(true, t, TcpFlags{.ack = true}, 0);
      last_sender_initiator = true;
    }

    for (const MessageSpec& msg : spec.messages) {
      t += msg.gap_before;
      if (msg.from_initiator != last_sender_initiator) {
        t += response_delay(msg.from_initiator);
      } else {
        t += opt.serialization_gap;
      }
      t = emit_message(msg, t);
      last_sender_initiator = msg.from_initiator;
    }

    if (tcp) {
      t += spec.linger;
      switch (spec.close) {
        case CloseKind::kFin: {
          t += response_delay(true);
          emit(true, t, TcpFlags{.ack = true, .fin = true}, 0);
          const SimTime peer = t + response_delay(false);
          emit(false, peer, TcpFlags{.ack = true, .fin = true}, 0);
          emit(true, peer + response_delay(true), TcpFlags{.ack = true}, 0);
          break;
        }
        case CloseKind::kRst:
          t += response_delay(true);
          emit(true, t, TcpFlags{.rst = true}, 0);
          break;
        case CloseKind::kNone:
          break;
      }
    }

    std::stable_sort(local.begin(), local.end(),
                     [](const PacketRecord& a, const PacketRecord& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
};

}  // namespace

void packetize(const ConnectionSpec& spec, const PacketizerOptions& options,
               Trace& out) {
  Builder builder{spec, options, {}};
  builder.run();
  out.insert(out.end(), std::make_move_iterator(builder.local.begin()),
             std::make_move_iterator(builder.local.end()));
}

Trace packetize(const ConnectionSpec& spec, const PacketizerOptions& options) {
  Trace out;
  packetize(spec, options, out);
  return out;
}

}  // namespace upbound
