#include "net/pcap.h"

#include <algorithm>
#include "util/byte_io.h"
#include <cstring>

namespace upbound {

namespace {

void put_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u16le(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

std::uint32_t get_u32(const std::uint8_t* p, bool swap) {
  std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                    (static_cast<std::uint32_t>(p[1]) << 8) |
                    (static_cast<std::uint32_t>(p[2]) << 16) |
                    (static_cast<std::uint32_t>(p[3]) << 24);
  return swap ? bswap32(v) : v;
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : snaplen_(snaplen) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) throw PcapError("cannot open for writing: " + path);

  std::uint8_t hdr[24];
  put_u32le(hdr + 0, kPcapMagicUsecLe);
  put_u16le(hdr + 4, 2);   // version major
  put_u16le(hdr + 6, 4);   // version minor
  put_u32le(hdr + 8, 0);   // thiszone
  put_u32le(hdr + 12, 0);  // sigfigs
  put_u32le(hdr + 16, snaplen_);
  put_u32le(hdr + 20, kPcapLinkTypeEthernet);
  if (std::fwrite(hdr, 1, sizeof(hdr), file_) != sizeof(hdr)) {
    throw PcapError("short write on pcap header");
  }
}

PcapWriter::~PcapWriter() { close(); }

void PcapWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void PcapWriter::write(const PacketRecord& pkt) {
  if (file_ == nullptr) throw PcapError("write after close");

  const std::vector<std::uint8_t> frame = encode_frame(pkt);
  // Zero fill from encode_frame represents un-captured payload; report the
  // true original length and clip the stored bytes to the captured prefix
  // (plus headers) and snaplen, like a live snaplen-limited capture.
  const std::uint32_t orig_len = static_cast<std::uint32_t>(frame.size());
  const std::uint32_t headers = orig_len - pkt.payload_size;
  std::uint32_t incl_len = headers + static_cast<std::uint32_t>(
                                         std::min<std::size_t>(
                                             pkt.payload.size(),
                                             pkt.payload_size));
  incl_len = std::min(incl_len, snaplen_);

  const std::int64_t usec = pkt.timestamp.usec();
  std::uint8_t rec[16];
  put_u32le(rec + 0, static_cast<std::uint32_t>(usec / 1'000'000));
  put_u32le(rec + 4, static_cast<std::uint32_t>(usec % 1'000'000));
  put_u32le(rec + 8, incl_len);
  put_u32le(rec + 12, orig_len);
  if (std::fwrite(rec, 1, sizeof(rec), file_) != sizeof(rec) ||
      std::fwrite(frame.data(), 1, incl_len, file_) != incl_len) {
    throw PcapError("short write on pcap record");
  }
  ++packets_written_;
}

void PcapWriter::write_all(const Trace& trace) {
  for (const auto& pkt : trace) write(pkt);
}

PcapReader::PcapReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) throw PcapError("cannot open for reading: " + path);

  std::uint8_t hdr[24];
  if (std::fread(hdr, 1, sizeof(hdr), file_) != sizeof(hdr)) {
    throw PcapError("truncated pcap global header");
  }
  const std::uint32_t magic = get_u32(hdr, false);
  if (magic == kPcapMagicUsecLe) {
    swap_ = false;
    nanosecond_ = false;
  } else if (magic == bswap32(kPcapMagicUsecLe)) {
    swap_ = true;
    nanosecond_ = false;
  } else if (magic == kPcapMagicNsecLe) {
    swap_ = false;
    nanosecond_ = true;
  } else if (magic == bswap32(kPcapMagicNsecLe)) {
    swap_ = true;
    nanosecond_ = true;
  } else {
    throw PcapError("bad pcap magic");
  }
  const std::uint32_t link_type = get_u32(hdr + 20, swap_);
  if (link_type != kPcapLinkTypeEthernet) {
    throw PcapError("unsupported pcap link type " + std::to_string(link_type));
  }
}

PcapReader::~PcapReader() {
  if (file_ != nullptr) std::fclose(file_);
}

std::optional<PacketRecord> PcapReader::next() {
  for (;;) {
    std::uint8_t rec[16];
    const std::size_t got = std::fread(rec, 1, sizeof(rec), file_);
    if (got == 0) return std::nullopt;  // clean EOF
    if (got != sizeof(rec)) throw PcapError("truncated pcap record header");

    const std::uint32_t ts_sec = get_u32(rec + 0, swap_);
    const std::uint32_t ts_frac = get_u32(rec + 4, swap_);
    const std::uint32_t incl_len = get_u32(rec + 8, swap_);
    const std::uint32_t orig_len = get_u32(rec + 12, swap_);
    if (incl_len > 256 * 1024 * 1024) throw PcapError("absurd record length");

    frame_buf_.resize(incl_len);
    if (incl_len > 0 &&
        std::fread(frame_buf_.data(), 1, incl_len, file_) != incl_len) {
      throw PcapError("truncated pcap record body");
    }

    const std::int64_t usec =
        static_cast<std::int64_t>(ts_sec) * 1'000'000 +
        (nanosecond_ ? ts_frac / 1000 : ts_frac);
    auto decoded = decode_frame(frame_buf_, SimTime::from_usec(usec));
    if (!decoded) {
      ++frames_skipped_;
      continue;
    }
    (void)orig_len;  // payload_size already recovered from the IP header
    ++packets_read_;
    return decoded->packet;
  }
}

Trace PcapReader::read_all() {
  Trace out;
  while (auto pkt = next()) out.push_back(std::move(*pkt));
  return out;
}

}  // namespace upbound
